#!/usr/bin/env python
"""Verify the whole paper, claim by claim.

``repro.paper`` registers one executable check per numbered statement of
*Basic Network Creation Games*.  This example runs the registry and prints a
human-readable verdict sheet — the one-command answer to "does the paper
hold up?".

Expected picture: everything confirmed, except Theorem 5's *witness*
(Figure 3), which is refuted as printed and repaired by this repository's
10-vertex replacement (the next line in the sheet).

Run: ``python examples/verify_paper.py``
"""

import time

from repro.paper import CLAIMS, verify_claim

STATUS_GLYPH = {
    "confirmed": "[ok]",
    "refuted-witness": "[!!]",
    "evidence": "[~>]",
}


def main() -> None:
    print("Basic Network Creation Games (SPAA 2010) — claim verification")
    print()
    total_start = time.perf_counter()
    failures = 0
    for claim in CLAIMS:
        start = time.perf_counter()
        result = verify_claim(claim)
        elapsed = time.perf_counter() - start
        glyph = STATUS_GLYPH[claim.expected_status]
        verdict = "pass" if result.passed else "FAIL"
        if not result.passed:
            failures += 1
        print(
            f"{glyph} {claim.claim_id:<26} {verdict:<5} ({elapsed:5.2f}s)  "
            f"{claim.statement}"
        )
    print()
    print(
        f"{len(CLAIMS)} claims checked in "
        f"{time.perf_counter() - total_start:.1f}s; failures: {failures}"
    )
    print()
    print("legend: [ok] confirmed   [~>] finite-run evidence for an")
    print("        asymptotic claim   [!!] the Figure 3 finding — the check")
    print("        passes by VERIFYING the refutation of the printed witness;")
    print("        Theorem 5 itself is re-established by the repaired witness")


if __name__ == "__main__":
    main()
