#!/usr/bin/env python
"""Quickstart: the basic network creation game in five minutes.

Covers the core API end to end:

1. build graphs (constructions and random families);
2. ask the paper's questions of them (sum/max equilibrium? local diameters?);
3. run swap dynamics to *find* equilibria;
4. inspect a certified violation on a non-equilibrium.

Run: ``python examples/quickstart.py``
"""

from repro import (
    SwapDynamics,
    diameter,
    find_sum_violation,
    is_max_equilibrium,
    is_sum_equilibrium,
    random_tree,
    star_graph,
)
from repro.constructions import double_star, figure3_graph, rotated_torus
from repro.core import local_diameter, sum_cost


def main() -> None:
    # --- 1. The two equilibrium notions on the paper's flagship graphs ----
    star = star_graph(10)
    print(f"star (n=10):           sum equilibrium = {is_sum_equilibrium(star)}")

    dstar = double_star(3, 3)
    print(
        f"double star (3+3):     max equilibrium = {is_max_equilibrium(dstar)}"
        f" (diameter {diameter(dstar)})"
    )

    torus = rotated_torus(4)
    print(
        f"rotated torus (k=4):   max equilibrium = {is_max_equilibrium(torus)}"
        f" (n={torus.n}, diameter {diameter(torus)} = sqrt(n/2))"
    )

    # --- 2. A certified violation: the paper's own Figure 3 --------------
    fig3 = figure3_graph()
    violation = find_sum_violation(fig3)
    assert violation is not None
    print(
        "\nFigure 3 (as printed in the paper) is NOT in sum equilibrium:\n"
        f"  vertex {violation.vertex} swaps its edge to {violation.drop} "
        f"for an edge to {violation.add}: cost {violation.before:.0f} -> "
        f"{violation.after:.0f}"
    )

    # --- 3. Dynamics: watch a random tree collapse into a star -----------
    tree = random_tree(16, seed=42)
    print(f"\nrandom tree: diameter {diameter(tree)}, running sum-swap dynamics…")
    result = SwapDynamics(objective="sum", seed=0, record=True).run(tree)
    print(
        f"  converged={result.converged} after {result.steps} swaps; "
        f"final diameter {diameter(result.graph)} (Theorem 1: must be a star)"
    )
    print(f"  diameter trace: {[int(d) for d in result.diameter_trace]}")

    # --- 4. Per-vertex costs ---------------------------------------------
    v = 0
    print(
        f"\ncosts of vertex {v} in the torus: "
        f"sum = {sum_cost(torus, v):.0f}, local diameter = "
        f"{local_diameter(torus, v):.0f}"
    )


if __name__ == "__main__":
    main()
