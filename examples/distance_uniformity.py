#!/usr/bin/env python
"""Section 5: distance uniformity, the Theorem 13 pipeline, and the spider.

Three demonstrations:

1. measure ε-distance-uniformity of assorted graphs (the per-vertex notion);
2. run the Theorem 13 transform (skew intervals → multiple-free power →
   power graph) on a high-diameter input and report the resulting uniformity;
3. build the Conjecture 14 spider and display the separation between the
   pairwise and per-vertex notions that motivates the definition.

Run: ``python examples/distance_uniformity.py``
"""

from repro.analysis import (
    distance_almost_uniformity,
    distance_uniformity,
    pairwise_concentration,
    theorem13_transform,
)
from repro.constructions import (
    polarity_graph,
    rotated_torus,
    spider_for_epsilon,
    spider_graph,
)
from repro.graphs import complete_graph, cycle_graph, diameter


def main() -> None:
    print("per-vertex distance uniformity (smaller epsilon = more uniform)")
    print()
    graphs = [
        ("complete K32", complete_graph(32)),
        ("polarity ER_5", polarity_graph(5)),
        ("cycle C64", cycle_graph(64)),
        ("torus k=6", rotated_torus(6)),
    ]
    print(f"{'graph':>15} {'n':>5} {'diam':>5} {'eps(uniform)':>13} {'@r':>4} {'eps(almost)':>12}")
    for label, g in graphs:
        u = distance_uniformity(g)
        au = distance_almost_uniformity(g)
        print(
            f"{label:>15} {g.n:>5} {diameter(g):>5} {u.epsilon:>13.3f} "
            f"{u.radius:>4} {au.epsilon:>12.3f}"
        )

    print()
    print("Theorem 13 transform on a high-diameter input (C512, p=0.5)")
    res = theorem13_transform(cycle_graph(512), beta=0.125, p=0.5)
    print(f"  input diameter d = {res.input_diameter} (premise d > 2 lg n: {res.meets_diameter_premise})")
    print(
        f"  almost-uniform branch: power x = {res.almost_power}, "
        f"power-graph diameter {res.almost_diameter}, eps = {res.almost_report.epsilon:.3f}"
    )
    print(
        f"  uniform branch:        power x = {res.uniform_power} "
        f"(multiple-free, within 4 lg^2 n: {res.uniform_power_within_bound}), "
        f"power-graph diameter {res.uniform_diameter}, eps = {res.uniform_report.epsilon:.3f}"
    )

    print()
    print("Conjecture 14's quantifier: the spider separation")
    print(f"{'eps':>7} {'n':>6} {'diam':>5} {'pairwise modal':>15} {'per-vertex eps':>15}")
    for eps in (0.25, 0.125, 0.0625):
        shape = spider_for_epsilon(eps, 8)
        g = spider_graph(shape)
        r, frac = pairwise_concentration(g)
        u = distance_uniformity(g)
        print(f"{eps:>7} {g.n:>6} {diameter(g):>5} {frac:>13.3f}@{r:<2} {u.epsilon:>15.3f}")
    print()
    print(
        "pairwise mass concentrates at one distance while per-vertex "
        "uniformity\nfails — so Conjecture 14 must quantify per vertex, "
        "exactly as the paper does."
    )


if __name__ == "__main__":
    main()
