#!/usr/bin/env python
"""Theorem 12: the Θ(√n) max-equilibrium torus, audited live.

Builds the Figure 4 construction across sizes, verifies every property the
theorem claims (uniform local diameter k, deletion-criticality,
insertion-stability), contrasts with the axis-aligned torus (which fails),
and shows the d-dimensional trade-off: diameter (n/2)^(1/d) with stability
under d−1 simultaneous insertions.

Run: ``python examples/torus_equilibrium.py``
"""

import math

from repro.constructions import (
    diagonal_torus,
    rotated_torus,
    standard_torus,
)
from repro.core import (
    find_insertion_violation,
    is_deletion_critical,
    is_insertion_stable,
    is_k_insertion_stable,
    is_max_equilibrium,
)
from repro.graphs import diameter, eccentricities


def main() -> None:
    print("Figure 4 / Theorem 12: rotated torus on n = 2k^2 vertices")
    print()
    print(f"{'k':>3} {'n':>5} {'diam':>5} {'sqrt(n/2)':>10} {'del-crit':>9} {'ins-stable':>11} {'max-eq':>7}")
    for k in (2, 3, 4, 5, 6, 8):
        g = rotated_torus(k)
        ecc = eccentricities(g)
        assert set(ecc.tolist()) == {k}, "local diameter must be exactly k"
        print(
            f"{k:>3} {g.n:>5} {diameter(g):>5} {math.sqrt(g.n / 2):>10.2f} "
            f"{str(is_deletion_critical(g)):>9} {str(is_insertion_stable(g)):>11} "
            f"{str(is_max_equilibrium(g)):>7}"
        )

    print()
    print("contrast: the ordinary (axis-aligned) torus is NOT an equilibrium")
    st = standard_torus(6, 6)
    v = find_insertion_violation(st)
    print(f"  6x6 standard torus: insertion-stable = {is_insertion_stable(st)}")
    if v is not None:
        print(
            f"  e.g. inserting edge ({v.vertex}, {v.add}) lowers vertex "
            f"{v.vertex}'s local diameter {v.before:.0f} -> {v.after:.0f}"
        )

    print()
    print("d-dimensional trade-off: diameter (n/2)^(1/d), stable under d-1 insertions")
    print(f"{'d':>3} {'side k':>7} {'n':>6} {'diam':>5} {'(n/2)^(1/d)':>12} {'stable @ d-1':>13}")
    for d, k in ((2, 4), (3, 3), (4, 2)):
        g = diagonal_torus(k, d)
        stable = is_k_insertion_stable(g, d - 1, vertices=[0])
        print(
            f"{d:>3} {k:>7} {g.n:>6} {diameter(g):>5} "
            f"{(g.n / 2) ** (1 / d):>12.2f} {str(stable):>13}"
        )
    print()
    print(
        "interpretation: an agent that can weigh k edges at once cannot be "
        "trapped\nabove diameter ~n^(1/(k+1)) — the paper's smooth power/"
        "diameter trade-off."
    )


if __name__ == "__main__":
    main()
