#!/usr/bin/env python
"""Theorem 1 in motion: sum-swap dynamics collapse every tree to a star.

The paper proves the only sum-equilibrium tree is the star.  Because a swap
never changes the edge count and a disconnecting swap costs the mover
infinity, trees stay trees under the dynamics — so Theorem 1 predicts every
run ends at diameter 2.  This example sweeps tree sizes and schedules,
printing convergence statistics and one full diameter trajectory.

Run: ``python examples/tree_collapse.py``
"""

import numpy as np

from repro import SwapDynamics, diameter, random_tree
from repro.rng import derive_seed
from repro.theory import is_star


def one_run(n: int, seed: int, schedule: str):
    dyn = SwapDynamics(
        objective="sum", schedule=schedule, seed=seed, record=True
    )
    return dyn.run(random_tree(n, seed))


def main() -> None:
    print("Theorem 1: trees collapse to stars under sum-swap dynamics")
    print()
    header = f"{'n':>5} {'schedule':>12} {'runs':>5} {'stars':>6} {'mean swaps':>11} {'mean init diam':>15}"
    print(header)
    print("-" * len(header))
    for n in (8, 16, 32, 64):
        for schedule in ("round_robin", "random", "greedy"):
            runs = 3
            stars = 0
            steps = []
            init_d = []
            for rep in range(runs):
                seed = derive_seed(1, n, rep, hash(schedule) & 0xFFFF)
                res = one_run(n, seed, schedule)
                assert res.converged, "dynamics must converge on trees"
                stars += is_star(res.graph)
                steps.append(res.steps)
                init_d.append(diameter(random_tree(n, seed)))
            print(
                f"{n:>5} {schedule:>12} {runs:>5} {stars:>6} "
                f"{np.mean(steps):>11.1f} {np.mean(init_d):>15.1f}"
            )

    print()
    print("one trajectory in detail (n=24, round robin):")
    res = one_run(24, derive_seed(2, 24), "round_robin")
    diams = [int(d) for d in res.diameter_trace]
    costs = [int(c) for c in res.social_cost_trace]
    for i in range(0, len(diams), max(1, len(diams) // 12)):
        print(f"  after {i:>3} swaps: diameter {diams[i]:>2}, social cost {costs[i]:>6}")
    print(f"  after {len(diams)-1:>3} swaps: diameter {diams[-1]:>2}, social cost {costs[-1]:>6}")
    print(f"  is star: {is_star(res.graph)}")


if __name__ == "__main__":
    main()
