#!/usr/bin/env python
"""The transfer principle: one α-free bound covers every α-game.

Classical network creation games price each edge at α and their equilibria
change shape as α moves (clique below α=1ish, star/sparse above).  The
paper's point: swap-equilibrium bounds need no α at all, and every α-game
equilibrium is stable against its owners' swaps — so the single curve
2^{O(√lg n)} covers the whole α axis.

This example sweeps α across three orders of magnitude, drives the α-game
to greedy equilibrium, audits owner-swap stability, and prints the measured
diameters against the α-free bound.

Run: ``python examples/alpha_vs_swap.py``
"""

from repro.analysis import theorem9_diameter_bound
from repro.games import (
    FabrikantGame,
    greedy_dynamics,
    is_nash_equilibrium,
    owner_swap_stable,
    profile_from_graph,
    random_profile,
)
from repro.graphs import diameter_or_inf, star_graph
from repro.rng import derive_seed


def main() -> None:
    n = 9
    bound = theorem9_diameter_bound(n)
    print(f"alpha-game on n={n} players; alpha-free swap bound = {bound:.1f}")
    print()
    print(f"{'alpha':>8} {'m(edges)':>9} {'diameter':>9} {'owner-swap-stable':>18} {'within bound':>13}")
    for alpha in (0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 32.0, 81.0):
        game = FabrikantGame(n, alpha)
        res = greedy_dynamics(
            game, random_profile(n, 2, seed=derive_seed(7, int(alpha * 100))),
            seed=derive_seed(8, int(alpha * 100)),
        )
        g = game.graph_of(res.profile)
        d = diameter_or_inf(g)
        stable = owner_swap_stable(game, res.profile)
        print(
            f"{alpha:>8} {g.m:>9} {d:>9.0f} {str(stable):>18} "
            f"{str(d <= bound):>13}"
        )

    print()
    print("the star is simultaneously:")
    star = star_graph(n)
    prof = profile_from_graph(star)
    from repro.core import is_sum_equilibrium

    print(f"  a basic-game sum equilibrium:      {is_sum_equilibrium(star)}")
    for alpha in (1.0, 5.0, 50.0):
        game = FabrikantGame(n, alpha)
        print(
            f"  an exact Nash equilibrium (a={alpha:>4}):  "
            f"{is_nash_equilibrium(game, prof)}"
        )
    print()
    print(
        "note the asymmetry in verification cost: the swap audit is "
        "polynomial,\nwhile the Nash check above enumerates all 2^(n-1) "
        "strategies per player\n(NP-complete in general) — the paper's "
        "computational argument for swaps."
    )


if __name__ == "__main__":
    main()
