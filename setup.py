"""Legacy shim so `python setup.py develop` works on environments without
the `wheel` package (offline editable install fallback)."""
from setuptools import setup

setup()
