"""Experiment ``fig2-double-star``: Figure 2 / Theorem 4 (max-eq trees).

Kernel benchmarked: the full max-equilibrium audit of a double star (the
swap scan plus deletion-criticality — the paper's "try every possible edge
swap and deletion" procedure on a tree).
"""

from repro.bench import run_experiment
from repro.constructions import double_star
from repro.core import is_max_equilibrium

from conftest import emit


def test_double_star_audit_kernel(benchmark):
    g = double_star(6, 6)
    result = benchmark(is_max_equilibrium, g)
    assert result is True


def test_generate_fig2_tables(benchmark, results_dir):
    tables = benchmark.pedantic(
        run_experiment, args=("fig2-double-star", "quick"), rounds=1, iterations=1
    )
    # Theorem 4's content: every audited double star is a diameter-3 max
    # equilibrium, and the exhaustive scan finds no max-eq tree beyond 3.
    assert all(tables[0].column("max equilibrium"))
    assert set(tables[0].column("diameter")) == {3}
    assert all(tables[2].column("all consistent"))
    assert max(tables[2].column("max eq diameter")) <= 3
    emit(tables, results_dir, "fig2-double-star")
