"""Experiment ``thm12-tradeoff``: the d-dimensional diameter/power trade-off.

Kernel benchmarked: the exact k-insertion stability decision (the set-cover
reduction) on the 3-dimensional torus — the computation that certifies the
Ω(n^{1/(k+1)}) trade-off construction.
"""

from repro.bench import run_experiment
from repro.constructions import diagonal_torus
from repro.core import is_k_insertion_stable

from conftest import emit


def test_k_insertion_audit_kernel(benchmark):
    g = diagonal_torus(3, 3)  # n = 54, degree 8
    result = benchmark(is_k_insertion_stable, g, 2, [0])
    assert result is True


def test_diagonal_torus_construction_kernel(benchmark):
    g = benchmark(diagonal_torus, 4, 3)  # n = 128, degree 8
    assert g.n == 128


def test_generate_thm12_tables(benchmark, results_dir):
    tables = benchmark.pedantic(
        run_experiment, args=("thm12-tradeoff", "quick"), rounds=1, iterations=1
    )
    main = tables[0]
    assert all(main.column("deletion-critical"))
    assert all(main.column("stable k=d-1 insertions"))
    assert main.column("diameter") == main.column("k(side)")
    emit(tables, results_dir, "thm12-tradeoff")
