"""Experiment ``equilibrium-cost``: polynomial-time equilibrium checking.

The paper's model-level selling point — "equilibrium can be checked in
polynomial time, unlike previous models" — made quantitative, plus the two
DESIGN.md ablations:

* patched-BFS vs copy-BFS swap evaluation;
* scipy csgraph vs pure-NumPy APSP engines.
"""

import numpy as np

from repro.bench import run_experiment
from repro.core import Swap, is_sum_equilibrium, swap_cost_after
from repro.graphs import distance_matrix, random_connected_gnm

from conftest import emit

G_SMALL = random_connected_gnm(48, 96, seed=21)
G_LARGE = random_connected_gnm(128, 256, seed=22)


def test_full_audit_kernel_n48(benchmark):
    benchmark(is_sum_equilibrium, G_SMALL)


def test_full_audit_kernel_n128(benchmark):
    benchmark(is_sum_equilibrium, G_LARGE)


def _eval_many(mode: str) -> float:
    total = 0.0
    g = G_SMALL
    for v in range(0, g.n, 3):
        w = int(g.neighbors(v)[0])
        w2 = (v + g.n // 2) % g.n
        if w2 in (v, w):
            continue
        total += swap_cost_after(g, Swap(v, w, w2), "sum", mode)
    return total


def test_ablation_patched_eval(benchmark):
    benchmark(_eval_many, "patched")


def test_ablation_copy_eval(benchmark):
    benchmark(_eval_many, "copy")


def test_ablation_scipy_apsp(benchmark):
    dm = benchmark(distance_matrix, G_LARGE, "scipy")
    assert dm.shape == (128, 128)


def test_ablation_numpy_apsp(benchmark):
    dm = benchmark(distance_matrix, G_LARGE, "numpy")
    assert np.array_equal(dm, distance_matrix(G_LARGE, "scipy"))


def test_generate_equilibrium_cost_tables(benchmark, results_dir):
    tables = benchmark.pedantic(
        run_experiment, args=("equilibrium-cost", "quick"), rounds=1, iterations=1
    )
    emit(tables, results_dir, "equilibrium-cost")
