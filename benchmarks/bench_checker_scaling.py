"""Experiment ``equilibrium-cost``: polynomial-time equilibrium checking.

The paper's model-level selling point — "equilibrium can be checked in
polynomial time, unlike previous models" — made quantitative, plus the
DESIGN.md §4 ablation matrix:

* patched-BFS vs copy-BFS swap evaluation;
* scipy csgraph vs pure-NumPy APSP engines;
* **incremental engine vs fresh APSP** — removal matrices by affected-row
  BFS repair against one cached base matrix (DESIGN.md §2) vs the seed path
  that rebuilds the graph and reruns scipy per edge;
* **batched kernel vs per-edge repair** — the cross-edge plan/bound/verify
  audit (DESIGN.md §2.6) vs the PR-1 edge-at-a-time loop;
* **worker scaling** — shared-memory chunked audits at workers ∈ {1, 2, 4}
  and the sharded census fleet at workers ∈ {1, 2} (DESIGN.md §5);
* **dynamics engine modes** — dirty-set incremental dynamics vs the seed
  oracle loop, run to convergence;
* **batched best-response dynamics** — the bound-then-verify per-vertex
  kernel (DESIGN.md §8, ``engine_mode="batched"``) vs the pr4 incremental
  arm on the census initial families, trajectories asserted identical, and
  the equilibrium verification sweep (n best responses) vs the cross-edge
  ``certify_at_rest`` scan;
* **variant-audit throughput** — full model-aware equilibrium audits of the
  interest and budget game variants (cost-model layer, DESIGN.md §6) on
  their own converged endpoints, repair vs batched kernels;
* **trajectory-census fleet** — the registered
  ``bench-trajectory-scaling`` experiment (DESIGN.md §7, §12) serial vs
  sharded over the persistent pool, records asserted bit-identical across
  worker counts.

Both fleet arms ride registered :mod:`repro.experiments` instances
(``bench-census-scaling`` / ``bench-trajectory-scaling``), so what this
file times is exactly the declarative layer every fleet now runs on.

``test_scaling_report`` times the arms at n ∈ {48, 128, 256, 512} (env
``REPRO_BENCH_SMOKE=1`` restricts to n = 48 for CI smoke runs, still with a
``workers=2`` arm so CI exercises the process pool) and appends one entry
per PR to the ``results/checker_scaling.json`` trajectory.
"""

import json
import os
import time

import numpy as np

from repro.bench import run_experiment
from repro.core import (
    DistanceEngine,
    Swap,
    SwapDynamics,
    best_swap,
    is_equilibrium,
    is_sum_equilibrium,
    lift_distances,
    removal_distance_matrix,
    resolve_cost_model,
    swap_cost_after,
)
from repro.core.batched import certify_at_rest
from repro.core.census import seed_graph
from repro.experiments import build_experiment, run_fleet
from repro.graphs import distance_matrix, random_connected_gnm, random_tree

from conftest import emit

G_SMALL = random_connected_gnm(48, 96, seed=21)
G_LARGE = random_connected_gnm(128, 256, seed=22)


def test_full_audit_kernel_n48(benchmark):
    benchmark(is_sum_equilibrium, G_SMALL)


def test_full_audit_kernel_n128(benchmark):
    benchmark(is_sum_equilibrium, G_LARGE)


def _eval_many(mode: str) -> float:
    total = 0.0
    g = G_SMALL
    for v in range(0, g.n, 3):
        w = int(g.neighbors(v)[0])
        w2 = (v + g.n // 2) % g.n
        if w2 in (v, w):
            continue
        total += swap_cost_after(g, Swap(v, w, w2), "sum", mode)
    return total


def test_ablation_patched_eval(benchmark):
    benchmark(_eval_many, "patched")


def test_ablation_copy_eval(benchmark):
    benchmark(_eval_many, "copy")


def test_ablation_scipy_apsp(benchmark):
    dm = benchmark(distance_matrix, G_LARGE, "scipy")
    assert dm.shape == (128, 128)


def test_ablation_numpy_apsp(benchmark):
    dm = benchmark(distance_matrix, G_LARGE, "numpy")
    assert np.array_equal(dm, distance_matrix(G_LARGE, "scipy"))


def _removal_rows(mode: str) -> None:
    engine = DistanceEngine(G_SMALL) if mode == "repair" else None
    for edge in list(G_SMALL.iter_edges())[:32]:
        if engine is not None:
            engine.removal_matrix(*edge)
        else:
            removal_distance_matrix(G_SMALL, edge, mode="rebuild")


def test_ablation_engine_removal_rows(benchmark):
    benchmark(_removal_rows, "repair")


def test_ablation_rebuild_removal_rows(benchmark):
    benchmark(_removal_rows, "rebuild")


def test_ablation_batched_audit(benchmark):
    benchmark(is_sum_equilibrium, G_LARGE, mode="batched")


def test_ablation_repair_audit(benchmark):
    benchmark(is_sum_equilibrium, G_LARGE, mode="repair")


# ---------------------------------------------------------------------------
# Scaling report: one entry per PR in the results/checker_scaling.json
# trajectory (audit kernels, worker scaling, census fleet, dynamics).
# ---------------------------------------------------------------------------

def _best_of(fn, reps: int = 3) -> float:
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


_CENSUS_CACHE: dict = {}


def _census_equilibrium(n: int):
    """A dynamics equilibrium, so audits scan every edge (no short-circuit)."""
    if n not in _CENSUS_CACHE:
        res = SwapDynamics(objective="sum", seed=3).run(
            random_connected_gnm(n, 2 * n, seed=22)
        )
        assert res.converged
        _CENSUS_CACHE[n] = res.graph
    return _CENSUS_CACHE[n]


def _load_history(path) -> list:
    """Existing trajectory entries; adopts the pre-trajectory PR-1 layout."""
    if not path.exists():
        return []
    data = json.loads(path.read_text())
    if isinstance(data, dict) and "history" in data:
        return data["history"]
    if isinstance(data, dict) and "audit" in data:  # PR-1 flat layout
        return [{"label": "pr1-incremental-engine", **data}]
    return []


_ENTRY_LABEL = "pr9-experiment-layer"


def _variant_equilibrium(spec: str, n: int):
    """A converged endpoint of the variant's own dynamics (full-scan audit)."""
    key = (spec, n)
    if key not in _CENSUS_CACHE:
        # Interest games can cycle from dense starts; trees converge.
        start = (
            random_tree(n, seed=22)
            if spec.startswith("interest")
            else random_connected_gnm(n, 2 * n, seed=22)
        )
        res = SwapDynamics(objective=spec, seed=3).run(start)
        assert res.converged, f"variant dynamics did not converge: {key}"
        _CENSUS_CACHE[key] = res.graph
    return _CENSUS_CACHE[key]


def test_scaling_report(results_dir):
    smoke = os.environ.get("REPRO_BENCH_SMOKE") == "1"
    sizes = [48] if smoke else [48, 128, 256, 512]
    entry: dict = {
        "label": _ENTRY_LABEL,
        # Worker-scaling / fleet rows are meaningless without knowing the
        # host's core count (a 1-CPU container records scaling ~0.9 that
        # would otherwise read as a regression) — record it with the data.
        "cpu_count": os.cpu_count(),
        "audit": [],
        "workers": [],
        "fleet": [],
        "dynamics": [],
        "dynamics_batched": [],
        "verify_sweep": [],
        "variants": [],
        "trajfleet": [],
    }

    for n in sizes:
        g = _census_equilibrium(n)
        reps = 1 if n >= 256 else 2  # identical reps per arm: unbiased ratios
        # The rebuild oracle is O(m) fresh APSPs — prohibitive past n = 256.
        t_seed = (
            _best_of(lambda: is_sum_equilibrium(g, mode="rebuild"), reps)
            if n <= 256
            else None
        )
        t_repair = _best_of(lambda: is_sum_equilibrium(g, mode="repair"), reps)
        t_batched = _best_of(
            lambda: is_sum_equilibrium(g, mode="batched"), reps
        )
        assert is_sum_equilibrium(g, mode="batched")
        row = {
            "n": n,
            "m": g.m,
            "seed_rebuild_sec": None if t_seed is None else round(t_seed, 5),
            "engine_repair_sec": round(t_repair, 5),
            "batched_sec": round(t_batched, 5),
            "speedup": (
                None if t_seed is None else round(t_seed / t_repair, 2)
            ),
            "batched_over_repair": round(t_repair / t_batched, 2),
        }
        entry["audit"].append(row)

    # Worker scaling of the batched audit (shared-memory chunked edges).
    n_workers_probe = 48 if smoke else 256
    g = _census_equilibrium(n_workers_probe)
    worker_counts = [1, 2] if smoke else [1, 2, 4]
    base_t = None
    for w in worker_counts:
        t = _best_of(
            lambda: is_sum_equilibrium(g, mode="batched", workers=w),
            reps=1 if n_workers_probe >= 256 else 2,
        )
        base_t = t if w == 1 else base_t
        entry["workers"].append(
            {
                "n": n_workers_probe,
                "workers": w,
                "batched_sec": round(t, 5),
                "scaling": round(base_t / t, 2),
            }
        )

    # Sharded census fleet vs the serial trajectory loop, riding the
    # registered bench-census-scaling experiment (grid pinned to families
    # tree/sparse/dense × 2 replicates at root seed 7).
    fleet_n = [24] if smoke else [48]
    fleet_exp = build_experiment("bench-census-scaling", n=fleet_n)
    t_serial = _best_of(lambda: run_fleet(fleet_exp), reps=1)
    for w in ([2] if smoke else [2, 4]):
        t_fleet = _best_of(lambda: run_fleet(fleet_exp, workers=w), reps=1)
        entry["fleet"].append(
            {
                "n": fleet_n[0],
                "trajectories": 6,
                "workers": w,
                "serial_sec": round(t_serial, 5),
                "fleet_sec": round(t_fleet, 5),
                "scaling": round(t_serial / t_fleet, 2),
            }
        )

    # Variant-audit throughput: full model-aware audits of each variant's
    # own converged equilibrium (cost-model layer, ISSUE-3).
    for spec in ("interest-sum:k=8,seed=3", "budget-sum:cap=6"):
        for n in [48] if smoke else [48, 128]:
            g = _variant_equilibrium(spec, n)
            # Resolve once outside the timed region: the rows measure the
            # audit, not interest-set construction.
            model = resolve_cost_model(spec, g.n)
            reps = 2
            t_repair = _best_of(
                lambda: is_equilibrium(g, model, mode="repair"), reps
            )
            t_batched = _best_of(
                lambda: is_equilibrium(g, model, mode="batched"), reps
            )
            assert is_equilibrium(g, model, mode="batched")
            entry["variants"].append(
                {
                    "n": n,
                    "m": g.m,
                    "objective": spec,
                    "repair_sec": round(t_repair, 5),
                    "batched_sec": round(t_batched, 5),
                    "audits_per_sec": round(
                        (2 * g.m) / t_batched if t_batched > 0 else 0.0, 1
                    ),
                }
            )

    # Trajectory-census fleet: serial vs sharded workers (records must be
    # bit-identical, so the scaling rows are also a determinism assertion),
    # riding the registered bench-trajectory-scaling experiment.
    traj_n = [12] if smoke else [24]
    traj_exp = build_experiment("bench-trajectory-scaling", n=traj_n)
    traj_count = traj_exp.total_tasks()
    serial_records = None
    t_traj_serial = None
    for w in [1, 2] if smoke else [1, 2, 4]:
        start = time.perf_counter()
        recs = run_fleet(traj_exp, workers=w)
        t_traj = time.perf_counter() - start
        if w == 1:
            serial_records, t_traj_serial = recs, t_traj
            continue
        assert recs == serial_records, f"trajfleet workers={w} diverged"
        entry["trajfleet"].append(
            {
                "n": traj_n[0],
                "trajectories": traj_count,
                "workers": w,
                "serial_sec": round(t_traj_serial, 5),
                "fleet_sec": round(t_traj, 5),
                "scaling": round(t_traj_serial / t_traj, 2),
            }
        )

    for n in [32] if smoke else [32, 64]:
        tree = random_tree(n, seed=5)
        t_oracle = _best_of(
            lambda: SwapDynamics(
                objective="sum", seed=3, engine_mode="oracle"
            ).run(tree)
        )
        t_engine = _best_of(
            lambda: SwapDynamics(objective="sum", seed=3).run(tree)
        )
        res = SwapDynamics(objective="sum", seed=3).run(tree)
        assert res.converged and is_sum_equilibrium(res.graph)
        entry["dynamics"].append(
            {
                "n": n,
                "family": "tree",
                "oracle_sec": round(t_oracle, 5),
                "incremental_sec": round(t_engine, 5),
                "speedup": round(t_oracle / t_engine, 2),
                "steps": res.steps,
            }
        )

    # Batched best-response dynamics (ISSUE-5): the bound-then-verify
    # kernel vs the pr4 incremental arm, run to convergence on the census
    # initial families (trajectories bit-identical, asserted per row).
    batched_grid = (
        [("tree", 32), ("dense", 32)]
        if smoke
        else [("tree", 64), ("tree", 128), ("sparse", 128), ("dense", 128)]
    )
    for family, n in batched_grid:
        g = seed_graph(family, n, 7)
        reps = 2
        t_inc = _best_of(
            lambda: SwapDynamics(objective="sum", seed=3).run(g), reps
        )
        t_bat = _best_of(
            lambda: SwapDynamics(
                objective="sum", seed=3, engine_mode="batched"
            ).run(g),
            reps,
        )
        res_i = SwapDynamics(objective="sum", seed=3).run(g)
        res_b = SwapDynamics(
            objective="sum", seed=3, engine_mode="batched"
        ).run(g)
        assert res_b.graph == res_i.graph and res_b.steps == res_i.steps
        entry["dynamics_batched"].append(
            {
                "n": n,
                "m": g.m,
                "family": family,
                "incremental_sec": round(t_inc, 5),
                "batched_sec": round(t_bat, 5),
                "speedup": round(t_inc / t_bat, 2),
                "steps": res_b.steps,
            }
        )

    # Equilibrium verification sweep: n independent best responses (what
    # the incremental dynamics pay per sweep) vs one certify_at_rest scan.
    for n in [48] if smoke else [128, 256]:
        g = _census_equilibrium(n)
        lifted = lift_distances(distance_matrix(g))

        def _per_vertex_sweep():
            for v in range(g.n):
                assert best_swap(g, v, "sum", base_dm=lifted).swap is None

        t_pv = _best_of(_per_vertex_sweep, reps=2)
        t_scan = _best_of(lambda: certify_at_rest(g, lifted, "sum"), reps=2)
        assert certify_at_rest(g, lifted, "sum")
        entry["verify_sweep"].append(
            {
                "n": n,
                "m": g.m,
                "per_vertex_sec": round(t_pv, 5),
                "scan_sec": round(t_scan, 5),
                "speedup": round(t_pv / t_scan, 2),
            }
        )

    if smoke:
        # Smoke grids must not clobber the committed full-grid trajectory.
        out = results_dir / "checker_scaling_smoke.json"
        out.write_text(json.dumps({"history": [entry]}, indent=2))
    else:
        out = results_dir / "checker_scaling.json"
        history = [
            e for e in _load_history(out) if e.get("label") != _ENTRY_LABEL
        ]
        history.append(entry)
        out.write_text(json.dumps({"history": history}, indent=2))
    print(json.dumps(entry, indent=2))

    if not smoke:
        # ISSUE-1 bars, still enforced: the engine must not regress.
        n128 = next(r for r in entry["audit"] if r["n"] == 128)
        assert n128["speedup"] >= 3.0, n128
        n64 = next(r for r in entry["dynamics"] if r["n"] == 64)
        assert n64["speedup"] >= 2.0, n64
        # ISSUE-2 bars: batched kernel >= 1.5x over per-edge repair at the
        # n = 256 census audit, and the n = 512 full audit under 5 s.
        n256 = next(r for r in entry["audit"] if r["n"] == 256)
        assert n256["batched_over_repair"] >= 1.5, n256
        n512 = next(r for r in entry["audit"] if r["n"] == 512)
        assert n512["batched_sec"] < 5.0, n512
        # ISSUE-5 bars: the batched best-response engine >= 3x over the
        # incremental arm on the dense census family at n = 128, and the
        # certify_at_rest verification sweep >= 4x over n best responses.
        d128 = next(
            r
            for r in entry["dynamics_batched"]
            if r["n"] == 128 and r["family"] == "dense"
        )
        assert d128["speedup"] >= 3.0, d128
        v128 = next(r for r in entry["verify_sweep"] if r["n"] == 128)
        assert v128["speedup"] >= 4.0, v128
        # The >= 2.5x multicore bar only binds where 4 real cores exist —
        # this is a physical precondition, not an escape hatch (the entry
        # records cpu_count so a 1-CPU container's ~0.9x fleet scaling rows
        # are readable as environment, not regression).
        if (os.cpu_count() or 1) >= 4:
            w4 = next(r for r in entry["workers"] if r["workers"] == 4)
            assert w4["scaling"] >= 2.5, w4


def test_generate_equilibrium_cost_tables(benchmark, results_dir):
    tables = benchmark.pedantic(
        run_experiment, args=("equilibrium-cost", "quick"), rounds=1, iterations=1
    )
    emit(tables, results_dir, "equilibrium-cost")
