"""Experiment ``equilibrium-cost``: polynomial-time equilibrium checking.

The paper's model-level selling point — "equilibrium can be checked in
polynomial time, unlike previous models" — made quantitative, plus the
DESIGN.md §4 ablation matrix:

* patched-BFS vs copy-BFS swap evaluation;
* scipy csgraph vs pure-NumPy APSP engines;
* **incremental engine vs fresh APSP** — removal matrices by affected-row
  BFS repair against one cached base matrix (DESIGN.md §2) vs the seed path
  that rebuilds the graph and reruns scipy per edge;
* **dynamics engine modes** — dirty-set incremental dynamics vs the seed
  oracle loop, run to convergence.

``test_scaling_report`` times the engine arms at n ∈ {48, 128, 256} (env
``REPRO_BENCH_SMOKE=1`` restricts to n = 48 for CI smoke runs) and writes
``results/checker_scaling.json`` so successive PRs accumulate a perf
trajectory.
"""

import json
import os
import time

import numpy as np

from repro.bench import run_experiment
from repro.core import (
    DistanceEngine,
    Swap,
    SwapDynamics,
    is_sum_equilibrium,
    removal_distance_matrix,
    swap_cost_after,
)
from repro.graphs import distance_matrix, random_connected_gnm, random_tree

from conftest import emit

G_SMALL = random_connected_gnm(48, 96, seed=21)
G_LARGE = random_connected_gnm(128, 256, seed=22)


def test_full_audit_kernel_n48(benchmark):
    benchmark(is_sum_equilibrium, G_SMALL)


def test_full_audit_kernel_n128(benchmark):
    benchmark(is_sum_equilibrium, G_LARGE)


def _eval_many(mode: str) -> float:
    total = 0.0
    g = G_SMALL
    for v in range(0, g.n, 3):
        w = int(g.neighbors(v)[0])
        w2 = (v + g.n // 2) % g.n
        if w2 in (v, w):
            continue
        total += swap_cost_after(g, Swap(v, w, w2), "sum", mode)
    return total


def test_ablation_patched_eval(benchmark):
    benchmark(_eval_many, "patched")


def test_ablation_copy_eval(benchmark):
    benchmark(_eval_many, "copy")


def test_ablation_scipy_apsp(benchmark):
    dm = benchmark(distance_matrix, G_LARGE, "scipy")
    assert dm.shape == (128, 128)


def test_ablation_numpy_apsp(benchmark):
    dm = benchmark(distance_matrix, G_LARGE, "numpy")
    assert np.array_equal(dm, distance_matrix(G_LARGE, "scipy"))


def _removal_rows(mode: str) -> None:
    engine = DistanceEngine(G_SMALL) if mode == "repair" else None
    for edge in list(G_SMALL.iter_edges())[:32]:
        if engine is not None:
            engine.removal_matrix(*edge)
        else:
            removal_distance_matrix(G_SMALL, edge, mode="rebuild")


def test_ablation_engine_removal_rows(benchmark):
    benchmark(_removal_rows, "repair")


def test_ablation_rebuild_removal_rows(benchmark):
    benchmark(_removal_rows, "rebuild")


# ---------------------------------------------------------------------------
# Engine-vs-seed scaling report (JSON perf trajectory for future PRs)
# ---------------------------------------------------------------------------

def _best_of(fn, reps: int = 3) -> float:
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_scaling_report(results_dir):
    smoke = os.environ.get("REPRO_BENCH_SMOKE") == "1"
    sizes = [48] if smoke else [48, 128, 256]
    report: dict = {"audit": [], "dynamics": []}

    for n in sizes:
        # Audit a *census graph* — a dynamics equilibrium — so the checker
        # scans every edge instead of short-circuiting at a violation.
        seed_graph = random_connected_gnm(n, 2 * n, seed=22)
        res = SwapDynamics(objective="sum", seed=3).run(seed_graph)
        assert res.converged
        g = res.graph
        reps = 1 if n >= 256 else 2  # identical reps per arm: an unbiased ratio
        t_seed = _best_of(lambda: is_sum_equilibrium(g, mode="rebuild"), reps)
        t_engine = _best_of(lambda: is_sum_equilibrium(g, mode="repair"), reps)
        assert is_sum_equilibrium(g, mode="repair") and is_sum_equilibrium(
            g, mode="rebuild"
        )
        report["audit"].append(
            {
                "n": n,
                "m": g.m,
                "seed_rebuild_sec": round(t_seed, 5),
                "engine_repair_sec": round(t_engine, 5),
                "speedup": round(t_seed / t_engine, 2),
            }
        )

    for n in [32] if smoke else [32, 64]:
        tree = random_tree(n, seed=5)
        t_oracle = _best_of(
            lambda: SwapDynamics(
                objective="sum", seed=3, engine_mode="oracle"
            ).run(tree)
        )
        t_engine = _best_of(
            lambda: SwapDynamics(objective="sum", seed=3).run(tree)
        )
        res = SwapDynamics(objective="sum", seed=3).run(tree)
        assert res.converged and is_sum_equilibrium(res.graph)
        report["dynamics"].append(
            {
                "n": n,
                "family": "tree",
                "oracle_sec": round(t_oracle, 5),
                "incremental_sec": round(t_engine, 5),
                "speedup": round(t_oracle / t_engine, 2),
                "steps": res.steps,
            }
        )

    out = results_dir / "checker_scaling.json"
    out.write_text(json.dumps(report, indent=2))
    print(json.dumps(report, indent=2))
    # The ISSUE-1 acceptance bars, asserted where the full grid runs.
    if not smoke:
        n128 = next(r for r in report["audit"] if r["n"] == 128)
        assert n128["speedup"] >= 3.0, n128
        n64 = next(r for r in report["dynamics"] if r["n"] == 64)
        assert n64["speedup"] >= 2.0, n64


def test_generate_equilibrium_cost_tables(benchmark, results_dir):
    tables = benchmark.pedantic(
        run_experiment, args=("equilibrium-cost", "quick"), rounds=1, iterations=1
    )
    emit(tables, results_dir, "equilibrium-cost")
