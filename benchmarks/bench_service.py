"""Load generator for the equilibrium-audit service (DESIGN.md §10).

Starts a real :class:`repro.service.AuditServer` on an ephemeral port and
drives it over HTTP with a deterministic query mix (swap audits, full
equilibrium checks, best responses, criticality) across a grid of random
connected graphs — twice.  The cold pass measures compute-bound
queries/sec; the warm pass re-issues the identical queries and measures
cache-hit throughput, asserting every warm answer is bit-equal to its cold
one.  One ``service`` arm entry is appended to the
``results/checker_scaling.json`` trajectory (label ``pr7-audit-service``).

``REPRO_BENCH_SMOKE=1`` shrinks the grid and writes to the smoke file, as
elsewhere in the bench suite.
"""

import json
import os
import tempfile
import threading
import time
import urllib.request

from repro.graphs import random_connected_gnm
from repro.graphs.graph6 import to_graph6
from repro.service import build_server

_ENTRY_LABEL = "pr7-audit-service"


def _post(base: str, path: str, body: dict) -> dict:
    req = urllib.request.Request(
        base + path, data=json.dumps(body).encode(), method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=120) as response:
        return json.loads(response.read())


def _get(base: str, path: str) -> dict:
    with urllib.request.urlopen(base + path, timeout=30) as response:
        return json.loads(response.read())


def _workload(n: int, graphs: int) -> list[dict]:
    """The deterministic query mix for one grid size (batch per graph)."""
    requests = []
    for i in range(graphs):
        g6 = to_graph6(random_connected_gnm(n, 2 * n, seed=100 + i))
        requests.append(
            {
                "graph6": g6,
                "model": "sum",
                "timeout_s": 120.0,
                "queries": [
                    {"query": "find_swap_violation"},
                    {"query": "is_equilibrium"},
                    {"query": "best_swap", "vertex": i % n},
                    {"query": "criticality"},
                ],
            }
        )
    return requests


def _drive(base: str, requests: list[dict]) -> tuple[float, list]:
    start = time.perf_counter()
    responses = [_post(base, "/batch", r) for r in requests]
    elapsed = time.perf_counter() - start
    assert all(r["ok"] for r in responses)
    return elapsed, [r["results"] for r in responses]


def _load_history(path) -> list:
    if not path.exists():
        return []
    data = json.loads(path.read_text())
    if isinstance(data, dict) and "history" in data:
        return data["history"]
    return []


def test_service_report(results_dir):
    smoke = os.environ.get("REPRO_BENCH_SMOKE") == "1"
    sizes = [(16, 4)] if smoke else [(24, 6), (48, 6), (96, 4)]
    entry: dict = {
        "label": _ENTRY_LABEL,
        "cpu_count": os.cpu_count(),
        "service": [],
    }

    server = build_server(
        port=0,
        cache_dir=tempfile.mkdtemp(prefix="audit-cache-bench-"),
        workers=2,
        capacity=1,
        queue_limit=8,
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address
    base = f"http://{host}:{port}"
    try:
        for n, graphs in sizes:
            requests = _workload(n, graphs)
            queries = sum(len(r["queries"]) for r in requests)
            before = _get(base, "/stats")["cache"]
            t_cold, cold = _drive(base, requests)
            t_warm, warm = _drive(base, requests)
            after = _get(base, "/stats")["cache"]
            # Warm answers must be bit-equal to cold ones, and cached.
            for cold_batch, warm_batch in zip(cold, warm):
                for c, w in zip(cold_batch, warm_batch):
                    assert w["result"] == c["result"]
                    assert w["cached"], w
            hits = after["hits"] - before["hits"]
            lookups = (
                after["hits"] + after["misses"]
                - before["hits"] - before["misses"]
            )
            entry["service"].append(
                {
                    "n": n,
                    "graphs": graphs,
                    "queries": 2 * queries,
                    "queries_per_sec": round(
                        2 * queries / (t_cold + t_warm), 1
                    ),
                    "cold_qps": round(queries / t_cold, 1),
                    "warm_qps": round(queries / t_warm, 1),
                    "cache_hit_rate": round(hits / lookups, 4),
                }
            )
        health = _get(base, "/healthz")
        assert health["ok"] and health["mode"] == "pool"
    finally:
        server.close()
        thread.join(timeout=10)

    name = "checker_scaling_smoke.json" if smoke else "checker_scaling.json"
    out = results_dir / name
    history = [
        e for e in _load_history(out) if e.get("label") != _ENTRY_LABEL
    ]
    history.append(entry)
    out.write_text(json.dumps({"history": history}, indent=2))
    print(json.dumps(entry, indent=2))

    for row in entry["service"]:
        # Every cold answer is re-served from cache on the warm pass, and
        # serving a hit must be far cheaper than computing it.
        assert row["cache_hit_rate"] >= 0.5, row
        assert row["warm_qps"] > row["cold_qps"], row
