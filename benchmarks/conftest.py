"""Shared helpers for the benchmark suite.

Each ``bench_*`` module owns one experiment id from DESIGN.md §3.  The
pattern is uniform: pytest-benchmark times the experiment's *kernel* (the
computation the paper's claim hinges on), and the full table is generated
once, printed, asserted, and written to ``results/`` as CSV — so a benchmark
run regenerates every figure/table of the reproduction.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def emit(tables, results_dir: Path, exp_id: str) -> None:
    """Print tables and persist them as CSVs under results/."""
    for i, table in enumerate(tables):
        print()
        print(table.to_ascii())
        slug = f"{exp_id}-{i}"
        table.write_csv(results_dir / f"{slug}.csv")
