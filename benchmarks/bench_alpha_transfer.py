"""Experiment ``alpha-transfer``: swap bounds hold for every α at once.

Kernel benchmarked: one greedy α-dynamics run to equilibrium plus the
owner-restricted swap audit (the polynomial-time stability check the basic
game makes possible).
"""

from repro.bench import run_experiment
from repro.games import (
    FabrikantGame,
    greedy_dynamics,
    owner_swap_stable,
    random_profile,
)

from conftest import emit


def alpha_point(alpha: float, seed: int) -> bool:
    game = FabrikantGame(10, alpha)
    res = greedy_dynamics(game, random_profile(10, 2, seed=seed), seed=seed)
    return res.converged and owner_swap_stable(game, res.profile)


def test_alpha_dynamics_kernel(benchmark):
    ok = benchmark(alpha_point, 2.0, 13)
    assert ok


def test_generate_alpha_transfer_tables(benchmark, results_dir):
    tables = benchmark.pedantic(
        run_experiment, args=("alpha-transfer", "quick"), rounds=1, iterations=1
    )
    (table,) = tables
    assert all(table.column("all within bound"))
    # Every converged run passed the owner-swap audit.
    assert table.column("#owner-swap stable") == table.column("#converged")
    emit(tables, results_dir, "alpha-transfer")
