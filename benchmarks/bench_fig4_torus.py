"""Experiment ``fig4-torus``: Theorem 12's Θ(√n) max equilibrium.

Kernel benchmarked: the complete Figure 4 verification at k=6 (n=72) —
max-swap audit + deletion-criticality + insertion-stability, i.e. every
property the theorem claims, in one call chain.
"""

from repro.bench import run_experiment
from repro.constructions import rotated_torus
from repro.core import (
    is_deletion_critical,
    is_insertion_stable,
    is_max_equilibrium,
)

from conftest import emit


def full_audit(g) -> bool:
    return (
        is_max_equilibrium(g)
        and is_deletion_critical(g)
        and is_insertion_stable(g)
    )


def test_torus_full_audit_kernel(benchmark):
    g = rotated_torus(6)  # n = 72
    result = benchmark(full_audit, g)
    assert result is True


def test_torus_construction_kernel(benchmark):
    g = benchmark(rotated_torus, 16)  # n = 512
    assert g.n == 512


def test_generate_fig4_tables(benchmark, results_dir):
    tables = benchmark.pedantic(
        run_experiment, args=("fig4-torus", "quick"), rounds=1, iterations=1
    )
    main = tables[0]
    assert all(main.column("max equilibrium"))
    # diameter == k == sqrt(n/2): the Θ(√n) lower bound, exactly.
    assert main.column("local diam (all vertices)") == main.column("k")
    emit(tables, results_dir, "fig4-torus")
