"""Experiment ``thm1-sum-trees``: Theorem 1 (trees ⇒ stars).

Kernel benchmarked: one full sum-swap dynamics run on a 24-vertex random
tree — the "Theorem 1 in motion" computation (trees collapse to stars).
"""

from repro.bench import run_experiment
from repro.core import SwapDynamics
from repro.graphs import random_tree
from repro.theory import is_star

from conftest import emit


def collapse(seed: int):
    dyn = SwapDynamics(objective="sum", seed=seed)
    return dyn.run(random_tree(24, seed=seed))


def test_tree_collapse_kernel(benchmark):
    result = benchmark(collapse, 5)
    assert result.converged
    assert is_star(result.graph)


def test_generate_thm1_tables(benchmark, results_dir):
    tables = benchmark.pedantic(
        run_experiment, args=("thm1-sum-trees", "quick"), rounds=1, iterations=1
    )
    exhaustive = tables[0]
    assert all(exhaustive.column("all consistent"))
    # #equilibria == #stars == n per the theorem.
    assert exhaustive.column("#sum equilibria") == exhaustive.column("#stars")
    dynamics = tables[1]
    assert dynamics.column("#converged") == dynamics.column("replicates")
    assert dynamics.column("#ended as star") == dynamics.column("replicates")
    emit(tables, results_dir, "thm1-sum-trees")
