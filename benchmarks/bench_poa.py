"""Experiment ``poa-diameter``: price of anarchy ≍ equilibrium diameter.

Kernel benchmarked: the PoA computation for the k=8 torus (usage cost,
same-budget baseline, diameter) — the quantity the paper's headline relation
is about.
"""

from repro.bench import run_experiment
from repro.constructions import rotated_torus
from repro.games.social import poa_diameter_ratio

from conftest import emit


def test_poa_kernel(benchmark):
    g = rotated_torus(8)  # n = 128
    poa, d, ratio = benchmark(poa_diameter_ratio, g)
    assert d == 8
    assert poa >= 1.0


def test_generate_poa_tables(benchmark, results_dir):
    tables = benchmark.pedantic(
        run_experiment, args=("poa-diameter", "quick"), rounds=1, iterations=1
    )
    (table,) = tables
    ratios = [float(x) for x in table.column("PoA / diameter")]
    assert max(ratios) / min(ratios) < 10  # the constant-factor band
    emit(tables, results_dir, "poa-diameter")
