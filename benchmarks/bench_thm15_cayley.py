"""Experiment ``thm15-cayley``: distance-uniform Abelian Cayley graphs.

Kernels benchmarked: iterated-sumset growth (the Plünnecke engine) on a
1024-element group, and the uniformity measurement of a 1024-vertex
circulant.
"""

from repro.analysis import distance_uniformity, iterated_sumset_sizes
from repro.bench import run_experiment
from repro.constructions import AbelianGroup, circulant_graph

from conftest import emit


def test_sumset_growth_kernel(benchmark):
    group = AbelianGroup((32, 32))
    conn = [(1, 0), (31, 0), (0, 1), (0, 31), (1, 1), (31, 31)]
    sizes = benchmark(iterated_sumset_sizes, group, conn, 24)
    assert int(sizes[-1]) == group.order  # the walk eventually fills Z_32^2


def test_uniformity_measurement_kernel(benchmark):
    g = circulant_graph(1024, [1, 31, 97])
    report = benchmark(distance_uniformity, g)
    assert 0.0 <= report.epsilon <= 1.0


def test_generate_thm15_tables(benchmark, results_dir):
    tables = benchmark.pedantic(
        run_experiment, args=("thm15-cayley", "quick"), rounds=1, iterations=1
    )
    (table,) = tables
    assert all(x in (True, "-") for x in table.column("within bound"))
    assert all(x in (True, "-") for x in table.column("plunnecke ok"))
    emit(tables, results_dir, "thm15-cayley")
