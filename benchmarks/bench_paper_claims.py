"""Experiment ``paper-claims``: the claim-by-claim verification of the paper.

Kernel benchmarked: the full registry run — every numbered claim's finite
check, end to end.  This is the repository's "verify the whole paper in one
call" path.
"""

from repro.bench import run_experiment
from repro.paper import verify_all

from conftest import emit


def test_verify_all_claims_kernel(benchmark):
    results = benchmark.pedantic(verify_all, rounds=1, iterations=1)
    assert all(r.passed for r in results)


def test_generate_paper_claims_table(benchmark, results_dir):
    tables = benchmark.pedantic(
        run_experiment, args=("paper-claims", "quick"), rounds=1, iterations=1
    )
    (table,) = tables
    assert all(table.column("check passed"))
    statuses = set(table.column("status"))
    assert statuses == {"confirmed", "refuted-witness", "evidence"}
    emit(tables, results_dir, "paper-claims")
