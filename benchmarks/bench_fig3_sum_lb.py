"""Experiment ``fig3-diameter3``: Theorem 5's lower bound (and its repair).

Kernels benchmarked: the sum-equilibrium audit of the paper's 13-vertex
Figure 3 graph (which *finds* the improving swap — the reproduction's
headline negative result) and of the repaired 10-vertex witness (which
certifies equilibrium).
"""

from repro.bench import run_experiment
from repro.constructions import figure3_graph, repaired_diameter3_witness
from repro.core import find_sum_violation, is_sum_equilibrium

from conftest import emit


def test_figure3_violation_search_kernel(benchmark):
    g = figure3_graph()
    violation = benchmark(find_sum_violation, g)
    assert violation is not None  # the paper's witness fails

def test_repaired_witness_audit_kernel(benchmark):
    g = repaired_diameter3_witness()
    result = benchmark(is_sum_equilibrium, g)
    assert result is True  # Theorem 5's statement survives


def test_generate_fig3_tables(benchmark, results_dir):
    tables = benchmark.pedantic(
        run_experiment, args=("fig3-diameter3", "quick"), rounds=1, iterations=1
    )
    main = tables[0]
    eq_col = dict(zip([r[0] for r in main.rows], main.column("sum equilibrium")))
    assert eq_col["Figure 3 (paper, literal)"] is False
    assert eq_col["repaired witness (this repo)"] is True
    emit(tables, results_dir, "fig3-diameter3")
