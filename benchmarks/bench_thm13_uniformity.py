"""Experiment ``thm13-uniformity`` (+ ``conj14-counterexample``).

Kernels benchmarked: the full Theorem 13 transform on a 256-vertex
high-diameter input (APSP → interval extraction → prime selection → power
distances → uniformity certification), and the exact skew-triple count that
powers the proof's first claim.
"""

from repro.analysis import skew_triple_fraction, theorem13_transform
from repro.bench import run_experiment
from repro.constructions import rotated_torus
from repro.graphs import cycle_graph

from conftest import emit


def test_transform_kernel(benchmark):
    g = cycle_graph(256)
    res = benchmark(theorem13_transform, g, 0.125, 0.5)
    assert res.meets_diameter_premise


def test_skew_count_kernel(benchmark):
    g = rotated_torus(8)  # n = 128
    frac = benchmark(skew_triple_fraction, g, 1.0)
    assert 0.0 <= frac < 4.0  # the 4/p bound with p=1


def test_generate_thm13_tables(benchmark, results_dir):
    tables = benchmark.pedantic(
        run_experiment, args=("thm13-uniformity", "quick"), rounds=1, iterations=1
    )
    pipeline = tables[0]
    # Power arithmetic: every uniform-branch modulus within the paper's
    # O(lg^2 n) guard.
    assert all(pipeline.column("x<=4lg^2 n"))
    spider = tables[2]
    # The separation: pairwise concentration high, per-vertex uniformity low.
    for row in spider.rows:
        assert float(row[5]) > 0.9  # per-vertex epsilon stays terrible
    emit(tables, results_dir, "thm13-uniformity")
