"""Experiment ``small-census``: exhaustive equilibrium counts at small n.

Kernel benchmarked: the full n=5 sum census (728 connected graphs, 360
diameter-≥3 audits) — the enumeration machinery behind the "smallest
Theorem 5 witness has n ≥ 7" result.
"""

from repro.bench import run_experiment
from repro.core.exhaustive import exhaustive_equilibrium_census

from conftest import emit


def test_census_n5_kernel(benchmark):
    census = benchmark.pedantic(
        exhaustive_equilibrium_census, args=(5, "sum"), rounds=1, iterations=1
    )
    assert census.connected_graphs == 728
    assert census.max_equilibrium_diameter() == 2


def test_generate_small_census_tables(benchmark, results_dir):
    tables = benchmark.pedantic(
        run_experiment, args=("small-census", "quick"), rounds=1, iterations=1
    )
    sum_table = tables[0]
    for n, d, eq in zip(
        sum_table.column("n"),
        sum_table.column("diameter"),
        sum_table.column("sum equilibria"),
    ):
        if d >= 3:
            assert eq == 0  # no small diameter-3 sum equilibria exist
        else:
            pass  # diameter <= 2: all are equilibria (asserted in tests/)
    emit(tables, results_dir, "small-census")
