"""Experiment ``thm9-diameter-census``: equilibrium diameters vs the bound.

Kernel benchmarked: one census point (dynamics from a sparse random seed to
a verified equilibrium at n=24).  Also regenerates the Lemma 10 /
Corollary 11 audit table on census endpoints.
"""

from repro.bench import run_experiment
from repro.core import SwapDynamics, is_sum_equilibrium
from repro.core.census import seed_graph

from conftest import emit


def census_point(seed: int):
    g0 = seed_graph("sparse", 24, seed)
    res = SwapDynamics(objective="sum", seed=seed).run(g0)
    assert res.converged and is_sum_equilibrium(res.graph)
    return res


def test_census_point_kernel(benchmark):
    result = benchmark(census_point, 11)
    assert result.graph.m == census_point(11).graph.m


def test_generate_thm9_tables(benchmark, results_dir):
    tables = benchmark.pedantic(
        run_experiment, args=("thm9-diameter-census", "quick"), rounds=1, iterations=1
    )
    census = tables[0]
    for max_d, bound in zip(
        census.column("max eq diameter"), census.column("2^(2*sqrt(lg n))")
    ):
        assert float(max_d) <= float(bound)
    audit = tables[1]
    assert all(
        x != "FAIL" for x in audit.column("lemma10 anchor-0")
    )
    assert all(audit.column("corollary11 (<= 5 n lg n)"))
    emit(tables, results_dir, "thm9-diameter-census")
