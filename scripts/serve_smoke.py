#!/usr/bin/env python
"""CI smoke of the audit service under injected faults (DESIGN.md §10).

Starts ``repro.cli serve`` as a real subprocess on an ephemeral port with
two faults armed through the environment channel:

* ``kill:chunk=0`` — a pool worker is SIGKILLed at its first chunk (the
  service must recover: runtime retry or in-request serial fallback);
* ``torn-write:path=<cache dir>`` — one cache entry is torn in half on
  its final path (the checksum must quarantine it and the answer must be
  recomputed, never served corrupt).

The load generator then drives a deterministic query mix twice and
asserts: every response is well-formed, warm answers are bit-equal to
cold ones and to direct library computation, the cache hit rate is
nonzero, the tear was quarantined, and SIGINT shuts the service down
cleanly (exit code 0, port released).

Run from the repository root::

    python scripts/serve_smoke.py
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.core import find_swap_violation  # noqa: E402
from repro.graphs import random_connected_gnm  # noqa: E402
from repro.graphs.graph6 import to_graph6  # noqa: E402
from repro.service.handlers import _violation_payload  # noqa: E402

#: The server arms SAFE_PID with its own pid before the pools fork, so a
#: fault matching an owner-side site degrades to a raise instead of
#: killing the service itself.
_BOOT = (
    "import os; "
    "os.environ['REPRO_FAULTS_SAFE_PID'] = str(os.getpid()); "
    "from repro.cli import main; "
    "raise SystemExit(main(["
    "'serve', '--port', '0', '--cache-dir', {cache!r}, '--workers', '2'"
    "]))"
)


def _post(base, path, body):
    req = urllib.request.Request(
        base + path, data=json.dumps(body).encode(), method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=120) as response:
        assert response.status == 200, response.status
        return json.loads(response.read())


def _get(base, path):
    with urllib.request.urlopen(base + path, timeout=30) as response:
        return json.loads(response.read())


def main() -> int:
    cache_dir = tempfile.mkdtemp(prefix="audit-smoke-cache-")
    token_dir = tempfile.mkdtemp(prefix="audit-smoke-tokens-")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    env["PYTHONUNBUFFERED"] = "1"
    env["REPRO_FAULTS"] = (
        f"kill:chunk=0;torn-write:path={os.path.basename(cache_dir)}"
    )
    env["REPRO_FAULTS_DIR"] = token_dir

    proc = subprocess.Popen(
        [sys.executable, "-c", _BOOT.format(cache=cache_dir)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    try:
        banner = proc.stdout.readline().strip()
        assert "listening on" in banner, banner
        base = banner.rsplit(" ", 1)[-1]
        print(f"[smoke] {banner}")

        graphs = [random_connected_gnm(24, 48, seed=s) for s in (1, 2, 3)]
        requests = [
            {
                "graph6": to_graph6(g),
                "model": "sum",
                "timeout_s": 120.0,
                "queries": [
                    {"query": "find_swap_violation"},
                    {"query": "is_equilibrium"},
                    {"query": "criticality"},
                ],
            }
            for g in graphs
        ]
        cold = [_post(base, "/batch", r) for r in requests]
        warm = [_post(base, "/batch", r) for r in requests]

        # No corrupted responses: warm == cold == direct library compute.
        for graph, c, w in zip(graphs, cold, warm):
            assert c["ok"] and w["ok"]
            for cr, wr in zip(c["results"], w["results"]):
                assert wr["result"] == cr["result"], (cr, wr)
            expected = _violation_payload(find_swap_violation(graph, "sum"))
            assert c["results"][0]["result"] == expected, (c, expected)

        stats = _get(base, "/stats")
        cache = stats["cache"]
        print(f"[smoke] stats: {json.dumps(stats)}")
        assert cache["hits"] > 0, stats  # nonzero cache hit rate
        assert cache["hit_rate"] > 0, stats
        # The torn write fired, was detected, and was recomputed around.
        assert stats["store_failures"] >= 1, stats
        assert cache["quarantined"] >= 1, stats
        assert (Path(cache_dir) / "quarantine").is_dir()
        # Both faults actually consumed their budgets (token files exist).
        assert len(os.listdir(token_dir)) == 2, os.listdir(token_dir)
        health = _get(base, "/healthz")
        assert health["ok"], health

        proc.send_signal(signal.SIGINT)
        code = proc.wait(timeout=30)
        assert code == 0, f"unclean shutdown: exit {code}"
        tail = proc.stdout.read()
        assert "Traceback" not in tail, tail
        print("[smoke] clean shutdown; service smoke passed")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


if __name__ == "__main__":
    start = time.perf_counter()
    code = main()
    print(f"[smoke] total {time.perf_counter() - start:.1f}s")
    sys.exit(code)
