#!/usr/bin/env python
"""Trajectory census fleet: dynamics behaviour over a schedule/model grid.

Runs :func:`repro.core.trajcensus.run_trajectory_census` — swap dynamics
over schedules × responders × cost-model specs × initial families × n ×
replicates — sharded across the persistent shared-memory pool and streamed
to JSONL in record order (tail the file to watch the fleet; rerun with the
same flags to reproduce it bit-for-bit at any worker count; rerun with
``--resume`` to pick an interrupted fleet back up from the streamed
prefix).

The first JSONL line is a run-config header; ``--resume`` validates it
(and every resumed record) against the current flags and refuses to mix
records from different grids, with atomic prefix rewrites, so a
fat-fingered overnight restart fails loudly instead of silently
corrupting the dataset (shared machinery: :mod:`repro.io.jsonl_store`).

Examples
--------
Schedule-sensitivity sweep of the base sum game::

    PYTHONPATH=src python scripts/trajectory_fleet.py \
        --n 64 128 --schedules round_robin random greedy \
        --responders best first --replicates 8 --workers 4 \
        --out results/trajectory_fleet.jsonl

Cycling hunt in the interest variant (no equilibrium audit)::

    PYTHONPATH=src python scripts/trajectory_fleet.py \
        --n 16 32 --objectives "interest-sum:k=3,seed=0" \
        --families dense --replicates 32 --max-steps 2000 --no-verify
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.core.costmodel import cost_model_spec
from repro.core.trajcensus import run_trajectory_census
from repro.io.jsonl_store import FleetFailure
from repro.parallel import default_workers


def main(argv: "list[str] | None" = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--n", type=int, nargs="+", default=[32, 64],
                    help="graph sizes (default: 32 64)")
    ap.add_argument("--families", nargs="+",
                    default=["tree", "sparse", "dense"],
                    choices=["tree", "sparse", "dense"])
    ap.add_argument("--objectives", type=cost_model_spec, nargs="+",
                    default=["sum"], metavar="SPEC",
                    help="cost-model specs: sum | max | "
                         "interest-{sum,max}:k=K[,seed=S] | "
                         "budget-{sum,max}:cap=C (default: sum)")
    ap.add_argument("--schedules", nargs="+", default=["round_robin"],
                    choices=["round_robin", "random", "greedy"])
    ap.add_argument("--responders", nargs="+", default=["best"],
                    choices=["best", "first"])
    ap.add_argument("--replicates", type=int, default=4)
    ap.add_argument("--root-seed", type=int, default=0)
    ap.add_argument("--max-steps", type=int, default=20_000)
    ap.add_argument("--workers", type=int, default=None,
                    help="trajectory shards (default: cores - 1)")
    ap.add_argument("--audit-mode", default="batched",
                    choices=["batched", "repair", "rebuild"],
                    help="equilibrium-audit kernel for endpoint checks")
    ap.add_argument("--engine-mode", default="batched",
                    choices=["batched", "incremental", "oracle"],
                    help="dynamics engine (trajectories are bit-identical "
                         "across modes; batched is the fast path)")
    ap.add_argument("--no-verify", action="store_true",
                    help="skip the exact equilibrium audit of endpoints")
    ap.add_argument("--resume", action="store_true",
                    help="continue an interrupted fleet from --out's prefix "
                         "(same arguments required; validated against the "
                         "file's config header)")
    ap.add_argument("--retry-failed", action="store_true",
                    help="with --resume: re-run the quarantined slots of "
                         "the streamed prefix before continuing")
    ap.add_argument("--task-timeout", type=float, default=None,
                    metavar="SECONDS",
                    help="per-chunk wall-clock budget; a chunk exceeding it "
                         "is presumed hung, its workers are killed, and it "
                         "is retried (default: no timeout)")
    ap.add_argument("--retries", type=int, default=2,
                    help="per-task failure budget beyond the first attempt "
                         "(default: 2)")
    ap.add_argument("--fail-fast", action="store_true",
                    help="abort the fleet on the first permanently failed "
                         "task instead of quarantining it in the stream")
    ap.add_argument("--out", type=Path,
                    default=Path("results/trajectory_fleet.jsonl"))
    args = ap.parse_args(argv)

    workers = default_workers() if args.workers is None else args.workers
    args.out.parent.mkdir(parents=True, exist_ok=True)
    total = (
        len(args.n) * len(args.families) * len(args.objectives)
        * len(args.schedules) * len(args.responders) * args.replicates
    )
    print(
        f"trajectory fleet: {total} trajectories "
        f"(n={args.n}, {len(args.families)} families, "
        f"{len(args.objectives)} objectives, {len(args.schedules)} "
        f"schedules, {len(args.responders)} responders, "
        f"{args.replicates} replicates) on {workers} workers "
        f"-> {args.out}",
        flush=True,
    )
    start = time.perf_counter()
    records = run_trajectory_census(
        args.n,
        families=tuple(args.families),
        objectives=tuple(args.objectives),
        schedules=tuple(args.schedules),
        responders=tuple(args.responders),
        replicates=args.replicates,
        root_seed=args.root_seed,
        max_steps=args.max_steps,
        verify=not args.no_verify,
        workers=workers,
        audit_mode=args.audit_mode,
        engine_mode=args.engine_mode,
        jsonl_path=args.out,
        resume=args.resume,
        timeout=args.task_timeout,
        retries=args.retries,
        on_error="raise" if args.fail_fast else "record",
        retry_failed=args.retry_failed,
    )
    elapsed = time.perf_counter() - start

    failures = [r for r in records if isinstance(r, FleetFailure)]
    results = [r for r in records if not isinstance(r, FleetFailure)]
    converged = [r for r in results if r.converged]
    cycles = [r for r in results if r.cycle_detected]
    exhausted = [r for r in results if r.exhausted]
    verified = sum(1 for r in converged if r.verified_equilibrium)
    distinct = len({r.final_fingerprint for r in converged})
    print(
        f"done in {elapsed:.1f}s: {len(converged)}/{len(results)} converged "
        f"({verified} verified equilibria, {distinct} distinct terminal "
        f"graphs), {len(cycles)} cycles, {len(exhausted)} exhausted"
    )
    if failures:
        print(f"quarantine: {len(failures)} task(s) failed permanently "
              "(re-run with --resume --retry-failed to retry them)")
        for f in failures:
            print(f"  {f.coords} after {f.attempts} attempt(s): {f.error}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
