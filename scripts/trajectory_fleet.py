#!/usr/bin/env python
"""Deprecated shim: the trajectory fleet now lives in the experiment CLI.

Every flag this script ever took is accepted unchanged by::

    PYTHONPATH=src python -m repro.cli experiment run trajectory [flags]

(`--resume` / `--retry-failed` included; ``repro experiment status
trajectory`` reports progress and quarantine without recomputing).  This
wrapper forwards its arguments verbatim and will be removed.
"""

from __future__ import annotations

import sys

from repro.cli import main as cli_main


def main(argv: "list[str] | None" = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    print(
        "trajectory_fleet.py is deprecated; use: "
        "python -m repro.cli experiment run trajectory",
        file=sys.stderr,
    )
    return cli_main(["experiment", "run", "trajectory", *argv])


if __name__ == "__main__":
    sys.exit(main())
