"""Annealing search for diameter-3 sum equilibria at n = 7, 8, 9.

Tightens the minimal-witness bracket between the exhaustive n<=6/7 censuses
and the known n=10 witness.  Writes findings to results/witness_search.txt.
"""
import math, sys, time
import numpy as np
from repro.graphs import CSRGraph, diameter_or_inf, random_connected_gnm, is_connected
from repro.core import sum_equilibrium_gap, find_sum_violation
from repro.rng import make_rng

def search(n: int, restarts: int, iters: int, seed: int):
    rng = make_rng(seed)

    def score(g):
        d = diameter_or_inf(g)
        if d != 3:
            return 1e6 + abs(d - 3)
        return sum_equilibrium_gap(g)

    def neighbor(g):
        edges = set(g.edge_set())
        for _ in range(60):
            u, v = map(int, rng.integers(0, n, 2))
            if u == v:
                continue
            e = (min(u, v), max(u, v))
            if e in edges:
                if len(edges) <= n - 1:
                    continue
                g2 = CSRGraph(n, edges - {e})
                if not is_connected(g2):
                    continue
                return g2
            return CSRGraph(n, edges | {e})
        return g

    best_gap = math.inf
    for r in range(restarts):
        m0 = int(rng.integers(n + n // 2, min(3 * n, n * (n - 1) // 2)))
        g = random_connected_gnm(n, m0, seed=int(rng.integers(0, 2**31)))
        s = score(g)
        T = 3.0
        for it in range(iters):
            g2 = neighbor(g)
            s2 = score(g2)
            if s2 <= s or rng.random() < math.exp(-(s2 - s) / max(T, 1e-9)):
                g, s = g2, s2
            T *= 0.997
            if s == 0.0:
                assert find_sum_violation(g) is None
                return ("FOUND", sorted(g.edge_set()))
        if s < best_gap:
            best_gap = s
    return ("none", best_gap)

def main():
    out = []
    for n, restarts, iters in ((7, 40, 1500), (8, 40, 2000), (9, 30, 2500)):
        t0 = time.perf_counter()
        status, detail = search(n, restarts, iters, seed=1000 + n)
        line = f"n={n}: {status} {detail} ({time.perf_counter()-t0:.0f}s)"
        print(line, flush=True)
        out.append(line)
    with open("results/witness_search.txt", "w") as fh:
        fh.write("\n".join(out) + "\n")

if __name__ == "__main__":
    main()
