#!/usr/bin/env python
"""Seeded chaos soak: every injected disk/process fault must heal to bytes.

Runs the golden trajectory grid (the exact grid pinned by
``tests/experiments/golden/trajectory.jsonl``) through a series of
deterministic fault rounds — worker kills, mid-append ``ENOSPC``, torn
checkpoint renames, torn cache-style writes — each followed by the
documented recovery (``resume=True, retry_failed=True``, checkpoints
re-armed), and asserts after every round that the healed stream is
**byte-identical** to a clean uninterrupted run and to the committed
golden fixture.  This is the end-to-end proof of DESIGN.md §13: crashes,
full disks, and lost renames cost wall-clock, never bytes.

Faults are injected via :func:`repro.parallel.faults.injected_env` with a
shared token directory, so each spec fires exactly once across every
process of the round — the soak is deterministic, not a fuzzer.

Usage: PYTHONPATH=src python scripts/chaos_soak.py [--keep DIR] [--workers N]
Exit 0 when every round heals to identical bytes, 1 with a report otherwise.
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
from pathlib import Path

from repro.core.trajcensus import run_trajectory_census
from repro.io.jsonl_store import FleetFailure
from repro.parallel import injected_env, shutdown_shared_pools

#: The golden grid (tests/experiments/golden/trajectory.jsonl): small
#: enough for a CI lane, wide enough to cross two families, two cost
#: models, streaming, checkpoints, and the retry ladder.
_GRID = dict(
    n_values=[10],
    families=("tree", "sparse"),
    objectives=("sum", "interest-sum:k=3,seed=0"),
    schedules=("round_robin",),
    responders=("best",),
    replicates=2,
    root_seed=5,
    max_steps=2000,
)

#: Fault rounds: (name, REPRO_FAULTS spec armed for the faulted pass).
#: Specs target the stream by path fragment where they can, so the fault
#: lands in the persistence layer under test and nowhere else.
_ROUNDS = (
    ("worker-kill", "kill:task=2"),
    ("poisoned-task", "raise:task=1,times=2"),
    ("enospc-append", "enospc:path=soak.jsonl"),
    ("torn-append", "torn-write:path=soak.jsonl"),
    ("torn-ckpt-rename", "torn-rename:path=.ckpt"),
    ("enospc-ckpt", "enospc:path=.ckpt"),
)


def _run(jsonl_path: Path, ckpt_dir: "Path | None", **kwargs) -> list:
    extra = {}
    if ckpt_dir is not None:
        extra = dict(checkpoint_dir=ckpt_dir, checkpoint_every=1)
    return run_trajectory_census(
        jsonl_path=jsonl_path, **_GRID, **extra, **kwargs
    )


def _soak_round(
    name: str, spec: str, root: Path, clean: bytes, workers: int
) -> "str | None":
    """One fault round; returns an error report line or None on success."""
    stream = root / name / "soak.jsonl"
    ckpt = root / name / "ckpt"
    tokens = root / name / "tokens"
    stream.parent.mkdir(parents=True, exist_ok=True)

    with injected_env(spec, tokens):
        try:
            _run(stream, ckpt, workers=workers, retries=0)
        except Exception as exc:  # the heal pass below is the assertion
            print(f"round {name}: faulted pass died: {exc!r}", flush=True)

    # Heal: same arguments, resume the streamed prefix, re-run quarantined
    # slots (resuming their checkpoints where the fault left any).
    healed = _run(
        stream, ckpt, workers=workers, resume=True, retry_failed=True
    )
    if any(isinstance(r, FleetFailure) for r in healed):
        return f"{name}: quarantined slots survived the healing pass"
    got = stream.read_bytes()
    if got != clean:
        return (
            f"{name}: healed stream differs from the clean run "
            f"({len(got)} vs {len(clean)} bytes) — see {stream}"
        )
    leftover = sorted(p.name for p in ckpt.glob("*.ckpt")) if ckpt.exists() else []
    if leftover:
        return f"{name}: finished run left checkpoints behind: {leftover}"
    return None


def main(argv: "list[str] | None" = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--keep", type=Path, default=None, metavar="DIR",
                    help="run inside DIR and keep artifacts (default: "
                         "a temp dir, removed on success)")
    ap.add_argument("--workers", type=int, default=2,
                    help="fleet shards per pass (default: 2)")
    args = ap.parse_args(argv)

    root = args.keep if args.keep is not None else Path(tempfile.mkdtemp(
        prefix="chaos-soak-"
    ))
    root.mkdir(parents=True, exist_ok=True)

    clean_stream = root / "clean.jsonl"
    _run(clean_stream, None, workers=args.workers)
    clean = clean_stream.read_bytes()

    golden = (
        Path(__file__).resolve().parents[1]
        / "tests" / "experiments" / "golden" / "trajectory.jsonl"
    )
    failures: list[str] = []
    if golden.exists() and golden.read_bytes() != clean:
        failures.append(
            "clean run no longer matches the committed golden fixture "
            f"({golden}) — the soak would chase a moving target"
        )

    for name, spec in _ROUNDS:
        if failures:
            break
        print(f"round {name}: {spec!r} ...", flush=True)
        error = _soak_round(name, spec, root, clean, args.workers)
        if error:
            failures.append(error)
        else:
            print(f"round {name}: healed to identical bytes", flush=True)

    shutdown_shared_pools()
    if failures:
        print("chaos soak FAILED:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        print(f"  artifacts kept in {root}", file=sys.stderr)
        return 1
    print(f"chaos soak OK: {len(_ROUNDS)} fault rounds healed to "
          "byte-identical streams")
    if args.keep is None:
        shutil.rmtree(root, ignore_errors=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
