"""Shard the exhaustive n=7 sum census across workers and merge.

Answers: do diameter-3 sum equilibria exist at n=7?  (n <= 6 is known: no.)
Writes the merged counts to results/census_n7.txt.
"""
import sys, time
from repro.core.exhaustive import exhaustive_equilibrium_census, merge_censuses
from repro.parallel import parallel_map

N = 7
TOTAL = 1 << (N * (N - 1) // 2)
SHARDS = 16

def shard(i: int):
    lo = TOTAL * i // SHARDS
    hi = TOTAL * (i + 1) // SHARDS
    return exhaustive_equilibrium_census(N, "sum", mask_range=(lo, hi))

def main():
    t0 = time.perf_counter()
    parts = parallel_map(shard, list(range(SHARDS)), workers=2)
    merged = merge_censuses(parts)
    lines = [
        f"n={N} exhaustive sum census ({time.perf_counter()-t0:.0f}s)",
        f"connected graphs: {merged.connected_graphs}",
        f"audited (diam>=3): {merged.audited}",
    ]
    for d, cell in sorted(merged.by_diameter.items()):
        lines.append(f"diameter {d}: graphs={cell.graphs} equilibria={cell.equilibria} example={cell.example if cell.equilibria else None}")
    text = "\n".join(lines)
    print(text)
    with open("results/census_n7.txt", "w") as fh:
        fh.write(text + "\n")

if __name__ == "__main__":
    main()
