#!/usr/bin/env python
"""Dual-PYTHONHASHSEED determinism gate.

Runs a small census + trajectory-census smoke twice, in fresh
subprocesses pinned to ``PYTHONHASHSEED=0`` and ``PYTHONHASHSEED=1``,
and asserts the streamed JSONL outputs are byte-identical across the
two seeds.  Any hidden dependence on hash-randomised iteration order
(set/dict ordering leaking into worker sharding, record layout, or the
dynamics themselves) shows up as a byte diff here long before it shows
up as an irreproducible paper table.

The R1 lint rule bans set iteration statically; this is the dynamic
half of the same contract (DESIGN.md §11).

Usage: PYTHONPATH=src python scripts/determinism_check.py [--keep DIR]
Exit 0 when both streams match, 1 with a per-file report otherwise.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import tempfile
from pathlib import Path

#: Workload run once per hash seed.  Small enough for a CI lane
#: (seconds, not minutes) but wide enough to cross every surface the
#: hash seed could leak through: worker sharding, JSONL streaming, both
#: census kinds, and the batched audit kernel.
_WORKLOAD = """\
import sys
from repro.core.census import run_census
from repro.core.trajcensus import run_trajectory_census

out = sys.argv[1]
run_census([12, 14], replicates=2, workers=2,
           jsonl_path=out + "/census.jsonl")
run_trajectory_census(
    n_values=[10], families=("tree", "sparse"),
    objectives=("sum", "max"), schedules=("round_robin",),
    replicates=2, max_steps=2000, root_seed=5, workers=2,
    jsonl_path=out + "/trajcensus.jsonl")
"""

_STREAMS = ("census.jsonl", "trajcensus.jsonl")
_HASH_SEEDS = ("0", "1")


def _run_workload(hash_seed: str, out_dir: Path) -> None:
    env = dict(os.environ, PYTHONHASHSEED=hash_seed)
    out_dir.mkdir(parents=True, exist_ok=True)
    subprocess.run(
        [sys.executable, "-c", _WORKLOAD, str(out_dir)],
        env=env, check=True, timeout=900,
    )


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--keep", metavar="DIR", default=None,
        help="write the per-seed streams under DIR instead of a tempdir "
        "(kept for inspection)",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="repro-determinism-") as tmp:
        root = Path(args.keep) if args.keep else Path(tmp)
        for seed in _HASH_SEEDS:
            print(f"determinism-check: PYTHONHASHSEED={seed} ...", flush=True)
            _run_workload(seed, root / f"seed{seed}")

        failures = []
        for name in _STREAMS:
            blobs = [
                (root / f"seed{seed}" / name).read_bytes()
                for seed in _HASH_SEEDS
            ]
            if blobs[0] != blobs[1]:
                failures.append(name)
                print(f"determinism-check: MISMATCH {name} "
                      f"({len(blobs[0])} vs {len(blobs[1])} bytes)")
            else:
                print(f"determinism-check: ok {name} "
                      f"({len(blobs[0])} bytes, byte-identical)")

    if failures:
        print(f"determinism-check: FAILED for {', '.join(failures)}")
        return 1
    print("determinism-check: all streams byte-identical across hash seeds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
