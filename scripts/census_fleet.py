#!/usr/bin/env python
"""Large-scale Theorem-9 census fleet: sharded trajectories, streamed JSONL.

The empirical side of Theorem 9 at sizes the serial loop cannot touch:
distribute dynamics trajectories over the persistent shared-memory pool and
stream every finished :class:`~repro.core.census.CensusRecord` to JSONL in
record order (tail the file to watch the fleet; rerun with the same seed to
reproduce it bit-for-bit at any worker count; rerun with ``--resume`` to
pick an interrupted fleet back up from the streamed prefix).

The first JSONL line is a run-config header; ``--resume`` validates it (and
every resumed record) against the current flags and refuses to mix records
from different games, so a fat-fingered overnight restart fails loudly
instead of silently corrupting the fleet.

``--objective`` takes any cost-model spec (:mod:`repro.core.costmodel`):
the paper's ``sum`` / ``max``, communication-interest variants
(``interest-sum:k=4,seed=9``), and bounded-budget variants
(``budget-max:cap=3``).

Examples
--------
Overnight n = 512–1024 fleet on 8 cores::

    PYTHONPATH=src python scripts/census_fleet.py \
        --n 512 768 1024 --replicates 32 --workers 8 \
        --out results/census_fleet.jsonl

Quick sanity fleet::

    PYTHONPATH=src python scripts/census_fleet.py --n 64 128 --replicates 4

Interest-game fleet (each agent cares about 8 random targets)::

    PYTHONPATH=src python scripts/census_fleet.py \
        --n 128 --objective "interest-sum:k=8,seed=1" \
        --out results/census_interest.jsonl
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.core.census import census_to_rows, run_census
from repro.core.costmodel import cost_model_spec
from repro.io.jsonl_store import FleetFailure
from repro.parallel import default_workers


def main(argv: "list[str] | None" = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--n", type=int, nargs="+", default=[512],
                    help="graph sizes (default: 512)")
    ap.add_argument("--families", nargs="+",
                    default=["tree", "sparse", "dense"],
                    choices=["tree", "sparse", "dense"])
    ap.add_argument("--replicates", type=int, default=8)
    ap.add_argument("--objective", type=cost_model_spec, default="sum",
                    metavar="SPEC",
                    help="cost-model spec: sum | max | "
                         "interest-{sum,max}:k=K[,seed=S] | "
                         "budget-{sum,max}:cap=C (default: sum)")
    ap.add_argument("--schedule", default="round_robin",
                    choices=["round_robin", "random", "greedy"])
    ap.add_argument("--root-seed", type=int, default=0)
    ap.add_argument("--max-steps", type=int, default=200_000)
    ap.add_argument("--workers", type=int, default=None,
                    help="trajectory shards (default: cores - 1)")
    ap.add_argument("--audit-mode", default="batched",
                    choices=["batched", "repair", "rebuild"],
                    help="equilibrium-audit kernel for endpoint checks")
    ap.add_argument("--no-verify", action="store_true",
                    help="skip the exact equilibrium audit of endpoints")
    ap.add_argument("--resume", action="store_true",
                    help="continue an interrupted fleet from --out's prefix "
                         "(same arguments required; validated against the "
                         "file's config header)")
    ap.add_argument("--retry-failed", action="store_true",
                    help="with --resume: re-run the quarantined slots of "
                         "the streamed prefix before continuing")
    ap.add_argument("--task-timeout", type=float, default=None,
                    metavar="SECONDS",
                    help="per-chunk wall-clock budget; a chunk exceeding it "
                         "is presumed hung, its workers are killed, and it "
                         "is retried (default: no timeout)")
    ap.add_argument("--retries", type=int, default=2,
                    help="per-task failure budget beyond the first attempt "
                         "(default: 2)")
    ap.add_argument("--fail-fast", action="store_true",
                    help="abort the fleet on the first permanently failed "
                         "task instead of quarantining it in the stream")
    ap.add_argument("--out", type=Path,
                    default=Path("results/census_fleet.jsonl"))
    args = ap.parse_args(argv)

    workers = default_workers() if args.workers is None else args.workers
    args.out.parent.mkdir(parents=True, exist_ok=True)
    total = len(args.n) * len(args.families) * args.replicates
    print(
        f"census fleet: {total} trajectories "
        f"(n={args.n}, {len(args.families)} families, "
        f"{args.replicates} replicates, objective={args.objective}) "
        f"on {workers} workers -> {args.out}",
        flush=True,
    )
    start = time.perf_counter()
    records = run_census(
        args.n,
        families=tuple(args.families),
        replicates=args.replicates,
        objective=args.objective,
        schedule=args.schedule,
        root_seed=args.root_seed,
        max_steps=args.max_steps,
        verify=not args.no_verify,
        workers=workers,
        audit_mode=args.audit_mode,
        jsonl_path=args.out,
        resume=args.resume,
        timeout=args.task_timeout,
        retries=args.retries,
        on_error="raise" if args.fail_fast else "record",
        retry_failed=args.retry_failed,
    )
    elapsed = time.perf_counter() - start

    failures = [r for r in records if isinstance(r, FleetFailure)]
    rows = [r for r in census_to_rows(records) if "fleet_failure" not in r]
    converged = [r for r in rows if r["converged"]]
    verified = [r for r in converged if r["verified_equilibrium"]]
    diam = max((r["diameter_final"] for r in converged), default=float("nan"))
    print(
        f"done in {elapsed:.1f}s: {len(converged)}/{len(rows)} converged, "
        f"{len(verified)} verified equilibria, max final diameter {diam}"
    )
    if failures:
        print(f"quarantine: {len(failures)} task(s) failed permanently "
              "(re-run with --resume --retry-failed to retry them)")
        for f in failures:
            print(f"  {f.coords} after {f.attempts} attempt(s): {f.error}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
