#!/usr/bin/env python
"""Deprecated shim: the census fleet now lives in the experiment CLI.

Every flag this script ever took is accepted unchanged by::

    PYTHONPATH=src python -m repro.cli experiment run census [flags]

(`--resume` / `--retry-failed` included; ``repro experiment status
census`` reports progress and quarantine without recomputing).  This
wrapper forwards its arguments verbatim and will be removed.
"""

from __future__ import annotations

import sys

from repro.cli import main as cli_main


def main(argv: "list[str] | None" = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    print(
        "census_fleet.py is deprecated; use: "
        "python -m repro.cli experiment run census",
        file=sys.stderr,
    )
    return cli_main(["experiment", "run", "census", *argv])


if __name__ == "__main__":
    sys.exit(main())
