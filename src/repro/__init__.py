"""repro — a reproduction of *Basic Network Creation Games* (SPAA 2010).

The library implements the paper's parameter-free network creation game
(edge-swap moves, sum/max usage costs), every construction appearing in the
paper, executable versions of its lemmas and theorems, the classical
α-parameterized games it generalizes, and the benchmark harness that
regenerates each figure- and theorem-level experiment.

Quickstart
----------
>>> from repro import star_graph, is_sum_equilibrium, SwapDynamics, random_tree
>>> is_sum_equilibrium(star_graph(8))          # Theorem 1: stars are equilibria
True
>>> result = SwapDynamics(objective="sum", seed=0).run(random_tree(16, seed=1))
>>> result.converged
True

Package layout
--------------
``repro.graphs``
    CSR graphs, vectorized BFS/APSP kernels, generators, structural
    properties (the game-agnostic substrate).
``repro.core``
    Usage costs, swaps, equilibrium auditors, best responses, dynamics.
``repro.constructions``
    The paper's graphs: stars/double stars, the Figure-3 diameter-3 sum
    equilibrium, the Theorem-12 torus family, projective-plane polarity
    graphs, Abelian Cayley graphs, the Conjecture-14 spider.
``repro.analysis``
    Distance uniformity, skew triples, the Theorem-13 power-graph pipeline,
    sumset growth, closed-form bound curves.
``repro.theory``
    Executable lemma/theorem checks and the prime tooling of Theorem 13.
``repro.games``
    The α-parameterized (Fabrikant et al.) game: Nash checks, social
    optimum, price of anarchy, and the swap-equilibrium transfer.
``repro.parallel``
    Deterministic process-pool maps and parameter sweeps.
``repro.bench``
    The experiment registry behind ``benchmarks/`` and the CLI.
"""

from ._version import __version__
from .core import (
    BestResponse,
    CostModel,
    DynamicsResult,
    Swap,
    SwapDynamics,
    Violation,
    best_swap,
    find_deletion_criticality_violation,
    find_insertion_violation,
    find_max_swap_violation,
    find_sum_violation,
    find_swap_violation,
    is_deletion_critical,
    is_equilibrium,
    is_insertion_stable,
    is_k_insertion_stable,
    is_max_equilibrium,
    is_sum_equilibrium,
    local_diameter,
    resolve_cost_model,
    run_census,
    sum_cost,
    sum_equilibrium_gap,
)
from .graphs import (
    AdjacencyGraph,
    CSRGraph,
    bfs_distances,
    complete_graph,
    cycle_graph,
    diameter,
    distance_matrix,
    eccentricities,
    is_connected,
    path_graph,
    random_connected_gnm,
    random_tree,
    star_graph,
    total_pairwise_distance,
)

__all__ = [
    "AdjacencyGraph",
    "BestResponse",
    "CSRGraph",
    "CostModel",
    "DynamicsResult",
    "Swap",
    "SwapDynamics",
    "Violation",
    "__version__",
    "best_swap",
    "bfs_distances",
    "complete_graph",
    "cycle_graph",
    "diameter",
    "distance_matrix",
    "eccentricities",
    "find_deletion_criticality_violation",
    "find_insertion_violation",
    "find_max_swap_violation",
    "find_sum_violation",
    "find_swap_violation",
    "is_connected",
    "is_deletion_critical",
    "is_equilibrium",
    "is_insertion_stable",
    "is_k_insertion_stable",
    "is_max_equilibrium",
    "is_sum_equilibrium",
    "local_diameter",
    "path_graph",
    "random_connected_gnm",
    "random_tree",
    "resolve_cost_model",
    "run_census",
    "star_graph",
    "sum_cost",
    "sum_equilibrium_gap",
    "total_pairwise_distance",
]
