"""`repro lint` — AST contract checker for this repository's invariants.

The codebase rests on a stack of documented contracts — seed-derived RNG
discipline (:mod:`repro.rng`), ``deadline=`` propagation through every
audit loop (DESIGN.md §10), the :mod:`repro.errors` taxonomy, bit-exact
oracle parity for every kernel ``mode=``, shared-memory read-only worker
views (DESIGN.md §5), and JSONL record/header stability (DESIGN.md §7).
Each of these was violated at least once between PRs 4 and 7 and fixed by
hand; this package enforces them mechanically.

The engine is a small rule framework over :mod:`ast` (stdlib only):

* per-file **visitor rules** (R1, R2, R4, R6, R7, R8) walk one module's
  tree;
* **project rules** (R3, R5, R9) see every parsed file at once — R3
  first collects the set of ``deadline=``-accepting functions, R5
  cross-checks kernel mode literals against the test tree, R9
  cross-checks registered experiment names against the golden-file
  suite;
* findings are ``path:line:col: RULE message`` records, sortable and
  JSON-serializable;
* any finding can be suppressed in place with a justified comment::

      risky_call()  # repro-lint: disable=R4 -- task bodies raise anything

  A suppression without a ``-- reason`` is itself reported (rule R0).

Rule catalogue (DESIGN.md §11 has the contract → past-bug mapping):

======  ==============================================================
R1      determinism: no wall-clock (``time.time`` / ``datetime.now``),
        no stdlib ``random``, no iteration over set literals/calls
R2      RNG discipline: ``np.random.default_rng`` / ``RandomState`` /
        ``.seed()`` only inside :mod:`repro.rng`
R3      deadline propagation: ``deadline=``-accepting functions must use
        it and forward it to every deadline-capable callee
R4      error taxonomy: no ``raise ValueError``/``raise Exception`` in
        library code outside :mod:`repro.errors`; blanket ``except
        Exception`` needs a pragma or justified suppression
R5      oracle coverage: every kernel mode literal must appear in tests/
R6      shared-memory safety: no writes to ``arrays``-parameter views
R7      JSONL stability: record-defining modules never write files
        directly (serialization goes through ``jsonl_store`` or the
        ``repro.experiments`` layer that feeds it)
R8      no mutable default arguments
R9      golden pins: every ``register_experiment`` name must appear in
        a golden-file test, keeping its stream bytes pinned
======  ==============================================================

Entry points: :func:`lint_paths` (library), ``python -m repro.lint`` and
``repro-bench lint`` (CLI, text or JSON output, exit 1 on findings).
"""

from __future__ import annotations

from .engine import LintConfig, lint_paths, lint_source, rule_catalogue
from .findings import Finding, findings_to_json

__all__ = [
    "Finding",
    "LintConfig",
    "findings_to_json",
    "lint_paths",
    "lint_source",
    "rule_catalogue",
]
