"""Finding records and their text/JSON encodings.

A finding pins one contract violation to ``path:line:col`` with a stable
rule code, so output is diffable across runs, sortable, and consumable by
both humans (text) and the CI gate / editor integrations (JSON).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

__all__ = ["Finding", "findings_to_json", "format_text"]

#: Schema version of the JSON output — bump on any key change so CI
#: consumers can pin what they parse (same policy as the JSONL headers).
JSON_VERSION = 1


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Ordering is (path, line, col, rule) so reports read file by file in
    source order regardless of which rule produced each finding.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def format_text(findings: "list[Finding]", checked_files: int) -> str:
    """The human-facing report: one line per finding plus a summary."""
    lines = [f.format() for f in sorted(findings)]
    counts: dict[str, int] = {}
    for f in findings:
        counts[f.rule] = counts.get(f.rule, 0) + 1
    if findings:
        by_rule = ", ".join(
            f"{rule}: {n}" for rule, n in sorted(counts.items())
        )
        lines.append(
            f"{len(findings)} finding(s) in {checked_files} file(s) "
            f"({by_rule})"
        )
    else:
        lines.append(f"clean: 0 findings in {checked_files} file(s)")
    return "\n".join(lines)


def findings_to_json(findings: "list[Finding]", checked_files: int) -> str:
    """The machine-facing report (stable schema, sorted findings)."""
    counts: dict[str, int] = {}
    for f in findings:
        counts[f.rule] = counts.get(f.rule, 0) + 1
    doc = {
        "version": JSON_VERSION,
        "checked_files": checked_files,
        "finding_count": len(findings),
        "counts": {k: counts[k] for k in sorted(counts)},
        "findings": [asdict(f) for f in sorted(findings)],
    }
    return json.dumps(doc, indent=2, sort_keys=False)
