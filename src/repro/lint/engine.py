"""Rule engine: parse once, run file rules per module, project rules over all.

The engine walks the given paths for ``.py`` files, parses each into a
:class:`FileContext` (AST + source lines + suppression table), runs every
registered per-file rule, then every project rule (which see all parsed
files at once — the two-pass deadline analysis and the mode/test
cross-check need the whole tree), and finally drops findings whose line
carries a justified ``# repro-lint: disable=`` directive.

Rules self-register via :func:`file_rule` / :func:`project_rule`; the
catalogue is importable for documentation and the CLI's ``--select``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

from .findings import Finding
from .suppress import Suppressions, parse_suppressions

__all__ = [
    "FileContext",
    "LintConfig",
    "file_rule",
    "lint_paths",
    "lint_source",
    "project_rule",
    "rule_catalogue",
]


@dataclass
class LintConfig:
    """Knobs the rules consult; defaults fit this repository's layout.

    ``tests_dir`` points the oracle-coverage rule (R5) at the test tree;
    ``None`` disables that rule (nothing to cross-check against).
    ``rng_files`` / ``errors_files`` are the basenames of the library
    modules *allowed* to create RNGs / define untyped raises — the
    modules the corresponding contracts delegate to.  ``library_part``
    marks a file as library code when it appears as a path component
    (``src/repro/...`` and fixture trees alike).
    """

    tests_dir: "Path | None" = None
    rng_files: tuple = ("rng.py",)
    errors_files: tuple = ("errors.py",)
    library_part: str = "repro"
    select: "frozenset[str] | None" = None

    def selected(self, rule: str) -> bool:
        return self.select is None or rule in self.select


class FileContext:
    """One parsed module: path, source lines, AST, suppression table."""

    def __init__(self, path: "Path | str", source: str, rel: "str | None" = None):
        self.path = Path(path)
        self.rel = rel if rel is not None else str(path)
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=self.rel)
        self.suppressions: Suppressions = parse_suppressions(
            self.rel, self.lines
        )

    @property
    def basename(self) -> str:
        return self.path.name

    def is_library(self, config: LintConfig) -> bool:
        return config.library_part in self.path.parts

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        return Finding(
            self.rel,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0) + 1,
            rule,
            message,
        )


FileRule = Callable[[FileContext, LintConfig], Iterator[Finding]]
ProjectRule = Callable[[list, LintConfig], Iterator[Finding]]

_FILE_RULES: "list[tuple[str, str, FileRule]]" = []
_PROJECT_RULES: "list[tuple[str, str, ProjectRule]]" = []


def file_rule(code: str, summary: str):
    """Register a per-file rule (decorator)."""

    def register(fn: FileRule) -> FileRule:
        _FILE_RULES.append((code, summary, fn))
        return fn

    return register


def project_rule(code: str, summary: str):
    """Register a whole-tree rule (decorator)."""

    def register(fn: ProjectRule) -> ProjectRule:
        _PROJECT_RULES.append((code, summary, fn))
        return fn

    return register


def rule_catalogue() -> "list[tuple[str, str]]":
    """(code, summary) for every registered rule, sorted by code."""
    _load_rules()
    pairs = [(c, s) for c, s, _ in _FILE_RULES]
    pairs += [(c, s) for c, s, _ in _PROJECT_RULES]
    pairs.append(("R0", "suppression directives must carry a -- reason"))
    return sorted(set(pairs))


def _load_rules() -> None:
    # Deferred so engine/rules can import each other cleanly.
    from . import project, rules  # noqa: F401


def iter_python_files(paths: "Iterable[str | Path]") -> "list[Path]":
    """Expand files/directories into a sorted, de-duplicated module list."""
    seen: dict[Path, None] = {}
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for sub in sorted(p.rglob("*.py")):
                if "__pycache__" not in sub.parts:
                    seen.setdefault(sub, None)
        elif p.suffix == ".py":
            seen.setdefault(p, None)
    return list(seen)


def _run(contexts: "list[FileContext]", config: LintConfig,
         parse_findings: "list[Finding]") -> "list[Finding]":
    _load_rules()
    raw: list[Finding] = list(parse_findings)
    for ctx in contexts:
        raw.extend(ctx.suppressions.findings)  # R0: malformed directives
        for code, _, rule in _FILE_RULES:
            if config.selected(code):
                raw.extend(rule(ctx, config))
    for code, _, rule in _PROJECT_RULES:
        if config.selected(code):
            raw.extend(rule(contexts, config))
    by_rel = {ctx.rel: ctx for ctx in contexts}
    out: list[Finding] = []
    for f in raw:
        if not config.selected(f.rule) and f.rule != "R0":
            continue
        ctx = by_rel.get(f.path)
        if (
            ctx is not None
            and f.rule != "R0"
            and ctx.suppressions.is_suppressed(f.rule, f.line)
        ):
            continue
        out.append(f)
    return sorted(out)


def lint_paths(
    paths: "Iterable[str | Path]", config: "LintConfig | None" = None
) -> "tuple[list[Finding], int]":
    """Lint files/trees; returns ``(findings, files_checked)``."""
    config = config if config is not None else LintConfig()
    files = iter_python_files(paths)
    contexts: list[FileContext] = []
    parse_findings: list[Finding] = []
    for path in files:
        try:
            source = path.read_text(encoding="utf-8")
            contexts.append(FileContext(path, source, rel=str(path)))
        except SyntaxError as exc:
            parse_findings.append(
                Finding(
                    str(path), exc.lineno or 1, (exc.offset or 0) + 1,
                    "PARSE", f"syntax error: {exc.msg}",
                )
            )
        except OSError as exc:
            parse_findings.append(
                Finding(str(path), 1, 1, "PARSE", f"unreadable: {exc}")
            )
    return _run(contexts, config, parse_findings), len(files)


def lint_source(
    source: str,
    path: str = "<string>",
    config: "LintConfig | None" = None,
) -> "list[Finding]":
    """Lint one in-memory module (the fixture-test entry point)."""
    config = config if config is not None else LintConfig()
    try:
        ctx = FileContext(path, source, rel=path)
    except SyntaxError as exc:
        return [
            Finding(
                path, exc.lineno or 1, (exc.offset or 0) + 1,
                "PARSE", f"syntax error: {exc.msg}",
            )
        ]
    return _run([ctx], config, [])
