"""Project-wide rules: R3 (deadlines), R5 (oracles), R9 (golden pins).

All need the whole parsed tree at once.  R3 runs two passes: first it
collects every function that *accepts* ``deadline=`` (these are the
"deadline-capable" callees, seeded with the pool primitives), then it
re-walks each capable function's body and demands that (a) the deadline
is used at all and (b) every call to a capable callee forwards it.  R5
collects kernel mode literals (``*_MODES`` registries and ``*Mode``
Literal aliases) and requires each to appear, quoted, somewhere in the
test tree — a mode string nobody asserts bit-equality on is an oracle
gap, exactly how the ``batched`` path drifted before PR 5 pinned it.
R9 applies the same discipline to experiment streams: every
``register_experiment`` name must appear, quoted, in a golden-file test
(a ``tests`` file with ``golden`` in its name), so no experiment ships
without its bytes pinned (DESIGN.md §12).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from .engine import FileContext, LintConfig, project_rule
from .findings import Finding
from .rules import PY_BUILTINS

#: Deadline-capable callees that live below the AST we lint (C-accelerated
#: or re-exported): the pool primitives every audit loop bottoms out in.
_SEED_CAPABLE = {"parallel_map", "check_deadline", "_check_deadline"}


def _all_args(func: ast.AST) -> list:
    a = func.args
    return a.posonlyargs + a.args + a.kwonlyargs


def _functions(tree: ast.Module):
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _callee_name(call: ast.Call) -> "str | None":
    if isinstance(call.func, ast.Name):
        # Bare-name calls to python builtins (map, filter, ...) are never
        # project functions; everything else matches by simple name.
        return None if call.func.id in PY_BUILTINS else call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _mentions_deadline(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id == "deadline":
            return True
    return False


def _call_forwards_deadline(call: ast.Call) -> bool:
    for kw in call.keywords:
        if kw.arg == "deadline" or (kw.arg is None and _mentions_deadline(kw.value)):
            return True
    return any(_mentions_deadline(arg) for arg in call.args)


def _walk_skipping_capable_defs(func: ast.AST):
    """Walk a function body, but not into nested defs that take their own
    ``deadline=`` — those are audited as functions in their own right."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and any(
            a.arg == "deadline" for a in _all_args(node)
        ):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


@project_rule("R3", "deadline= parameters must be used and forwarded")
def rule_deadline_propagation(
    contexts: "list[FileContext]", config: LintConfig
) -> Iterator[Finding]:
    capable = set(_SEED_CAPABLE)
    per_file: "list[tuple[FileContext, ast.AST]]" = []
    for ctx in contexts:
        for func in _functions(ctx.tree):
            per_file.append((ctx, func))
            if any(a.arg == "deadline" for a in _all_args(func)):
                capable.add(func.name)
    for ctx, func in per_file:
        if not any(a.arg == "deadline" for a in _all_args(func)):
            continue
        used = any(
            _mentions_deadline(node)
            for node in _walk_skipping_capable_defs(func)
        )
        if not used:
            yield ctx.finding(
                func, "R3",
                f"'{func.name}()' accepts deadline= but never checks or "
                "forwards it; a caller's timeout silently expires here",
            )
            continue
        for node in _walk_skipping_capable_defs(func):
            if not isinstance(node, ast.Call):
                continue
            callee = _callee_name(node)
            if (
                callee in capable
                and callee != func.name
                and not _call_forwards_deadline(node)
            ):
                yield ctx.finding(
                    node, "R3",
                    f"'{func.name}()' holds a deadline but calls "
                    f"deadline-capable '{callee}()' without forwarding it",
                )


_MODES_REGISTRY = re.compile(r"^_?[A-Z][A-Z0-9_]*_MODES$")
_MODE_ALIAS = re.compile(r"^[A-Za-z][A-Za-z0-9]*Mode$")


def _mode_literals(ctx: FileContext):
    """Yield (literal, node) for mode registries and Literal aliases."""
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        if _MODES_REGISTRY.match(target.id):
            if isinstance(node.value, (ast.Tuple, ast.List)):
                for elt in node.value.elts:
                    if isinstance(elt, ast.Constant) and isinstance(
                        elt.value, str
                    ):
                        yield elt.value, node
        elif _MODE_ALIAS.match(target.id):
            if isinstance(node.value, ast.Subscript):
                base = node.value.value
                base_name = (
                    base.id if isinstance(base, ast.Name)
                    else base.attr if isinstance(base, ast.Attribute)
                    else ""
                )
                if base_name == "Literal":
                    sl = node.value.slice
                    elts = sl.elts if isinstance(sl, ast.Tuple) else [sl]
                    for elt in elts:
                        if isinstance(elt, ast.Constant) and isinstance(
                            elt.value, str
                        ):
                            yield elt.value, node


@project_rule("R5", "every kernel mode literal must appear in tests/")
def rule_oracle_coverage(
    contexts: "list[FileContext]", config: LintConfig
) -> Iterator[Finding]:
    if config.tests_dir is None or not config.tests_dir.is_dir():
        return
    corpus_parts: list[str] = []
    for path in sorted(config.tests_dir.rglob("*.py")):
        if "__pycache__" not in path.parts:
            try:
                corpus_parts.append(path.read_text(encoding="utf-8"))
            except OSError:
                continue
    corpus = "\n".join(corpus_parts)
    reported: set = set()
    for ctx in contexts:
        if not ctx.is_library(config):
            continue
        for literal, node in _mode_literals(ctx):
            key = (ctx.rel, literal)
            if key in reported:
                continue
            if f'"{literal}"' not in corpus and f"'{literal}'" not in corpus:
                reported.add(key)
                yield ctx.finding(
                    node, "R5",
                    f"kernel mode '{literal}' never appears in the test "
                    f"tree ({config.tests_dir}); add a bit-equality oracle "
                    "test before shipping a mode",
                )


def _registered_experiment_names(ctx: FileContext):
    """Yield ``(name, node)`` for every ``register_experiment(...)`` whose
    definition carries a literal ``name=`` (the registry's idiom)."""
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        if _callee_name(node) != "register_experiment":
            continue
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.keyword)
                and sub.arg == "name"
                and isinstance(sub.value, ast.Constant)
                and isinstance(sub.value.value, str)
            ):
                yield sub.value.value, node
                break


@project_rule("R9", "every registered experiment is pinned in a golden test")
def rule_golden_coverage(
    contexts: "list[FileContext]", config: LintConfig
) -> Iterator[Finding]:
    if config.tests_dir is None or not config.tests_dir.is_dir():
        return
    corpus_parts: list[str] = []
    for path in sorted(config.tests_dir.rglob("*.py")):
        if "golden" in path.name and "__pycache__" not in path.parts:
            try:
                corpus_parts.append(path.read_text(encoding="utf-8"))
            except OSError:
                continue
    corpus = "\n".join(corpus_parts)
    for ctx in contexts:
        for name, node in _registered_experiment_names(ctx):
            if f'"{name}"' not in corpus and f"'{name}'" not in corpus:
                yield ctx.finding(
                    node, "R9",
                    f"experiment '{name}' is registered but appears in no "
                    f"golden-file test under {config.tests_dir} (a file "
                    "with 'golden' in its name); its stream bytes are "
                    "unpinned — extend the golden suite before shipping",
                )
