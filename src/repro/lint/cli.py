"""Command-line front end: ``python -m repro.lint`` / ``repro-bench lint``.

Exit codes: 0 clean, 1 findings, 2 usage error (argparse).  ``--format
json`` emits the versioned schema from :mod:`repro.lint.findings` for the
CI gate; text mode prints one ``path:line:col: RULE message`` per finding.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .engine import LintConfig, lint_paths, rule_catalogue
from .findings import findings_to_json, format_text

__all__ = ["add_lint_arguments", "build_parser", "main", "run_lint"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach lint flags to ``parser`` (shared with repro-bench's subcommand)."""
    parser.add_argument(
        "paths", nargs="*", default=["src", "scripts"],
        help="files or directories to lint (default: src scripts)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json is the versioned CI schema)",
    )
    parser.add_argument(
        "--tests-dir", default="tests",
        help="test tree for the R5 oracle-coverage cross-check "
        "(set to a missing dir to disable R5)",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )


def run_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        for code, summary in rule_catalogue():
            print(f"{code}  {summary}")
        return 0
    select = None
    if args.select:
        select = frozenset(
            s.strip() for s in args.select.split(",") if s.strip()
        )
    config = LintConfig(tests_dir=Path(args.tests_dir), select=select)
    findings, checked = lint_paths(args.paths, config)
    if args.format == "json":
        print(findings_to_json(findings, checked))
    else:
        print(format_text(findings, checked))
    return 1 if findings else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST contract checker for the repro codebase",
    )
    add_lint_arguments(parser)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    return run_lint(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
