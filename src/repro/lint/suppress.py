"""Per-line suppression comments: ``# repro-lint: disable=RULE -- reason``.

A suppression silences matching findings on its own line, or — when the
comment stands alone — on the first following line that holds code.  The
``-- reason`` clause is mandatory: an unjustified suppression is reported
as its own finding (rule ``R0``), so the lint report always shows *why*
each contract is waived, never just that it is.

``disable=ALL`` silences every rule on the target line (reserved for
generated code; prefer naming the rule).

Directives are recognised only in real comment tokens (via
:mod:`tokenize`), so docstrings and string literals that *mention* the
syntax — like this one — are never parsed as directives.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass

from .findings import Finding

__all__ = ["Suppressions", "parse_suppressions"]

_DIRECTIVE = re.compile(
    r"repro-lint:\s*disable=(?P<rules>[A-Za-z0-9_,\s]+?)"
    r"(?:\s+--\s+(?P<reason>\S.*))?\s*$"
)

#: A line that is only a comment (possibly indented): its directive
#: applies to the next code line, like a decorator.
_COMMENT_ONLY = re.compile(r"^\s*#")


@dataclass
class Suppressions:
    """Suppression state of one file: line -> frozenset of rule codes."""

    by_line: "dict[int, frozenset[str]]"
    findings: "list[Finding]"  # malformed directives (rule R0)

    def active(self, line: int) -> frozenset:
        return self.by_line.get(line, frozenset())

    def is_suppressed(self, rule: str, line: int) -> bool:
        rules = self.active(line)
        return rule in rules or "ALL" in rules


def _comment_tokens(lines: "list[str]"):
    """Yield (line_number, column, comment_text) for every real comment."""
    reader = io.StringIO("\n".join(lines) + "\n").readline
    try:
        for tok in tokenize.generate_tokens(reader):
            if tok.type == tokenize.COMMENT:
                yield tok.start[0], tok.start[1], tok.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return  # partial file; the AST parse reports the real error


def parse_suppressions(path: str, lines: "list[str]") -> Suppressions:
    """Scan comment tokens for directives; bind each to its target line."""
    by_line: dict[int, frozenset[str]] = {}
    findings: list[Finding] = []
    for lineno, col, comment in _comment_tokens(lines):
        if "repro-lint:" not in comment:
            continue
        match = _DIRECTIVE.search(comment)
        if match is None:
            findings.append(
                Finding(
                    path, lineno, col + 1, "R0",
                    "unparsable repro-lint directive; expected "
                    "'# repro-lint: disable=RULE -- reason'",
                )
            )
            continue
        rules = frozenset(
            r.strip() for r in match.group("rules").split(",") if r.strip()
        )
        if match.group("reason") is None:
            findings.append(
                Finding(
                    path, lineno, col + 1, "R0",
                    f"suppression of {', '.join(sorted(rules))} has no "
                    "'-- reason' justification",
                )
            )
            continue
        target = lineno
        text = lines[lineno - 1] if lineno <= len(lines) else ""
        if _COMMENT_ONLY.match(text):
            # Stand-alone comment: applies to the next code line.
            j = lineno + 1
            while j <= len(lines) and (
                not lines[j - 1].strip() or _COMMENT_ONLY.match(lines[j - 1])
            ):
                j += 1
            target = j
        by_line[target] = by_line.get(target, frozenset()) | rules
    return Suppressions(by_line, findings)
