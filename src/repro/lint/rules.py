"""Per-file visitor rules: R1, R2, R4, R6, R7, R8, R10.

Each rule is a generator over one parsed module.  Rules are deliberately
syntactic — they match the patterns this codebase actually uses (see the
triage in DESIGN.md §11) and lean on the suppression mechanism for the
rare justified exception, rather than attempting full dataflow analysis.
"""

from __future__ import annotations

import ast
import builtins
from typing import Iterator

from .engine import FileContext, LintConfig, file_rule
from .findings import Finding


def dotted_name(node: ast.AST) -> "str | None":
    """``np.random.default_rng`` -> that string; None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _root_name(node: ast.AST) -> "str | None":
    """Base variable of a Subscript/Attribute chain (``a[0].x`` -> ``a``)."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _imported_names(tree: ast.Module) -> "dict[str, str]":
    """Local name -> fully qualified origin, for imports at any level."""
    origins: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                origins[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                origins[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return origins


_WALLCLOCK_CALLS = {"time.time", "time.time_ns"}
_DATETIME_ATTRS = {"now", "utcnow", "today"}


@file_rule("R1", "no wall-clock, stdlib random, or set-order iteration")
def rule_determinism(ctx: FileContext, config: LintConfig) -> Iterator[Finding]:
    origins = _imported_names(ctx.tree)
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name in _WALLCLOCK_CALLS or (
                name is not None
                and origins.get(name, "") in _WALLCLOCK_CALLS
            ):
                yield ctx.finding(
                    node, "R1",
                    f"wall-clock call '{name}()' is nondeterministic; use "
                    "time.monotonic()/perf_counter() for intervals",
                )
            elif name is not None:
                parts = name.split(".")
                if parts[-1] in _DATETIME_ATTRS and (
                    "datetime" in parts[:-1]
                    or origins.get(parts[0], "").startswith("datetime")
                ):
                    yield ctx.finding(
                        node, "R1",
                        f"wall-clock call '{name}()' is nondeterministic",
                    )
                elif (
                    parts[0] == "random"
                    and origins.get("random", "random") == "random"
                    and len(parts) > 1
                ):
                    yield ctx.finding(
                        node, "R1",
                        f"stdlib '{name}()' uses hidden global RNG state; "
                        "take a repro.rng.make_rng() generator instead",
                    )
        for it in _iterated_exprs(node):
            if _is_set_expr(it):
                yield ctx.finding(
                    it, "R1",
                    "iteration over a set is hash-order dependent; sort it "
                    "or iterate a list/tuple",
                )


def _iterated_exprs(node: ast.AST) -> "list[ast.expr]":
    if isinstance(node, (ast.For, ast.AsyncFor)):
        return [node.iter]
    if isinstance(node, ast.comprehension):
        return [node.iter]
    return []


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    return False


_RNG_FACTORIES = {"default_rng", "RandomState", "Generator", "PCG64"}


@file_rule("R2", "RNG construction and .seed() only inside repro.rng")
def rule_rng_discipline(ctx: FileContext, config: LintConfig) -> Iterator[Finding]:
    if ctx.basename in config.rng_files and ctx.is_library(config):
        return
    origins = _imported_names(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is not None:
            parts = name.split(".")
            origin = origins.get(parts[0], parts[0])
            qualified = ".".join([origin] + parts[1:])
            if (
                parts[-1] in _RNG_FACTORIES
                and ("numpy" in qualified or parts[0] in {"np", "numpy"})
            ):
                yield ctx.finding(
                    node, "R2",
                    f"'{name}()' constructs an RNG outside repro.rng; use "
                    "make_rng()/spawn_rngs() so seeds stay derivable",
                )
                continue
            if origins.get(parts[0], "").endswith(
                tuple(f"random.{f}" for f in _RNG_FACTORIES)
            ):
                yield ctx.finding(
                    node, "R2",
                    f"'{name}()' constructs an RNG outside repro.rng; use "
                    "make_rng()/spawn_rngs() so seeds stay derivable",
                )
                continue
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "seed"
        ):
            yield ctx.finding(
                node, "R2",
                "'.seed()' rewrites RNG state in place; derive a child "
                "generator with spawn_rngs()/derive_seed() instead",
            )


_UNTYPED_RAISES = {"ValueError", "Exception"}
_BLANKET_TYPES = {"Exception", "BaseException"}


@file_rule("R4", "typed errors only; blanket excepts need justification")
def rule_error_taxonomy(ctx: FileContext, config: LintConfig) -> Iterator[Finding]:
    if not ctx.is_library(config):
        return
    in_errors_module = ctx.basename in config.errors_files
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Raise) and not in_errors_module:
            target = node.exc
            if isinstance(target, ast.Call):
                target = target.func
            if isinstance(target, ast.Name) and target.id in _UNTYPED_RAISES:
                yield ctx.finding(
                    node, "R4",
                    f"raise of bare '{target.id}' bypasses the repro.errors "
                    "taxonomy; raise a ReproError subclass (they still "
                    "subclass ValueError where tests expect it)",
                )
        elif isinstance(node, ast.ExceptHandler):
            names = _handler_type_names(node.type)
            blanket = names & _BLANKET_TYPES
            reraises = any(
                isinstance(sub, ast.Raise) and sub.exc is None
                for sub in ast.walk(node)
            )
            if (
                blanket
                and not reraises
                and "pragma" not in ctx.line_text(node.lineno)
            ):
                yield ctx.finding(
                    node, "R4",
                    f"blanket 'except {sorted(blanket)[0]}' hides typed "
                    "failures; narrow it, or keep it with a '# pragma: ...' "
                    "note or a justified repro-lint suppression",
                )


def _handler_type_names(type_node: "ast.expr | None") -> "set[str]":
    if type_node is None:
        return {"BaseException"}  # bare `except:`
    exprs = (
        list(type_node.elts) if isinstance(type_node, ast.Tuple) else [type_node]
    )
    return {e.id for e in exprs if isinstance(e, ast.Name)}


_INPLACE_METHODS = {
    "fill", "sort", "partition", "put", "setfield", "resize", "itemset",
    "byteswap",
}


@file_rule("R6", "worker functions must not write shared array views")
def rule_shared_memory(ctx: FileContext, config: LintConfig) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            all_args = args.posonlyargs + args.args + args.kwonlyargs
            if any(a.arg == "arrays" for a in all_args):
                yield from _check_worker_body(ctx, node)


def _check_worker_body(
    ctx: FileContext, func: ast.AST
) -> Iterator[Finding]:
    # Direct aliases only: name = arrays or name = arrays[...] / arrays.attr.
    tracked = {"arrays"}
    changed = True
    while changed:
        changed = False
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if (
                    isinstance(target, ast.Name)
                    and target.id not in tracked
                    and _root_name(node.value) in tracked
                    and isinstance(
                        node.value, (ast.Name, ast.Subscript, ast.Attribute)
                    )
                ):
                    tracked.add(target.id)
                    changed = True

    def _is_tracked_view(expr: ast.AST) -> bool:
        return _root_name(expr) in tracked and isinstance(
            expr, (ast.Subscript, ast.Attribute, ast.Name)
        )

    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript) and _is_tracked_view(target):
                    yield ctx.finding(
                        node, "R6",
                        "write into a shared worker view ('arrays' is "
                        "read-only in workers; copy first)",
                    )
        elif isinstance(node, ast.AugAssign) and _is_tracked_view(node.target):
            yield ctx.finding(
                node, "R6",
                "in-place update of a shared worker view ('arrays' is "
                "read-only in workers; copy first)",
            )
        elif isinstance(node, ast.Call):
            for kw in node.keywords:
                if kw.arg == "out" and _is_tracked_view(kw.value):
                    yield ctx.finding(
                        node, "R6",
                        "out= targets a shared worker view ('arrays' is "
                        "read-only in workers; allocate a local buffer)",
                    )
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _INPLACE_METHODS
                and _is_tracked_view(node.func.value)
            ):
                yield ctx.finding(
                    node, "R6",
                    f"'.{node.func.attr}()' mutates a shared worker view "
                    "('arrays' is read-only in workers)",
                )


_WRITE_MODES = set("wax+")


@file_rule("R7", "record-defining modules serialize via jsonl_store only")
def rule_jsonl_schema(ctx: FileContext, config: LintConfig) -> Iterator[Finding]:
    if not ctx.is_library(config) or "jsonl_store" in ctx.basename:
        return
    if "experiments" in ctx.path.parts:
        # The experiment layer is the other sanctioned persistence path:
        # its serializers feed JsonlStore (DESIGN.md §12), same as the
        # store's own module.
        return
    if not _defines_record_dataclass(ctx.tree):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name == "open" and _open_mode_writes(node):
            yield ctx.finding(
                node, "R7",
                "direct file write in a record-defining module; route "
                "records through repro.io.jsonl_store so headers, "
                "durability, and resume stay consistent",
            )
        elif name is not None and name.split(".")[-1] == "dump" and (
            name.split(".")[0] in {"json", "pickle"}
        ):
            yield ctx.finding(
                node, "R7",
                f"'{name}()' in a record-defining module bypasses "
                "jsonl_store's header/schema handling",
            )
        elif isinstance(node.func, ast.Attribute) and node.func.attr in {
            "write_text", "write_bytes",
        }:
            yield ctx.finding(
                node, "R7",
                f"'.{node.func.attr}()' in a record-defining module "
                "bypasses jsonl_store's header/schema handling",
            )


def _open_mode_writes(call: ast.Call) -> bool:
    mode_node: "ast.expr | None" = None
    if len(call.args) >= 2:
        mode_node = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode_node = kw.value
    if mode_node is None:
        return False  # default "r"
    if isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str):
        return bool(_WRITE_MODES & set(mode_node.value))
    return True  # dynamic mode: assume the worst


def _defines_record_dataclass(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name.endswith("Record"):
            for deco in node.decorator_list:
                target = deco.func if isinstance(deco, ast.Call) else deco
                name = dotted_name(target) or ""
                if name.split(".")[-1] == "dataclass":
                    return True
    return False


_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict"}


@file_rule("R8", "no mutable default arguments")
def rule_mutable_defaults(ctx: FileContext, config: LintConfig) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_literal(default):
                yield ctx.finding(
                    default, "R8",
                    f"mutable default argument in '{node.name}()' is shared "
                    "across calls; default to None and construct inside",
                )


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CALLS and not node.args
    return False


#: The raw primitives of crash-durable publication.  ``os.replace`` alone
#: is atomic but NOT durable (the rename itself can vanish in a crash until
#: the parent directory entry is fsynced), and scattered call sites can't
#: be covered by the ``torn-rename``/``enospc`` fault sites — so both live
#: behind :mod:`repro.io.fsutil` and friends (DESIGN.md §13).
_RAW_FS_CALLS = {"os.replace", "os.rename", "os.fsync"}


@file_rule("R10", "raw os.replace/os.rename/os.fsync only inside repro.io")
def rule_fs_durability(ctx: FileContext, config: LintConfig) -> Iterator[Finding]:
    if not ctx.is_library(config) or "io" in ctx.path.parts:
        return
    origins = _imported_names(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is None:
            continue
        parts = name.split(".")
        qualified = ".".join([origins.get(parts[0], parts[0])] + parts[1:])
        if name in _RAW_FS_CALLS or qualified in _RAW_FS_CALLS:
            yield ctx.finding(
                node, "R10",
                f"'{name}()' publishes/syncs filesystem state outside "
                "repro.io; route it through repro.io.fsutil "
                "(publish_replace/fsync_dir) so renames stay durable and "
                "the disk-fault sites stay injectable",
            )


# Shared helper for project.py: python builtins never count as project
# callees when invoked by bare name (`map(...)` is not `pool.map(...)`).
PY_BUILTINS = frozenset(dir(builtins))
