"""Declarative experiments compiled to sharded resumable fleets.

An :class:`Experiment` is the repo's one description of an empirical run:
a named cartesian grid of independent variables (with an explicit
enumeration order), a replicate count, a position-derived seeding scheme,
a picklable point function, and the persistence contract (config header,
record schema, coordinate fields used for resume validation).  Declaring
one buys the whole hardened execution stack with no new code:

* **enumeration** — the grid compiles to a :class:`~repro.parallel.Sweep`
  (explicit ``order=``, reserved-column checks, position-derived seeds);
* **execution** — :func:`run_fleet` shards tasks over the persistent
  shared-memory pool via :func:`~repro.parallel.map_streamed` with the
  DESIGN.md §9 timeout/retry/quarantine semantics, records bit-identical
  to a serial run at any worker count;
* **persistence** — records stream through
  :class:`~repro.io.jsonl_store.JsonlStore`: run-config header, resume
  with per-record grid validation, atomic prefix rewrites, torn-tail
  policy, quarantined :class:`~repro.io.jsonl_store.FleetFailure` slots
  and ``retry_failed`` re-runs.

The equilibrium census and the trajectory census are instances of this
layer (their ``run_census`` / ``run_trajectory_census`` entry points are
thin shims), and their streamed JSONL is byte-identical to the
pre-refactor fleets — grid order, seeds, header fields, record fields,
resume behavior and ``fleet_failure`` slots all preserved, pinned by the
golden-file suite in ``tests/experiments/``.  The full contract is
DESIGN.md §12.

Seeding schemes
---------------
``seed_scheme="flat"`` derives each task's seed from the flat grid
position, exactly as :class:`~repro.parallel.Sweep` does:
``derive_seed(root_seed, point_index, replicate)``.  ``"axes"`` derives
it from the per-axis indices instead:
``derive_seed(root_seed, i_0, …, i_k, replicate)`` — the historical
equilibrium-census discipline, kept so its streams stay byte-stable.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import IO, Any, Callable, Iterable, Mapping, Sequence

from ..errors import ConfigurationError, StoreIntegrityError
from ..io.checkpoint import peek_checkpoint
from ..io.jsonl_store import FleetFailure, JsonlStore, maybe_decode_failure
from ..parallel import Sweep, TaskFailure, map_streamed
from ..rng import derive_seed

__all__ = ["Experiment", "run_fleet", "write_jsonl_records"]

#: Task-tuple slots :meth:`Experiment.compile_tasks` derives per point
#: (everything else must come from ``grid`` or ``fixed``).
_DERIVED_FIELDS = ("seed", "replicate")

#: Optional derived slots for experiments whose point function supports
#: in-task checkpoints (DESIGN.md §13): declaring both in ``task_fields``
#: lets :func:`run_fleet` thread a per-slot checkpoint path and cadence
#: into every task, so quarantined/timed-out slots *resume* on retry
#: instead of restarting.  Execution details, like ``workers`` — they
#: never appear in the stream's config header or its records.
_CHECKPOINT_FIELDS = ("checkpoint_path", "checkpoint_every")


def write_jsonl_records(sink: "IO[str]", records: Iterable) -> None:
    """Default record serializer: one JSON object per line, then flush.

    Quarantined slots (:class:`FleetFailure`) serialize with their marker
    key; dataclass records via :func:`dataclasses.asdict`; mappings as-is.
    """
    for rec in records:
        if isinstance(rec, FleetFailure):
            obj = rec.encode()
        elif isinstance(rec, Mapping):
            obj = dict(rec)
        else:
            obj = asdict(rec)
        sink.write(json.dumps(obj) + "\n")
    sink.flush()


@dataclass
class Experiment:
    """One declarative experiment: grid, seeds, point function, persistence.

    Parameters
    ----------
    name:
        Registry name (also what ``repro experiment run <name>`` invokes).
    point_fn:
        Picklable module-level callable mapping one task tuple to one
        record; fully determined by the tuple so records are identical
        wherever (and in whatever order) the task runs.
    grid:
        Ordered mapping of independent variables to their level lists.
    task_fields:
        The task tuple's layout, by name.  Each name resolves from the
        grid (its per-point value), the derived columns (``seed`` /
        ``replicate``), or ``fixed`` (a run-constant) — anything else is
        a configuration error.
    coord_fields:
        The subset (and order) of ``task_fields`` that identifies a task
        in the stream: quarantine ``coords`` dicts carry exactly these,
        and resume validation compares them against every resumed record.
    order:
        Explicit grid enumeration order (defaults to insertion order);
        validated by :meth:`~repro.parallel.Sweep.names`.
    seed_scheme:
        ``"flat"`` or ``"axes"`` — see the module docstring.
    fixed:
        Run-constant values for ``task_fields`` not in the grid.
    coord_overrides:
        Coordinate values that differ from the raw task slot (e.g. the
        census coordinates carry the canonical objective *spec* while the
        task may carry a resolved ``CostModel`` instance).
    int_coords:
        Coordinate fields coerced through ``int()`` (numpy scalars in the
        grid must not leak into headers or quarantine coords).
    config_key / config_version / config:
        The stream's run-config header (see :class:`JsonlStore`).
    record_name / decode_record:
        Corruption-error naming and the dict→record decoder; the default
        decoder accepts any JSON object (quarantine lines decode to
        :class:`FleetFailure`).
    store_factory:
        Optional ``(path, durability) -> JsonlStore`` hook.  The censuses
        keep their module-local stores (whose write hooks the
        crash-window tests intercept); experiments without one get a
        store with :func:`write_jsonl_records` and an ``experiment``
        header block naming this experiment.
    """

    name: str
    point_fn: Callable[[tuple], Any]
    grid: Mapping[str, Sequence[Any]]
    task_fields: Sequence[str]
    coord_fields: Sequence[str]
    replicates: int = 1
    root_seed: int = 0
    order: "Sequence[str] | None" = None
    seed_scheme: str = "flat"
    fixed: Mapping[str, Any] = field(default_factory=dict)
    coord_overrides: Mapping[str, Any] = field(default_factory=dict)
    int_coords: Sequence[str] = ()
    config_key: str = "experiment_config"
    config_version: int = 1
    config: Mapping[str, Any] = field(default_factory=dict)
    record_name: str = "record"
    decode_record: "Callable[[dict], Any] | None" = None
    store_factory: "Callable[[Any, str], JsonlStore] | None" = None

    def __post_init__(self) -> None:
        if self.seed_scheme not in ("flat", "axes"):
            raise ConfigurationError(
                f"seed_scheme must be 'flat' or 'axes', "
                f"got {self.seed_scheme!r}"
            )
        overlap = [k for k in self.fixed if k in self.grid]
        if overlap:
            raise ConfigurationError(
                f"fixed value(s) {overlap!r} shadow grid dimensions of the "
                f"same name in experiment {self.name!r}"
            )
        unresolved = [
            f for f in self.task_fields
            if f not in self.grid and f not in self.fixed
            and f not in _DERIVED_FIELDS and f not in _CHECKPOINT_FIELDS
        ]
        if unresolved:
            raise ConfigurationError(
                f"task field(s) {unresolved!r} of experiment {self.name!r} "
                "resolve from neither grid, fixed, nor the derived columns "
                f"{_DERIVED_FIELDS + _CHECKPOINT_FIELDS}"
            )
        declared = [f for f in _CHECKPOINT_FIELDS if f in self.task_fields]
        if declared and len(declared) != len(_CHECKPOINT_FIELDS):
            raise ConfigurationError(
                f"experiment {self.name!r} declares {declared!r} but "
                f"checkpoint support needs all of {_CHECKPOINT_FIELDS}"
            )
        missing = [f for f in self.coord_fields if f not in self.task_fields]
        if missing:
            raise ConfigurationError(
                f"coord field(s) {missing!r} of experiment {self.name!r} "
                "are not task fields"
            )

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------
    def sweep(self) -> Sweep:
        """The grid as a :class:`~repro.parallel.Sweep`."""
        return Sweep(
            grid=self.grid,
            replicates=self.replicates,
            root_seed=self.root_seed,
            order=self.order,
        )

    def total_tasks(self) -> int:
        total = self.replicates
        for values in self.grid.values():
            total *= len(values)
        return total

    @property
    def supports_checkpoints(self) -> bool:
        """Whether the point function takes the DESIGN.md §13 checkpoint slots."""
        return all(f in self.task_fields for f in _CHECKPOINT_FIELDS)

    def compile_tasks(
        self,
        *,
        checkpoint_dir: "str | Path | None" = None,
        checkpoint_every: "int | None" = None,
    ) -> list[tuple]:
        """Every task tuple of the fleet, in stream order.

        When the experiment :attr:`supports_checkpoints` and a
        ``checkpoint_dir`` is given, each task's ``checkpoint_path`` slot
        is filled with a per-slot file (``slot-{flat:05d}.ckpt``, flat
        stream position — stable across resumes because the grid order
        is) and ``checkpoint_every`` with the cadence; otherwise both
        slots compile to ``None`` and the point function runs
        checkpoint-free.
        """
        sweep = self.sweep()
        names = sweep.names()
        dims = [len(self.grid[k]) for k in names]
        tasks: list[tuple] = []
        for flat, pt in enumerate(sweep.points()):
            if self.seed_scheme == "axes":
                axes = _unravel(flat // self.replicates, dims)
                seed = derive_seed(self.root_seed, *axes, pt.replicate)
            else:
                seed = pt.seed
            if checkpoint_dir is not None:
                ckpt_path = str(Path(checkpoint_dir) / f"slot-{flat:05d}.ckpt")
            else:
                ckpt_path = None
            values = []
            for name in self.task_fields:
                if name == "seed":
                    values.append(seed)
                elif name == "replicate":
                    values.append(pt.replicate)
                elif name == "checkpoint_path":
                    values.append(ckpt_path)
                elif name == "checkpoint_every":
                    values.append(checkpoint_every if ckpt_path else None)
                elif name in self.grid:
                    values.append(pt[name])
                else:
                    values.append(self.fixed[name])
            tasks.append(tuple(values))
        return tasks

    def task_checkpoint(self, task: tuple) -> "str | None":
        """The task's compiled ``checkpoint_path`` slot, or ``None``."""
        if not self.supports_checkpoints:
            return None
        return task[list(self.task_fields).index("checkpoint_path")]

    # ------------------------------------------------------------------
    # Stream identity
    # ------------------------------------------------------------------
    def task_coords(self, task: tuple) -> dict:
        """The task's grid coordinates (quarantine + resume identity)."""
        coords = {}
        for name in self.coord_fields:
            if name in self.coord_overrides:
                value = self.coord_overrides[name]
            else:
                value = task[list(self.task_fields).index(name)]
            if name in self.int_coords:
                value = int(value)
            coords[name] = value
        return coords

    def check_resumed(self, coords: dict, rec) -> None:
        """Raise unless a resumed record sits in the slot ``coords`` pins.

        Seeds derive from grid *position*, so the coordinate fields alone
        cannot see a changed run-constant; the caller's config header
        covers those, and this per-record check still catches a matching
        header pasted onto foreign records.
        """
        if isinstance(rec, FleetFailure):
            if rec.coords != coords:
                raise StoreIntegrityError(
                    f"resume mismatch: quarantined slot {rec.coords!r} "
                    "does not match this run's grid/configuration — "
                    "same arguments required"
                )
            return
        theirs = {name: _field_of(rec, name) for name in self.coord_fields}
        if theirs != coords:
            detail = ", ".join(
                f"{name}={value!r}" for name, value in theirs.items()
            )
            raise StoreIntegrityError(
                f"resume mismatch: existing record ({detail}) does not "
                "match this run's grid/configuration — same arguments "
                "required"
            )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def make_store(self, path, durability: str = "flush") -> JsonlStore:
        """The experiment's resumable stream at ``path``."""
        if self.store_factory is not None:
            return self.store_factory(path, durability)
        decode = self.decode_record or _decode_any
        return JsonlStore(
            path,
            config_key=self.config_key,
            config_version=self.config_version,
            config=dict(self.config),
            decode=decode,
            record_name=self.record_name,
            write_records=write_jsonl_records,
            durability=durability,
            experiment={
                "name": self.name,
                "order": list(self.sweep().names()),
                "seed_scheme": self.seed_scheme,
            },
        )


def _decode_any(obj: dict):
    failure = maybe_decode_failure(obj)
    if failure is not None:
        return failure
    if not isinstance(obj, dict):
        raise TypeError(f"not a record object: {obj!r}")
    return dict(obj)


def _field_of(rec, name: str):
    if isinstance(rec, Mapping):
        return rec[name]
    return getattr(rec, name)


def _unravel(flat: int, dims: Sequence[int]) -> tuple[int, ...]:
    axes = []
    for size in reversed(dims):
        axes.append(flat % size)
        flat //= size
    return tuple(reversed(axes))


def run_fleet(
    experiment: Experiment,
    *,
    workers: int = 1,
    jsonl_path: "str | Path | None" = None,
    resume: bool = False,
    timeout: "float | None" = None,
    retries: int = 2,
    backoff: float = 0.05,
    on_error: str = "record",
    retry_failed: bool = False,
    durability: str = "flush",
    checkpoint_dir: "str | Path | None" = None,
    checkpoint_every: "int | None" = None,
    deadline: "float | None" = None,
) -> list:
    """Execute ``experiment`` as a sharded resumable fleet; one record per task.

    This is the single runner behind every registered experiment (and the
    ``run_census`` / ``run_trajectory_census`` shims): enumeration via the
    compiled task list, execution via :func:`~repro.parallel.map_streamed`
    (workers > 1 shards over the persistent pool, records bit-identical to
    serial for any worker count), persistence via the experiment's
    :class:`~repro.io.jsonl_store.JsonlStore` with the full DESIGN.md §9
    contract: streamed record order, resume with header + per-record
    validation, quarantined ``FleetFailure`` slots under
    ``on_error="record"``, ``retry_failed=True`` re-running exactly the
    quarantined slots of a resumed prefix, and ``durability`` selecting
    the flush cadence.

    ``checkpoint_dir`` (DESIGN.md §13, experiments that declare the
    checkpoint task slots only) gives every slot a crash-safe in-task
    checkpoint file under that directory: a killed/timed-out/preempted
    task resumes from its latest applied-move snapshot on the next
    attempt — same bytes as an uninterrupted run — instead of restarting,
    and quarantined ``FleetFailure`` records carry the slot's checkpoint
    progress.  ``deadline`` (absolute :func:`time.monotonic` instant) is
    forwarded into the pool *and* the task bodies: at the deadline,
    checkpoint-armed tasks snapshot and yield, so a later
    ``resume=True, retry_failed=True`` run finishes the fleet from where
    it stopped.
    """
    if resume and jsonl_path is None:
        raise ConfigurationError("resume=True needs a jsonl_path to resume from")
    if checkpoint_every is not None and checkpoint_dir is None:
        raise ConfigurationError(
            "checkpoint_every needs a checkpoint_dir to write to"
        )
    if checkpoint_dir is not None:
        if not experiment.supports_checkpoints:
            raise ConfigurationError(
                f"experiment {experiment.name!r} does not declare the "
                f"checkpoint task fields {_CHECKPOINT_FIELDS}; it cannot "
                "run with checkpoint_dir"
            )
        Path(checkpoint_dir).mkdir(parents=True, exist_ok=True)
    tasks = experiment.compile_tasks(
        checkpoint_dir=checkpoint_dir, checkpoint_every=checkpoint_every,
    )

    def quarantine(failure: TaskFailure, task: tuple) -> FleetFailure:
        ckpt_path = experiment.task_checkpoint(task)
        progress = None
        if ckpt_path is not None:
            meta = peek_checkpoint(ckpt_path)
            if meta is not None:
                progress = {"path": str(ckpt_path), **meta}
        return FleetFailure(
            coords=experiment.task_coords(task),
            error=failure.error,
            attempts=failure.attempts,
            checkpoint=progress,
        )

    records: list = []
    sink = None
    store = None
    if jsonl_path is not None:
        store = experiment.make_store(jsonl_path, durability)

        def check_record(idx: int, rec) -> None:
            experiment.check_resumed(experiment.task_coords(tasks[idx]), rec)

        records = store.start_stream(resume, len(tasks), check_record)
        if retry_failed and records:
            failed_idx = [
                i for i, r in enumerate(records)
                if isinstance(r, FleetFailure)
            ]
            if failed_idx:
                redo = [tasks[i] for i in failed_idx]
                fixed = map_streamed(
                    experiment.point_fn, redo, workers,
                    timeout=timeout, retries=retries, backoff=backoff,
                    on_error=on_error, deadline=deadline,
                )
                for sub, value in enumerate(fixed):
                    if isinstance(value, TaskFailure):
                        value = quarantine(value, redo[sub])
                    records[failed_idx[sub]] = value
                store.rewrite_prefix(records)
        tasks = tasks[len(records):]
        sink = store.open_append()

    def as_records(part: list) -> list:
        # TaskFailure.index is absolute within the mapped (post-resume)
        # task slice, so it looks its coordinates up directly.
        return [
            quarantine(item, tasks[item.index])
            if isinstance(item, TaskFailure)
            else item
            for item in part
        ]

    try:
        fresh = map_streamed(
            experiment.point_fn,
            tasks,
            workers,
            consume=None
            if sink is None
            else (lambda part: store.append(sink, as_records(part))),
            timeout=timeout,
            retries=retries,
            backoff=backoff,
            on_error=on_error,
            deadline=deadline,
        )
        records += as_records(fresh)
    finally:
        if sink is not None:
            sink.close()
    return records
