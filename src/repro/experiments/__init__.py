"""The declarative experiment layer (DESIGN.md §12).

:mod:`repro.experiments.experiment` holds the :class:`Experiment`
dataclass and the unified :func:`run_fleet` runner;
:mod:`repro.experiments.registry` holds the registered instances (the
censuses and the bench arms) and is loaded lazily — it imports
:mod:`repro.core`, which itself builds on this package's experiment
machinery, so eager loading here would cycle during package init.
"""

from .experiment import Experiment, run_fleet, write_jsonl_records

__all__ = [
    "Experiment",
    "build_experiment",
    "run_fleet",
    "write_jsonl_records",
]


def build_experiment(name: str, **kwargs) -> Experiment:
    """Build a registered experiment's :class:`Experiment` by name."""
    from .registry import get_experiment

    return get_experiment(name).build(**kwargs)


def __getattr__(name: str):
    # Lazy registry access (see the module docstring for the cycle).
    if name in (
        "ExperimentDef",
        "experiment_defs",
        "experiment_names",
        "get_experiment",
        "register_experiment",
    ):
        from . import registry

        return getattr(registry, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
