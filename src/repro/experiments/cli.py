"""``repro experiment`` — the one CLI over every registered experiment.

Subcommands::

    repro experiment list                      # registered experiments
    repro experiment run census --n 64 ...     # fresh (or --resume) fleet
    repro experiment resume census ... --retry-failed
    repro experiment status census --out results/census_fleet.jsonl

``run``/``resume`` compile the named experiment and execute it through
:func:`~repro.experiments.experiment.run_fleet` with the full DESIGN.md
§9 fault-tolerance contract; their flags are each experiment's grid flags
(from the registry) plus the shared execution flags the fleet scripts
used to take.  ``status`` reads the stream's run-config header and
quarantine records via :func:`~repro.io.jsonl_store.summarize_stream` —
progress, quarantined grid coordinates, and a ready-to-paste
``--retry-failed`` resume command, with no recomputation.

``scripts/census_fleet.py`` and ``scripts/trajectory_fleet.py`` are thin
deprecation shims forwarding here (``experiment run census`` /
``experiment run trajectory``).
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from ..parallel import default_workers
from .experiment import run_fleet
from .registry import ExperimentDef, experiment_defs, get_experiment

__all__ = ["add_experiment_parser", "run_experiment_command"]


def _execution_arguments(
    ap: argparse.ArgumentParser, defn: ExperimentDef, *, with_resume: bool
) -> None:
    """The shared fleet-execution flags (mirroring the retired scripts)."""
    if with_resume:
        ap.add_argument("--resume", action="store_true",
                        help="continue an interrupted fleet from --out's "
                             "prefix (same arguments required; validated "
                             "against the file's config header)")
    ap.add_argument("--retry-failed", action="store_true",
                    help="when resuming: re-run the quarantined slots of "
                         "the streamed prefix before continuing")
    ap.add_argument("--workers", type=int, default=None,
                    help="task shards (default: cores - 1)")
    ap.add_argument("--task-timeout", type=float, default=None,
                    metavar="SECONDS",
                    help="per-chunk wall-clock budget; a chunk exceeding it "
                         "is presumed hung, its workers are killed, and it "
                         "is retried (default: no timeout)")
    ap.add_argument("--retries", type=int, default=2,
                    help="per-task failure budget beyond the first attempt "
                         "(default: 2)")
    ap.add_argument("--fail-fast", action="store_true",
                    help="abort the fleet on the first permanently failed "
                         "task instead of quarantining it in the stream")
    ap.add_argument("--out", type=Path, default=Path(defn.default_out))


def add_experiment_parser(sub) -> None:
    """Attach the ``experiment`` subcommand tree to a subparsers object."""
    p = sub.add_parser(
        "experiment",
        help="declarative experiment fleets (DESIGN.md §12)",
    )
    esub = p.add_subparsers(dest="experiment_command", required=True)

    esub.add_parser("list", help="list registered experiments")

    run_p = esub.add_parser(
        "run", help="run an experiment as a sharded resumable fleet"
    )
    run_sub = run_p.add_subparsers(dest="experiment_name", required=True)
    for defn in experiment_defs():
        ep = run_sub.add_parser(defn.name, help=defn.summary)
        defn.add_arguments(ep)
        _execution_arguments(ep, defn, with_resume=True)

    res_p = esub.add_parser(
        "resume", help="resume an interrupted fleet (same flags required)"
    )
    res_sub = res_p.add_subparsers(dest="experiment_name", required=True)
    for defn in experiment_defs():
        ep = res_sub.add_parser(defn.name, help=defn.summary)
        defn.add_arguments(ep)
        _execution_arguments(ep, defn, with_resume=False)

    st_p = esub.add_parser(
        "status",
        help="report a stream's progress + quarantine without recomputing",
    )
    st_sub = st_p.add_subparsers(dest="experiment_name", required=True)
    for defn in experiment_defs():
        ep = st_sub.add_parser(defn.name, help=defn.summary)
        ep.add_argument("--out", type=Path, default=Path(defn.default_out))


def _status(defn: ExperimentDef, out: Path) -> int:
    # Deferred: keep the status path free of any fleet machinery import.
    from ..io.jsonl_store import summarize_stream

    if not out.exists():
        print(f"{defn.name}: no stream at {out} (not started)")
        return 1
    summary = summarize_stream(out, record_name=f"{defn.name} record")
    header = summary.header
    if header is None:
        print(f"{defn.name}: {out} has no run-config header "
              "(pre-header legacy file; resume would refuse it)")
        return 1
    if defn.config_key not in header:
        print(f"{defn.name}: {out} is not a {defn.name} stream "
              f"(header lacks {defn.config_key!r})")
        return 1
    total = defn.total_from_header(header)
    tail = " + torn tail (dropped on resume)" if summary.torn_tail else ""
    print(f"{defn.name}: {out}")
    print(f"  progress: {summary.completed}/{total} slots "
          f"({summary.results} results, "
          f"{len(summary.failures)} quarantined){tail}")
    if summary.failures:
        print("  quarantined slots:")
        for failure in summary.failures:
            coords = ", ".join(
                f"{k}={v!r}" for k, v in failure.coords.items()
            )
            print(f"    {coords} — {failure.attempts} attempt(s): "
                  f"{failure.error}")
    if summary.failures or summary.completed < total or summary.torn_tail:
        flags = " ".join(defn.flags_from_header(header))
        retry = " --retry-failed" if summary.failures else ""
        print("  resume with:")
        print(f"    PYTHONPATH=src python -m repro.cli experiment resume "
              f"{defn.name} {flags}{retry} --out {out}")
    else:
        print("  complete")
    return 0


def run_experiment_command(args: argparse.Namespace) -> int:
    command = args.experiment_command
    if command == "list":
        for defn in experiment_defs():
            print(f"{defn.name:26s} {defn.summary}")
        return 0
    defn = get_experiment(args.experiment_name)
    if command == "status":
        return _status(defn, args.out)

    experiment = defn.from_args(args)
    workers = default_workers() if args.workers is None else args.workers
    resume = command == "resume" or getattr(args, "resume", False)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    verb = "resuming" if resume else "running"
    print(f"{defn.name}: {verb} {experiment.total_tasks()} task(s) "
          f"on {workers} workers -> {args.out}", flush=True)
    start = time.perf_counter()
    records = run_fleet(
        experiment,
        workers=workers,
        jsonl_path=args.out,
        resume=resume,
        timeout=args.task_timeout,
        retries=args.retries,
        on_error="raise" if args.fail_fast else "record",
        retry_failed=args.retry_failed,
    )
    defn.report(records, time.perf_counter() - start)
    return 0
