"""``repro experiment`` — the one CLI over every registered experiment.

Subcommands::

    repro experiment list                      # registered experiments
    repro experiment run census --n 64 ...     # fresh (or --resume) fleet
    repro experiment resume census ... --retry-failed
    repro experiment status census --out results/census_fleet.jsonl

``run``/``resume`` compile the named experiment and execute it through
:func:`~repro.experiments.experiment.run_fleet` with the full DESIGN.md
§9 fault-tolerance contract; their flags are each experiment's grid flags
(from the registry) plus the shared execution flags the fleet scripts
used to take.  ``status`` reads the stream's run-config header and
quarantine records via :func:`~repro.io.jsonl_store.summarize_stream` —
progress, quarantined grid coordinates, and a ready-to-paste
``--retry-failed`` resume command, with no recomputation; ``--json``
emits the same report machine-readably, including live per-slot
checkpoint progress (DESIGN.md §13).

``scripts/census_fleet.py`` and ``scripts/trajectory_fleet.py`` are thin
deprecation shims forwarding here (``experiment run census`` /
``experiment run trajectory``).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from ..errors import DeadlineExceeded
from ..parallel import default_workers
from .experiment import run_fleet
from .registry import ExperimentDef, experiment_defs, get_experiment

__all__ = ["add_experiment_parser", "run_experiment_command"]


def _execution_arguments(
    ap: argparse.ArgumentParser, defn: ExperimentDef, *, with_resume: bool
) -> None:
    """The shared fleet-execution flags (mirroring the retired scripts)."""
    if with_resume:
        ap.add_argument("--resume", action="store_true",
                        help="continue an interrupted fleet from --out's "
                             "prefix (same arguments required; validated "
                             "against the file's config header)")
    ap.add_argument("--retry-failed", action="store_true",
                    help="when resuming: re-run the quarantined slots of "
                         "the streamed prefix before continuing")
    ap.add_argument("--workers", type=int, default=None,
                    help="task shards (default: cores - 1)")
    ap.add_argument("--task-timeout", type=float, default=None,
                    metavar="SECONDS",
                    help="per-chunk wall-clock budget; a chunk exceeding it "
                         "is presumed hung, its workers are killed, and it "
                         "is retried (default: no timeout)")
    ap.add_argument("--retries", type=int, default=2,
                    help="per-task failure budget beyond the first attempt "
                         "(default: 2)")
    ap.add_argument("--fail-fast", action="store_true",
                    help="abort the fleet on the first permanently failed "
                         "task instead of quarantining it in the stream")
    ap.add_argument("--checkpoint-dir", type=Path, default=None,
                    metavar="DIR",
                    help="give every slot a crash-safe in-task checkpoint "
                         "under DIR (DESIGN.md §13): killed or preempted "
                         "tasks resume mid-run on retry instead of "
                         "restarting (checkpoint-capable experiments only)")
    ap.add_argument("--checkpoint-every", type=int, default=None,
                    metavar="MOVES",
                    help="snapshot cadence in applied moves (requires "
                         "--checkpoint-dir; default: snapshot only on "
                         "deadline preemption)")
    ap.add_argument("--deadline", type=float, default=None,
                    metavar="SECONDS",
                    help="whole-fleet wall-clock budget: tasks running when "
                         "it is spent checkpoint-and-yield (with "
                         "--checkpoint-dir) and are quarantined for a later "
                         "resume --retry-failed, never retried past the "
                         "budget (default: no deadline)")
    ap.add_argument("--out", type=Path, default=Path(defn.default_out))


def add_experiment_parser(sub) -> None:
    """Attach the ``experiment`` subcommand tree to a subparsers object."""
    p = sub.add_parser(
        "experiment",
        help="declarative experiment fleets (DESIGN.md §12)",
    )
    esub = p.add_subparsers(dest="experiment_command", required=True)

    esub.add_parser("list", help="list registered experiments")

    run_p = esub.add_parser(
        "run", help="run an experiment as a sharded resumable fleet"
    )
    run_sub = run_p.add_subparsers(dest="experiment_name", required=True)
    for defn in experiment_defs():
        ep = run_sub.add_parser(defn.name, help=defn.summary)
        defn.add_arguments(ep)
        _execution_arguments(ep, defn, with_resume=True)

    res_p = esub.add_parser(
        "resume", help="resume an interrupted fleet (same flags required)"
    )
    res_sub = res_p.add_subparsers(dest="experiment_name", required=True)
    for defn in experiment_defs():
        ep = res_sub.add_parser(defn.name, help=defn.summary)
        defn.add_arguments(ep)
        _execution_arguments(ep, defn, with_resume=False)

    st_p = esub.add_parser(
        "status",
        help="report a stream's progress + quarantine without recomputing",
    )
    st_sub = st_p.add_subparsers(dest="experiment_name", required=True)
    for defn in experiment_defs():
        ep = st_sub.add_parser(defn.name, help=defn.summary)
        ep.add_argument("--out", type=Path, default=Path(defn.default_out))
        ep.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable status on stdout: progress, "
                             "quarantined slots with coordinates, and live "
                             "per-slot checkpoint progress")


def _slot_checkpoint(failure) -> "dict | None":
    """A quarantined slot's checkpoint progress, freshest view available.

    The quarantine record carries the progress block peeked when the slot
    failed; if the checkpoint file still exists (no healing retry yet),
    re-peek it so status reports *live* progress — a crashed-and-retried
    slot may have advanced past what the stream recorded.
    """
    # Deferred: keep the status path free of any fleet machinery import.
    from ..io.checkpoint import peek_checkpoint

    recorded = getattr(failure, "checkpoint", None)
    if not recorded or not recorded.get("path"):
        return None
    live = peek_checkpoint(recorded["path"])
    if live is not None:
        return {"path": recorded["path"], **live}
    return dict(recorded)


def _status(defn: ExperimentDef, out: Path, as_json: bool = False) -> int:
    # Deferred: keep the status path free of any fleet machinery import.
    from ..io.jsonl_store import summarize_stream

    def fail(error: str) -> int:
        if as_json:
            print(json.dumps(
                {"experiment": defn.name, "stream": str(out), "error": error}
            ))
        else:
            print(f"{defn.name}: {error}")
        return 1

    if not out.exists():
        return fail(f"no stream at {out} (not started)")
    summary = summarize_stream(out, record_name=f"{defn.name} record")
    header = summary.header
    if header is None:
        return fail(f"{out} has no run-config header "
                    "(pre-header legacy file; resume would refuse it)")
    if defn.config_key not in header:
        return fail(f"{out} is not a {defn.name} stream "
                    f"(header lacks {defn.config_key!r})")
    total = defn.total_from_header(header)
    complete = (
        not summary.failures
        and summary.completed >= total
        and not summary.torn_tail
    )
    slots = [
        {
            "coords": dict(failure.coords),
            "attempts": failure.attempts,
            "error": failure.error,
            "checkpoint": _slot_checkpoint(failure),
        }
        for failure in summary.failures
    ]
    if as_json:
        print(json.dumps({
            "experiment": defn.name,
            "stream": str(out),
            "total": total,
            "completed": summary.completed,
            "results": summary.results,
            "quarantined": len(slots),
            "torn_tail": summary.torn_tail,
            "complete": complete,
            "failures": slots,
        }, sort_keys=True))
        return 0
    tail = " + torn tail (dropped on resume)" if summary.torn_tail else ""
    print(f"{defn.name}: {out}")
    print(f"  progress: {summary.completed}/{total} slots "
          f"({summary.results} results, "
          f"{len(summary.failures)} quarantined){tail}")
    if summary.failures:
        print("  quarantined slots:")
        for failure, slot in zip(summary.failures, slots):
            coords = ", ".join(
                f"{k}={v!r}" for k, v in failure.coords.items()
            )
            print(f"    {coords} — {failure.attempts} attempt(s): "
                  f"{failure.error}")
            ckpt = slot["checkpoint"]
            if ckpt:
                progress = ", ".join(
                    f"{k}={v}" for k, v in sorted(ckpt.items())
                    if k != "path"
                )
                print(f"      checkpointed: {progress or 'yes'} "
                      f"({ckpt['path']})")
    if not complete:
        flags = " ".join(defn.flags_from_header(header))
        retry = " --retry-failed" if summary.failures else ""
        print("  resume with:")
        print(f"    PYTHONPATH=src python -m repro.cli experiment resume "
              f"{defn.name} {flags}{retry} --out {out}")
    else:
        print("  complete")
    return 0


def run_experiment_command(args: argparse.Namespace) -> int:
    command = args.experiment_command
    if command == "list":
        for defn in experiment_defs():
            print(f"{defn.name:26s} {defn.summary}")
        return 0
    defn = get_experiment(args.experiment_name)
    if command == "status":
        return _status(defn, args.out, getattr(args, "as_json", False))

    experiment = defn.from_args(args)
    workers = default_workers() if args.workers is None else args.workers
    resume = command == "resume" or getattr(args, "resume", False)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    verb = "resuming" if resume else "running"
    print(f"{defn.name}: {verb} {experiment.total_tasks()} task(s) "
          f"on {workers} workers -> {args.out}", flush=True)
    start = time.perf_counter()
    deadline = (
        None if args.deadline is None
        else time.monotonic() + args.deadline
    )
    try:
        records = run_fleet(
            experiment,
            workers=workers,
            jsonl_path=args.out,
            resume=resume,
            timeout=args.task_timeout,
            retries=args.retries,
            on_error="raise" if args.fail_fast else "record",
            retry_failed=args.retry_failed,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            deadline=deadline,
        )
    except DeadlineExceeded as exc:
        # The streamed prefix (checkpointed yields included) is already
        # durable; the run simply stops here instead of dying mid-write.
        print(f"{defn.name}: deadline spent — {exc}", flush=True)
        print("  continue with:")
        print(f"    PYTHONPATH=src python -m repro.cli experiment resume "
              f"{defn.name} ... --retry-failed --out {args.out}")
        return 3
    defn.report(records, time.perf_counter() - start)
    return 0
