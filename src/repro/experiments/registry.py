"""The registered experiments: censuses and bench arms as declarative specs.

Each entry is an :class:`ExperimentDef` — the experiment's CLI surface
(flags mirroring the retired fleet scripts), its builder (keyword
arguments → a compiled :class:`~repro.experiments.experiment.Experiment`),
a post-run console summary, and the header-reading hooks ``repro
experiment status`` uses to report progress and reconstruct a
ready-to-paste resume command without recomputing anything.

Adding a scenario is adding one ``register_experiment`` call here (lint
rule R9 then requires the new name to appear in the golden-file suite,
``tests/experiments/``); the execution, persistence, and fault-tolerance
semantics all come from :func:`~repro.experiments.experiment.run_fleet`.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Callable, Mapping

from ..core.census import census_experiment, census_to_rows
from ..core.costmodel import cost_model_spec
from ..core.trajcensus import trajectory_experiment
from ..errors import ConfigurationError
from ..io.jsonl_store import FleetFailure
from .experiment import Experiment

__all__ = [
    "ExperimentDef",
    "experiment_defs",
    "experiment_names",
    "get_experiment",
    "register_experiment",
]

_FAMILIES = ["tree", "sparse", "dense"]
_SCHEDULES = ["round_robin", "random", "greedy"]
_RESPONDERS = ["best", "first"]
_AUDIT_MODES = ["batched", "repair", "rebuild"]
_ENGINE_MODES = ["batched", "incremental", "oracle"]

_SPEC_HELP = (
    "cost-model spec: sum | max | interest-{sum,max}:k=K[,seed=S] | "
    "budget-{sum,max}:cap=C"
)


@dataclass
class ExperimentDef:
    """One registry entry: CLI surface + builder + status hooks.

    ``add_arguments`` attaches the experiment's grid flags to an argparse
    parser; ``from_args`` compiles the parsed namespace to an
    :class:`Experiment`; ``build`` is the keyword-argument equivalent for
    programmatic callers (the bench arms).  ``total_from_header`` and
    ``flags_from_header`` reconstruct the fleet size and the original
    command-line flags from a stream's run-config header — what
    ``status`` needs to report progress and print a paste-ready
    ``--retry-failed`` resume command.  ``report`` prints the post-run
    console summary the fleet scripts used to.
    """

    name: str
    summary: str
    config_key: str
    default_out: str
    add_arguments: Callable[[argparse.ArgumentParser], None]
    from_args: Callable[[argparse.Namespace], Experiment]
    build: Callable[..., Experiment]
    report: Callable[[list, float], None]
    total_from_header: Callable[[Mapping], int]
    flags_from_header: Callable[[Mapping], "list[str]"]


_REGISTRY: "dict[str, ExperimentDef]" = {}


def register_experiment(defn: ExperimentDef) -> ExperimentDef:
    if defn.name in _REGISTRY:
        raise ConfigurationError(
            f"experiment {defn.name!r} is already registered"
        )
    _REGISTRY[defn.name] = defn
    return defn


def experiment_names() -> "list[str]":
    return list(_REGISTRY)


def experiment_defs() -> "list[ExperimentDef]":
    return list(_REGISTRY.values())


def get_experiment(name: str) -> ExperimentDef:
    if name not in _REGISTRY:
        known = ", ".join(_REGISTRY)
        raise ConfigurationError(
            f"unknown experiment {name!r} (registered: {known})"
        )
    return _REGISTRY[name]


def _quarantine_report(failures: "list[FleetFailure]") -> None:
    if failures:
        print(f"quarantine: {len(failures)} task(s) failed permanently "
              "(re-run with --resume --retry-failed to retry them)")
        for f in failures:
            print(f"  {f.coords} after {f.attempts} attempt(s): {f.error}")


# ----------------------------------------------------------------------
# census — the equilibrium census (Theorem 9 empirics)
# ----------------------------------------------------------------------
def _census_arguments(ap: argparse.ArgumentParser) -> None:
    ap.add_argument("--n", type=int, nargs="+", default=[512],
                    help="graph sizes (default: 512)")
    ap.add_argument("--families", nargs="+", default=_FAMILIES,
                    choices=_FAMILIES)
    ap.add_argument("--replicates", type=int, default=8)
    ap.add_argument("--objective", type=cost_model_spec, default="sum",
                    metavar="SPEC", help=f"{_SPEC_HELP} (default: sum)")
    ap.add_argument("--schedule", default="round_robin", choices=_SCHEDULES)
    ap.add_argument("--responder", default="best", choices=_RESPONDERS)
    ap.add_argument("--root-seed", type=int, default=0)
    ap.add_argument("--max-steps", type=int, default=200_000)
    ap.add_argument("--audit-mode", default="batched", choices=_AUDIT_MODES,
                    help="equilibrium-audit kernel for endpoint checks")
    ap.add_argument("--no-verify", action="store_true",
                    help="skip the exact equilibrium audit of endpoints")


def _census_from_args(args: argparse.Namespace) -> Experiment:
    return census_experiment(
        args.n,
        families=tuple(args.families),
        replicates=args.replicates,
        objective=args.objective,
        schedule=args.schedule,
        responder=args.responder,
        root_seed=args.root_seed,
        max_steps=args.max_steps,
        verify=not args.no_verify,
        audit_mode=args.audit_mode,
    )


def _census_report(records: list, elapsed: float) -> None:
    failures = [r for r in records if isinstance(r, FleetFailure)]
    rows = [r for r in census_to_rows(records) if "fleet_failure" not in r]
    converged = [r for r in rows if r["converged"]]
    verified = [r for r in converged if r["verified_equilibrium"]]
    diam = max((r["diameter_final"] for r in converged), default=float("nan"))
    print(
        f"done in {elapsed:.1f}s: {len(converged)}/{len(rows)} converged, "
        f"{len(verified)} verified equilibria, max final diameter {diam}"
    )
    _quarantine_report(failures)


def _census_total(header: Mapping) -> int:
    return (
        len(header["n_values"]) * len(header["families"])
        * header["replicates"]
    )


def _census_flags(header: Mapping) -> "list[str]":
    flags = ["--n", *[str(n) for n in header["n_values"]],
             "--families", *header["families"],
             "--replicates", str(header["replicates"]),
             "--objective", header["objective"],
             "--schedule", header["schedule"],
             "--responder", header["responder"],
             "--root-seed", str(header["root_seed"]),
             "--max-steps", str(header["max_steps"]),
             "--audit-mode", header["audit_mode"]]
    if not header["verify"]:
        flags.append("--no-verify")
    return flags


register_experiment(ExperimentDef(
    name="census",
    summary="equilibrium census: dynamics endpoints over n × family",
    config_key="census_config",
    default_out="results/census_fleet.jsonl",
    add_arguments=_census_arguments,
    from_args=_census_from_args,
    build=census_experiment,
    report=_census_report,
    total_from_header=_census_total,
    flags_from_header=_census_flags,
))


# ----------------------------------------------------------------------
# trajectory — the trajectory census (Kawald–Lenzner dynamics questions)
# ----------------------------------------------------------------------
def _trajectory_arguments(ap: argparse.ArgumentParser) -> None:
    ap.add_argument("--n", type=int, nargs="+", default=[32, 64],
                    help="graph sizes (default: 32 64)")
    ap.add_argument("--families", nargs="+", default=_FAMILIES,
                    choices=_FAMILIES)
    ap.add_argument("--objectives", type=cost_model_spec, nargs="+",
                    default=["sum"], metavar="SPEC",
                    help=f"{_SPEC_HELP}s (default: sum)")
    ap.add_argument("--schedules", nargs="+", default=["round_robin"],
                    choices=_SCHEDULES)
    ap.add_argument("--responders", nargs="+", default=["best"],
                    choices=_RESPONDERS)
    ap.add_argument("--replicates", type=int, default=4)
    ap.add_argument("--root-seed", type=int, default=0)
    ap.add_argument("--max-steps", type=int, default=20_000)
    ap.add_argument("--audit-mode", default="batched", choices=_AUDIT_MODES,
                    help="equilibrium-audit kernel for endpoint checks")
    ap.add_argument("--engine-mode", default="batched", choices=_ENGINE_MODES,
                    help="dynamics engine (trajectories are bit-identical "
                         "across engine-backed modes)")
    ap.add_argument("--no-verify", action="store_true",
                    help="skip the exact equilibrium audit of endpoints")


def _trajectory_from_args(args: argparse.Namespace) -> Experiment:
    return trajectory_experiment(
        args.n,
        families=tuple(args.families),
        objectives=tuple(args.objectives),
        schedules=tuple(args.schedules),
        responders=tuple(args.responders),
        replicates=args.replicates,
        root_seed=args.root_seed,
        max_steps=args.max_steps,
        verify=not args.no_verify,
        audit_mode=args.audit_mode,
        engine_mode=args.engine_mode,
    )


def _trajectory_report(records: list, elapsed: float) -> None:
    failures = [r for r in records if isinstance(r, FleetFailure)]
    results = [r for r in records if not isinstance(r, FleetFailure)]
    converged = [r for r in results if r.converged]
    cycles = [r for r in results if r.cycle_detected]
    exhausted = [r for r in results if r.exhausted]
    verified = sum(1 for r in converged if r.verified_equilibrium)
    distinct = len({r.final_fingerprint for r in converged})
    print(
        f"done in {elapsed:.1f}s: {len(converged)}/{len(results)} converged "
        f"({verified} verified equilibria, {distinct} distinct terminal "
        f"graphs), {len(cycles)} cycles, {len(exhausted)} exhausted"
    )
    _quarantine_report(failures)


def _trajectory_total(header: Mapping) -> int:
    return (
        len(header["n_values"]) * len(header["families"])
        * len(header["objectives"]) * len(header["schedules"])
        * len(header["responders"]) * header["replicates"]
    )


def _trajectory_flags(header: Mapping) -> "list[str]":
    flags = ["--n", *[str(n) for n in header["n_values"]],
             "--families", *header["families"],
             "--objectives", *header["objectives"],
             "--schedules", *header["schedules"],
             "--responders", *header["responders"],
             "--replicates", str(header["replicates"]),
             "--root-seed", str(header["root_seed"]),
             "--max-steps", str(header["max_steps"]),
             "--audit-mode", header["audit_mode"]]
    if header["activation_accounting"] == "oracle":
        flags += ["--engine-mode", "oracle"]
    if not header["verify"]:
        flags.append("--no-verify")
    return flags


register_experiment(ExperimentDef(
    name="trajectory",
    summary="trajectory census: dynamics over schedule × responder × "
            "model × family × n",
    config_key="trajectory_census_config",
    default_out="results/trajectory_fleet.jsonl",
    add_arguments=_trajectory_arguments,
    from_args=_trajectory_from_args,
    build=trajectory_experiment,
    report=_trajectory_report,
    total_from_header=_trajectory_total,
    flags_from_header=_trajectory_flags,
))


# ----------------------------------------------------------------------
# bench arms — the fleet workloads of benchmarks/bench_checker_scaling.py
# as pinned experiments (grids fixed up to size, run_* library defaults)
# ----------------------------------------------------------------------
def _bench_census_arguments(ap: argparse.ArgumentParser) -> None:
    ap.add_argument("--n", type=int, nargs="+", default=[48],
                    help="graph sizes (default: 48; smoke uses 24)")
    ap.add_argument("--replicates", type=int, default=2)


def _bench_census_build(n=(48,), replicates=2) -> Experiment:
    exp = census_experiment(
        list(n),
        families=("tree", "sparse", "dense"),
        replicates=replicates,
        root_seed=7,
    )
    exp.name = "bench-census-scaling"
    return exp


def _bench_census_from_args(args: argparse.Namespace) -> Experiment:
    return _bench_census_build(n=args.n, replicates=args.replicates)


def _bench_census_flags(header: Mapping) -> "list[str]":
    return ["--n", *[str(n) for n in header["n_values"]],
            "--replicates", str(header["replicates"])]


register_experiment(ExperimentDef(
    name="bench-census-scaling",
    summary="census fleet arm of the checker-scaling benchmark "
            "(3 families × 2 replicates, root seed 7)",
    config_key="census_config",
    default_out="results/bench_census_fleet.jsonl",
    add_arguments=_bench_census_arguments,
    from_args=_bench_census_from_args,
    build=_bench_census_build,
    report=_census_report,
    total_from_header=_census_total,
    flags_from_header=_bench_census_flags,
))


def _bench_trajectory_arguments(ap: argparse.ArgumentParser) -> None:
    ap.add_argument("--n", type=int, nargs="+", default=[24],
                    help="graph sizes (default: 24; smoke uses 12)")
    ap.add_argument("--replicates", type=int, default=2)


def _bench_trajectory_build(n=(24,), replicates=2) -> Experiment:
    exp = trajectory_experiment(
        list(n),
        families=("tree", "sparse"),
        objectives=("sum", "interest-sum:k=3,seed=0"),
        schedules=("round_robin", "random"),
        responders=("best",),
        replicates=replicates,
        root_seed=11,
        max_steps=4000,
    )
    exp.name = "bench-trajectory-scaling"
    return exp


def _bench_trajectory_from_args(args: argparse.Namespace) -> Experiment:
    return _bench_trajectory_build(n=args.n, replicates=args.replicates)


def _bench_trajectory_flags(header: Mapping) -> "list[str]":
    return ["--n", *[str(n) for n in header["n_values"]],
            "--replicates", str(header["replicates"])]


register_experiment(ExperimentDef(
    name="bench-trajectory-scaling",
    summary="trajectory fleet arm of the checker-scaling benchmark "
            "(2 objectives × 2 schedules, root seed 11)",
    config_key="trajectory_census_config",
    default_out="results/bench_trajectory_fleet.jsonl",
    add_arguments=_bench_trajectory_arguments,
    from_args=_bench_trajectory_from_args,
    build=_bench_trajectory_build,
    report=_trajectory_report,
    total_from_header=_trajectory_total,
    flags_from_header=_bench_trajectory_flags,
))
