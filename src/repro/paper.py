"""The paper, claim by claim — a machine-checkable registry.

Every numbered statement in *Basic Network Creation Games* is registered
here with an executable check at a finite instance size.  ``verify_all()``
runs the lot and returns a report table; the test suite asserts the expected
status of each claim, and ``python -m repro.cli run paper-claims``
regenerates the table.

Status semantics:

* ``confirmed`` — the claim's finite-instance check passes;
* ``refuted-witness`` — the claim's *witness* fails but the statement is
  re-established with a replacement (Theorem 5 / Figure 3: the repo's
  headline reproduction finding);
* ``evidence`` — asymptotic/existential statements that a finite run can
  only support, not prove (e.g. Theorem 9's upper bound: every reachable
  equilibrium sits below the curve).

Each check is intentionally small (seconds, not minutes): the heavyweight
versions with parameter sweeps live in :mod:`repro.bench.experiments`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

__all__ = ["Claim", "ClaimResult", "CLAIMS", "verify_claim", "verify_all"]


@dataclass(frozen=True, slots=True)
class Claim:
    """One numbered statement of the paper, with an executable check."""

    claim_id: str
    statement: str
    expected_status: str  # confirmed | refuted-witness | evidence
    check: Callable[[], bool]


@dataclass(frozen=True, slots=True)
class ClaimResult:
    claim_id: str
    statement: str
    expected_status: str
    passed: bool


# ---------------------------------------------------------------------------
# Check implementations (deferred imports keep module import light)
# ---------------------------------------------------------------------------

def _check_theorem1() -> bool:
    from .graphs import all_trees
    from .theory import theorem1_check

    return all(theorem1_check(t) for t in all_trees(6))


def _check_lemma2() -> bool:
    from .constructions import double_star, rotated_torus
    from .graphs import star_graph
    from .theory import lemma2_holds

    return all(
        lemma2_holds(g)
        for g in (rotated_torus(3), double_star(2, 3), star_graph(8))
    )


def _check_lemma3() -> bool:
    from .constructions import double_star
    from .graphs import star_graph
    from .theory import lemma3_holds

    return lemma3_holds(double_star(3, 3)) and lemma3_holds(star_graph(8))


def _check_theorem4() -> bool:
    from .graphs import all_trees
    from .theory import theorem4_check

    return all(theorem4_check(t) for t in all_trees(6))


def _check_theorem5_figure3_fails() -> bool:
    from .constructions import figure3_graph
    from .core import find_sum_violation

    return find_sum_violation(figure3_graph()) is not None


def _check_theorem5_statement_survives() -> bool:
    from .constructions import minimal_diameter3_witness, repaired_diameter3_witness
    from .core import is_sum_equilibrium
    from .graphs import diameter

    return all(
        diameter(g) == 3 and is_sum_equilibrium(g)
        for g in (repaired_diameter3_witness(), minimal_diameter3_witness())
    )


def _check_lemma6() -> bool:
    from .constructions import figure3_graph, polarity_graph
    from .theory import lemma6_holds

    return lemma6_holds(figure3_graph()) and lemma6_holds(polarity_graph(3))


def _check_lemma7() -> bool:
    from .constructions import figure3_graph
    from .graphs import eccentricities
    from .theory import lemma7_holds_at

    g = figure3_graph()
    ecc = eccentricities(g)
    for v in range(g.n):
        if int(ecc[v]) != 3:
            continue
        for w in range(g.n):
            if w != v and not g.has_edge(v, w):
                if not lemma7_holds_at(g, v, w):
                    return False
    return True


def _check_lemma8() -> bool:
    from .constructions import figure3_graph
    from .graphs import complete_bipartite_graph
    from .theory import lemma8_holds

    return lemma8_holds(figure3_graph()) and lemma8_holds(
        complete_bipartite_graph(3, 4)
    )


def _check_lemma10() -> bool:
    from .constructions import polarity_graph, repaired_diameter3_witness
    from .graphs import star_graph
    from .theory import lemma10_holds

    return all(
        lemma10_holds(g, 0) is not None
        for g in (star_graph(12), polarity_graph(3), repaired_diameter3_witness())
    )


def _check_corollary11() -> bool:
    from .constructions import polarity_graph, repaired_diameter3_witness
    from .graphs import star_graph
    from .theory import corollary11_holds

    return all(
        corollary11_holds(g)
        for g in (star_graph(12), polarity_graph(3), repaired_diameter3_witness())
    )


def _check_theorem9_evidence() -> bool:
    from .analysis import theorem9_diameter_bound
    from .core import run_census

    records = run_census(
        [12, 24], families=("tree", "sparse"), replicates=2, root_seed=31
    )
    return all(
        r.diameter_final <= theorem9_diameter_bound(r.n)
        for r in records
        if r.converged
    )


def _check_theorem12() -> bool:
    from .constructions import rotated_torus
    from .theory import theorem12_check

    return all(theorem12_check(rotated_torus(k), k) for k in (2, 3, 4))


def _check_theorem12_tradeoff() -> bool:
    from .constructions import diagonal_torus
    from .core import is_deletion_critical, is_k_insertion_stable
    from .graphs import diameter

    for d, k in ((3, 2), (3, 3), (4, 2)):
        g = diagonal_torus(k, d)
        if diameter(g) != k:
            return False
        if not is_deletion_critical(g):
            return False
        if not is_k_insertion_stable(g, d - 1, vertices=[0]):
            return False
    return True


def _check_theorem13_machinery() -> bool:
    from .analysis import theorem13_transform
    from .graphs import cycle_graph

    res = theorem13_transform(cycle_graph(256), p=0.5)
    return (
        res.meets_diameter_premise
        and res.uniform_power_within_bound
        and res.almost_diameter == math.ceil(res.input_diameter / res.almost_power)
    )


def _check_conjecture14_quantifier() -> bool:
    from .analysis import distance_uniformity, pairwise_concentration
    from .constructions import spider_for_epsilon, spider_graph

    g = spider_graph(spider_for_epsilon(0.125, 8))
    _, pair_frac = pairwise_concentration(g)
    per_vertex = distance_uniformity(g).epsilon
    return pair_frac > 0.6 and per_vertex > 0.9


def _check_theorem15() -> bool:
    from .analysis import (
        distance_uniformity,
        iterated_sumset_sizes,
        plunnecke_violations,
    )
    from .constructions import AbelianGroup, cayley_graph, random_connection_set
    from .graphs import diameter, is_connected
    from .theory import theorem15_check

    for seed in range(3):
        moduli = (16, 16)
        conn = random_connection_set(moduli, 4, seed)
        g = cayley_graph(moduli, conn)
        if not is_connected(g):
            continue
        eps = distance_uniformity(g).epsilon
        if not theorem15_check(g.n, eps, diameter(g)):
            return False
        sizes = iterated_sumset_sizes(AbelianGroup(moduli), conn, 16)
        if plunnecke_violations(sizes):
            return False
    return True


def _check_transfer_principle() -> bool:
    from .games import transfer_sweep

    records = transfer_sweep(8, [0.5, 2.0, 16.0], replicates=2, root_seed=13)
    return all(
        r.owner_swap_stable and r.within_bound
        for r in records
        if r.converged
    )


def _check_poly_time_checking() -> bool:
    # The model-level claim: the audit really is implemented without any
    # exponential enumeration — witnessed here by running it comfortably at
    # a size where 2^(n-1) strategy enumeration would be astronomical.
    from .core import is_sum_equilibrium
    from .graphs import random_connected_gnm

    g = random_connected_gnm(64, 128, seed=3)
    is_sum_equilibrium(g)  # completes in milliseconds; n=64 => 2^63 strategies
    return True


CLAIMS: tuple[Claim, ...] = (
    Claim(
        "theorem-1",
        "sum-equilibrium trees have diameter 2 (only stars); exhaustive n<=6",
        "confirmed",
        _check_theorem1,
    ),
    Claim(
        "lemma-2",
        "max equilibria: local diameters differ by at most 1",
        "confirmed",
        _check_lemma2,
    ),
    Claim(
        "lemma-3",
        "max equilibria: cut vertices have at most one deep component",
        "confirmed",
        _check_lemma3,
    ),
    Claim(
        "theorem-4",
        "max-equilibrium trees have diameter at most 3; exhaustive n<=6",
        "confirmed",
        _check_theorem4,
    ),
    Claim(
        "theorem-5-figure-3",
        "Figure 3 as printed is a sum equilibrium",
        "refuted-witness",
        _check_theorem5_figure3_fails,
    ),
    Claim(
        "theorem-5-statement",
        "a diameter-3 sum equilibrium exists (repaired witnesses: n=10 and minimal n=8)",
        "confirmed",
        _check_theorem5_statement_survives,
    ),
    Claim(
        "lemma-6",
        "local diameter 2 => no sum-improving swap",
        "confirmed",
        _check_lemma6,
    ),
    Claim(
        "lemma-7",
        "edge-addition gain bound at local diameter 3",
        "confirmed",
        _check_lemma7,
    ),
    Claim(
        "lemma-8",
        "girth-4 swap loss bound (with the neighbour carve-out)",
        "confirmed",
        _check_lemma8,
    ),
    Claim(
        "lemma-10",
        "sum equilibria: small diameter or a cheap removable edge",
        "confirmed",
        _check_lemma10,
    ),
    Claim(
        "corollary-11",
        "sum equilibria: single-edge additions gain at most 5 n lg n",
        "confirmed",
        _check_corollary11,
    ),
    Claim(
        "theorem-9",
        "sum equilibria have diameter 2^O(sqrt(lg n)) (census evidence)",
        "evidence",
        _check_theorem9_evidence,
    ),
    Claim(
        "theorem-12",
        "the rotated torus is a max equilibrium of diameter sqrt(n/2)",
        "confirmed",
        _check_theorem12,
    ),
    Claim(
        "theorem-12-tradeoff",
        "d-dim torus: diameter (n/2)^(1/d), stable under d-1 insertions",
        "confirmed",
        _check_theorem12_tradeoff,
    ),
    Claim(
        "theorem-13",
        "the equilibrium -> distance-uniform power-graph machinery",
        "confirmed",
        _check_theorem13_machinery,
    ),
    Claim(
        "conjecture-14-quantifier",
        "pairwise concentration does not imply per-vertex uniformity (spider)",
        "confirmed",
        _check_conjecture14_quantifier,
    ),
    Claim(
        "theorem-15",
        "uniform Abelian Cayley graphs: diameter O(lg n / lg(1/eps)) + Plünnecke",
        "confirmed",
        _check_theorem15,
    ),
    Claim(
        "transfer-principle",
        "alpha-game equilibria are owner-swap stable and within the alpha-free bound",
        "confirmed",
        _check_transfer_principle,
    ),
    Claim(
        "poly-time-checking",
        "swap equilibrium is decidable in polynomial time (audit at n=64)",
        "confirmed",
        _check_poly_time_checking,
    ),
)


def verify_claim(claim: Claim) -> ClaimResult:
    """Run one claim's check."""
    return ClaimResult(
        claim_id=claim.claim_id,
        statement=claim.statement,
        expected_status=claim.expected_status,
        passed=bool(claim.check()),
    )


def verify_all() -> list[ClaimResult]:
    """Run every registered claim check, in paper order."""
    return [verify_claim(c) for c in CLAIMS]
