"""Parameter sweeps: cartesian grids × replicates → record tables.

A sweep point is a dict of parameter values plus a derived seed; the runner
maps a (picklable) point function over the grid, serially or in processes,
and gathers the per-point record dicts into a column table the reporting
layer can render.  Seeds derive from ``(root_seed, point_index, replicate)``
so the table is reproducible regardless of execution order.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from ..errors import ConfigurationError
from ..rng import derive_seed
from .pool import TaskFailure, parallel_map

__all__ = ["SweepPoint", "Sweep", "run_sweep"]

#: Column names :meth:`SweepPoint.as_dict` derives per point.  A grid
#: parameter with one of these names would be silently overwritten in the
#: record table, so :meth:`Sweep.points` rejects them up front.
RESERVED_COLUMNS = ("replicate", "seed")


@dataclass(frozen=True)
class SweepPoint:
    """One task of a sweep: parameter values, replicate index, seed."""

    params: tuple[tuple[str, Any], ...]
    replicate: int
    seed: int

    def as_dict(self) -> dict[str, Any]:
        out = dict(self.params)
        out["replicate"] = self.replicate
        out["seed"] = self.seed
        return out

    def __getitem__(self, key: str) -> Any:
        for k, v in self.params:
            if k == key:
                return v
        raise KeyError(key)


@dataclass
class Sweep:
    """A cartesian grid of parameters with replicates.

    ``grid`` maps parameter names to value lists; points enumerate the
    product in the declared order (first parameter slowest).  Passing
    ``order=`` makes the enumeration order explicit instead of relying on
    the mapping's insertion order: it must name every grid key exactly
    once (a re-declared key raises, as does a key missing from ``grid``).
    """

    grid: Mapping[str, Sequence[Any]]
    replicates: int = 1
    root_seed: int = 0
    order: "Sequence[str] | None" = None

    def names(self) -> list[str]:
        """Enumeration order of the grid dimensions (first is slowest)."""
        if self.order is None:
            return list(self.grid.keys())
        declared = list(self.order)
        seen: set = set()
        for name in declared:
            if name in seen:
                raise ConfigurationError(
                    f"grid key {name!r} re-declared in order={declared!r}; "
                    "each dimension must appear exactly once"
                )
            seen.add(name)
        unknown = [name for name in declared if name not in self.grid]
        missing = [name for name in self.grid if name not in seen]
        if unknown or missing:
            raise ConfigurationError(
                f"order={declared!r} must name every grid key exactly once "
                f"(unknown: {unknown!r}, missing: {missing!r})"
            )
        return declared

    def points(self) -> list[SweepPoint]:
        if self.replicates < 1:
            raise ConfigurationError(
                f"replicates must be >= 1, got {self.replicates}"
            )
        reserved = [name for name in self.grid if name in RESERVED_COLUMNS]
        if reserved:
            raise ConfigurationError(
                f"grid parameter(s) {', '.join(map(repr, reserved))} collide "
                "with the derived per-point columns "
                f"{RESERVED_COLUMNS}; SweepPoint.as_dict would silently "
                "overwrite them — rename the grid dimension"
            )
        names = self.names()
        values = [list(self.grid[k]) for k in names]
        if any(len(v) == 0 for v in values):
            raise ConfigurationError("every grid dimension needs >= 1 value")
        pts: list[SweepPoint] = []
        for pi, combo in enumerate(itertools.product(*values)):
            for rep in range(self.replicates):
                pts.append(
                    SweepPoint(
                        params=tuple(zip(names, combo)),
                        replicate=rep,
                        seed=derive_seed(self.root_seed, pi, rep),
                    )
                )
        return pts


def run_sweep(
    point_fn: Callable[[SweepPoint], dict],
    sweep: Sweep,
    workers: int = 1,
    *,
    timeout: "float | None" = None,
    retries: int = 0,
    on_error: str = "raise",
) -> list[dict]:
    """Evaluate ``point_fn`` on every sweep point; returns merged records.

    Each record is the point's parameter dict updated with the function's
    outputs (the function's keys win on collision, so points can override
    derived columns deliberately).

    ``timeout``/``retries``/``on_error`` pass through to
    :func:`~repro.parallel.parallel_map` (DESIGN.md §9); with
    ``on_error="record"`` a point that fails past its retry budget yields
    its parameter dict extended with ``error``/``attempts`` columns instead
    of aborting the sweep.
    """
    points = sweep.points()
    results = parallel_map(
        point_fn, points, workers=workers,
        timeout=timeout, retries=retries, on_error=on_error,
    )
    records = []
    for pt, res in zip(points, results):
        row = pt.as_dict()
        if isinstance(res, TaskFailure):
            row.update(error=res.error, attempts=res.attempts)
        else:
            row.update(res)
        records.append(row)
    return records
