"""Deterministic parallel execution: process pools, shared memory, sweeps."""

from .pool import chunk_evenly, default_workers, parallel_map
from .shared import (
    SharedArrayBundle,
    SharedArrayPool,
    get_shared_pool,
    map_streamed,
    shutdown_shared_pools,
)
from .sweep import Sweep, SweepPoint, run_sweep

__all__ = [
    "SharedArrayBundle",
    "SharedArrayPool",
    "Sweep",
    "SweepPoint",
    "chunk_evenly",
    "default_workers",
    "get_shared_pool",
    "map_streamed",
    "parallel_map",
    "run_sweep",
    "shutdown_shared_pools",
]
