"""Deterministic parallel execution: process pools, shared memory, sweeps.

Since ISSUE 6 the runtime is fault-tolerant (DESIGN.md §9): per-chunk
timeouts, bounded deterministic retries with chunk splitting, executor
rebuild on worker death, task quarantine (:class:`TaskFailure`), a
``/dev/shm`` orphan reaper (:func:`reap_orphan_segments`), and a
deterministic fault-injection harness (:mod:`repro.parallel.faults`).
"""

from .faults import InjectedFault, injected_env
from .pool import (
    TaskFailure,
    check_deadline,
    chunk_evenly,
    current_task_deadline,
    default_workers,
    parallel_map,
)
from .shared import (
    SharedArrayBundle,
    SharedArrayPool,
    get_shared_pool,
    map_streamed,
    reap_orphan_segments,
    shutdown_shared_pools,
)
from .sweep import Sweep, SweepPoint, run_sweep

__all__ = [
    "InjectedFault",
    "SharedArrayBundle",
    "SharedArrayPool",
    "Sweep",
    "SweepPoint",
    "TaskFailure",
    "check_deadline",
    "chunk_evenly",
    "current_task_deadline",
    "default_workers",
    "get_shared_pool",
    "injected_env",
    "map_streamed",
    "parallel_map",
    "reap_orphan_segments",
    "run_sweep",
    "shutdown_shared_pools",
]
