"""Deterministic parallel execution: process pools and parameter sweeps."""

from .pool import chunk_evenly, default_workers, parallel_map
from .sweep import Sweep, SweepPoint, run_sweep

__all__ = [
    "Sweep",
    "SweepPoint",
    "chunk_evenly",
    "default_workers",
    "parallel_map",
    "run_sweep",
]
