"""Deterministic fault injection for the fleet runtime.

The fault-tolerance layer (DESIGN.md §9) is only trustworthy if its
recovery paths are exercised the same way every run.  This module arms
*deterministic* faults at the runtime's instrumented sites — worker chunk
starts, individual tasks, and JSONL append batches — driven either by an
environment variable (so forked workers, fleet scripts, and CI jobs inherit
the fault plan with no code changes) or by in-process callable hooks (the
serial path and unit tests).

Environment channel::

    REPRO_FAULTS="kill:chunk=1;raise:task=5,times=2"
    REPRO_FAULTS_DIR=/tmp/fault-tokens     # cross-process firing budget
    REPRO_FAULTS_SAFE_PID=12345            # owner pid: kill/hang downgrade

Grammar: ``;``-separated specs, each ``kind[:key=value,...]``.

Kinds
-----
* ``kill`` — ``SIGKILL`` the current process (a worker OOM-kill/segfault;
  the parent sees ``BrokenProcessPool``);
* ``hang`` — sleep ``seconds`` (default 3600), tripping per-chunk
  ``timeout=`` recovery;
* ``raise`` — raise :class:`InjectedFault` (a poisoned task);
* ``torn-write`` — a file write is torn in half: :meth:`repro.io.
  jsonl_store.JsonlStore.append` writes only half of the serialized batch,
  flushes, and raises (a host crash tearing the stream's final line);
  :meth:`repro.io.result_cache.ResultCache.put` and :meth:`repro.io.
  checkpoint.CheckpointStore.save` write only half of the serialized
  entry *to the final path* and raise (the post-rename content loss a
  power cut can inflict on an unsynced entry — exactly the corruption the
  stores' checksum verification must quarantine);
* ``enospc`` — the disk fills mid-write: the store writes a partial blob,
  then raises the typed integrity error its write contract promises
  (wrapping ``OSError(ENOSPC)``); fired at stream appends
  (:meth:`~repro.io.jsonl_store.JsonlStore.append`), cache puts, and
  checkpoint saves.  The partial bytes land where a real ``ENOSPC`` would
  leave them — a torn stream tail, a dead ``.tmp`` sidecar — never a torn
  final entry;
* ``torn-rename`` — the crash window *between* ``os.replace`` and the
  parent-directory fsync: :func:`repro.io.fsutil.publish_replace` leaves
  the complete ``.tmp`` sidecar in place, skips the rename, and raises —
  the deterministic stand-in for a power cut that loses the rename
  because the directory entry was never synced (the durability bug the
  directory fsync exists to close).

Filters: ``chunk=N`` (original chunk ordinal, stable across retries and
splits), ``task=N`` (absolute task index within the parallel call),
``batch=N`` (JSONL append-batch ordinal), and — for sites that write named
files: ``torn-write``, ``enospc``, ``torn-rename`` — ``path=SUBSTRING``:
the spec fires
only at sites whose ``path`` contains ``SUBSTRING`` (so one env string can
target the result cache, a specific stream, or any file-writing site
without knowing absolute paths; ``=`` and ``,`` cannot appear in the
substring — pick a different fragment of the path).  A spec fires at a
site iff every filter it sets is satisfied there; a filterless spec fires
at the first instrumented site of its kind.

Determinism contract: each spec fires at most ``times`` times (default 1)
*globally across every process of the run* — each firing consumes a token
file created with ``O_CREAT|O_EXCL`` in ``REPRO_FAULTS_DIR``, so a retried
chunk or a freshly forked worker can never replay a consumed fault.
Without a token dir a per-process counter is used (sufficient for
owner-side faults such as ``torn-write``; worker-side faults need the dir
because every forked worker would otherwise carry its own budget).
``REPRO_FAULTS_SAFE_PID`` names the fleet owner: ``kill``/``hang`` firing
there downgrade to :class:`InjectedFault`, so the runtime's degraded
serial path records a quarantined failure instead of killing the fleet
itself — which is also what keeps the injected suites deterministic.

The harness never touches any RNG stream: firing decisions are pure
functions of the spec, the site coordinates, and the consumed-token state.
"""

from __future__ import annotations

import os
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

from ..errors import ConfigurationError, ReproError

__all__ = [
    "ENV_DIR",
    "ENV_SAFE_PID",
    "ENV_SPEC",
    "FaultSpec",
    "InjectedFault",
    "clear_hooks",
    "faults_armed",
    "injected_env",
    "install_hook",
    "maybe_fault",
    "parse_faults",
    "remove_hook",
    "take",
]

ENV_SPEC = "REPRO_FAULTS"
ENV_DIR = "REPRO_FAULTS_DIR"
ENV_SAFE_PID = "REPRO_FAULTS_SAFE_PID"

KINDS = ("kill", "hang", "raise", "torn-write", "enospc", "torn-rename")

_SITE_KEYS = ("chunk", "task", "batch")


class InjectedFault(ReproError):
    """An injected fault (or its owner-side downgrade) fired."""


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: a kind, site filters, and a firing budget."""

    kind: str
    chunk: "int | None" = None
    task: "int | None" = None
    batch: "int | None" = None
    path: "str | None" = None
    times: int = 1
    seconds: float = 3600.0

    def matches(self, site: dict) -> bool:
        if self.path is not None:
            target = site.get("path")
            if target is None or self.path not in str(target):
                return False
        return all(
            getattr(self, key) is None or site.get(key) == getattr(self, key)
            for key in _SITE_KEYS
        )


def parse_faults(text: str) -> tuple[FaultSpec, ...]:
    """Parse a ``REPRO_FAULTS`` spec string into :class:`FaultSpec` tuples."""
    specs: list[FaultSpec] = []
    for part in text.split(";"):
        part = part.strip()
        if not part:
            continue
        kind, _, rest = part.partition(":")
        kind = kind.strip()
        if kind not in KINDS:
            raise ConfigurationError(
                f"unknown fault kind {kind!r} in {text!r}; "
                f"expected one of {KINDS}"
            )
        kwargs: dict = {}
        if rest.strip():
            for item in rest.split(","):
                key, eq, value = item.partition("=")
                key = key.strip()
                if not eq:
                    raise ConfigurationError(
                        f"fault option {item!r} is not key=value (in {text!r})"
                    )
                if key in ("chunk", "task", "batch", "times"):
                    kwargs[key] = int(value)
                elif key == "seconds":
                    kwargs[key] = float(value)
                elif key == "path":
                    if not value:
                        raise ConfigurationError(
                            f"empty path filter in {text!r}"
                        )
                    kwargs[key] = value
                else:
                    raise ConfigurationError(
                        f"unknown fault option {key!r} in {text!r}"
                    )
        if kwargs.get("times", 1) < 1:
            raise ConfigurationError(f"times must be >= 1 in {text!r}")
        specs.append(FaultSpec(kind=kind, **kwargs))
    return tuple(specs)


#: Parse cache keyed on the raw env string (workers re-read it per call;
#: parsing is cheap but per-task call sites deserve a dict lookup).
_PARSE_CACHE: dict[str, tuple[FaultSpec, ...]] = {}

#: Fallback firing budget when no token dir is configured, keyed by
#: (spec text, spec index).  Per-process only — see the module docstring.
_LOCAL_TOKENS: dict[tuple[str, int], int] = {}

#: In-process callable hooks: each is called with the site dict and may
#: raise (or kill) to inject.  The serial-path / unit-test channel.
_HOOKS: list[Callable[[dict], None]] = []


def install_hook(hook: Callable[[dict], None]) -> None:
    """Install an in-process fault hook, called with every site dict."""
    _HOOKS.append(hook)


def remove_hook(hook: Callable[[dict], None]) -> None:
    """Remove a previously installed hook (no-op if absent)."""
    try:
        _HOOKS.remove(hook)
    except ValueError:
        pass


def clear_hooks() -> None:
    """Remove every in-process hook."""
    _HOOKS.clear()


def faults_armed() -> bool:
    """True when any fault channel (env or hook) is active."""
    return bool(_HOOKS) or ENV_SPEC in os.environ


def _take_token(text: str, idx: int, spec: FaultSpec) -> bool:
    """Consume one firing of spec ``idx``; False when the budget is spent."""
    token_dir = os.environ.get(ENV_DIR)
    if token_dir:
        for slot in range(spec.times):
            path = os.path.join(token_dir, f"fault-{idx}-{slot}")
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            except OSError:
                return False  # token dir vanished: disarm rather than loop
            os.close(fd)
            return True
        return False
    key = (text, idx)
    used = _LOCAL_TOKENS.get(key, 0)
    if used >= spec.times:
        return False
    _LOCAL_TOKENS[key] = used + 1
    return True


def take(kind: str, **site) -> "FaultSpec | None":
    """Consume a matching armed env fault of ``kind`` at this site, if any.

    Returns the spec that fired (its token now consumed) or ``None``.  The
    JSONL store uses this directly for ``torn-write`` (the tear itself is
    performed by the store, which knows the bytes); the runtime sites go
    through :func:`maybe_fault`.
    """
    text = os.environ.get(ENV_SPEC)
    if not text:
        return None
    specs = _PARSE_CACHE.get(text)
    if specs is None:
        specs = _PARSE_CACHE[text] = parse_faults(text)
    for idx, spec in enumerate(specs):
        if spec.kind == kind and spec.matches(site):
            if _take_token(text, idx, spec):
                return spec
    return None


def _owner_safe() -> bool:
    pid = os.environ.get(ENV_SAFE_PID, "")
    return pid.isdigit() and int(pid) == os.getpid()


def maybe_fault(**site) -> None:
    """Fire any armed fault matching this site (the runtime's check hook).

    Called by the chunk runners (``chunk=`` ordinal at chunk start,
    ``task=`` absolute index per task) and the degraded serial path.  No-op
    unless a fault channel is armed.
    """
    for hook in list(_HOOKS):
        hook(site)
    if ENV_SPEC not in os.environ:
        return
    for kind in ("raise", "hang", "kill"):
        spec = take(kind, **site)
        if spec is None:
            continue
        if kind == "raise" or _owner_safe():
            raise InjectedFault(f"injected {kind} at {site!r}")
        if kind == "hang":
            time.sleep(spec.seconds)
            return
        os.kill(os.getpid(), signal.SIGKILL)


@contextmanager
def injected_env(
    spec: str,
    token_dir: "str | os.PathLike",
    safe_pid: "int | None" = None,
) -> Iterator[None]:
    """Arm env-driven faults for a with-block, restoring the env afterwards.

    Shuts down the persistent pools on entry *and* exit so workers are
    forked with (and, afterwards, without) the fault plan in their
    environment — a pool that outlived the block would otherwise keep the
    stale plan alive in its already-forked workers.  ``safe_pid`` defaults
    to the calling process (the fleet owner).
    """
    from .shared import shutdown_shared_pools

    parse_faults(spec)  # validate before arming
    os.makedirs(token_dir, exist_ok=True)
    shutdown_shared_pools()
    saved = {k: os.environ.get(k) for k in (ENV_SPEC, ENV_DIR, ENV_SAFE_PID)}
    os.environ[ENV_SPEC] = spec
    os.environ[ENV_DIR] = str(token_dir)
    os.environ[ENV_SAFE_PID] = str(
        os.getpid() if safe_pid is None else safe_pid
    )
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        shutdown_shared_pools()
