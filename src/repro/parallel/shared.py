"""Shared-memory array publishing and a persistent worker pool.

PR 1 made the per-edge distance question cheap; the orchestration around it
was still paying two process-level taxes on every parallel call:

* a fresh :class:`~concurrent.futures.ProcessPoolExecutor` was forked per
  call (worker start-up dominates short audits);
* every chunk payload re-pickled the large read-only inputs — the n×n base
  distance matrix and the CSR adjacency arrays — once per chunk.

This module removes both.  :class:`SharedArrayBundle` publishes a set of
numpy arrays into POSIX shared memory (``multiprocessing.shared_memory``);
workers attach by segment name and get **zero-copy read-only views**, cached
per process so repeated chunks pay nothing.  :class:`SharedArrayPool` keeps
one :class:`ProcessPoolExecutor` alive per worker count and reuses it across
calls; :func:`repro.parallel.parallel_map` routes through it when given a
``shared=`` payload (the fork-per-call path survives as ``backend="fork"``,
the determinism oracle).

Lifetime discipline (DESIGN.md §5):

* the **owner** process creates segments and keeps them registered with its
  ``resource_tracker`` — if the owner is killed, the tracker (a separate
  process) unlinks the segments, so a test-process crash leaks nothing in
  ``/dev/shm``;
* :meth:`SharedArrayBundle.close` unlinks eagerly and is idempotent;
  bundles also self-close via ``atexit`` and ``__del__`` as a backstop;
* **workers** are forked, so they share the owner's tracker process:
  attaching re-registers the same name (a set-idempotent no-op) and worker
  exit goes through ``os._exit`` (no atexit), so workers can neither leak
  nor double-unlink a segment; attached views are cached per segment name
  with a small LRU bound;
* if owner *and* tracker die together (``kill -9`` of the process group, a
  host reset), the segment survives — the **startup reaper**
  (:func:`reap_orphan_segments`) scans ``/dev/shm`` for our name pattern,
  extracts the embedded creator pid, and unlinks segments whose owner is
  dead.  A liveness-stamped registry entry (pid + process start time,
  written at publish) protects concurrent fleets from pid reuse: a live
  pid with a matching start time is never reaped.

Fault tolerance (DESIGN.md §9): :meth:`SharedArrayPool.map` survives worker
death (``BrokenProcessPool`` — the executor is rebuilt and shared bundles
re-validated/re-published), hangs (per-chunk ``timeout=`` kills the stuck
workers), and poisoned tasks (bounded ``retries=`` with deterministic
exponential backoff; failing chunks split to isolate the poison; a task
that keeps failing is degraded to one serial in-process attempt, then
raised with its identity or quarantined per ``on_error=``).

Determinism: the pool changes *where* tasks run, never *what* they return —
results are assembled by absolute task index and emitted in submission
order, so ``parallel_map`` keeps its exact results-independent-of-worker-
count contract even across retries, splits, and executor rebuilds.
"""

from __future__ import annotations

import atexit
import itertools
import json
import os
import tempfile
import time
import uuid
import weakref
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import get_context
from multiprocessing import shared_memory as _shm
from pathlib import Path
from typing import Callable, Mapping, Sequence

import numpy as np

from ..errors import ConfigurationError, DeadlineExceeded
from .pool import (
    TaskFailure,
    _TaskError,
    _backoff_sleep,
    _check_deadline,
    _permanent_failure,
    _run_tasks,
    _serial_map,
)

__all__ = [
    "SharedArrayBundle",
    "SharedArrayPool",
    "get_shared_pool",
    "map_streamed",
    "reap_orphan_segments",
    "shutdown_shared_pools",
]

#: Segment-name prefix: makes leak assertions in tests (and `ls /dev/shm`
#: forensics in anger) trivially greppable.
#: How long past a spent request deadline the pool waits for inflight
#: chunks to hand back their checkpoint-and-yield markers before killing
#: the workers.  Checkpoint-capable tasks yield at their next applied-move
#: boundary (sub-millisecond for the grids here), so this is headroom, not
#: schedule; it bounds the worst case (a non-yielding task body) so the
#: deadline contract stays "never a hang".
_DEADLINE_GRACE = 2.0

_NAME_PREFIX = "repro-shm"

_SPEC_FIELDS = 4  # (key, segment name, shape, dtype string)

_name_counter = itertools.count()


def _new_segment_name() -> str:
    # pid + counter + random suffix: unique across processes and re-runs,
    # short enough for the POSIX shm_open name limit.  The embedded pid is
    # what lets the startup reaper attribute an orphaned segment to its
    # (dead) creator.
    return (
        f"{_NAME_PREFIX}-{os.getpid()}-{next(_name_counter)}-"
        f"{uuid.uuid4().hex[:8]}"
    )


# Bundles still open, for the atexit backstop.  Weak so that garbage
# collection (which triggers __del__ -> close) drops entries naturally.
_LIVE_BUNDLES: "weakref.WeakSet[SharedArrayBundle]" = weakref.WeakSet()


# ---------------------------------------------------------------------------
# Orphan reaper and liveness registry
# ---------------------------------------------------------------------------

#: Where POSIX shm segments materialize as files (Linux tmpfs).  When the
#: directory does not exist (macOS, Windows) the reaper is a no-op.
_SHM_DIR = Path("/dev/shm")

#: Liveness registry: one small JSON file per published segment, carrying
#: the owner's (pid, start time).  Advisory — registry I/O failures never
#: fail a publish — but it is what makes reaping safe against pid reuse:
#: a recycled pid has a different start time, so a stale segment whose
#: embedded pid now names an unrelated live process is still reaped, while
#: a concurrent fleet's segment (matching stamp) never is.
_REGISTRY_DIR = Path(tempfile.gettempdir()) / "repro-shm-registry"


def _proc_start_time(pid: int) -> "str | None":
    """The kernel's start-time ticks for ``pid`` (None off-Linux/when gone)."""
    try:
        stat = Path(f"/proc/{pid}/stat").read_text()
        # Field 22 (starttime); the comm field may contain spaces/parens,
        # so split after the last ')'.
        return stat[stat.rindex(")") + 1 :].split()[19]
    except (OSError, ValueError, IndexError):
        return None


def _pid_from_name(name: str) -> "int | None":
    parts = name.split("-")
    try:
        return int(parts[2])
    except (IndexError, ValueError):
        return None


def _register_segment(name: str) -> None:
    try:
        _REGISTRY_DIR.mkdir(parents=True, exist_ok=True)
        (_REGISTRY_DIR / name).write_text(
            json.dumps(
                {
                    "pid": os.getpid(),
                    "starttime": _proc_start_time(os.getpid()),
                }
            )
        )
    except OSError:  # pragma: no cover - registry is advisory
        pass


def _unregister_segment(name: str) -> None:
    try:
        (_REGISTRY_DIR / name).unlink()
    except OSError:
        pass


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other-user process
        return True
    return True


def _owner_alive(name: str, pid: int) -> bool:
    """Is the process that published segment ``name`` still the one running?"""
    if not _pid_alive(pid):
        return False
    try:
        entry = json.loads((_REGISTRY_DIR / name).read_text())
    except (OSError, ValueError):
        # No (readable) registry entry: a live pid is trusted —
        # conservative, because reaping a live fleet's segment corrupts it,
        # while a leaked segment merely waits for its pid to die.
        return True
    stamped = entry.get("starttime")
    if stamped is None:
        return True
    return _proc_start_time(pid) == stamped


def reap_orphan_segments() -> list[str]:
    """Unlink ``/dev/shm`` segments of our name pattern from dead owners.

    Covers the one leak path the per-process lifetime discipline cannot:
    owner *and* resource tracker dying together (``kill -9`` of the
    process group, a container stop).  Safe to run concurrently with live
    fleets — a segment is only reaped when its embedded creator pid is
    dead, or when the liveness registry proves the pid was recycled by an
    unrelated process.  Returns the reaped segment names.  Runs
    automatically once per process the first time a bundle or pool is
    created.
    """
    reaped: list[str] = []
    if not _SHM_DIR.is_dir():
        return reaped
    for path in _SHM_DIR.glob(f"{_NAME_PREFIX}-*"):
        name = path.name
        pid = _pid_from_name(name)
        if pid is None or _owner_alive(name, pid):
            continue
        try:
            path.unlink()
        except OSError:  # pragma: no cover - raced another reaper
            pass
        else:
            reaped.append(name)
        _unregister_segment(name)
    # Registry entries whose segment is gone (normal close crash-raced the
    # unregister) are stale bookkeeping: sweep them too.
    try:
        for entry in _REGISTRY_DIR.glob(f"{_NAME_PREFIX}-*"):
            if not (_SHM_DIR / entry.name).exists():
                _unregister_segment(entry.name)
    except OSError:  # pragma: no cover
        pass
    return reaped


_reaped_once = False


def _reap_once() -> None:
    global _reaped_once
    if not _reaped_once:
        _reaped_once = True
        reap_orphan_segments()


class SharedArrayBundle:
    """A set of numpy arrays published once into shared memory.

    Parameters
    ----------
    arrays:
        Mapping of key -> array.  Each array is copied into its own shared
        segment at construction (the one copy the whole parallel call pays);
        views handed out afterwards are zero-copy and read-only.

    Use as a context manager (or call :meth:`close`) to unlink eagerly;
    otherwise ``atexit``/``__del__`` clean up, and the owner's resource
    tracker covers abnormal exits.
    """

    def __init__(self, arrays: Mapping[str, np.ndarray]):
        if not arrays:
            raise ConfigurationError("SharedArrayBundle needs >= 1 array")
        _reap_once()
        self._segments: dict[str, _shm.SharedMemory] = {}
        self._views: dict[str, np.ndarray] = {}
        spec: list[tuple[str, str, tuple[int, ...], str]] = []
        try:
            for key, arr in arrays.items():
                arr = np.ascontiguousarray(arr)
                if arr.nbytes == 0:
                    raise ConfigurationError(
                        f"cannot share empty array {key!r}"
                    )
                seg = _shm.SharedMemory(
                    create=True, size=arr.nbytes, name=_new_segment_name()
                )
                view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
                view[...] = arr
                view.flags.writeable = False
                self._segments[key] = seg
                self._views[key] = view
                _register_segment(seg.name)
                spec.append((key, seg.name, arr.shape, arr.dtype.str))
        except BaseException:
            self.close()
            raise
        self._spec = tuple(spec)
        self._closed = False
        _LIVE_BUNDLES.add(self)

    # ------------------------------------------------------------------
    @property
    def spec(self) -> tuple:
        """Picklable handle workers attach from: (key, name, shape, dtype)."""
        return self._spec

    def arrays(self) -> dict[str, np.ndarray]:
        """The owner's read-only zero-copy views, keyed as published."""
        if self._closed:
            raise ConfigurationError("bundle is closed")
        return dict(self._views)

    @property
    def segment_names(self) -> tuple[str, ...]:
        return tuple(seg.name for seg in self._segments.values())

    def revalidate(self) -> "SharedArrayBundle":
        """Self if every segment still exists; a re-published copy if not.

        The executor-rebuild path calls this before resubmitting work: if
        an external cleaner (or a crashed tracker) unlinked a segment while
        the fleet ran, freshly forked workers could no longer attach.  The
        owner's views stay readable even after an unlink (the mapping pins
        the memory), so the bundle can re-publish itself from them.  The
        caller owns any replacement bundle returned.
        """
        if self._closed:
            raise ConfigurationError("cannot revalidate a closed bundle")
        if _SHM_DIR.is_dir():
            missing = [
                name
                for name in self.segment_names
                if not (_SHM_DIR / name).exists()
            ]
            if missing:
                return SharedArrayBundle(self._views)
        return self

    def close(self) -> None:
        """Release and unlink every segment.  Idempotent."""
        self._views = {}
        segments, self._segments = self._segments, {}
        for seg in segments.values():
            try:
                seg.close()
            except Exception:  # pragma: no cover - teardown races
                pass
            try:
                seg.unlink()
            except Exception:  # pragma: no cover - already unlinked
                pass
            _unregister_segment(seg.name)
        self._closed = True

    # ------------------------------------------------------------------
    def __enter__(self) -> "SharedArrayBundle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - gc timing dependent
        try:
            self.close()
        except Exception:  # repro-lint: disable=R4 -- __del__ may run at interpreter teardown where anything raises
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        keys = ", ".join(k for k, *_ in self._spec)
        return f"SharedArrayBundle({keys}; closed={self._closed})"


# ---------------------------------------------------------------------------
# Worker side: attach-and-cache
# ---------------------------------------------------------------------------

#: Per-process cache of attached segments: name -> (SharedMemory, view).
#: Bounded LRU so a long-lived worker serving many bundles does not pin
#: unboundedly many mappings.
_ATTACH_CACHE: "OrderedDict[str, tuple[_shm.SharedMemory, np.ndarray]]" = (
    OrderedDict()
)
_ATTACH_CACHE_MAX = 8


def _attach_one(name: str, shape, dtype: str) -> np.ndarray:
    cached = _ATTACH_CACHE.get(name)
    if cached is not None:
        _ATTACH_CACHE.move_to_end(name)
        return cached[1]
    seg = _shm.SharedMemory(name=name)
    view = np.ndarray(tuple(shape), dtype=np.dtype(dtype), buffer=seg.buf)
    view.flags.writeable = False
    _ATTACH_CACHE[name] = (seg, view)
    while len(_ATTACH_CACHE) > _ATTACH_CACHE_MAX:
        _, (old_seg, _) = _ATTACH_CACHE.popitem(last=False)
        try:
            old_seg.close()
        except Exception:  # pragma: no cover
            pass
    return view


def attach_spec(spec) -> dict[str, np.ndarray]:
    """Attach a :attr:`SharedArrayBundle.spec` in this process (cached)."""
    return {
        key: _attach_one(name, shape, dtype)
        for key, name, shape, dtype in spec
    }


def _run_chunk(
    fn: Callable, spec, chunk: list, chunk_id=None, start=0, deadline=None,
) -> list:
    """Worker entry point: resolve the shared payload, run the chunk.

    Per-task exceptions come back as markers in the task's slot (see
    :func:`repro.parallel.pool._run_tasks`), so a poisoned task identifies
    itself instead of poisoning its chunk; ``chunk_id``/``start`` also
    locate the fault-injection sites.  ``deadline`` (the map call's
    request budget) is published to the task bodies in this worker via
    :func:`~repro.parallel.pool.current_task_deadline`, so
    checkpoint-capable tasks snapshot-and-yield at the cutoff instead of
    running on past the owner's patience.
    """
    arrays = None if spec is None else attach_spec(spec)
    return _run_tasks(fn, arrays, chunk, chunk_id, start, deadline=deadline)


# ---------------------------------------------------------------------------
# Persistent pool
# ---------------------------------------------------------------------------

def _mp_context():
    try:
        return get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        return None


@dataclass
class _Unit:
    """One schedulable chunk of work (its lineage survives retries/splits).

    ``chunk_id`` is the *original* chunk ordinal — stable across retries
    and splits, which is what makes "kill on the n-th chunk" a
    deterministic fault site.  ``attempts`` counts the failures charged to
    this lineage.
    """

    chunk_id: int
    start: int
    tasks: list = field(default_factory=list)
    attempts: int = 0


class SharedArrayPool:
    """A persistent process pool with a shared-array payload channel.

    Workers are created once and reused across :meth:`map` calls; large
    read-only arrays travel via :class:`SharedArrayBundle` instead of being
    pickled per chunk.  Results are gathered in submission order, so output
    is independent of worker count and scheduling.  :meth:`map` recovers
    from worker death, hangs, and poisoned tasks (DESIGN.md §9).
    """

    def __init__(self, workers: int):
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._executor: "ProcessPoolExecutor | None" = None

    def _ensure_executor(self) -> ProcessPoolExecutor:
        ex = self._executor
        if ex is not None and getattr(ex, "_broken", False):
            # A worker died since the last call and the corpse stayed
            # cached: rebuild instead of handing it back (ISSUE 6
            # satellite — get_shared_pool must never serve a dead pool).
            self._kill_executor()
            ex = None
        if ex is None:
            ctx = _mp_context()
            self._executor = ex = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=ctx
            )
        return ex

    def _kill_executor(self) -> None:
        """Forcefully stop the executor (hung or broken workers included)."""
        ex, self._executor = self._executor, None
        if ex is None:
            return
        procs = list((getattr(ex, "_processes", None) or {}).values())
        for proc in procs:
            try:
                proc.kill()
            except Exception:  # pragma: no cover - already gone
                pass
        try:
            ex.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - teardown races
            pass
        for proc in procs:
            try:
                proc.join(5)
            except Exception:  # pragma: no cover
                pass

    # ------------------------------------------------------------------
    def submit_chunks(
        self,
        fn: Callable,
        chunks: Sequence[list],
        shared: "SharedArrayBundle | None" = None,
        starts: "Sequence[int] | None" = None,
    ):
        """Submit chunks, returning futures in submission order.

        The streaming primitive under :meth:`map` and the census fleet:
        callers may consume futures in order while later chunks still run.
        ``starts`` optionally carries each chunk's absolute task offset
        (used for task identity in errors and fault-injection sites).
        """
        spec = None if shared is None else shared.spec
        pool = self._ensure_executor()
        if starts is None:
            starts = []
            off = 0
            for c in chunks:
                starts.append(off)
                off += len(c)
        return [
            pool.submit(_run_chunk, fn, spec, list(c), i, s)
            for i, (c, s) in enumerate(zip(chunks, starts))
        ]

    # ------------------------------------------------------------------
    def map(
        self,
        fn: Callable,
        tasks: Sequence,
        shared: "SharedArrayBundle | None" = None,
        chunk_size: "int | None" = None,
        *,
        timeout: "float | None" = None,
        deadline: "float | None" = None,
        retries: int = 1,
        backoff: float = 0.05,
        on_error: str = "raise",
        consume: "Callable[[list], None] | None" = None,
    ) -> list:
        """Map ``fn`` over ``tasks`` (order preserved), sharing ``shared``.

        ``fn`` is called as ``fn(task)`` without a bundle and as
        ``fn(task, arrays)`` with one.  ``deadline`` is an absolute
        ``time.monotonic()`` instant bounding the whole call: every
        blocking wait is capped at the remaining budget and every retry
        decision re-checks it, so the call raises
        :class:`~repro.errors.DeadlineExceeded` at the deadline instead of
        spending ``timeout × retries`` on a wedged chunk (the stuck
        workers are killed on the way out — the executor rebuilds lazily
        on next use).  Fault-tolerance contract (DESIGN.md §9):

        * **worker death** (``BrokenProcessPool``) — the executor is
          rebuilt, shared bundles re-validated (re-published if a segment
          vanished), and every unfinished chunk resubmitted; the chunk at
          the head of the consumption line is charged one attempt;
        * **hang** — with ``timeout=``, a chunk exceeding its wall-clock
          budget at the head of the line has the workers killed and is
          charged one attempt;
        * **poisoned task** — a failing multi-task chunk is split in half
          to isolate the poison; a single task failing past ``retries`` is
          degraded to one serial in-process attempt, then raised with its
          identity (``on_error="raise"``) or quarantined as a
          :class:`~repro.parallel.pool.TaskFailure` (``"record"``);
        * **determinism** — results are assembled by absolute task index
          and emitted in task order through ``consume``; retries use
          deterministic exponential backoff and never touch RNG streams,
          so records are bit-identical to a clean run.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        if on_error not in ("raise", "record"):
            raise ConfigurationError(f"unknown on_error policy {on_error!r}")
        if chunk_size is None:
            chunk_size = max(
                1, (len(tasks) + 4 * self.workers - 1) // (4 * self.workers)
            )
        owner_arrays = None if shared is None else shared.arrays()
        bundle = shared
        owned_republish: "SharedArrayBundle | None" = None
        units = [
            _Unit(chunk_id=ci, start=i, tasks=tasks[i : i + chunk_size])
            for ci, i in enumerate(range(0, len(tasks), chunk_size))
        ]
        results: dict[int, object] = {}
        n = len(tasks)
        emit = 0
        inflight: "OrderedDict" = OrderedDict()

        def submit(unit: _Unit) -> None:
            spec = None if bundle is None else bundle.spec
            try:
                pool = self._ensure_executor()
                fut = pool.submit(
                    _run_chunk, fn, spec, unit.tasks, unit.chunk_id,
                    unit.start, deadline,
                )
            except BrokenProcessPool:  # pragma: no cover - submit race
                self._kill_executor()
                pool = self._ensure_executor()
                fut = pool.submit(
                    _run_chunk, fn, spec, unit.tasks, unit.chunk_id,
                    unit.start, deadline,
                )
            inflight[fut] = unit

        def drain_deadline() -> None:
            # The request budget is spent.  The workers see the same
            # deadline (published via current_task_deadline), so
            # checkpoint-capable tasks are yielding at their next applied-
            # move boundary right now: give each inflight chunk a short
            # bounded grace to hand those checkpoint-and-yield markers
            # back — the budget converts to persisted progress — then
            # kill whatever is still running and raise.  Never a hang:
            # the grace is a constant, not another retry ladder.
            grace_until = time.monotonic() + _DEADLINE_GRACE
            while inflight:
                fut, unit = next(iter(inflight.items()))
                try:
                    part = fut.result(
                        timeout=max(grace_until - time.monotonic(), 0.0)
                    )
                except Exception:  # repro-lint: disable=R4 -- anything still failing at spent budget is killed below
                    break
                del inflight[fut]
                for off, value in enumerate(part):
                    if not isinstance(value, _TaskError):
                        results[unit.start + off] = value
                    elif value.deadline and on_error == "record":
                        results[unit.start + off] = _permanent_failure(
                            value, unit.attempts + 1, on_error
                        )
                emit_ready()
            self._kill_executor()
            raise DeadlineExceeded(
                "request deadline passed; yielded task checkpoints were "
                "collected and remaining workers killed rather than "
                "retried past the budget"
            )

        def guard_deadline() -> None:
            # The request budget outranks the retry budget: at expiry the
            # inflight chunks get one bounded grace to yield their
            # progress, the rest are killed, and the typed error
            # propagates — never a hang.
            if deadline is None:
                return
            try:
                _check_deadline(deadline)
            except DeadlineExceeded:
                drain_deadline()

        def degrade_serial(unit: _Unit) -> None:
            # The last resort: the chunk keeps dying in workers, so run its
            # tasks in the owner (where injected kill/hang downgrade to
            # raises) — completing genuinely fine tasks and giving the
            # poisoned one a final, identity-preserving verdict.
            part = _serial_map(
                fn, unit.tasks, owner_arrays,
                retries=0, backoff=backoff, on_error=on_error,
                deadline=deadline, start=unit.start,
            )
            for off, value in enumerate(part):
                if isinstance(value, TaskFailure):
                    value.attempts += unit.attempts
                results[unit.start + off] = value

        def handle_chunk_failure(unit: _Unit, requeue: list) -> None:
            unit.attempts += 1
            if len(unit.tasks) > 1:
                # Split to isolate the poisoned task: the innocent half
                # completes normally instead of riding the retry budget.
                mid = len(unit.tasks) // 2
                requeue.append(
                    _Unit(unit.chunk_id, unit.start, unit.tasks[:mid],
                          unit.attempts)
                )
                requeue.append(
                    _Unit(unit.chunk_id, unit.start + mid, unit.tasks[mid:],
                          unit.attempts)
                )
            elif unit.attempts > retries:
                degrade_serial(unit)
            else:
                guard_deadline()
                _backoff_sleep(backoff, unit.attempts)
                requeue.append(unit)

        def rebuild_and_resubmit(extra: list) -> None:
            nonlocal bundle, owned_republish
            self._kill_executor()
            pending = list(inflight.values())
            inflight.clear()
            if bundle is not None:
                fresh = bundle.revalidate()
                if fresh is not bundle:
                    # A segment vanished mid-fleet: the re-published bundle
                    # is ours to close when the call finishes.
                    if owned_republish is not None:
                        owned_republish.close()
                    bundle = owned_republish = fresh
            for unit in sorted(pending + extra, key=lambda u: u.start):
                submit(unit)

        def emit_ready() -> None:
            nonlocal emit
            batch: list = []
            while emit < n and emit in results:
                batch.append(results[emit])
                emit += 1
            if batch and consume is not None:
                consume(batch)

        try:
            for unit in units:
                submit(unit)
            while inflight:
                guard_deadline()
                fut, unit = next(iter(inflight.items()))
                wait = timeout
                deadline_capped = False
                if deadline is not None:
                    remaining = max(deadline - time.monotonic(), 0.0)
                    if wait is None or remaining < wait:
                        # The request budget binds before the per-chunk
                        # timeout: wait only that long, and treat expiry
                        # as the deadline, not as a hung chunk to retry.
                        wait = remaining
                        deadline_capped = True
                try:
                    part = fut.result(timeout=wait)
                except _FuturesTimeout:
                    if deadline_capped:
                        drain_deadline()
                    # Head-of-line chunk blew its wall-clock budget: the
                    # worker is presumed hung.  Nothing short of SIGKILL
                    # interrupts it, so tear the executor down and retry
                    # every unfinished chunk (the hung one charged).
                    del inflight[fut]
                    requeue: list = []
                    handle_chunk_failure(unit, requeue)
                    rebuild_and_resubmit(requeue)
                    emit_ready()
                    continue
                except BrokenProcessPool:
                    # A worker died (OOM-kill, segfault, injected SIGKILL).
                    # Every inflight future is void; charge the head unit
                    # (the culprit is unknowable, and misattribution only
                    # costs an extra split — never a wrong result).
                    del inflight[fut]
                    requeue = []
                    handle_chunk_failure(unit, requeue)
                    rebuild_and_resubmit(requeue)
                    emit_ready()
                    continue
                except Exception:  # repro-lint: disable=R4 -- infra failures here are unbounded (attach, pickling); unit is retried, not dropped
                    # Infrastructure failure outside the task body (attach
                    # error, payload pickling): charge and retry the unit;
                    # the rest of the pool is healthy.
                    del inflight[fut]
                    requeue = []
                    handle_chunk_failure(unit, requeue)
                    for u in requeue:
                        submit(u)
                    emit_ready()
                    continue
                del inflight[fut]
                retry_units: list[_Unit] = []
                for off, value in enumerate(part):
                    if isinstance(value, _TaskError):
                        attempts = unit.attempts + 1
                        if value.deadline:
                            # The task body yielded on a spent deadline
                            # (checkpoint-and-yield): re-running it now
                            # would just re-expire, so record/raise the
                            # permanent verdict without the retry ladder
                            # or the degraded serial re-run.
                            results[unit.start + off] = _permanent_failure(
                                value, attempts, on_error
                            )
                        elif attempts > retries:
                            # Spent: one degraded serial verdict, then
                            # record/raise with identity.
                            single = _Unit(
                                unit.chunk_id, unit.start + off,
                                [unit.tasks[off]], attempts - 1,
                            )
                            degrade_serial(single)
                        else:
                            guard_deadline()
                            _backoff_sleep(backoff, attempts)
                            retry_units.append(
                                _Unit(
                                    unit.chunk_id, unit.start + off,
                                    [unit.tasks[off]], attempts,
                                )
                            )
                    else:
                        results[unit.start + off] = value
                for u in retry_units:
                    submit(u)
                emit_ready()
            return [results[i] for i in range(n)]
        finally:
            for fut in inflight:
                fut.cancel()
            if owned_republish is not None:
                owned_republish.close()

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop the workers.  The pool restarts lazily on next use."""
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        alive = self._executor is not None
        return f"SharedArrayPool(workers={self.workers}, alive={alive})"


def map_streamed(
    fn: Callable,
    tasks: Sequence,
    workers: int,
    consume: "Callable[[list], None] | None" = None,
    *,
    timeout: "float | None" = None,
    deadline: "float | None" = None,
    retries: int = 1,
    backoff: float = 0.05,
    on_error: str = "raise",
) -> list:
    """Map ``fn`` over ``tasks``, streaming finished results in order.

    The census fleets' execution loop, shared: ``workers <= 1`` (or a
    single task) runs serially in-process; otherwise contiguous chunks are
    sharded over the persistent pool with results emitted in task order,
    so ``consume`` sees every result batch in task order while later
    chunks still run.  Returns all results, in task order — identical for
    any worker count (tasks must be pure functions of their tuples, the
    fleets' seeding discipline).

    The fault-tolerance knobs (``timeout``, ``retries``, ``backoff``,
    ``on_error``) follow :meth:`SharedArrayPool.map`; with
    ``on_error="record"``, failed tasks appear (and stream) as
    :class:`~repro.parallel.pool.TaskFailure` entries in their slots.
    """
    tasks = list(tasks)
    if workers <= 1 or len(tasks) <= 1:
        return _serial_map(
            fn, tasks, None,
            retries=retries, backoff=backoff, on_error=on_error,
            deadline=deadline, consume=consume,
        )
    chunk_size = max(1, (len(tasks) + 4 * workers - 1) // (4 * workers))
    return get_shared_pool(workers).map(
        fn, tasks, chunk_size=chunk_size,
        timeout=timeout, deadline=deadline, retries=retries, backoff=backoff,
        on_error=on_error, consume=consume,
    )


_POOLS: dict[int, SharedArrayPool] = {}


def get_shared_pool(workers: int) -> SharedArrayPool:
    """The process-wide persistent pool for ``workers`` (created on demand).

    A pool whose executor broke since the last call is healed lazily: the
    next use detects the breakage and rebuilds the workers instead of
    returning the corpse.
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    _reap_once()
    pool = _POOLS.get(workers)
    if pool is None:
        pool = SharedArrayPool(workers)
        _POOLS[workers] = pool
    return pool


def shutdown_shared_pools() -> None:
    """Shut down every cached pool and close every live bundle."""
    for pool in _POOLS.values():
        try:
            pool.shutdown()
        except Exception:  # pragma: no cover - teardown races
            pass
    _POOLS.clear()
    for bundle in list(_LIVE_BUNDLES):
        bundle.close()


atexit.register(shutdown_shared_pools)
