"""Shared-memory array publishing and a persistent worker pool.

PR 1 made the per-edge distance question cheap; the orchestration around it
was still paying two process-level taxes on every parallel call:

* a fresh :class:`~concurrent.futures.ProcessPoolExecutor` was forked per
  call (worker start-up dominates short audits);
* every chunk payload re-pickled the large read-only inputs — the n×n base
  distance matrix and the CSR adjacency arrays — once per chunk.

This module removes both.  :class:`SharedArrayBundle` publishes a set of
numpy arrays into POSIX shared memory (``multiprocessing.shared_memory``);
workers attach by segment name and get **zero-copy read-only views**, cached
per process so repeated chunks pay nothing.  :class:`SharedArrayPool` keeps
one :class:`ProcessPoolExecutor` alive per worker count and reuses it across
calls; :func:`repro.parallel.parallel_map` routes through it when given a
``shared=`` payload (the fork-per-call path survives as ``backend="fork"``,
the determinism oracle).

Lifetime discipline (DESIGN.md §5):

* the **owner** process creates segments and keeps them registered with its
  ``resource_tracker`` — if the owner is killed, the tracker (a separate
  process) unlinks the segments, so a test-process crash leaks nothing in
  ``/dev/shm``;
* :meth:`SharedArrayBundle.close` unlinks eagerly and is idempotent;
  bundles also self-close via ``atexit`` and ``__del__`` as a backstop;
* **workers** are forked, so they share the owner's tracker process:
  attaching re-registers the same name (a set-idempotent no-op) and worker
  exit goes through ``os._exit`` (no atexit), so workers can neither leak
  nor double-unlink a segment; attached views are cached per segment name
  with a small LRU bound.

Determinism: the pool changes *where* tasks run, never *what* they return —
results are gathered in submission order, so ``parallel_map`` keeps its
exact results-independent-of-worker-count contract.
"""

from __future__ import annotations

import atexit
import itertools
import os
import uuid
import weakref
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import get_context
from multiprocessing import shared_memory as _shm
from typing import Callable, Mapping, Sequence

import numpy as np

from ..errors import ConfigurationError
from .pool import chunk_evenly

__all__ = [
    "SharedArrayBundle",
    "SharedArrayPool",
    "get_shared_pool",
    "map_streamed",
    "shutdown_shared_pools",
]

#: Segment-name prefix: makes leak assertions in tests (and `ls /dev/shm`
#: forensics in anger) trivially greppable.
_NAME_PREFIX = "repro-shm"

_SPEC_FIELDS = 4  # (key, segment name, shape, dtype string)

_name_counter = itertools.count()


def _new_segment_name() -> str:
    # pid + counter + random suffix: unique across processes and re-runs,
    # short enough for the POSIX shm_open name limit.
    return (
        f"{_NAME_PREFIX}-{os.getpid()}-{next(_name_counter)}-"
        f"{uuid.uuid4().hex[:8]}"
    )


# Bundles still open, for the atexit backstop.  Weak so that garbage
# collection (which triggers __del__ -> close) drops entries naturally.
_LIVE_BUNDLES: "weakref.WeakSet[SharedArrayBundle]" = weakref.WeakSet()


class SharedArrayBundle:
    """A set of numpy arrays published once into shared memory.

    Parameters
    ----------
    arrays:
        Mapping of key -> array.  Each array is copied into its own shared
        segment at construction (the one copy the whole parallel call pays);
        views handed out afterwards are zero-copy and read-only.

    Use as a context manager (or call :meth:`close`) to unlink eagerly;
    otherwise ``atexit``/``__del__`` clean up, and the owner's resource
    tracker covers abnormal exits.
    """

    def __init__(self, arrays: Mapping[str, np.ndarray]):
        if not arrays:
            raise ConfigurationError("SharedArrayBundle needs >= 1 array")
        self._segments: dict[str, _shm.SharedMemory] = {}
        self._views: dict[str, np.ndarray] = {}
        spec: list[tuple[str, str, tuple[int, ...], str]] = []
        try:
            for key, arr in arrays.items():
                arr = np.ascontiguousarray(arr)
                if arr.nbytes == 0:
                    raise ConfigurationError(
                        f"cannot share empty array {key!r}"
                    )
                seg = _shm.SharedMemory(
                    create=True, size=arr.nbytes, name=_new_segment_name()
                )
                view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
                view[...] = arr
                view.flags.writeable = False
                self._segments[key] = seg
                self._views[key] = view
                spec.append((key, seg.name, arr.shape, arr.dtype.str))
        except BaseException:
            self.close()
            raise
        self._spec = tuple(spec)
        self._closed = False
        _LIVE_BUNDLES.add(self)

    # ------------------------------------------------------------------
    @property
    def spec(self) -> tuple:
        """Picklable handle workers attach from: (key, name, shape, dtype)."""
        return self._spec

    def arrays(self) -> dict[str, np.ndarray]:
        """The owner's read-only zero-copy views, keyed as published."""
        if self._closed:
            raise ConfigurationError("bundle is closed")
        return dict(self._views)

    @property
    def segment_names(self) -> tuple[str, ...]:
        return tuple(seg.name for seg in self._segments.values())

    def close(self) -> None:
        """Release and unlink every segment.  Idempotent."""
        self._views = {}
        segments, self._segments = self._segments, {}
        for seg in segments.values():
            try:
                seg.close()
            except Exception:  # pragma: no cover - teardown races
                pass
            try:
                seg.unlink()
            except Exception:  # pragma: no cover - already unlinked
                pass
        self._closed = True

    # ------------------------------------------------------------------
    def __enter__(self) -> "SharedArrayBundle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - gc timing dependent
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        keys = ", ".join(k for k, *_ in self._spec)
        return f"SharedArrayBundle({keys}; closed={self._closed})"


# ---------------------------------------------------------------------------
# Worker side: attach-and-cache
# ---------------------------------------------------------------------------

#: Per-process cache of attached segments: name -> (SharedMemory, view).
#: Bounded LRU so a long-lived worker serving many bundles does not pin
#: unboundedly many mappings.
_ATTACH_CACHE: "OrderedDict[str, tuple[_shm.SharedMemory, np.ndarray]]" = (
    OrderedDict()
)
_ATTACH_CACHE_MAX = 8


def _attach_one(name: str, shape, dtype: str) -> np.ndarray:
    cached = _ATTACH_CACHE.get(name)
    if cached is not None:
        _ATTACH_CACHE.move_to_end(name)
        return cached[1]
    seg = _shm.SharedMemory(name=name)
    view = np.ndarray(tuple(shape), dtype=np.dtype(dtype), buffer=seg.buf)
    view.flags.writeable = False
    _ATTACH_CACHE[name] = (seg, view)
    while len(_ATTACH_CACHE) > _ATTACH_CACHE_MAX:
        _, (old_seg, _) = _ATTACH_CACHE.popitem(last=False)
        try:
            old_seg.close()
        except Exception:  # pragma: no cover
            pass
    return view


def attach_spec(spec) -> dict[str, np.ndarray]:
    """Attach a :attr:`SharedArrayBundle.spec` in this process (cached)."""
    return {
        key: _attach_one(name, shape, dtype)
        for key, name, shape, dtype in spec
    }


def _run_chunk(fn: Callable, spec, chunk: list) -> list:
    """Worker entry point: resolve the shared payload, map the chunk."""
    if spec is None:
        return [fn(task) for task in chunk]
    arrays = attach_spec(spec)
    return [fn(task, arrays) for task in chunk]


# ---------------------------------------------------------------------------
# Persistent pool
# ---------------------------------------------------------------------------

def _mp_context():
    try:
        return get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        return None


class SharedArrayPool:
    """A persistent process pool with a shared-array payload channel.

    Workers are created once and reused across :meth:`map` calls; large
    read-only arrays travel via :class:`SharedArrayBundle` instead of being
    pickled per chunk.  Results are gathered in submission order, so output
    is independent of worker count and scheduling.
    """

    def __init__(self, workers: int):
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._executor: ProcessPoolExecutor | None = None

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            ctx = _mp_context()
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=ctx
            )
        return self._executor

    # ------------------------------------------------------------------
    def submit_chunks(
        self,
        fn: Callable,
        chunks: Sequence[list],
        shared: SharedArrayBundle | None = None,
    ):
        """Submit chunks, returning futures in submission order.

        The streaming primitive under :meth:`map` and the census fleet:
        callers may consume futures in order while later chunks still run.
        """
        spec = None if shared is None else shared.spec
        pool = self._ensure_executor()
        return [pool.submit(_run_chunk, fn, spec, list(c)) for c in chunks]

    def map(
        self,
        fn: Callable,
        tasks: Sequence,
        shared: SharedArrayBundle | None = None,
        chunk_size: int | None = None,
    ) -> list:
        """Map ``fn`` over ``tasks`` (order preserved), sharing ``shared``.

        ``fn`` is called as ``fn(task)`` without a bundle and as
        ``fn(task, arrays)`` with one.  A broken pool (a worker died) is
        rebuilt once and the call retried — determinism is unaffected
        because no partial results are kept.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        if chunk_size is None:
            chunk_size = max(
                1, (len(tasks) + 4 * self.workers - 1) // (4 * self.workers)
            )
        chunks = [
            tasks[i : i + chunk_size]
            for i in range(0, len(tasks), chunk_size)
        ]
        try:
            futures = self.submit_chunks(fn, chunks, shared)
            out: list = []
            for fut in futures:
                out.extend(fut.result())
            return out
        except BrokenProcessPool:
            self.shutdown()
            futures = self.submit_chunks(fn, chunks, shared)
            out = []
            for fut in futures:
                out.extend(fut.result())
            return out

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop the workers.  The pool restarts lazily on next use."""
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        alive = self._executor is not None
        return f"SharedArrayPool(workers={self.workers}, alive={alive})"


def map_streamed(
    fn: Callable,
    tasks: Sequence,
    workers: int,
    consume: "Callable[[list], None] | None" = None,
) -> list:
    """Map ``fn`` over ``tasks``, streaming finished results in order.

    The census fleets' execution loop, shared: ``workers <= 1`` (or a
    single task) runs serially in-process; otherwise contiguous chunks are
    sharded over the persistent pool and their futures consumed in
    submission order, so ``consume`` sees every result batch in task order
    while later chunks still run.  Returns all results, in task order —
    identical for any worker count (tasks must be pure functions of their
    tuples, the fleets' seeding discipline).
    """
    results: list = []

    def take(part: list) -> None:
        results.extend(part)
        if consume is not None:
            consume(part)

    if workers <= 1 or len(tasks) <= 1:
        for task in tasks:
            take([fn(task)])
        return results
    chunks = [chunk for _, chunk in chunk_evenly(tasks, 4 * workers)]
    for fut in get_shared_pool(workers).submit_chunks(fn, chunks):
        take(fut.result())
    return results


_POOLS: dict[int, SharedArrayPool] = {}


def get_shared_pool(workers: int) -> SharedArrayPool:
    """The process-wide persistent pool for ``workers`` (created on demand)."""
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    pool = _POOLS.get(workers)
    if pool is None:
        pool = SharedArrayPool(workers)
        _POOLS[workers] = pool
    return pool


def shutdown_shared_pools() -> None:
    """Shut down every cached pool and close every live bundle."""
    for pool in _POOLS.values():
        try:
            pool.shutdown()
        except Exception:  # pragma: no cover - teardown races
            pass
    _POOLS.clear()
    for bundle in list(_LIVE_BUNDLES):
        bundle.close()


atexit.register(shutdown_shared_pools)
