"""Deterministic process-pool mapping.

The hpc-parallel guides' discipline applied to a laptop-scale library:

* results are **independent of worker count and scheduling** — every task
  carries its own :func:`~repro.rng.derive_seed`-derived seed, so running
  with ``workers=1`` or ``workers=8`` yields identical records;
* the serial path is first-class (``workers=1`` avoids process start-up
  entirely), because the experiment grid sizes here are often too small to
  amortize fork+pickle overhead — the bench harness picks serial for small
  grids automatically;
* chunking is explicit: tasks are submitted in contiguous chunks to bound
  pickle traffic, mirroring the "batch your communication" rule from the
  MPI guide.

Functions submitted must be module-level (picklable); closures are rejected
early with a clear error rather than a confusing pickle traceback.

Since the shared-memory runtime (DESIGN.md §5), ``parallel_map`` also has a
``shared=`` payload channel: a mapping of large read-only numpy arrays that
is published once via :class:`~repro.parallel.shared.SharedArrayBundle` and
attached zero-copy in the workers, instead of being pickled into every chunk.
``backend`` selects the execution substrate — ``"persistent"`` reuses one
long-lived pool across calls, ``"fork"`` keeps the original fork-per-call
executor (the oracle both for determinism tests and for callers that must
not leave worker processes behind).  Results are identical across backends,
worker counts, and chunkings by construction.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Literal, Mapping, Sequence, TypeVar

import numpy as np

from ..errors import ConfigurationError

__all__ = ["chunk_evenly", "default_workers", "parallel_map"]

T = TypeVar("T")
R = TypeVar("R")


def chunk_evenly(items: Sequence[T], parts: int) -> list[tuple[int, list[T]]]:
    """Split ``items`` into ≤ ``parts`` contiguous chunks of near-equal size.

    Returns ``(start_offset, chunk)`` pairs; offsets let workers report
    positions in the original order so chunked scans stay deterministic
    (the equilibrium audits key their "first violation" on them).  Empty
    chunks are dropped; ``parts`` is clamped to ``len(items)``.
    """
    if parts < 1:
        raise ConfigurationError(f"parts must be >= 1, got {parts}")
    items = list(items)
    k = max(1, min(parts, len(items)))
    if not items:
        return []
    bounds = [round(i * len(items) / k) for i in range(k + 1)]
    return [
        (lo, items[lo:hi])
        for lo, hi in zip(bounds[:-1], bounds[1:])
        if hi > lo
    ]


def default_workers() -> int:
    """CPU count minus one (floor 1): leave a core for the orchestrator."""
    return max(1, (os.cpu_count() or 1) - 1)


def _check_picklable(fn: Callable) -> None:
    try:
        pickle.dumps(fn)
    except Exception as exc:  # pragma: no cover - message path
        raise ConfigurationError(
            f"parallel_map requires a picklable (module-level) function; "
            f"{fn!r} failed to pickle: {exc}"
        ) from exc


Backend = Literal["auto", "persistent", "fork"]


def _resolve_shared(shared):
    """Normalize a ``shared=`` payload to (bundle-or-None, owner-arrays).

    Publishing to shared memory is deferred to the persistent-pool branch:
    the serial and fork paths work off the caller's own arrays, so they
    never pay a segment copy.
    """
    from .shared import SharedArrayBundle

    if shared is None:
        return None, None
    if isinstance(shared, SharedArrayBundle):
        return shared, shared.arrays()
    if isinstance(shared, Mapping):
        return None, dict(shared)
    raise ConfigurationError(
        f"shared must be a mapping of numpy arrays or a SharedArrayBundle, "
        f"got {type(shared).__name__}"
    )


def _fork_shared_chunk(payload):
    """Fork-backend worker: the arrays arrive pickled inside the payload.

    This is the re-pickling oracle the shared-memory path is validated
    against — deliberately unoptimized.
    """
    fn, arrays, chunk = payload
    return [fn(task, arrays) for task in chunk]


def parallel_map(
    fn: Callable[[T], R],
    tasks: Sequence[T],
    workers: int | None = None,
    chunk_size: int | None = None,
    *,
    shared: "Mapping[str, np.ndarray] | None" = None,
    backend: Backend = "auto",
) -> list[R]:
    """Map ``fn`` over ``tasks``, preserving order.

    Parameters
    ----------
    workers:
        Process count; ``None`` → :func:`default_workers`; ``1`` → serial
        in-process execution (no pool, exact same semantics).
    chunk_size:
        Tasks per submission; ``None`` → ``ceil(len / (4·workers))`` with a
        floor of 1 (a standard latency/throughput compromise).
    shared:
        Optional mapping of large read-only numpy arrays (or an existing
        :class:`~repro.parallel.shared.SharedArrayBundle`).  When given,
        ``fn`` is called as ``fn(task, arrays)`` where ``arrays`` maps the
        same keys to ndarray views — zero-copy shared memory on the
        persistent backend, plain pickled copies on the fork backend, the
        caller's own arrays on the serial path.  A mapping passed here is
        published for the duration of the call and unlinked before return.
    backend:
        ``"auto"`` — persistent pool when ``shared`` is given, fork-per-call
        otherwise (the pre-shared-runtime behaviour); ``"persistent"`` /
        ``"fork"`` force one substrate.  Results are identical either way.
    """
    tasks = list(tasks)
    if workers is None:
        workers = default_workers()
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if backend not in ("auto", "persistent", "fork"):
        raise ConfigurationError(f"unknown backend {backend!r}")
    if not tasks:
        return []
    bundle, owner_arrays = _resolve_shared(shared)
    if workers == 1 or len(tasks) == 1:
        if owner_arrays is None:
            return [fn(t) for t in tasks]
        return [fn(t, owner_arrays) for t in tasks]
    _check_picklable(fn)
    if chunk_size is None:
        chunk_size = max(1, (len(tasks) + 4 * workers - 1) // (4 * workers))
    if backend == "persistent" or (backend == "auto" and shared is not None):
        from .shared import SharedArrayBundle, get_shared_pool

        owns_bundle = bundle is None and owner_arrays is not None
        if owns_bundle:
            bundle = SharedArrayBundle(owner_arrays)
        try:
            return get_shared_pool(workers).map(
                fn, tasks, shared=bundle, chunk_size=chunk_size
            )
        finally:
            if owns_bundle:
                bundle.close()
    if owner_arrays is None:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, tasks, chunksize=chunk_size))
    # Fork backend with a shared payload: pickle the materialized arrays
    # into every chunk (the oracle for the zero-copy path).
    payloads = [
        (fn, owner_arrays, tasks[i : i + chunk_size])
        for i in range(0, len(tasks), chunk_size)
    ]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        out: list[R] = []
        for part in pool.map(_fork_shared_chunk, payloads):
            out.extend(part)
        return out
