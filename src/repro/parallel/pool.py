"""Deterministic process-pool mapping.

The hpc-parallel guides' discipline applied to a laptop-scale library:

* results are **independent of worker count and scheduling** — every task
  carries its own :func:`~repro.rng.derive_seed`-derived seed, so running
  with ``workers=1`` or ``workers=8`` yields identical records;
* the serial path is first-class (``workers=1`` avoids process start-up
  entirely), because the experiment grid sizes here are often too small to
  amortize fork+pickle overhead — the bench harness picks serial for small
  grids automatically;
* chunking is explicit: tasks are submitted in contiguous chunks to bound
  pickle traffic, mirroring the "batch your communication" rule from the
  MPI guide.

Functions submitted must be module-level (picklable); closures are rejected
early with a clear error rather than a confusing pickle traceback.

Since the shared-memory runtime (DESIGN.md §5), ``parallel_map`` also has a
``shared=`` payload channel: a mapping of large read-only numpy arrays that
is published once via :class:`~repro.parallel.shared.SharedArrayBundle` and
attached zero-copy in the workers, instead of being pickled into every chunk.
``backend`` selects the execution substrate — ``"persistent"`` reuses one
long-lived pool across calls, ``"fork"`` keeps the original fork-per-call
executor (the oracle both for determinism tests and for callers that must
not leave worker processes behind).  Results are identical across backends,
worker counts, and chunkings by construction.

Since the fault-tolerance layer (DESIGN.md §9), ``parallel_map`` also takes
``timeout=`` (per-chunk wall clock), ``retries=`` (bounded, with
exponential backoff and chunk-splitting to isolate a poisoned task), and
``on_error=`` (``"raise"`` — chain the failing task's identity into a
:class:`~repro.errors.TaskExecutionError` — or ``"record"`` — yield a
:class:`TaskFailure` in the failed task's slot instead of aborting the
call).  Recovery never touches any RNG stream and never reorders results:
retried tasks are pure functions of their task tuples and results are
assembled by absolute task index, so a run with injected faults produces
records bit-identical to a clean run.
"""

from __future__ import annotations

import os
import pickle
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Literal, Mapping, Sequence, TypeVar

import numpy as np

from ..errors import ConfigurationError, DeadlineExceeded, TaskExecutionError
from . import faults

__all__ = [
    "TaskFailure",
    "check_deadline",
    "chunk_evenly",
    "current_task_deadline",
    "default_workers",
    "parallel_map",
]

T = TypeVar("T")
R = TypeVar("R")

#: Backoff delays are ``backoff * 2**(attempt-1)`` capped here — retries
#: must stay deterministic (no jitter) and bounded (a fleet should spend
#: its wall clock on work, not sleeps).
_BACKOFF_CAP = 2.0


@dataclass
class TaskFailure:
    """A task that failed permanently, quarantined in its result slot.

    Produced by the ``on_error="record"`` policy: the mapped result list
    keeps one entry per task, with failed tasks replaced by this record
    (index = absolute position in the mapped task list) so fleets can
    stream a quarantine record instead of dying.
    """

    index: int
    task_repr: str
    error: str
    attempts: int


@dataclass
class _TaskError:
    """Picklable transport of a worker-side task exception.

    Workers catch per-task exceptions and return these markers in the
    task's result slot, so a poisoned task never poisons its chunk-mates'
    results and the parent knows exactly which task failed (satellite of
    ISSUE 6: task identity in raised errors).
    """

    index: int
    task_repr: str
    exc_repr: str
    tb_text: str
    exc_bytes: "bytes | None"
    #: The task body raised :class:`~repro.errors.DeadlineExceeded` — it
    #: yielded on purpose (checkpoint-and-yield, DESIGN.md §13).  Retrying
    #: it against the same spent budget is pure waste, so the runtime
    #: skips the retry ladder and goes straight to the permanent verdict.
    deadline: bool = False

    @classmethod
    def from_exception(cls, index: int, task, exc: Exception) -> "_TaskError":
        try:
            blob = pickle.dumps(exc)
        except Exception:  # repro-lint: disable=R4 -- pickling arbitrary user exceptions can raise anything; repr fallback below
            blob = None
        return cls(
            index, repr(task), repr(exc), traceback.format_exc(), blob,
            deadline=isinstance(exc, DeadlineExceeded),
        )

    def exception(self) -> BaseException:
        """The original exception (re-pickled), or a faithful stand-in."""
        if self.exc_bytes is not None:
            try:
                return pickle.loads(self.exc_bytes)
            except Exception:  # pragma: no cover - unpicklable custom exc
                pass
        return RuntimeError(f"{self.exc_repr}\n{self.tb_text}")


def _call_task(fn: Callable, task, arrays) -> object:
    return fn(task) if arrays is None else fn(task, arrays)


#: The request deadline governing the task currently being mapped, set by
#: the chunk/serial runners for the duration of each task body and read via
#: :func:`current_task_deadline`.  Per-process (workers set their own copy
#: around each chunk); ``time.monotonic()`` instants are system-wide on the
#: platforms the pool runs on, so the owner's deadline is meaningful in a
#: forked worker.
_ambient_deadline: "float | None" = None


def current_task_deadline() -> "float | None":
    """The mapped request's absolute deadline, visible from a task body.

    Checkpoint-capable task bodies (``SwapDynamics.run``, DESIGN.md §13)
    adopt this when no explicit deadline was passed, so a fleet-level
    deadline makes a long-running task snapshot-and-yield instead of
    running on while the pool gives up waiting for it.  ``None`` outside
    a mapped task or when the map call had no deadline.
    """
    return _ambient_deadline


class _deadline_scope:
    """Context manager binding the ambient task deadline (re-entrant safe)."""

    def __init__(self, deadline: "float | None"):
        self._deadline = deadline
        self._prev: "float | None" = None

    def __enter__(self) -> None:
        global _ambient_deadline
        self._prev = _ambient_deadline
        _ambient_deadline = self._deadline

    def __exit__(self, *exc_info) -> None:
        global _ambient_deadline
        _ambient_deadline = self._prev


def _run_tasks(fn, arrays, tasks, chunk_id, start, deadline=None) -> list:
    """Run a contiguous chunk, catching per-task exceptions into markers.

    The single chunk body shared by every process backend (and the
    degraded serial path): checks the fault-injection sites (``chunk=`` at
    chunk start, ``task=`` per task) and returns one entry per task —
    the result, or a :class:`_TaskError` carrying the task's identity.
    ``deadline`` is published to the task bodies via
    :func:`current_task_deadline` for checkpoint-and-yield support.
    """
    faults.maybe_fault(chunk=chunk_id)
    out: list = []
    with _deadline_scope(deadline):
        for i, task in enumerate(tasks):
            abs_idx = start + i
            try:
                faults.maybe_fault(task=abs_idx)
                out.append(_call_task(fn, task, arrays))
            except Exception as exc:  # repro-lint: disable=R4 -- task bodies raise anything; quarantined as a typed marker
                out.append(_TaskError.from_exception(abs_idx, task, exc))
    return out


def _backoff_sleep(backoff: float, attempt: int) -> None:
    if backoff > 0:
        time.sleep(min(backoff * (2 ** max(0, attempt - 1)), _BACKOFF_CAP))


def _check_deadline(deadline: "float | None") -> None:
    """Raise the typed deadline error when the absolute budget has passed.

    ``deadline`` is a ``time.monotonic()`` instant.  Called between tasks
    (serial path) and between waits/retries (pool path) — a *running* task
    cannot be preempted in-process, so the guarantee is "fails fast at the
    next scheduling point", with the pool's wait loop additionally capping
    each blocking wait at the remaining budget.
    """
    if deadline is not None and time.monotonic() >= deadline:
        raise DeadlineExceeded(
            f"request deadline passed (monotonic {deadline:.3f}); "
            "aborting instead of retrying past the budget"
        )


#: Public alias: serial scan loops (equilibrium audits, the audit service)
#: guard their own iteration with the same typed check the runtime uses.
check_deadline = _check_deadline


def _permanent_failure(
    marker: _TaskError, attempts: int, on_error: str
) -> TaskFailure:
    """Raise (identity chained) or quarantine a spent task, per policy."""
    if on_error == "record":
        return TaskFailure(
            index=marker.index,
            task_repr=marker.task_repr,
            error=marker.exc_repr,
            attempts=attempts,
        )
    err = TaskExecutionError(
        f"task {marker.index} ({marker.task_repr}) failed after "
        f"{attempts} attempt(s): {marker.exc_repr}",
        index=marker.index,
        task_repr=marker.task_repr,
        attempts=attempts,
    )
    raise err from marker.exception()


def _serial_map(
    fn: Callable,
    tasks: Sequence,
    arrays,
    *,
    retries: int = 0,
    backoff: float = 0.05,
    on_error: str = "raise",
    deadline: "float | None" = None,
    start: int = 0,
    consume: "Callable[[list], None] | None" = None,
) -> list:
    """The serial path with the same retry/quarantine contract as the pool.

    Also the degraded last resort the resilient pool falls back to when a
    chunk keeps failing (DESIGN.md §9) — fault sites are checked here too,
    with kill/hang downgrading to raises in the owner process.
    ``deadline`` (absolute monotonic) is checked between tasks and between
    retry attempts; it raises :class:`~repro.errors.DeadlineExceeded`
    regardless of ``on_error`` — a spent request budget is not a task
    failure to quarantine.
    """
    out: list = []
    for i, task in enumerate(tasks):
        abs_idx = start + i
        _check_deadline(deadline)
        attempts = 0
        while True:
            attempts += 1
            try:
                faults.maybe_fault(task=abs_idx)
                with _deadline_scope(deadline):
                    value = _call_task(fn, task, arrays)
                break
            except Exception as exc:  # repro-lint: disable=R4 -- retry loop must catch whatever the task body raises
                # A task-body DeadlineExceeded is a deliberate yield (the
                # task checkpointed its progress); retrying it against the
                # same spent budget is waste, so it goes straight to the
                # permanent verdict.
                if attempts > retries or isinstance(exc, DeadlineExceeded):
                    marker = _TaskError.from_exception(abs_idx, task, exc)
                    value = _permanent_failure(marker, attempts, on_error)
                    break
                _check_deadline(deadline)
                _backoff_sleep(backoff, attempts)
        out.append(value)
        if consume is not None:
            consume([value])
    return out


def chunk_evenly(items: Sequence[T], parts: int) -> list[tuple[int, list[T]]]:
    """Split ``items`` into ≤ ``parts`` contiguous chunks of near-equal size.

    Returns ``(start_offset, chunk)`` pairs; offsets let workers report
    positions in the original order so chunked scans stay deterministic
    (the equilibrium audits key their "first violation" on them).  Empty
    chunks are dropped; ``parts`` is clamped to ``len(items)``.
    """
    if parts < 1:
        raise ConfigurationError(f"parts must be >= 1, got {parts}")
    items = list(items)
    k = max(1, min(parts, len(items)))
    if not items:
        return []
    bounds = [round(i * len(items) / k) for i in range(k + 1)]
    return [
        (lo, items[lo:hi])
        for lo, hi in zip(bounds[:-1], bounds[1:])
        if hi > lo
    ]


def default_workers() -> int:
    """CPU count minus one (floor 1): leave a core for the orchestrator."""
    return max(1, (os.cpu_count() or 1) - 1)


def _check_picklable(fn: Callable) -> None:
    try:
        pickle.dumps(fn)
    except Exception as exc:  # pragma: no cover - message path
        raise ConfigurationError(
            f"parallel_map requires a picklable (module-level) function; "
            f"{fn!r} failed to pickle: {exc}"
        ) from exc


Backend = Literal["auto", "persistent", "fork"]


def _resolve_shared(shared):
    """Normalize a ``shared=`` payload to (bundle-or-None, owner-arrays).

    Publishing to shared memory is deferred to the persistent-pool branch:
    the serial and fork paths work off the caller's own arrays, so they
    never pay a segment copy.
    """
    from .shared import SharedArrayBundle

    if shared is None:
        return None, None
    if isinstance(shared, SharedArrayBundle):
        return shared, shared.arrays()
    if isinstance(shared, Mapping):
        return None, dict(shared)
    raise ConfigurationError(
        f"shared must be a mapping of numpy arrays or a SharedArrayBundle, "
        f"got {type(shared).__name__}"
    )


def _fork_chunk(payload):
    """Fork-backend worker: arrays (if any) arrive pickled in the payload.

    This is the re-pickling oracle the shared-memory path is validated
    against — deliberately unoptimized, but it shares the per-task error
    capture so worker exceptions still carry task identity.
    """
    fn, arrays, start, chunk = payload
    return _run_tasks(fn, arrays, chunk, None, start)


def _raise_first_marker(results: list) -> list:
    """Raise on the first :class:`_TaskError`; otherwise pass through."""
    for item in results:
        if isinstance(item, _TaskError):
            _permanent_failure(item, 1, "raise")
    return results


def parallel_map(
    fn: Callable[[T], R],
    tasks: Sequence[T],
    workers: "int | None" = None,
    chunk_size: "int | None" = None,
    *,
    shared: "Mapping[str, np.ndarray] | None" = None,
    backend: Backend = "auto",
    timeout: "float | None" = None,
    deadline: "float | None" = None,
    retries: int = 0,
    backoff: float = 0.05,
    on_error: Literal["raise", "record"] = "raise",
) -> list[R]:
    """Map ``fn`` over ``tasks``, preserving order.

    Parameters
    ----------
    workers:
        Process count; ``None`` → :func:`default_workers`; ``1`` → serial
        in-process execution (no pool, exact same semantics).
    chunk_size:
        Tasks per submission; ``None`` → ``ceil(len / (4·workers))`` with a
        floor of 1 (a standard latency/throughput compromise).
    shared:
        Optional mapping of large read-only numpy arrays (or an existing
        :class:`~repro.parallel.shared.SharedArrayBundle`).  When given,
        ``fn`` is called as ``fn(task, arrays)`` where ``arrays`` maps the
        same keys to ndarray views — zero-copy shared memory on the
        persistent backend, plain pickled copies on the fork backend, the
        caller's own arrays on the serial path.  A mapping passed here is
        published for the duration of the call and unlinked before return.
    backend:
        ``"auto"`` — persistent pool when ``shared`` or any fault-tolerance
        knob is given, fork-per-call otherwise (the pre-shared-runtime
        behaviour); ``"persistent"`` / ``"fork"`` force one substrate.
        Results are identical either way.
    timeout:
        Per-chunk wall-clock budget in seconds (process backends only —
        the serial path cannot preempt itself).  A chunk that exceeds it is
        presumed hung: its workers are killed, the executor is rebuilt, and
        the chunk is retried/split under the ``retries`` budget.
    deadline:
        Absolute ``time.monotonic()`` instant bounding the *whole call* —
        the request budget a service propagates, as opposed to ``timeout``,
        which the retry machinery may spend once per attempt.  Past the
        deadline the call raises :class:`~repro.errors.DeadlineExceeded`
        (typed, regardless of ``on_error``) instead of retrying; blocking
        waits are capped at the remaining budget, so a hung worker fails
        the call at the deadline, not at ``timeout × retries``.
    retries:
        Per-task failure budget beyond the first attempt.  Chunk-level
        failures (worker death, timeout) split multi-task chunks to isolate
        the poisoned task; a single task that keeps failing is degraded to
        one serial in-process attempt before the policy below applies.
        Backoff between attempts is deterministic exponential
        (``backoff · 2^(attempt−1)``, capped) — no RNG stream is touched
        and result order never changes.
    on_error:
        ``"raise"`` (default) — raise :class:`~repro.errors.
        TaskExecutionError` naming the failed task's index/repr, chaining
        the original exception; ``"record"`` — put a :class:`TaskFailure`
        in the task's result slot and keep going (the fleets' quarantine
        policy).

    Worker exceptions always surface with the failing task's identity —
    the raised error names the task index and repr rather than a bare
    worker traceback.
    """
    tasks = list(tasks)
    if workers is None:
        workers = default_workers()
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if backend not in ("auto", "persistent", "fork"):
        raise ConfigurationError(f"unknown backend {backend!r}")
    if on_error not in ("raise", "record"):
        raise ConfigurationError(f"unknown on_error policy {on_error!r}")
    if retries < 0:
        raise ConfigurationError(f"retries must be >= 0, got {retries}")
    if timeout is not None and timeout <= 0:
        raise ConfigurationError(f"timeout must be > 0, got {timeout}")
    fault_tolerant = (
        timeout is not None
        or deadline is not None
        or retries > 0
        or on_error != "raise"
    )
    if backend == "fork" and fault_tolerant:
        raise ConfigurationError(
            "backend='fork' is the plain per-call oracle and does not "
            "support timeout/retries/on_error; use the persistent backend"
        )
    if not tasks:
        return []
    bundle, owner_arrays = _resolve_shared(shared)
    if workers == 1 or len(tasks) == 1:
        if fault_tolerant:
            return _serial_map(
                fn, tasks, owner_arrays,
                retries=retries, backoff=backoff, on_error=on_error,
                deadline=deadline,
            )
        if owner_arrays is None:
            return [fn(t) for t in tasks]
        return [fn(t, owner_arrays) for t in tasks]
    _check_picklable(fn)
    if chunk_size is None:
        chunk_size = max(1, (len(tasks) + 4 * workers - 1) // (4 * workers))
    if backend == "persistent" or (
        backend == "auto" and (shared is not None or fault_tolerant)
    ):
        from .shared import SharedArrayBundle, get_shared_pool

        owns_bundle = bundle is None and owner_arrays is not None
        if owns_bundle:
            bundle = SharedArrayBundle(owner_arrays)
        try:
            return get_shared_pool(workers).map(
                fn, tasks, shared=bundle, chunk_size=chunk_size,
                timeout=timeout, deadline=deadline,
                retries=retries, backoff=backoff,
                on_error=on_error,
            )
        finally:
            if owns_bundle:
                bundle.close()
    # Fork backend: one executor per call, arrays (if any) pickled into
    # every chunk (the oracle for the zero-copy path).
    payloads = [
        (fn, owner_arrays, i, tasks[i : i + chunk_size])
        for i in range(0, len(tasks), chunk_size)
    ]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        out: list[R] = []
        # stdlib executor.map has no deadline=; enforce ours per chunk.
        # repro-lint: disable=R3 -- stdlib map cannot forward; checked below
        for part in pool.map(_fork_chunk, payloads):
            _check_deadline(deadline)
            out.extend(_raise_first_marker(part))
        return out
