"""Deterministic process-pool mapping.

The hpc-parallel guides' discipline applied to a laptop-scale library:

* results are **independent of worker count and scheduling** — every task
  carries its own :func:`~repro.rng.derive_seed`-derived seed, so running
  with ``workers=1`` or ``workers=8`` yields identical records;
* the serial path is first-class (``workers=1`` avoids process start-up
  entirely), because the experiment grid sizes here are often too small to
  amortize fork+pickle overhead — the bench harness picks serial for small
  grids automatically;
* chunking is explicit: tasks are submitted in contiguous chunks to bound
  pickle traffic, mirroring the "batch your communication" rule from the
  MPI guide.

Functions submitted must be module-level (picklable); closures are rejected
early with a clear error rather than a confusing pickle traceback.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence, TypeVar

from ..errors import ConfigurationError

__all__ = ["chunk_evenly", "default_workers", "parallel_map"]

T = TypeVar("T")
R = TypeVar("R")


def chunk_evenly(items: Sequence[T], parts: int) -> list[tuple[int, list[T]]]:
    """Split ``items`` into ≤ ``parts`` contiguous chunks of near-equal size.

    Returns ``(start_offset, chunk)`` pairs; offsets let workers report
    positions in the original order so chunked scans stay deterministic
    (the equilibrium audits key their "first violation" on them).  Empty
    chunks are dropped; ``parts`` is clamped to ``len(items)``.
    """
    if parts < 1:
        raise ConfigurationError(f"parts must be >= 1, got {parts}")
    items = list(items)
    k = max(1, min(parts, len(items)))
    if not items:
        return []
    bounds = [round(i * len(items) / k) for i in range(k + 1)]
    return [
        (lo, items[lo:hi])
        for lo, hi in zip(bounds[:-1], bounds[1:])
        if hi > lo
    ]


def default_workers() -> int:
    """CPU count minus one (floor 1): leave a core for the orchestrator."""
    return max(1, (os.cpu_count() or 1) - 1)


def _check_picklable(fn: Callable) -> None:
    try:
        pickle.dumps(fn)
    except Exception as exc:  # pragma: no cover - message path
        raise ConfigurationError(
            f"parallel_map requires a picklable (module-level) function; "
            f"{fn!r} failed to pickle: {exc}"
        ) from exc


def parallel_map(
    fn: Callable[[T], R],
    tasks: Sequence[T],
    workers: int | None = None,
    chunk_size: int | None = None,
) -> list[R]:
    """Map ``fn`` over ``tasks``, preserving order.

    Parameters
    ----------
    workers:
        Process count; ``None`` → :func:`default_workers`; ``1`` → serial
        in-process execution (no pool, exact same semantics).
    chunk_size:
        Tasks per submission; ``None`` → ``ceil(len / (4·workers))`` with a
        floor of 1 (a standard latency/throughput compromise).
    """
    tasks = list(tasks)
    if workers is None:
        workers = default_workers()
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if not tasks:
        return []
    if workers == 1 or len(tasks) == 1:
        return [fn(t) for t in tasks]
    _check_picklable(fn)
    if chunk_size is None:
        chunk_size = max(1, (len(tasks) + 4 * workers - 1) // (4 * workers))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, tasks, chunksize=chunk_size))
