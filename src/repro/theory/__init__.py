"""Executable theory: lemma/theorem checks and the Theorem 13 prime tooling."""

from .lemmas import (
    Lemma10Outcome,
    corollary11_holds,
    lemma10_holds,
    lemma2_holds,
    lemma3_holds,
    lemma6_holds,
    lemma6_holds_at,
    lemma7_holds_at,
    lemma8_holds,
)
from .primes import (
    interval_avoidance_bound,
    is_prime,
    multiple_free_modulus,
    primes_up_to,
)
from .theorems import (
    Theorem1Witness,
    is_double_star,
    is_star,
    is_tree,
    theorem1_check,
    theorem1_witness,
    theorem4_check,
    theorem12_check,
    theorem15_check,
)

__all__ = [
    "Lemma10Outcome",
    "Theorem1Witness",
    "corollary11_holds",
    "interval_avoidance_bound",
    "is_double_star",
    "is_prime",
    "is_star",
    "is_tree",
    "lemma10_holds",
    "lemma2_holds",
    "lemma3_holds",
    "lemma6_holds",
    "lemma6_holds_at",
    "lemma7_holds_at",
    "lemma8_holds",
    "multiple_free_modulus",
    "primes_up_to",
    "theorem1_check",
    "theorem1_witness",
    "theorem4_check",
    "theorem12_check",
    "theorem15_check",
]
