"""Prime tooling for Theorem 13's power selection.

The uniform (not just almost-uniform) half of Theorem 13 needs a power ``x``
such that **no integer multiple of x lands in a given interval** ``[i, j]``
of width O(lg n).  The paper argues via the prime number theorem that a
prime ``x = O(lg² n)`` works: the product of all primes up to ``y`` is
``e^{(1+o(1)) y}``, which outgrows the product of the interval's members, so
some prime ≤ ``c lg² n`` divides none of them.  Here we make that argument
executable: a sieve, the two product comparisons, and the actual search.
"""

from __future__ import annotations

import math

import numpy as np
from ..errors import ConfigurationError

__all__ = [
    "primes_up_to",
    "is_prime",
    "multiple_free_modulus",
    "interval_avoidance_bound",
]


def primes_up_to(limit: int) -> np.ndarray:
    """All primes ≤ ``limit`` (Eratosthenes, vectorized)."""
    if limit < 2:
        return np.empty(0, dtype=np.int64)
    sieve = np.ones(limit + 1, dtype=bool)
    sieve[:2] = False
    for p in range(2, int(limit**0.5) + 1):
        if sieve[p]:
            sieve[p * p :: p] = False
    return np.nonzero(sieve)[0].astype(np.int64)


def is_prime(x: int) -> bool:
    """Trial division (inputs are O(lg² n)-sized here)."""
    if x < 2:
        return False
    if x % 2 == 0:
        return x == 2
    f = 3
    while f * f <= x:
        if x % f == 0:
            return False
        f += 2
    return True


def _has_multiple_in(x: int, lo: int, hi: int) -> bool:
    """Whether some positive multiple of ``x`` lies in ``[lo, hi]``."""
    first = ((lo + x - 1) // x) * x
    return first <= hi


def multiple_free_modulus(lo: int, hi: int, limit: int | None = None) -> int:
    """Smallest ``x ≥ 2`` with no multiple in ``[lo, hi]`` (0 < lo ≤ hi).

    Theorem 13 uses a prime, but any multiple-free ``x`` serves the power
    construction; we return the smallest and let
    :func:`interval_avoidance_bound` certify the paper's O(lg² n) claim.
    Raises when no ``x ≤ limit`` exists (caller sized the guard wrong).
    """
    if lo < 1 or hi < lo:
        raise ConfigurationError(f"need 0 < lo <= hi, got [{lo}, {hi}]")
    # Any x > hi trivially has no multiple in the interval, so the search
    # always terminates by x = hi + 1.
    cap = hi + 1 if limit is None else min(limit, hi + 1)
    for x in range(2, cap + 1):
        if not _has_multiple_in(x, lo, hi):
            return x
    raise ConfigurationError(
        f"no multiple-free modulus <= {limit} for interval [{lo}, {hi}]"
    )


def interval_avoidance_bound(n: int, c: float = 4.0) -> int:
    """The paper's guard: some prime ``≤ c lg² n`` avoids any O(lg n) interval.

    Returns ``⌈c lg² n⌉`` (with a floor of 3 so tiny n stay meaningful).
    The Theorem 13 pipeline asserts the modulus it finds is within this
    bound, turning the prime-number-theorem argument into a runtime check.
    """
    if n < 2:
        return 3
    return max(3, int(math.ceil(c * math.log2(n) ** 2)))
