"""Executable versions of the paper's lemmas.

Each ``lemma*_holds(graph, …)`` function checks the lemma's *conclusion* on a
concrete graph satisfying its hypotheses, returning a boolean (and, where
useful, a witness).  The test suite runs them across the construction zoo and
the dynamics census; the benches report them as pass/fail columns.  These are
not proofs — they are the strongest machine-checkable statements the lemmas
make about finite instances, which is exactly what a reproduction can test.

Inventory
---------
* **Lemma 2** — in a max equilibrium, all local diameters differ by ≤ 1;
* **Lemma 3** — a cut vertex of a max equilibrium has at most one component
  of ``G − v`` containing vertices at distance > 1 from ``v``;
* **Lemma 6** — a vertex of local diameter 2 gains nothing from any swap;
* **Lemma 7** — gain of adding ``vw`` (local diameter 3 at ``v``):
  ≤ ``r − 1`` for ``w`` plus 1 per distance-3 neighbour of ``w``;
* **Lemma 8** — girth-4 swap loss: ``d(v, w)`` grows by ≥ 2 (≥ 1 when the
  new endpoint neighbours ``w``);
* **Lemma 10** — sum equilibrium: diameter ≤ 2 lg n, or near any vertex an
  edge exists whose removal costs its endpoint ≤ ``2n(1 + lg n)``;
* **Corollary 11** — sum equilibrium: adding any edge gains its endpoint at
  most ``5 n lg n``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from ..errors import ConfigurationError

from ..graphs import (
    CSRGraph,
    UNREACHABLE,
    bfs_aggregates,
    bfs_distances,
    connected_components,
    cut_vertices,
    distance_matrix,
    eccentricities,
    girth,
)
from ..core.costs import INT_INF, lift_distances
from ..core.moves import Swap
from ..core.swap_eval import swap_cost_after
from ..analysis.bounds import corollary11_gain_bound, lemma10_removal_bound

__all__ = [
    "lemma2_holds",
    "lemma3_holds",
    "lemma6_holds_at",
    "lemma6_holds",
    "lemma7_holds_at",
    "lemma8_holds",
    "Lemma10Outcome",
    "lemma10_holds",
    "corollary11_holds",
]


def lemma2_holds(graph: CSRGraph) -> bool:
    """Max equilibrium ⇒ local diameters differ by at most 1."""
    ecc = eccentricities(graph)
    if (ecc == UNREACHABLE).any():
        return False
    return int(ecc.max() - ecc.min()) <= 1


def lemma3_holds(graph: CSRGraph) -> bool:
    """Max equilibrium ⇒ every cut vertex has ≤ 1 "deep" component.

    A component of ``G − v`` is deep when it contains a vertex at distance
    > 1 from ``v`` (i.e. a non-neighbour of ``v``).
    """
    for v in cut_vertices(graph):
        neighbors = set(int(x) for x in graph.neighbors(v))
        reduced = graph.with_edges(remove=[(v, u) for u in neighbors])
        deep = 0
        for comp in connected_components(reduced):
            if v in comp:
                comp = [x for x in comp if x != v]
            if any(x not in neighbors and x != v for x in comp):
                deep += 1
        if deep > 1:
            return False
    return True


def lemma6_holds_at(graph: CSRGraph, v: int) -> bool:
    """Local diameter 2 at ``v`` ⇒ no swap improves ``v``'s sum of distances."""
    total, ecc, reached = bfs_aggregates(graph, v)
    if reached < graph.n:
        raise ConfigurationError("lemma 6 requires a connected graph")
    if ecc != 2:
        raise ConfigurationError(f"lemma 6 requires local diameter 2, vertex {v} has {ecc}")
    base = float(total)
    for w in map(int, graph.neighbors(v)):
        for w2 in range(graph.n):
            if w2 == v or w2 == w:
                continue
            after = swap_cost_after(graph, Swap(v, w, w2), "sum", "patched")
            if after < base:
                return False
    return True


def lemma6_holds(graph: CSRGraph) -> bool:
    """Lemma 6 across all local-diameter-2 vertices of ``graph``."""
    ecc = eccentricities(graph)
    return all(
        lemma6_holds_at(graph, v)
        for v in range(graph.n)
        if int(ecc[v]) == 2
    )


def lemma7_holds_at(graph: CSRGraph, v: int, w: int) -> bool:
    """Gain bound for inserting ``vw`` when ``v`` has local diameter 3.

    Checks ``gain ≤ (r − 1) + #{distance-3 neighbours of w}`` where
    ``r = d(v, w)``, gain being the drop in ``v``'s sum of distances.
    """
    dist = bfs_distances(graph, v)
    if (dist == UNREACHABLE).any():
        raise ConfigurationError("lemma 7 requires a connected graph")
    if int(dist.max()) != 3:
        raise ConfigurationError(f"lemma 7 requires local diameter 3 at {v}")
    r = int(dist[w])
    if r <= 1:
        return True  # adding an existing/trivial edge gains nothing
    before = int(dist.sum())
    added = graph.with_edges(add=[(v, w)])
    after_dist = bfs_distances(added, v)
    gain = before - int(after_dist.sum())
    allowance = (r - 1) + sum(
        1 for x in map(int, graph.neighbors(w)) if int(dist[x]) == 3
    )
    return gain <= allowance


def lemma8_holds(graph: CSRGraph) -> bool:
    """Girth-4 swap loss bound, audited over every legal swap.

    For every swap ``vw → vw'``: ``d_new(v, w) − 1 ≥ 2``, relaxed to ``≥ 1``
    when ``w'`` is a neighbour of ``w``.  (``d(v, w) = 1`` before any swap.)
    """
    g = girth(graph)
    if g < 4:
        raise ConfigurationError(f"lemma 8 requires girth >= 4, graph has girth {g}")
    lifted = lift_distances(distance_matrix(graph))
    for v in range(graph.n):
        for w in map(int, graph.neighbors(v)):
            w_nbrs = set(int(x) for x in graph.neighbors(w))
            for w2 in range(graph.n):
                if w2 in (v, w):
                    continue
                exclude = (v, w)
                extra = [] if graph.has_edge(v, w2) else [(v, w2)]
                dist = bfs_distances(graph, v, exclude=exclude, extra=extra)
                nd = int(dist[w]) if dist[w] != UNREACHABLE else INT_INF
                required = 1 if w2 in w_nbrs else 2
                if nd - 1 < required:
                    return False
    return True


@dataclass(frozen=True, slots=True)
class Lemma10Outcome:
    """What Lemma 10 promises for one anchor vertex ``u``.

    Either the whole graph has diameter ≤ 2 lg n (``small_diameter``), or
    ``edge`` is an edge with ``d(u, x) ≤ lg n`` whose removal increases the
    sum of distances from ``x`` by at most ``2n(1 + lg n)``
    (``removal_cost`` holds the measured increase).
    """

    small_diameter: bool
    edge: tuple[int, int] | None
    removal_cost: float | None


def lemma10_holds(graph: CSRGraph, u: int) -> Lemma10Outcome | None:
    """Search for the object Lemma 10 guarantees at anchor ``u``.

    Returns the outcome, or ``None`` when neither branch is satisfied —
    which on a genuine sum equilibrium must not happen (asserted by tests).
    """
    n = graph.n
    dm = distance_matrix(graph)
    if (dm == UNREACHABLE).any():
        raise ConfigurationError("lemma 10 requires a connected graph")
    lg = math.log2(n) if n >= 2 else 0.0
    if int(dm.max()) <= 2 * lg:
        return Lemma10Outcome(True, None, None)
    bound = lemma10_removal_bound(n)
    du = dm[u]
    lifted = lift_distances(dm)
    for x, y in graph.iter_edges():
        for a, b in ((x, y), (y, x)):
            if du[a] > lg:
                continue
            reduced = graph.with_edges(remove=[(a, b)])
            dist = bfs_distances(reduced, a)
            if (dist == UNREACHABLE).any():
                continue  # bridge: removal cost is infinite
            increase = float(dist.sum(dtype=np.int64) - lifted[a].sum())
            if increase <= bound:
                return Lemma10Outcome(False, (a, b), increase)
    return None


def corollary11_holds(graph: CSRGraph) -> bool:
    """Sum equilibrium ⇒ any single edge addition gains ≤ 5 n lg n.

    Measured exactly for every non-edge ``uv`` via the insertion closure
    ``d_{G+uv}(u, x) = min(d(u,x), 1 + d(v,x))`` — vectorized per anchor.
    """
    n = graph.n
    dm = distance_matrix(graph)
    if (dm == UNREACHABLE).any():
        raise ConfigurationError("corollary 11 requires a connected graph")
    bound = corollary11_gain_bound(n)
    lifted = lift_distances(dm)
    sums = lifted.sum(axis=1)
    for u in range(n):
        candidate = np.minimum(lifted[u][None, :], lifted + 1)
        gains = float(sums[u]) - candidate.sum(axis=1).astype(np.float64)
        nbrs = set(int(x) for x in graph.neighbors(u))
        for v in range(n):
            if v == u or v in nbrs:
                continue
            if gains[v] > bound:
                return False
    return True
