"""Theorem-level machine checks.

Where the lemmas audit local inequalities, these functions assert the
theorems' conclusions on finite instances, and — for Theorem 1 — rebuild the
proof's actual argument (the two subtree-size inequalities of Figure 1) so
the bench can display the contradiction quantitatively.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from ..errors import ConfigurationError

from ..core.equilibrium import (
    is_deletion_critical,
    is_insertion_stable,
    is_max_equilibrium,
    is_sum_equilibrium,
)
from ..graphs import (
    CSRGraph,
    bfs_distances,
    bfs_tree_parents,
    diameter,
    degree_sequence,
    distance_matrix,
)
from ..graphs.bfs import UNREACHABLE

__all__ = [
    "is_tree",
    "is_star",
    "is_double_star",
    "Theorem1Witness",
    "theorem1_witness",
    "theorem1_check",
    "theorem4_check",
    "theorem12_check",
    "theorem15_check",
]


def is_tree(graph: CSRGraph) -> bool:
    """Connected with ``m = n − 1``."""
    if graph.m != graph.n - 1:
        return False
    return bool((bfs_distances(graph, 0) != UNREACHABLE).all()) if graph.n else True


def is_star(graph: CSRGraph) -> bool:
    """A tree with one center adjacent to all others (n ≤ 2 counts)."""
    if not is_tree(graph):
        return False
    if graph.n <= 2:
        return True
    degs = degree_sequence(graph)
    return degs[0] == graph.n - 1 and all(d == 1 for d in degs[1:])


def is_double_star(graph: CSRGraph) -> bool:
    """A tree whose non-leaf vertices are exactly two adjacent roots."""
    if not is_tree(graph) or graph.n < 4:
        return False
    internal = [v for v in range(graph.n) if graph.degree(v) > 1]
    if len(internal) != 2:
        return False
    return graph.has_edge(internal[0], internal[1])


@dataclass(frozen=True, slots=True)
class Theorem1Witness:
    """The Figure 1 argument, instantiated on a diameter ≥ 3 tree.

    For a path ``v – a – b – w`` realizing distance 3, equilibrium forces
    ``s_b + s_w ≤ s_a`` (else ``v`` swaps onto ``b``) and ``s_v + s_a ≤ s_b``
    (else ``w`` swaps onto ``a``); summing yields ``s_v + s_w ≤ 0``, which is
    impossible.  The witness records the path, the four subtree sizes, and
    which inequality fails — i.e. which swap improves.
    """

    path: tuple[int, int, int, int]
    sizes: tuple[int, int, int, int]
    first_inequality_holds: bool
    second_inequality_holds: bool

    @property
    def consistent_with_equilibrium(self) -> bool:
        return self.first_inequality_holds and self.second_inequality_holds


def _subtree_sizes_on_path(graph: CSRGraph, path: tuple[int, int, int, int]) -> tuple[int, int, int, int]:
    """Sizes of subtrees hanging at each path vertex, away from the path.

    ``s_x`` counts the vertices whose unique path to the opposite end of the
    4-path passes through ``x`` — the paper's rooted-subtree sizes.
    """
    v, a, b, w = path
    n = graph.n

    def component_size(root: int, blocked: set[int]) -> int:
        seen = {root}
        stack = [root]
        while stack:
            x = stack.pop()
            for y in map(int, graph.neighbors(x)):
                if y not in seen and y not in blocked:
                    seen.add(y)
                    stack.append(y)
        return len(seen)

    sv = component_size(v, {a})
    sa = component_size(a, {v, b})
    sb = component_size(b, {a, w})
    sw = component_size(w, {b})
    return sv, sa, sb, sw


def theorem1_witness(graph: CSRGraph) -> Theorem1Witness | None:
    """Instantiate Figure 1 on a tree of diameter ≥ 3 (``None`` otherwise)."""
    if not is_tree(graph):
        raise ConfigurationError("theorem 1 witness requires a tree")
    dm = distance_matrix(graph)
    pairs = np.argwhere(dm == 3)
    if pairs.size == 0:
        return None
    v, w = int(pairs[0, 0]), int(pairs[0, 1])
    # Recover the v -> w path via parents of a BFS from w.
    parent = bfs_tree_parents(graph, w)
    a = int(parent[v])
    b = int(parent[a])
    path = (v, a, b, w)
    sv, sa, sb, sw = _subtree_sizes_on_path(graph, path)
    return Theorem1Witness(
        path=path,
        sizes=(sv, sa, sb, sw),
        first_inequality_holds=sb + sw <= sa,
        second_inequality_holds=sv + sa <= sb,
    )


def theorem1_check(graph: CSRGraph) -> bool:
    """Theorem 1 on one tree: sum equilibrium ⇔ star (for trees).

    Returns ``True`` when the instance is consistent with the theorem:
    either it is a star (and then really is a sum equilibrium) or it is not
    (and then really is not).
    """
    if not is_tree(graph):
        raise ConfigurationError("theorem 1 concerns trees")
    eq = is_sum_equilibrium(graph)
    star = is_star(graph)
    if star != eq:
        return False
    if not star:
        # Non-star trees of diameter >= 3 must break a Figure-1 inequality.
        witness = theorem1_witness(graph)
        if witness is not None and witness.consistent_with_equilibrium:
            return False
    return True


def theorem4_check(graph: CSRGraph) -> bool:
    """Theorem 4 on one tree: max equilibrium ⇒ diameter ≤ 3.

    (Plus the converse direction the paper states informally: the
    max-equilibrium trees are stars and double stars with ≥ 2 leaves per
    root — asserted separately by the construction tests.)
    """
    if not is_tree(graph):
        raise ConfigurationError("theorem 4 concerns trees")
    if not is_max_equilibrium(graph):
        return True  # hypothesis empty: nothing to check
    return diameter(graph) <= 3


def theorem12_check(graph: CSRGraph, expected_diameter: int) -> bool:
    """Theorem 12 on one torus instance: equilibrium + exact diameter.

    Asserts max equilibrium, deletion-criticality, insertion-stability, and
    ``diameter == expected_diameter`` (= k for the 2D construction).
    """
    if diameter(graph) != expected_diameter:
        return False
    if not is_deletion_critical(graph):
        return False
    if not is_insertion_stable(graph):
        return False
    return is_max_equilibrium(graph)


def theorem15_check(n: int, epsilon: float, measured_diameter: int) -> bool:
    """Theorem 15 on one Cayley instance: diameter within the bound.

    ``diameter ≤ 2r + 2`` with ``r = 1 + 2 lg n / lg((1−ε)/ε)``; callers
    pass the measured ε of the graph (must be < 1/4 for the theorem to
    apply — larger ε returns ``True`` vacuously).
    """
    if epsilon >= 0.25:
        return True
    if epsilon <= 0.0:
        epsilon = 1.0 / (2 * n)  # perfectly uniform: use the trivial floor
    r = 1.0 + 2.0 * math.log2(max(n, 2)) / math.log2((1 - epsilon) / epsilon)
    return measured_diameter <= 2.0 * r + 2.0
