"""HTTP transport for the audit service (stdlib only, DESIGN.md §10).

A :class:`~http.server.ThreadingHTTPServer` front-ends
:class:`~repro.service.handlers.AuditEngine`:

* ``POST /audit`` — one query (see the handlers module for the schema);
* ``POST /batch`` — many queries on one graph, base APSP amortized;
* ``GET /healthz`` — liveness + current degradation mode;
* ``GET /stats`` — cache hit rate, shed count, queue depth, ladder state.

Every response is a complete JSON body with an explicit Content-Length —
typed errors map to typed statuses (400 client error, 503 shed/degraded
with a ``Retry-After`` header, 504 deadline exceeded, 500 compute failed)
and never a hang or a partial body.  Cacheable answers carry their
content-addressed cache key as an ``ETag`` (also ``"etag"`` in the body);
a ``POST /audit`` with ``If-None-Match`` naming a cached answer's key is
answered 304 with no body.  Start one with::

    python -m repro.cli serve --port 8642 --cache-dir results/audit_cache
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..errors import DeadlineExceeded
from ..io import ResultCache
from ..parallel import shutdown_shared_pools
from .admission import AdmissionGate, LoadShed
from .degradation import DegradationLadder
from .handlers import AuditEngine, ClientError, NotModified

__all__ = ["AuditServer", "build_server", "serve"]

_MAX_BODY = 8 * 1024 * 1024  # a graph6 line for n=50k is still far below


class AuditServer(ThreadingHTTPServer):
    """Threaded HTTP server owning one :class:`AuditEngine`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, engine: AuditEngine, *, quiet: bool = True):
        self.engine = engine
        self.quiet = quiet
        super().__init__(address, AuditRequestHandler)

    def close(self) -> None:
        """Stop accepting, then release sockets and worker pools."""
        self.shutdown()
        self.server_close()
        shutdown_shared_pools()


class AuditRequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-audit/1.0"
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not self.server.quiet:  # pragma: no cover - debug aid
            super().log_message(format, *args)

    # -- plumbing ---------------------------------------------------------

    def _send_json(self, status: int, body: dict, headers=()) -> None:
        blob = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(blob)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ClientError("request body required")
        if length > _MAX_BODY:
            raise ClientError(f"request body exceeds {_MAX_BODY} bytes")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ClientError(f"request body is not valid JSON: {exc}")

    def _send_not_modified(self, etag: str) -> None:
        # 304 carries validator headers but no body (RFC 9110 §15.4.5).
        self.send_response(304)
        self.send_header("ETag", f'"{etag}"')
        self.send_header("Content-Length", "0")
        self.end_headers()

    def _dispatch(self, handler) -> None:
        try:
            body = handler()
        except NotModified as exc:
            self._send_not_modified(exc.etag)
        except ClientError as exc:
            self._send_json(400, {"ok": False, "error": "bad-request",
                                  "detail": str(exc)})
        except LoadShed as exc:
            self._send_json(
                503,
                {"ok": False, "error": "load-shed", "detail": str(exc),
                 "retry_after_s": exc.retry_after},
                headers=(("Retry-After", f"{exc.retry_after:.0f}"),),
            )
        except DeadlineExceeded as exc:
            self.server.engine.deadline_exceeded += 1
            self._send_json(
                504,
                {"ok": False, "error": "deadline-exceeded",
                 "detail": str(exc)},
            )
        except Exception as exc:  # repro-lint: disable=R4 -- last-resort handler: typed 500 body, never a half-written response
            self._send_json(
                500,
                {"ok": False, "error": "compute-failed", "detail": repr(exc)},
            )
        else:
            headers = ()
            etag = body.get("etag") if isinstance(body, dict) else None
            if etag:
                headers = (("ETag", f'"{etag}"'),)
            self._send_json(200, body, headers=headers)

    # -- routes -----------------------------------------------------------

    def do_GET(self):  # noqa: N802 - stdlib naming
        engine = self.server.engine
        if self.path == "/healthz":
            self._dispatch(engine.healthz)
        elif self.path == "/stats":
            self._dispatch(engine.stats)
        else:
            self._send_json(404, {"ok": False, "error": "not-found",
                                  "detail": self.path})

    def do_POST(self):  # noqa: N802 - stdlib naming
        engine = self.server.engine
        if self.path == "/audit":
            self._dispatch(lambda: engine.handle_audit(
                self._read_body(),
                if_none_match=self.headers.get("If-None-Match"),
            ))
        elif self.path == "/batch":
            self._dispatch(lambda: engine.handle_batch(self._read_body()))
        else:
            self._send_json(404, {"ok": False, "error": "not-found",
                                  "detail": self.path})


def build_server(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    cache_dir: str = "results/audit_cache",
    workers: int = 2,
    audit_mode: str = "repair",
    default_timeout: float = 30.0,
    capacity: int = 1,
    queue_limit: int = 8,
    retry_after: float = 1.0,
    threshold: int = 2,
    recover_after: float = 30.0,
    quiet: bool = True,
) -> AuditServer:
    """Wire cache + gate + ladder + engine into a ready (unstarted) server.

    ``port=0`` binds an ephemeral port (read it back from
    ``server.server_address``) — tests and the CI smoke job rely on this.
    """
    engine = AuditEngine(
        ResultCache(cache_dir),
        workers=workers,
        audit_mode=audit_mode,
        default_timeout=default_timeout,
        gate=AdmissionGate(
            capacity=capacity, queue_limit=queue_limit, retry_after=retry_after
        ),
        ladder=DegradationLadder(
            threshold=threshold, recover_after=recover_after
        ),
    )
    return AuditServer((host, port), engine, quiet=quiet)


def serve(host: str, port: int, **config) -> None:
    """Blocking entry point used by ``repro.cli serve``."""
    server = build_server(host, port, **config)
    bound = server.server_address
    print(f"repro audit service listening on http://{bound[0]}:{bound[1]}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
    finally:
        server.close()
