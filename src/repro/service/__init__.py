"""Crash-safe equilibrium-audit service (DESIGN.md §10).

A long-running, stdlib-only HTTP service answering equilibrium audits
(``is_equilibrium`` / ``find_swap_violation`` / ``best_swap`` /
``criticality``) backed by a content-addressed, integrity-verified result
cache (:mod:`repro.io.result_cache`), with request deadlines propagated
into the parallel runtime, bounded admission with typed load shedding,
and a pool → serial → cache-only degradation ladder.
"""

from .admission import AdmissionGate, LoadShed
from .degradation import DegradationLadder
from .handlers import AuditEngine, ClientError, NotModified, QUERY_KINDS
from .server import AuditServer, build_server, serve

__all__ = [
    "AdmissionGate",
    "AuditEngine",
    "AuditServer",
    "ClientError",
    "DegradationLadder",
    "LoadShed",
    "NotModified",
    "QUERY_KINDS",
    "build_server",
    "serve",
]
