"""Request handling for the audit service: parse → cache → compute → store.

:class:`AuditEngine` is the transport-independent core (the HTTP layer in
:mod:`repro.service.server` is a thin adapter; tests drive the engine
directly).  One request is one pure audit question — the graph (graph6
text or an explicit edge list), a cost-model spec string, a query kind,
and a wall-clock budget — and the answer flow is:

1. fingerprint the graph (:func:`repro.io.hashing.graph_fingerprint`),
   derive the content address (:func:`repro.io.result_cache.cache_key`);
2. a verified cache hit is served immediately — no admission, no compute;
3. a miss takes one admission slot (:class:`~repro.service.admission.
   AdmissionGate`; queueing respects the request deadline, overflow is
   shed typed) and walks the degradation ladder's plan: ``pool`` compute,
   then ``serial``, then ``cache-only`` (miss ⇒ typed shed).  Infra
   failures feed the ladder; client errors and spent deadlines do not;
4. the answer is published to the cache (a torn cache write never corrupts
   the response — the computed answer is served and the torn entry is
   quarantined by the next reader).

Instrumented fault site: every compute attempt calls
``faults.maybe_fault(query=<ordinal>)`` before dispatch, so tests inject
deterministic infra failures into the service without touching the pool
(the site has no ``chunk``/``task``/``batch`` coordinates, so worker- and
store-targeted env specs never match it).

Non-finite floats in answers (disconnection ⇒ infinite cost) are encoded
as the strings ``"inf"``/``"-inf"``/``"nan"`` — cache entries must be
strict JSON for the checksum contract.
"""

from __future__ import annotations

import math
import time

from ..core import (
    best_swap,
    find_deletion_criticality_violation,
    find_swap_violation,
    is_k_swap_stable,
)
from ..core.costmodel import cost_model_spec
from ..core.costs import lift_distances
from ..errors import (
    DeadlineExceeded,
    GraphError,
    MoveError,
    ReproError,
    StoreIntegrityError,
)
from ..graphs import CSRGraph, distance_matrix
from ..graphs.graph6 import from_graph6
from ..io import ResultCache, cache_key, graph_fingerprint
from ..parallel import faults
from .admission import AdmissionGate, LoadShed
from .degradation import DegradationLadder

__all__ = ["AuditEngine", "ClientError", "NotModified", "QUERY_KINDS"]

QUERY_KINDS = (
    "is_equilibrium",
    "find_swap_violation",
    "best_swap",
    "criticality",
    "k_swap_stable",
)

#: Exceptions that are the *caller's* fault: typed 400, never a ladder event.
_CLIENT_ERRORS = (GraphError, MoveError, ValueError, TypeError, KeyError)


class ClientError(ReproError):
    """The request itself is malformed (unknown query, bad graph, ...)."""


class NotModified(Exception):
    """The client's cached answer (``If-None-Match``) is still current.

    Answers are content-addressed: the cache key *is* the ``ETag``, so a
    matching validator means the client already holds this exact answer
    and the transport can reply 304 with no body.  Raised only for
    answers the service itself has cached — a recomputation is never
    skipped on the client's word alone.
    """

    def __init__(self, etag: str):
        super().__init__(etag)
        self.etag = etag


def _etag_matches(if_none_match: "str | None", key: str) -> bool:
    """RFC 9110 ``If-None-Match``: ``*``, quoted, weak, or a list."""
    if not if_none_match:
        return False
    if if_none_match.strip() == "*":
        return True
    for candidate in if_none_match.split(","):
        tag = candidate.strip()
        if tag.startswith("W/"):
            tag = tag[2:].strip()
        if tag.strip('"') == key:
            return True
    return False


def _json_safe(value):
    """Recursively encode non-finite floats as strings (strict JSON)."""
    if isinstance(value, float) and not math.isfinite(value):
        if math.isnan(value):
            return "nan"
        return "inf" if value > 0 else "-inf"
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


def _violation_payload(violation) -> dict:
    if violation is None:
        return {"violation": None}
    return {
        "violation": _json_safe(
            {
                "kind": violation.kind,
                "vertex": int(violation.vertex),
                "drop": None if violation.drop is None else int(violation.drop),
                "add": violation.add,
                "before": float(violation.before),
                "after": float(violation.after),
            }
        )
    }


class AuditEngine:
    """The service core: cache-backed, admission-bounded, ladder-degraded."""

    def __init__(
        self,
        cache: ResultCache,
        *,
        workers: int = 2,
        audit_mode: str = "repair",
        default_timeout: float = 30.0,
        max_timeout: float = 300.0,
        gate: "AdmissionGate | None" = None,
        ladder: "DegradationLadder | None" = None,
    ):
        self.cache = cache
        self.workers = max(1, int(workers))
        self.audit_mode = audit_mode
        self.default_timeout = default_timeout
        self.max_timeout = max_timeout
        self.gate = gate if gate is not None else AdmissionGate()
        self.ladder = ladder if ladder is not None else DegradationLadder()
        self.started_at = time.monotonic()
        self.requests = 0
        self.compute_failures = 0
        self.store_failures = 0
        self.cache_write_failures = 0
        self.deadline_exceeded = 0
        self.not_modified = 0

    # -- request parsing --------------------------------------------------

    def _parse_graph(self, request: dict) -> CSRGraph:
        if "graph6" in request:
            text = request["graph6"]
            if not isinstance(text, str):
                raise ClientError("graph6 must be a string")
            return from_graph6(text)
        if "graph" in request:
            spec = request["graph"]
            if (
                not isinstance(spec, dict)
                or "n" not in spec
                or "edges" not in spec
            ):
                raise ClientError('graph must be {"n": N, "edges": [[a,b],..]}')
            edges = [(int(a), int(b)) for a, b in spec["edges"]]
            return CSRGraph(int(spec["n"]), edges)
        raise ClientError('request needs "graph6" or "graph"')

    def _deadline_from(self, request: dict) -> float:
        timeout = request.get("timeout_s", self.default_timeout)
        try:
            timeout = float(timeout)
        except (TypeError, ValueError):
            raise ClientError(f"timeout_s must be a number, got {timeout!r}")
        if timeout <= 0:
            raise ClientError(f"timeout_s must be > 0, got {timeout}")
        return time.monotonic() + min(timeout, self.max_timeout)

    @staticmethod
    def _parse_query(item: dict) -> tuple[str, dict]:
        kind = item.get("query")
        if kind not in QUERY_KINDS:
            raise ClientError(
                f"unknown query {kind!r}; known: {', '.join(QUERY_KINDS)}"
            )
        params: dict = {}
        if kind == "best_swap":
            if "vertex" not in item:
                raise ClientError('best_swap needs "vertex"')
            params["vertex"] = int(item["vertex"])
        elif kind == "k_swap_stable":
            try:
                k = int(item.get("k", 1))
            except (TypeError, ValueError):
                raise ClientError(f'k must be an integer, got {item.get("k")!r}')
            if k < 1:
                raise ClientError(f"k must be >= 1, got {k}")
            params["k"] = k
        return kind, params

    @staticmethod
    def _model_spec_for(kind: str, request: dict) -> str:
        # Deletion-criticality is part of the paper's *max* equilibrium and
        # does not depend on the cost model: pin its cache key to "max" so
        # every client shares one entry per graph.
        if kind == "criticality":
            return "max"
        return cost_model_spec(request.get("model", "sum"))

    # -- compute ----------------------------------------------------------

    def _compute(
        self,
        kind: str,
        graph: CSRGraph,
        model_spec: str,
        params: dict,
        *,
        workers: int,
        deadline: float,
        base_dm=None,
    ) -> dict:
        if kind == "is_equilibrium":
            from ..core import is_equilibrium

            flag = is_equilibrium(
                graph, model_spec, workers=workers, mode=self.audit_mode,
                base_dm=base_dm, deadline=deadline,
            )
            return {"is_equilibrium": bool(flag)}
        if kind == "find_swap_violation":
            violation = find_swap_violation(
                graph, model_spec, workers=workers, mode=self.audit_mode,
                base_dm=base_dm, deadline=deadline,
            )
            return _violation_payload(violation)
        if kind == "criticality":
            violation = find_deletion_criticality_violation(
                graph, workers=workers, mode=self.audit_mode,
                base_dm=base_dm, deadline=deadline,
            )
            return _violation_payload(violation)
        if kind == "k_swap_stable":
            # Exponential brute-force audit: the deadline is the only thing
            # standing between a large k and an unbounded request, so it is
            # threaded into every per-vertex enumeration (DESIGN.md §10).
            stable = is_k_swap_stable(
                graph, params["k"], objective=model_spec, deadline=deadline,
            )
            return {"k_swap_stable": bool(stable), "k": params["k"]}
        response = best_swap(
            graph, params["vertex"], model_spec, mode=self.audit_mode,
            base_dm=base_dm, deadline=deadline,
        )
        swap = response.swap
        return _json_safe(
            {
                "swap": (
                    None if swap is None
                    else [swap.vertex, swap.drop, swap.add]
                ),
                "before": float(response.before),
                "after": float(response.after),
                "is_deletion": bool(response.is_deletion),
            }
        )

    def _compute_degraded(
        self, kind, graph, model_spec, params, *, deadline, base_dm=None
    ) -> tuple[dict, str]:
        """Walk the ladder's plan; returns ``(payload, mode_used)``."""
        self.requests += 1
        ordinal = self.requests
        last_error: "Exception | None" = None
        plan = self.ladder.plan()
        # Only the request's *planned* rung feeds the ladder: an in-request
        # fallback failure would otherwise double-count one bad request
        # against two rungs and descend twice as fast as the threshold says.
        primary = plan[0]
        for mode in plan:
            if mode == "cache-only":
                if last_error is not None:
                    break  # in-request fallback exhausted: a real failure
                raise LoadShed(
                    "service degraded to cache-only and this answer is "
                    "not cached",
                    retry_after=self.ladder.recover_after,
                )
            workers = self.workers if mode == "pool" else 1
            try:
                faults.maybe_fault(query=ordinal)
                payload = self._compute(
                    kind, graph, model_spec, params,
                    workers=workers, deadline=deadline, base_dm=base_dm,
                )
            except (DeadlineExceeded, LoadShed):
                raise
            except _CLIENT_ERRORS:
                raise
            except Exception as exc:  # repro-lint: disable=R4 -- any infra failure must trigger the degradation ladder, not a 500
                self.compute_failures += 1
                if mode == primary:
                    self.ladder.record_failure(mode)
                last_error = exc
                continue
            self.ladder.record_success(mode)
            return payload, mode
        raise RuntimeError(
            f"compute failed at every ladder rung: {last_error!r}"
        ) from last_error

    def _store(self, key: str, payload: dict, meta: dict) -> None:
        """Publish an answer; a failed write must not fail the response.

        Since the disk-fault hardening (DESIGN.md §13) the cache raises
        typed :class:`~repro.errors.StoreIntegrityError` for write
        failures (ENOSPC above all), with the final entry never torn —
        the service serves the computed answer anyway and the next
        request recomputes into a healthier disk.  Torn-*write* injection
        still surfaces as :class:`~repro.parallel.faults.InjectedFault`.
        """
        try:
            self.cache.put(key, payload, meta)
        except StoreIntegrityError:
            self.cache_write_failures += 1
            self.store_failures += 1
        except (faults.InjectedFault, OSError):
            self.store_failures += 1

    # -- endpoints --------------------------------------------------------

    def handle_audit(
        self, request: dict, *, if_none_match: "str | None" = None
    ) -> dict:
        """One query; returns the response body (raises typed errors).

        ``if_none_match`` is the transport's ``If-None-Match`` header:
        when it names this answer's cache key (the ``ETag`` every
        cacheable answer carries) and the answer is cached,
        :class:`NotModified` is raised instead of re-serving the body.
        """
        if not isinstance(request, dict):
            raise ClientError("request body must be a JSON object")
        kind, params = self._parse_query(request)
        graph = self._parse_graph(request)
        model_spec = self._model_spec_for(kind, request)
        deadline = self._deadline_from(request)
        start = time.monotonic()
        fingerprint = graph_fingerprint(graph)
        key = cache_key(fingerprint, model_spec, kind, params)

        def respond(payload, *, cached, mode):
            return {
                "ok": True,
                "query": kind,
                "fingerprint": fingerprint,
                "model": model_spec,
                "cached": cached,
                "compute_mode": mode,
                "etag": key,
                "result": payload,
                "elapsed_ms": round((time.monotonic() - start) * 1e3, 3),
            }

        def serve_cached(payload):
            if _etag_matches(if_none_match, key):
                self.not_modified += 1
                raise NotModified(key)
            return respond(payload, cached=True, mode="cache")

        cached = self.cache.get(key)
        if cached is not None:
            return serve_cached(cached)
        with self.gate.slot(deadline):
            # A queue-mate may have filled it; not a second logical miss.
            cached = self.cache.get(key, count_miss=False)
            if cached is not None:
                return serve_cached(cached)
            payload, mode = self._compute_degraded(
                kind, graph, model_spec, params, deadline=deadline
            )
        self._store(
            key,
            payload,
            {"fingerprint": fingerprint, "model": model_spec, "query": kind,
             "params": params},
        )
        return respond(payload, cached=False, mode=mode)

    def handle_batch(self, request: dict) -> dict:
        """Many queries on ONE graph; the base APSP is computed once."""
        if not isinstance(request, dict):
            raise ClientError("request body must be a JSON object")
        items = request.get("queries")
        if not isinstance(items, list) or not items:
            raise ClientError('"queries" must be a non-empty list')
        graph = self._parse_graph(request)
        deadline = self._deadline_from(request)
        start = time.monotonic()
        fingerprint = graph_fingerprint(graph)
        parsed = []
        for item in items:
            if not isinstance(item, dict):
                raise ClientError("each batch query must be an object")
            kind, params = self._parse_query(item)
            model_spec = self._model_spec_for(kind, {**request, **item})
            parsed.append((kind, params, model_spec))

        results = []
        base_dm = None
        for kind, params, model_spec in parsed:
            key = cache_key(fingerprint, model_spec, kind, params)
            cached = self.cache.get(key)
            if cached is not None:
                results.append(
                    {"ok": True, "query": kind, "cached": True,
                     "compute_mode": "cache", "result": cached}
                )
                continue
            with self.gate.slot(deadline):
                cached = self.cache.get(key, count_miss=False)
                if cached is not None:
                    results.append(
                        {"ok": True, "query": kind, "cached": True,
                         "compute_mode": "cache", "result": cached}
                    )
                    continue
                if base_dm is None:
                    # One APSP amortized across every miss in the batch.
                    base_dm = lift_distances(distance_matrix(graph))
                payload, mode = self._compute_degraded(
                    kind, graph, model_spec, params,
                    deadline=deadline, base_dm=base_dm,
                )
            self._store(
                key, payload,
                {"fingerprint": fingerprint, "model": model_spec,
                 "query": kind, "params": params},
            )
            results.append(
                {"ok": True, "query": kind, "cached": False,
                 "compute_mode": mode, "result": payload}
            )
        return {
            "ok": True,
            "fingerprint": fingerprint,
            "count": len(results),
            "results": results,
            "elapsed_ms": round((time.monotonic() - start) * 1e3, 3),
        }

    # -- introspection ----------------------------------------------------

    def healthz(self) -> dict:
        return {
            "ok": True,
            "mode": self.ladder.mode,
            "uptime_s": round(time.monotonic() - self.started_at, 3),
        }

    def stats(self) -> dict:
        return {
            "ok": True,
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "requests": self.requests,
            "compute_failures": self.compute_failures,
            "store_failures": self.store_failures,
            "cache_write_failures": self.cache_write_failures,
            "deadline_exceeded": self.deadline_exceeded,
            "not_modified": self.not_modified,
            "cache": self.cache.stats(),
            "admission": self.gate.snapshot(),
            "degradation": self.ladder.snapshot(),
        }
