"""The audit service's degradation ladder: pool → serial → cache-only.

Infrastructure failures (dead workers, poisoned pools, injected faults —
*not* client errors, *not* spent deadlines) walk the service down a ladder
of compute modes:

* ``pool`` — audits fan out over the shared worker pool;
* ``serial`` — audits run in the owner process, ``workers=1``;
* ``cache-only`` — no compute at all: hits are served, misses are shed
  with a typed retry-after.

Descent needs ``threshold`` *consecutive* failures at the current rung (a
single blip self-heals via the runtime's own retries).  Recovery is probed,
not assumed: after ``recover_after`` seconds at a degraded rung, one
request is allowed to attempt the rung above — success ascends, failure
restarts the probe clock.  The clock is injectable for deterministic tests.
"""

from __future__ import annotations

import threading
import time

from ..errors import ConfigurationError

__all__ = ["DegradationLadder", "MODES"]

#: Best-first rungs; index = degradation depth.
MODES = ("pool", "serial", "cache-only")


class DegradationLadder:
    """Thread-safe degradation state machine over :data:`MODES`."""

    def __init__(
        self,
        *,
        threshold: int = 2,
        recover_after: float = 30.0,
        clock=time.monotonic,
    ):
        if threshold < 1:
            raise ConfigurationError(
                f"threshold must be >= 1, got {threshold}"
            )
        self.threshold = threshold
        self.recover_after = recover_after
        self._clock = clock
        self._lock = threading.Lock()
        self._level = 0
        self._consecutive = 0
        self._descended_at: "float | None" = None
        self._probing = False
        self.descents = 0
        self.recoveries = 0

    @property
    def mode(self) -> str:
        """Current steady-state compute mode."""
        with self._lock:
            return MODES[self._level]

    def plan(self) -> list[str]:
        """Compute modes this request should attempt, best first.

        Normally the current rung and everything below it (a request that
        fails at its rung degrades *in place* rather than erroring).  When
        a recovery probe is due, the rung above is prepended — exactly one
        request probes at a time.
        """
        with self._lock:
            start = self._level
            if (
                self._level > 0
                and not self._probing
                and self._descended_at is not None
                and self._clock() - self._descended_at >= self.recover_after
            ):
                self._probing = True
                start = self._level - 1
            return list(MODES[start:])

    def record_failure(self, mode: str) -> None:
        """An infrastructure failure at ``mode``; may descend the ladder."""
        level = MODES.index(mode)
        with self._lock:
            if level < self._level:
                # A failed recovery probe: stay put, restart the clock.
                self._probing = False
                self._descended_at = self._clock()
                return
            if level > self._level:
                return  # in-request fallback already past this rung
            self._consecutive += 1
            if (
                self._consecutive >= self.threshold
                and self._level < len(MODES) - 1
            ):
                self._level += 1
                self._consecutive = 0
                self._probing = False
                self._descended_at = self._clock()
                self.descents += 1

    def record_success(self, mode: str) -> None:
        """A compute succeeded at ``mode``; may ascend the ladder."""
        level = MODES.index(mode)
        with self._lock:
            if level < self._level:
                # A recovery probe came back healthy: ascend one rung.
                self._level = level
                self._consecutive = 0
                self._probing = False
                self._descended_at = (
                    self._clock() if self._level > 0 else None
                )
                self.recoveries += 1
            elif level == self._level:
                self._consecutive = 0

    def snapshot(self) -> dict:
        """Ladder state for ``/stats``."""
        with self._lock:
            return {
                "mode": MODES[self._level],
                "consecutive_failures": self._consecutive,
                "threshold": self.threshold,
                "descents": self.descents,
                "recoveries": self.recoveries,
                "probing": self._probing,
            }
