"""Bounded admission for the audit service's compute path.

Cache hits are served by any handler thread without coordination; *compute*
(a cache miss) funnels through :class:`AdmissionGate` — at most
``capacity`` concurrent computes (the shared worker pool is one resource),
at most ``queue_limit`` requests waiting for a slot, and everything beyond
that is **shed immediately** with a typed :class:`LoadShed` carrying a
retry-after hint.  A queued request's wait is capped by its own deadline,
so a spent budget surfaces as :class:`~repro.errors.DeadlineExceeded`
rather than a silently queue-bound hang.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

from ..errors import ConfigurationError, DeadlineExceeded, ReproError

__all__ = ["AdmissionGate", "LoadShed"]


class LoadShed(ReproError):
    """The admission queue is full; retry after ``retry_after`` seconds."""

    def __init__(self, message: str, *, retry_after: float):
        super().__init__(message)
        self.retry_after = retry_after


class AdmissionGate:
    """Counting gate: ``capacity`` compute slots, ``queue_limit`` waiters."""

    def __init__(
        self,
        *,
        capacity: int = 1,
        queue_limit: int = 8,
        retry_after: float = 1.0,
    ):
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        if queue_limit < 0:
            raise ConfigurationError(
                f"queue_limit must be >= 0, got {queue_limit}"
            )
        self.capacity = capacity
        self.queue_limit = queue_limit
        self.retry_after = retry_after
        self._cond = threading.Condition()
        self._inflight = 0
        self._queued = 0
        self.shed_count = 0
        self.admitted_count = 0

    @contextmanager
    def slot(self, deadline: "float | None" = None) -> Iterator[None]:
        """Hold one compute slot for the with-block (queue / shed / expire)."""
        self._acquire(deadline)
        try:
            yield
        finally:
            self._release()

    def _acquire(self, deadline: "float | None") -> None:
        with self._cond:
            if self._inflight < self.capacity:
                self._inflight += 1
                self.admitted_count += 1
                return
            if self._queued >= self.queue_limit:
                self.shed_count += 1
                raise LoadShed(
                    f"admission queue full ({self._queued} queued, "
                    f"{self._inflight} in flight)",
                    retry_after=self.retry_after,
                )
            self._queued += 1
            try:
                while self._inflight >= self.capacity:
                    wait = None
                    if deadline is not None:
                        wait = deadline - time.monotonic()
                        if wait <= 0:
                            raise DeadlineExceeded(
                                "request deadline passed while queued "
                                "for a compute slot"
                            )
                    self._cond.wait(wait)
            finally:
                self._queued -= 1
            self._inflight += 1
            self.admitted_count += 1

    def _release(self) -> None:
        with self._cond:
            self._inflight -= 1
            self._cond.notify()

    def snapshot(self) -> dict:
        """Gate state for ``/stats``."""
        with self._cond:
            return {
                "inflight": self._inflight,
                "queued": self._queued,
                "capacity": self.capacity,
                "queue_limit": self.queue_limit,
                "shed_count": self.shed_count,
                "admitted_count": self.admitted_count,
            }
