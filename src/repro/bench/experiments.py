"""The experiment registry: one entry per figure / theorem-level claim.

Every experiment id from DESIGN.md §3 maps to a function here returning one
or more :class:`~repro.bench.reporting.Table` objects.  The pytest-benchmark
targets in ``benchmarks/`` time the underlying computations and print these
tables; the CLI (``python -m repro.cli run <id>``) regenerates any of them
standalone; EXPERIMENTS.md quotes their output.

Each experiment takes a ``scale`` argument:

* ``"quick"`` — seconds-scale, used by the benchmark suite and CI;
* ``"full"`` — minutes-scale, the sizes quoted in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from typing import Callable, Literal

import numpy as np

from ..analysis import (
    distance_almost_uniformity,
    distance_uniformity,
    pairwise_concentration,
    plunnecke_violations,
    skew_triple_fraction,
    theorem12_lower_bound,
    theorem12_tradeoff_bound,
    theorem13_transform,
    theorem15_diameter_bound,
    theorem9_diameter_bound,
    conjectured_polylog_bound,
    iterated_sumset_sizes,
)
from ..constructions import (
    AbelianGroup,
    diagonal_torus,
    double_star,
    figure2_insertion_effects,
    figure2_tree,
    figure3_all_straight_variant,
    figure3_graph,
    figure3_improving_swap,
    polarity_graph,
    random_connection_set,
    repaired_diameter3_witness,
    rotated_torus,
    spider_for_epsilon,
    spider_graph,
    standard_torus,
)
from ..core import (
    Swap,
    find_deletion_criticality_violation,
    find_insertion_violation,
    find_max_swap_violation,
    find_sum_violation,
    is_deletion_critical,
    is_insertion_stable,
    is_k_insertion_stable,
    is_max_equilibrium,
    is_sum_equilibrium,
    run_census,
    swap_cost_after,
    sum_cost,
)
from ..games import transfer_sweep
from ..games.social import poa_diameter_ratio
from ..graphs import (
    all_trees,
    cycle_graph,
    diameter,
    girth,
    eccentricities,
    random_connected_gnm,
    random_tree,
)
from ..theory import (
    corollary11_holds,
    lemma10_holds,
    lemma2_holds,
    lemma3_holds,
    lemma6_holds,
    lemma8_holds,
    theorem1_check,
    theorem4_check,
    is_star,
)
from .reporting import Table

__all__ = ["EXPERIMENTS", "run_experiment", "experiment_ids"]

Scale = Literal["quick", "full"]


# ---------------------------------------------------------------------------
# fig2-double-star
# ---------------------------------------------------------------------------

def exp_fig2_double_star(scale: Scale = "quick") -> list[Table]:
    """Figure 2 / Theorem 4: max-equilibrium trees."""
    t1 = Table(
        "Figure 2: double stars are diameter-3 max equilibria",
        ["p", "q", "n", "diameter", "max equilibrium"],
    )
    sizes = [(2, 2), (2, 3), (3, 3), (2, 5)] if scale == "quick" else [
        (2, 2), (2, 3), (3, 3), (2, 5), (4, 4), (2, 10), (6, 6), (3, 12)
    ]
    for p, q in sizes:
        g = double_star(p, q)
        t1.add_row(p, q, g.n, diameter(g), is_max_equilibrium(g))
    bad = double_star(1, 2)
    t1.add_note(
        "single-leaf double star (p=1,q=2) is NOT a max equilibrium: "
        f"max-eq={is_max_equilibrium(bad)} — the >=2-leaves condition is sharp"
    )

    t2 = Table(
        "Figure 2 caption: the three dashed insertions",
        ["insertion", "ecc before (u,v)", "ecc after (u,v)", "helps an endpoint"],
    )
    for eff in figure2_insertion_effects():
        t2.add_row(
            eff.label,
            str(eff.ecc_before),
            str(eff.ecc_after),
            eff.helps_someone,
        )

    nmax = 6 if scale == "quick" else 7
    t3 = Table(
        "Theorem 4 exhaustively: trees in max equilibrium have diameter <= 3",
        ["n", "#labelled trees", "#max equilibria", "max eq diameter", "all consistent"],
    )
    for n in range(4, nmax + 1):
        count = 0
        eq = 0
        worst = 0
        consistent = True
        for tree in all_trees(n):
            count += 1
            if is_max_equilibrium(tree):
                eq += 1
                worst = max(worst, diameter(tree))
            if not theorem4_check(tree):
                consistent = False
        t3.add_row(n, count, eq, worst, consistent)
    return [t1, t2, t3]


# ---------------------------------------------------------------------------
# fig3-diameter3
# ---------------------------------------------------------------------------

def exp_fig3_diameter3(scale: Scale = "quick") -> list[Table]:
    """Theorem 5: the diameter-3 sum-equilibrium lower bound."""
    t = Table(
        "Theorem 5: diameter-3 sum equilibrium (paper witness vs repair)",
        ["graph", "n", "m", "diameter", "girth", "sum equilibrium", "violation"],
    )
    from ..constructions import minimal_diameter3_witness

    rows = [
        ("Figure 3 (paper, literal)", figure3_graph()),
        ("Figure 3 (all-straight variant)", figure3_all_straight_variant()),
        ("repaired witness (this repo)", repaired_diameter3_witness()),
        ("minimal witness n=8 (this repo)", minimal_diameter3_witness()),
    ]
    for label, g in rows:
        v = find_sum_violation(g)
        t.add_row(
            label,
            g.n,
            g.m,
            diameter(g),
            girth(g),
            v is None,
            "none" if v is None else
            f"v={v.vertex} drop {v.drop} add {v.add} ({v.before:.0f}->{v.after:.0f})",
        )
    mover, drop, add = figure3_improving_swap()
    g3 = figure3_graph()
    before = sum_cost(g3, mover)
    after = swap_cost_after(g3, Swap(mover, drop, add), "sum", "copy")
    t.add_note(
        "REPRODUCTION FINDING: the paper's Figure 3 admits the improving swap "
        f"d1: c1,1 -> c2,1 ({before:.0f} -> {after:.0f}); Lemma 8's 'unless w' "
        "is a neighbor of w' carve-out defeats the omitted case analysis."
    )
    t.add_note(
        "Theorem 5's STATEMENT survives: the repaired 10-vertex witness is a "
        "machine-verified diameter-3 sum equilibrium (all 320 swaps audited)."
    )
    t.add_note(
        "the minimal witness has n=8, m=12 (144 swaps audited) and is "
        "provably minimal: the exhaustive census over all 1.89M connected "
        "graphs with n <= 7 found zero diameter->=3 sum equilibria."
    )

    qs = [2, 3] if scale == "quick" else [2, 3, 5, 7]
    t2 = Table(
        "Diameter-2 context: polarity graphs ER_q are sum equilibria",
        ["q", "n", "m", "diameter", "sum equilibrium"],
    )
    for q in qs:
        g = polarity_graph(q)
        t2.add_row(q, g.n, g.m, diameter(g), is_sum_equilibrium(g))
    t2.add_note(
        "every diameter-2 graph is a sum swap equilibrium (Lemma 6); the "
        "interest of Theorem 5 is strictly in diameter 3"
    )
    return [t, t2]


# ---------------------------------------------------------------------------
# fig4-torus
# ---------------------------------------------------------------------------

def exp_fig4_torus(scale: Scale = "quick") -> list[Table]:
    """Figure 4 / Theorem 12 (2D): the Θ(√n) max equilibrium."""
    ks = [2, 3, 4, 5] if scale == "quick" else [2, 3, 4, 5, 6, 8, 10, 12, 16]
    t = Table(
        "Figure 4: rotated torus on n = 2k^2 vertices",
        [
            "k", "n", "m", "local diam (all vertices)", "sqrt(n/2)",
            "deletion-critical", "insertion-stable", "max equilibrium",
        ],
    )
    for k in ks:
        g = rotated_torus(k)
        ecc = eccentricities(g)
        uniform = int(ecc.min()) if int(ecc.min()) == int(ecc.max()) else -1
        t.add_row(
            k, g.n, g.m, uniform, f"{theorem12_lower_bound(g.n):.2f}",
            is_deletion_critical(g),
            is_insertion_stable(g),
            is_max_equilibrium(g),
        )
    t.add_note("local diameter equals k = sqrt(n/2) exactly, at every vertex")

    st = standard_torus(6, 6)
    viol = find_deletion_criticality_violation(st)
    ins = find_insertion_violation(st)
    t2 = Table(
        "Contrast: the axis-aligned torus is NOT a max equilibrium",
        ["graph", "n", "deletion-critical", "insertion-stable", "first violation"],
    )
    t2.add_row(
        "standard 6x6 torus",
        st.n,
        viol is None,
        ins is None,
        "none"
        if viol is None and ins is None
        else (
            f"deleting ({viol.vertex},{viol.drop}) leaves ecc at {viol.after:.0f}"
            if viol is not None
            else f"inserting ({ins.vertex},{ins.add}) drops ecc {ins.before:.0f}->{ins.after:.0f}"
        ),
    )
    return [t, t2]


# ---------------------------------------------------------------------------
# thm1-sum-trees
# ---------------------------------------------------------------------------

def exp_thm1_sum_trees(scale: Scale = "quick") -> list[Table]:
    """Theorem 1: sum-equilibrium trees are exactly stars."""
    nmax = 6 if scale == "quick" else 7
    t = Table(
        "Theorem 1 exhaustively: sum equilibrium <=> star (all labelled trees)",
        ["n", "#trees", "#sum equilibria", "#stars", "all consistent"],
    )
    for n in range(3, nmax + 1):
        trees = eqs = stars = 0
        consistent = True
        for tree in all_trees(n):
            trees += 1
            e = is_sum_equilibrium(tree)
            s = is_star(tree)
            eqs += e
            stars += s
            if e != s or not theorem1_check(tree):
                consistent = False
        t.add_row(n, trees, eqs, stars, consistent)
    t.add_note("#sum equilibria == #stars == n (one per choice of center)")

    sizes = [12, 24] if scale == "quick" else [12, 24, 48, 96]
    reps = 2 if scale == "quick" else 4
    t2 = Table(
        "Dynamics: random trees collapse to stars under sum swaps",
        ["n", "replicates", "#converged", "#ended as star", "mean steps", "mean final diameter"],
    )
    from ..core import SwapDynamics
    from ..rng import derive_seed

    for n in sizes:
        conv = star_count = 0
        steps = []
        diams = []
        for rep in range(reps):
            seed = derive_seed(2024, n, rep)
            res = SwapDynamics(objective="sum", seed=seed).run(
                random_tree(n, seed)
            )
            conv += res.converged
            star_count += is_star(res.graph)
            steps.append(res.steps)
            diams.append(diameter(res.graph))
        t2.add_row(
            n, reps, conv, star_count,
            f"{np.mean(steps):.1f}", f"{np.mean(diams):.2f}",
        )
    t2.add_note(
        "swaps cannot disconnect (disconnection costs inf), so trees stay "
        "trees and Theorem 1 forces the star as the only resting point"
    )
    return [t, t2]


# ---------------------------------------------------------------------------
# thm9-diameter-census (+ lem10/cor11 audit)
# ---------------------------------------------------------------------------

def exp_thm9_census(scale: Scale = "quick") -> list[Table]:
    """Theorem 9: the empirical diameter census of reachable sum equilibria."""
    if scale == "quick":
        n_values, reps = [8, 16, 32], 2
    else:
        n_values, reps = [8, 16, 32, 64, 96, 128], 3
    records = run_census(
        n_values,
        families=("tree", "sparse", "dense"),
        replicates=reps,
        objective="sum",
        root_seed=7,
    )
    t = Table(
        "Theorem 9 census: diameters of sum equilibria reached by dynamics",
        [
            "n", "max eq diameter", "mean eq diameter", "#runs", "#converged",
            "#verified eq", "2^(2*sqrt(lg n))", "lg^2 n (conjecture)",
        ],
    )
    for n in n_values:
        rs = [r for r in records if r.n == n]
        conv = [r for r in rs if r.converged]
        t.add_row(
            n,
            max((r.diameter_final for r in conv), default=float("nan")),
            f"{np.mean([r.diameter_final for r in conv]):.2f}" if conv else "nan",
            len(rs),
            len(conv),
            sum(1 for r in conv if r.verified_equilibrium),
            f"{theorem9_diameter_bound(n):.1f}",
            f"{conjectured_polylog_bound(n):.1f}",
        )
    t.add_note(
        "every reachable equilibrium sits far below the Theorem 9 curve — "
        "consistent with the paper's polylog conjecture (and with the "
        "stronger possibility that constants suffice)"
    )

    # Lemma 10 / Corollary 11 audit on a sample of the equilibria found.
    t2 = Table(
        "Lemma 10 / Corollary 11 audited on census equilibria",
        ["graph", "n", "lemma10 anchor-0", "corollary11 (<= 5 n lg n)"],
    )
    audited = 0
    from ..core.census import seed_graph
    from ..core import SwapDynamics
    from ..rng import derive_seed

    for n in n_values[: 2 if scale == "quick" else 4]:
        seed = derive_seed(99, n)
        res = SwapDynamics(objective="sum", seed=seed).run(
            seed_graph("sparse", n, seed)
        )
        if not res.converged:
            continue
        g = res.graph
        out = lemma10_holds(g, 0)
        t2.add_row(
            f"census n={n}", n,
            "small-diam branch" if out and out.small_diameter
            else ("removable-edge branch" if out else "FAIL"),
            corollary11_holds(g),
        )
        audited += 1
    g3 = repaired_diameter3_witness()
    out = lemma10_holds(g3, 0)
    t2.add_row(
        "repaired Thm-5 witness", g3.n,
        "small-diam branch" if out and out.small_diameter
        else ("removable-edge branch" if out else "FAIL"),
        corollary11_holds(g3),
    )
    return [t, t2]


# ---------------------------------------------------------------------------
# thm12-tradeoff
# ---------------------------------------------------------------------------

def exp_thm12_tradeoff(scale: Scale = "quick") -> list[Table]:
    """Theorem 12 (d-dim): diameter Θ(n^{1/d}) and (d−1)-insertion stability."""
    if scale == "quick":
        cases = [(2, 3), (2, 4), (3, 2), (3, 3), (4, 2)]
    else:
        cases = [(2, 3), (2, 4), (2, 6), (2, 8), (3, 2), (3, 3), (3, 4), (4, 2), (4, 3)]
    t = Table(
        "Theorem 12 trade-off: d-dimensional torus, k-insertion stability",
        [
            "d", "k(side)", "n", "diameter", "(n/2)^(1/d)",
            "deletion-critical", "stable k=d-1 insertions", "unstable at k=d",
        ],
    )
    for d, k in cases:
        g = diagonal_torus(k, d)
        diam = diameter(g)
        stable = is_k_insertion_stable(g, d - 1, vertices=[0]) if d > 1 else True
        unstable = not is_k_insertion_stable(g, d, vertices=[0])
        t.add_row(
            d, k, g.n, diam, f"{(g.n / 2) ** (1 / d):.2f}",
            is_deletion_critical(g), stable, unstable,
        )
    t.add_note(
        "vertex transitivity lets the k-insertion audit use one "
        "representative vertex; d insertions (one per coordinate) collapse "
        "the local diameter, matching the Ω(n^(1/(k+1))) trade-off exactly"
    )
    t2 = Table(
        "Trade-off curve: diameter bound vs computational power k",
        ["k (edges weighed)", "bound n=1024", "bound n=4096", "construction d=k+1"],
    )
    for kk in (1, 2, 3, 4):
        t2.add_row(
            kk,
            f"{theorem12_tradeoff_bound(1024, kk):.1f}",
            f"{theorem12_tradeoff_bound(4096, kk):.1f}",
            f"diag torus d={kk + 1}",
        )
    return [t, t2]


# ---------------------------------------------------------------------------
# thm13-uniformity (+ conj14 counterexample)
# ---------------------------------------------------------------------------

def exp_thm13_uniformity(scale: Scale = "quick") -> list[Table]:
    """Theorem 13 pipeline + the Conjecture 14 spider separation."""
    t = Table(
        "Theorem 13 pipeline on high-diameter stand-ins (p=0.5, beta=1/8)",
        [
            "input", "n", "diam d", "premise d>2lg n", "x(almost)",
            "power diam", "eps(almost)", "x(uniform)", "x<=4lg^2 n",
            "power diam", "eps(uniform)",
        ],
    )
    inputs = [
        ("cycle C256", cycle_graph(256)),
        ("torus k=16", rotated_torus(16)),
    ]
    if scale == "full":
        inputs += [
            ("cycle C1024", cycle_graph(1024)),
            ("torus k=24", rotated_torus(24)),
        ]
    for label, g in inputs:
        res = theorem13_transform(g, beta=0.125, p=0.5)
        t.add_row(
            label, res.n, res.input_diameter, res.meets_diameter_premise,
            res.almost_power, res.almost_diameter,
            f"{res.almost_report.epsilon:.3f}",
            res.uniform_power, res.uniform_power_within_bound,
            res.uniform_diameter, f"{res.uniform_report.epsilon:.3f}",
        )
    t.add_note(
        "no sum equilibrium of diameter > 2 lg n is known (the paper "
        "conjectures none exists); the pipeline is exercised on max-"
        "equilibrium and synthetic high-diameter graphs per DESIGN.md"
    )
    t.add_note(
        "the proof's constant is p >= 8/beta; the pipeline exposes p so "
        "laptop-scale inputs produce non-degenerate powers (p=0.5 here)"
    )

    t2 = Table(
        "Skew-triple fractions (Theorem 13 first claim's quantity)",
        ["graph", "n", "p", "skew fraction", "4/p bound"],
    )
    for label, g, p in [
        ("torus k=8", rotated_torus(8), 1.0),
        ("repaired witness", repaired_diameter3_witness(), 1.0),
        ("cycle C64", cycle_graph(64), 1.0),
    ]:
        frac = skew_triple_fraction(g, p)
        t2.add_row(label, g.n, p, f"{frac:.4f}", f"{4 / p:.2f}")

    t3 = Table(
        "Conjecture 14's per-vertex quantifier: the spider separation",
        [
            "epsilon", "target diam", "n", "diameter",
            "pairwise modal fraction", "per-vertex eps (uniform)",
            "per-vertex eps (almost)",
        ],
    )
    eps_list = [0.25, 0.125] if scale == "quick" else [0.25, 0.125, 0.0625]
    for eps in eps_list:
        shape = spider_for_epsilon(eps, 8)
        g = spider_graph(shape)
        r, frac = pairwise_concentration(g)
        u = distance_uniformity(g)
        au = distance_almost_uniformity(g)
        t3.add_row(
            eps, shape.diameter, g.n, diameter(g),
            f"{frac:.3f} @ r={r}", f"{u.epsilon:.3f}", f"{au.epsilon:.3f}",
        )
    t3.add_note(
        "pairwise mass concentrates (-> 1 - eps) while per-vertex "
        "uniformity stays near 1: the weaker pairwise notion admits "
        "arbitrarily large diameter, so Conjecture 14 must be per-vertex"
    )
    return [t, t2, t3]


# ---------------------------------------------------------------------------
# thm15-cayley
# ---------------------------------------------------------------------------

def exp_thm15_cayley(scale: Scale = "quick") -> list[Table]:
    """Theorem 15: ε-distance-uniform Abelian Cayley graphs."""
    from ..constructions import cayley_graph
    from ..rng import derive_seed

    # Sparse connection sets give eps >= 1/4 (the theorem is vacuous there);
    # the dense cases push eps below 1/4 so the bound actually binds.
    if scale == "quick":
        cases = [((64,), 3), ((64,), 8), ((16, 16), 4), ((16, 16), 10)]
        reps = 2
    else:
        cases = [
            ((64,), 3), ((64,), 8), ((256,), 4), ((256,), 16),
            ((16, 16), 4), ((16, 16), 10), ((32, 32), 5), ((32, 32), 24),
            ((2,) * 10, 12),
        ]
        reps = 3
    t = Table(
        "Theorem 15: uniformity vs diameter for random Abelian Cayley graphs",
        [
            "group", "gens", "n", "diameter", "eps (uniform)",
            "thm bound (if eps<1/4)", "within bound", "plunnecke ok",
        ],
    )
    for moduli, gens in cases:
        for rep in range(reps):
            seed = derive_seed(5, hash(moduli) & 0x7FFFFFFF, gens, rep)
            conn = random_connection_set(moduli, gens, seed)
            g = cayley_graph(moduli, conn)
            from ..graphs import is_connected

            if not is_connected(g):
                t.add_row(
                    "Z" + "x".join(map(str, moduli)), gens, g.n,
                    "disconnected", "-", "-", "-", "-",
                )
                continue
            d = diameter(g)
            rep_u = distance_uniformity(g)
            group = AbelianGroup(moduli)
            sizes = iterated_sumset_sizes(group, conn, min(2 * d + 2, 40))
            viols = plunnecke_violations(sizes)
            if rep_u.epsilon < 0.25 and rep_u.epsilon > 0:
                bound = theorem15_diameter_bound(g.n, rep_u.epsilon)
                within = d <= bound
                bound_str = f"{bound:.1f}"
            else:
                bound_str, within = "n/a (eps>=1/4)", True
            t.add_row(
                "Z" + "x".join(map(str, moduli)), gens, g.n, d,
                f"{rep_u.epsilon:.3f}", bound_str, within, len(viols) == 0,
            )
    t.add_note(
        "|qS| <= |pS|^(q/p) (the Plünnecke consequence) verified on every "
        "instance's iterated sumsets — the proof's engine, checked live"
    )
    return [t]


# ---------------------------------------------------------------------------
# alpha-transfer
# ---------------------------------------------------------------------------

def exp_alpha_transfer(scale: Scale = "quick") -> list[Table]:
    """The §1 transfer: swap bounds cover α-equilibria for every α."""
    if scale == "quick":
        n, alphas, reps = 8, [0.5, 1.0, 2.0, 4.0, 16.0], 2
    else:
        n, alphas, reps = 12, [0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 64.0, 144.0], 3
    records = transfer_sweep(n, alphas, replicates=reps, root_seed=3)
    t = Table(
        f"alpha-game greedy equilibria (n={n}) vs the alpha-free swap bound",
        [
            "alpha", "#runs", "#converged", "#owner-swap stable",
            "max diameter", "thm9 bound", "all within bound",
        ],
    )
    for alpha in alphas:
        rs = [r for r in records if r.alpha == alpha]
        conv = [r for r in rs if r.converged]
        t.add_row(
            alpha, len(rs), len(conv),
            sum(1 for r in conv if r.owner_swap_stable),
            max((r.diameter for r in conv), default=float("nan")),
            f"{theorem9_diameter_bound(n):.1f}",
            all(r.within_bound for r in conv),
        )
    t.add_note(
        "one bound, all alphas: the swap-equilibrium diameter bound needs "
        "no knowledge of alpha, unlike every prior per-range analysis"
    )
    t.add_note(
        "equilibrium checking here is poly-time (owner-swap audit); exact "
        "Nash verification is exponential (NP-complete), see games.nash"
    )
    return [t]


# ---------------------------------------------------------------------------
# poa-diameter
# ---------------------------------------------------------------------------

def exp_poa_diameter(scale: Scale = "quick") -> list[Table]:
    """Price of anarchy tracks equilibrium diameter (constant factor)."""
    graphs = [
        ("star n=32", __import__("repro.graphs", fromlist=["star_graph"]).star_graph(32)),
        ("repaired Thm-5 witness", repaired_diameter3_witness()),
        ("polarity ER_3", polarity_graph(3)),
        ("torus k=4", rotated_torus(4)),
        ("torus k=6", rotated_torus(6)),
    ]
    if scale == "full":
        graphs += [
            ("torus k=8", rotated_torus(8)),
            ("torus k=12", rotated_torus(12)),
            ("polarity ER_5", polarity_graph(5)),
        ]
    t = Table(
        "PoA vs diameter across equilibrium families (usage cost, fixed m)",
        ["equilibrium", "n", "m", "diameter", "PoA (usage)", "PoA / diameter"],
    )
    for label, g in graphs:
        poa, d, ratio = poa_diameter_ratio(g)
        t.add_row(label, g.n, g.m, d, f"{poa:.3f}", f"{ratio:.3f}")
    t.add_note(
        "PoA/diameter stays within a narrow constant band while diameter "
        "varies 2 -> Θ(sqrt n), the [7] relation the paper builds on"
    )
    return [t]


# ---------------------------------------------------------------------------
# equilibrium-cost (checker scaling + ablations)
# ---------------------------------------------------------------------------

def exp_equilibrium_cost(scale: Scale = "quick") -> list[Table]:
    """'Equilibrium can be checked in polynomial time': measured scaling."""
    import time

    sizes = [16, 32, 64] if scale == "quick" else [16, 32, 64, 128, 256]
    t = Table(
        "Equilibrium audit cost (sum version, full audit of an equilibrium)",
        [
            "n", "m", "repair seconds", "batched seconds",
            "batched speedup", "sec / (n*m) * 1e6",
        ],
    )
    from ..core import SwapDynamics
    from ..rng import derive_seed

    warm = random_connected_gnm(16, 32, seed=derive_seed(11, 0))
    is_sum_equilibrium(warm)  # warm the scipy/csgraph import path
    is_sum_equilibrium(warm, mode="batched")
    for n in sizes:
        # Audit an actual equilibrium so the checker scans every edge
        # instead of short-circuiting at the first violation.
        res = SwapDynamics(objective="sum", seed=derive_seed(11, n)).run(
            random_connected_gnm(n, 2 * n, seed=derive_seed(11, n))
        )
        assert res.converged, f"census dynamics failed to converge at n={n}"
        g = res.graph
        start = time.perf_counter()
        is_sum_equilibrium(g)
        repair = time.perf_counter() - start
        start = time.perf_counter()
        is_sum_equilibrium(g, mode="batched")
        batched = time.perf_counter() - start
        t.add_row(
            n, g.m, f"{repair:.4f}", f"{batched:.4f}",
            f"{repair / batched:.2f}x" if batched > 0 else "inf",
            f"{batched / (n * g.m) * 1e6:.3f}",
        )
    t.add_note(
        "normalized cost is flat-ish: the audit is O(m) APSP calls, i.e. "
        "polynomial, vs NP-complete Nash verification in the alpha-game"
    )
    t.add_note(
        "the batched kernel plans lazily in edge blocks and bounds before "
        "it repairs (DESIGN.md §2.6); both arms are bit-identical auditors"
    )

    t2 = Table(
        "Ablation: patched-BFS vs copy-BFS swap evaluation",
        ["n", "m", "candidates", "patched sec", "copy sec", "speedup"],
    )
    for n in sizes[:2] if scale == "quick" else sizes[:3]:
        g = random_connected_gnm(n, 2 * n, seed=derive_seed(12, n))
        swaps = []
        for v in range(g.n):
            for w in map(int, g.neighbors(v)):
                swaps.append(Swap(v, w, (v + n // 2) % n))
        swaps = [
            s for s in swaps
            if s.add not in (s.vertex, s.drop)
        ][: 200]
        start = time.perf_counter()
        for s in swaps:
            swap_cost_after(g, s, "sum", "patched")
        patched = time.perf_counter() - start
        start = time.perf_counter()
        for s in swaps:
            swap_cost_after(g, s, "sum", "copy")
        copy = time.perf_counter() - start
        t2.add_row(
            n, g.m, len(swaps), f"{patched:.4f}", f"{copy:.4f}",
            f"{copy / patched:.2f}x" if patched > 0 else "inf",
        )
    return [t, t2]


# ---------------------------------------------------------------------------
# small-census (exhaustive equilibrium counts over all connected graphs)
# ---------------------------------------------------------------------------

def exp_small_census(scale: Scale = "quick") -> list[Table]:
    """Exhaustive census: every connected graph at small n, classified.

    Sharpens the Theorem 5 landscape: the paper's witness (n=13) fails, the
    repo's repaired witness has n=10, and this census determines exactly
    where diameter-3 sum equilibria start existing (no n ≤ 6; see
    ``scripts/census_n7.py`` for the sharded n=7 run).
    """
    from ..core.exhaustive import exhaustive_equilibrium_census

    n_max = 5 if scale == "quick" else 6
    t = Table(
        "Exhaustive sum-equilibrium census (all connected labelled graphs)",
        ["n", "connected graphs", "diameter", "graphs", "sum equilibria"],
    )
    for n in range(4, n_max + 1):
        census = exhaustive_equilibrium_census(n, "sum")
        for d, cell in sorted(census.by_diameter.items()):
            t.add_row(n, census.connected_graphs, d, cell.graphs, cell.equilibria)
    t.add_note(
        "every diameter-<=2 connected graph is a sum equilibrium (Lemma 6); "
        "NO diameter->=3 sum equilibrium exists at these n — the smallest "
        "possible Theorem-5 witness therefore has n >= 7"
    )

    t2 = Table(
        "Exhaustive max-equilibrium census",
        ["n", "connected graphs", "diameter", "graphs", "max equilibria"],
    )
    for n in range(4, (5 if scale == "quick" else 5) + 1):
        census = exhaustive_equilibrium_census(n, "max")
        for d, cell in sorted(census.by_diameter.items()):
            t2.add_row(n, census.connected_graphs, d, cell.graphs, cell.equilibria)
    t2.add_note(
        "max equilibria are much rarer: deletion-criticality prunes any "
        "graph with an extraneous edge"
    )
    return [t, t2]


# ---------------------------------------------------------------------------
# variant-census (cost-model layer: interest / budget game variants)
# ---------------------------------------------------------------------------

def exp_variant_census(scale: Scale = "quick") -> list[Table]:
    """Game variants through the cost-model layer: interests and budgets.

    The closest follow-up models to the paper — swap games with
    communication interests (Cord-Landwehr et al.) and under bounded
    budgets (Ehsani et al.) — run through the same dynamics + audit
    machinery as the base game via :mod:`repro.core.costmodel` specs.
    """
    from ..core.census import run_census

    if scale == "quick":
        n_values, reps = [8, 12], 2
    else:
        n_values, reps = [8, 16, 32, 64], 3
    specs = [
        "sum",
        "max",
        "interest-sum:k=4,seed=9",
        "interest-max:k=4,seed=9",
        "budget-sum:cap=3",
        "budget-max:cap=3",
    ]
    t = Table(
        "Variant census: reachable equilibria per cost model",
        [
            "objective", "n", "#runs", "#converged", "#verified eq",
            "mean steps", "max final diameter",
        ],
    )
    for spec in specs:
        records = run_census(
            n_values,
            families=("tree", "sparse"),
            replicates=reps,
            objective=spec,
            root_seed=17,
        )
        for n in n_values:
            rs = [r for r in records if r.n == n]
            conv = [r for r in rs if r.converged]
            t.add_row(
                spec,
                n,
                len(rs),
                len(conv),
                sum(1 for r in conv if r.verified_equilibrium),
                f"{np.mean([r.steps for r in rs]):.1f}",
                max((r.diameter_final for r in conv), default=float("nan")),
            )
    t.add_note(
        "sum/max rows go through SumCost/MaxCost and are bit-identical to "
        "the historical objective strings; interest rows restrict each "
        "agent's cost to a random k-subset of targets (connectivity-"
        "preserving), budget rows cap incident edges per agent"
    )
    t.add_note(
        "every converged endpoint is re-audited with the exact "
        "model-aware equilibrium checker (batched kernel)"
    )
    return [t]


# ---------------------------------------------------------------------------
# dynamics-census (trajectory census: schedules, responders, cycling)
# ---------------------------------------------------------------------------

def exp_dynamics_census(scale: Scale = "quick") -> list[Table]:
    """Trajectory census: convergence behaviour across schedules and models.

    The Kawald–Lenzner question — how schedule/responder choices shape
    convergence speed and cycling — asked of the paper's games and the
    interest variant, via :func:`repro.core.trajcensus.run_trajectory_census`.
    """
    from ..core.trajcensus import run_trajectory_census

    if scale == "quick":
        n_values, reps, max_steps = [8, 12], 2, 2_000
    else:
        n_values, reps, max_steps = [8, 16, 32], 3, 20_000
    records = run_trajectory_census(
        n_values,
        families=("tree", "sparse"),
        objectives=("sum", "interest-sum:k=3,seed=0"),
        schedules=("round_robin", "random", "greedy"),
        responders=("best", "first"),
        replicates=reps,
        root_seed=23,
        max_steps=max_steps,
    )
    t = Table(
        "Trajectory census: outcomes per (objective, schedule, responder)",
        [
            "objective", "schedule", "responder", "#runs", "#converged",
            "#cycles", "#exhausted", "mean steps", "mean activations",
            "#distinct endpoints",
        ],
    )
    groups: dict[tuple, list] = {}
    for r in records:
        groups.setdefault((r.objective, r.schedule, r.responder), []).append(r)
    for (obj, sched, resp), rs in sorted(groups.items()):
        conv = [r for r in rs if r.converged]
        t.add_row(
            obj, sched, resp, len(rs), len(conv),
            sum(1 for r in rs if r.cycle_detected),
            sum(1 for r in rs if r.exhausted),
            f"{np.mean([r.steps for r in rs]):.1f}",
            f"{np.mean([r.activations for r in rs]):.1f}",
            len({r.final_fingerprint for r in conv}),
        )
    t.add_note(
        "the sum game converges under every schedule here; the interest "
        "variant cycles from non-tree starts — convergence is a property "
        "of the game, not of the activation order (cf. Kawald–Lenzner)"
    )
    t.add_note(
        "cycles are detected exactly (revisited edge set), so #cycles and "
        "#exhausted are disjoint: an exhausted run saw no repeated state"
    )

    t2 = Table(
        "Non-potential signature along sum trajectories",
        [
            "objective", "n", "#runs", "#socially monotone",
            "total selfish regressions", "max single-step increase",
        ],
    )
    for obj in ("sum", "interest-sum:k=3,seed=0"):
        for n in n_values:
            rs = [r for r in records if r.objective == obj and r.n == n]
            if not rs:
                continue
            t2.add_row(
                obj, n, len(rs),
                sum(1 for r in rs if r.socially_monotone),
                sum(r.selfish_regressions for r in rs),
                f"{max(r.max_social_cost_increase for r in rs):.0f}",
            )
    t2.add_note(
        "selfish regressions (mover wins, society loses) are why the sum "
        "game has no potential function — counted per applied move from "
        "the recorded model-correct social-cost traces"
    )
    return [t, t2]


# ---------------------------------------------------------------------------
# paper-claims (the claim-by-claim registry of repro.paper)
# ---------------------------------------------------------------------------

def exp_paper_claims(scale: Scale = "quick") -> list[Table]:
    """Run every registered claim check of :mod:`repro.paper`."""
    from ..paper import verify_all

    t = Table(
        "The paper, claim by claim (repro.paper registry)",
        ["claim", "status", "check passed", "statement"],
    )
    for r in verify_all():
        t.add_row(r.claim_id, r.expected_status, r.passed, r.statement)
    t.add_note(
        "'refuted-witness' marks the Figure 3 finding: the check passes "
        "because it verifies the refutation (the printed witness admits an "
        "improving swap); the statement itself is re-established by the "
        "repaired witness in the following row"
    )
    return [t]


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

EXPERIMENTS: dict[str, Callable[[Scale], list[Table]]] = {
    "fig2-double-star": exp_fig2_double_star,
    "fig3-diameter3": exp_fig3_diameter3,
    "fig4-torus": exp_fig4_torus,
    "thm1-sum-trees": exp_thm1_sum_trees,
    "thm9-diameter-census": exp_thm9_census,
    "thm12-tradeoff": exp_thm12_tradeoff,
    "thm13-uniformity": exp_thm13_uniformity,
    "thm15-cayley": exp_thm15_cayley,
    "alpha-transfer": exp_alpha_transfer,
    "poa-diameter": exp_poa_diameter,
    "equilibrium-cost": exp_equilibrium_cost,
    "small-census": exp_small_census,
    "variant-census": exp_variant_census,
    "dynamics-census": exp_dynamics_census,
    "paper-claims": exp_paper_claims,
}


def experiment_ids() -> list[str]:
    """All registered experiment ids, in DESIGN.md order."""
    return list(EXPERIMENTS)


def run_experiment(exp_id: str, scale: Scale = "quick") -> list[Table]:
    """Run one experiment by id, returning its tables."""
    if exp_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {', '.join(EXPERIMENTS)}"
        )
    return EXPERIMENTS[exp_id](scale)
