"""Experiment harness: the registry behind ``benchmarks/`` and the CLI."""

from .experiments import EXPERIMENTS, experiment_ids, run_experiment
from .reporting import Table, format_value

__all__ = [
    "EXPERIMENTS",
    "Table",
    "experiment_ids",
    "format_value",
    "run_experiment",
]
