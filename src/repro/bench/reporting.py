"""Table rendering and persistence for the experiment harness.

Experiments produce a :class:`Table` — named columns over uniform rows —
which renders as fixed-width ASCII (what the benches print and
EXPERIMENTS.md quotes), as Markdown, and as CSV (persisted under
``results/`` so runs are diffable).
"""

from __future__ import annotations

import csv
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence
from ..errors import ConfigurationError

__all__ = ["Table", "format_value"]


def format_value(x: Any) -> str:
    """Render one cell: floats get 4 significant digits, inf stays inf."""
    if isinstance(x, bool):
        return "yes" if x else "no"
    if isinstance(x, float):
        if math.isinf(x):
            return "inf"
        if x == int(x) and abs(x) < 1e15:
            return str(int(x))
        return f"{x:.4g}"
    return str(x)


@dataclass
class Table:
    """A titled column table with uniform rows."""

    title: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ConfigurationError(
                f"row has {len(values)} cells for {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    @classmethod
    def from_records(
        cls, title: str, records: Sequence[Mapping[str, Any]], columns: Sequence[str]
    ) -> "Table":
        t = cls(title, list(columns))
        for r in records:
            t.add_row(*(r.get(c) for c in columns))
        return t

    # ------------------------------------------------------------------
    def to_ascii(self) -> str:
        cells = [[format_value(x) for x in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in cells))
            if cells
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        sep = "-+-".join("-" * w for w in widths)
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines = [f"== {self.title} ==", header, sep]
        for row in cells:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        lines = [f"**{self.title}**", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append(
                "| " + " | ".join(format_value(x) for x in row) + " |"
            )
        for note in self.notes:
            lines.append(f"\n*{note}*")
        return "\n".join(lines)

    def write_csv(self, path: "str | Path") -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="", encoding="utf-8") as fh:
            writer = csv.writer(fh)
            writer.writerow(self.columns)
            for row in self.rows:
                writer.writerow([format_value(x) for x in row])

    def column(self, name: str) -> list[Any]:
        """Values of one column (for assertions in benches/tests)."""
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]
