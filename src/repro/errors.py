"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch library failures without also catching programming errors.  The
subclasses mirror the layers of the system: graph construction, game moves,
and experiment configuration.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "InvalidEdgeError",
    "DisconnectedGraphError",
    "MoveError",
    "IllegalSwapError",
    "ConfigurationError",
    "ConvergenceError",
    "StoreIntegrityError",
    "DeadlineExceeded",
    "TaskExecutionError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """A graph was malformed or an operation received an unsuitable graph."""


class InvalidEdgeError(GraphError):
    """An edge is out of range, a self-loop, a duplicate, or otherwise illegal."""


class DisconnectedGraphError(GraphError):
    """An operation that requires connectivity received a disconnected graph."""


class MoveError(ReproError):
    """A game move (swap / add / delete) could not be interpreted."""


class IllegalSwapError(MoveError):
    """A swap referenced a non-existent edge or produced an illegal graph."""


class ConfigurationError(ReproError, ValueError):
    """An experiment or sweep was configured inconsistently.

    Also a ``ValueError``: bad objective specs, modes, and similar argument
    errors historically surfaced as either type depending on the layer, so
    the shared subclass keeps both ``except`` styles working.
    """


class StoreIntegrityError(ReproError, ValueError):
    """A JSONL store's on-disk state is corrupt or inconsistent.

    Raised when a header is missing or incompatible, a line fails to parse
    as the declared record type, or a resume finds the file diverging from
    the run configuration.  Also a ``ValueError`` for the same
    compatibility reason as :class:`ConfigurationError`.
    """


class TaskExecutionError(ReproError):
    """A parallel task failed permanently (its retry budget is spent).

    Carries the task's identity — the absolute index in the mapped task
    list, the task's ``repr``, and the attempt count — so fleet logs name
    the grid point that died instead of surfacing a bare worker traceback.
    The final underlying exception is chained as ``__cause__``.
    """

    def __init__(
        self,
        message: str,
        *,
        index: "int | None" = None,
        task_repr: "str | None" = None,
        attempts: "int | None" = None,
    ):
        super().__init__(message)
        self.index = index
        self.task_repr = task_repr
        self.attempts = attempts


class DeadlineExceeded(ReproError):
    """An absolute request deadline expired before the work completed.

    Raised by the parallel runtime (``deadline=`` on
    :func:`~repro.parallel.parallel_map` / ``SharedArrayPool.map``) and
    propagated by the audit service as a typed response.  Unlike a per-chunk
    ``timeout`` — which is an *attempt* budget the retry machinery may spend
    several times over — the deadline is the whole request's wall-clock
    budget: once it passes, the runtime stops retrying and raises this
    immediately, regardless of ``on_error`` policy.  ``elapsed`` is the
    wall-clock time actually spent before giving up (None when unknown).
    """

    def __init__(self, message: str, *, elapsed: "float | None" = None):
        super().__init__(message)
        self.elapsed = elapsed


class ConvergenceError(ReproError):
    """Best-response dynamics exceeded its step budget without converging.

    The partially converged state is attached so callers can inspect how far
    the dynamics got before the budget ran out.
    """

    def __init__(self, message: str, state=None, steps: int | None = None):
        super().__init__(message)
        self.state = state
        self.steps = steps
