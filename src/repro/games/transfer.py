"""The transfer principle, measured: swap bounds apply to α-equilibria.

The paper's Section 1 argument: a Nash equilibrium of the α-game is stable
against each owner relocating one of its *own* edges (same creation cost,
so the move is judged purely on usage) — an **owner-restricted swap
stability**.  Since the paper's diameter upper bounds only ever invoke swaps
available to some endpoint, they hold for every α simultaneously.

This module makes the two halves measurable:

* :func:`owner_swap_stable` — the owner-restricted swap audit on a strategy
  profile (a *necessary* condition for Nash, checkable in polynomial time);
* :func:`transfer_sweep` — for a grid of α and random seeds, run greedy
  α-dynamics to (greedy-)equilibrium, audit owner-swap stability, and record
  the equilibrium diameters next to the swap-equilibrium bound curves.

The expected picture (EXPERIMENTS.md tabulates it): every converged α-game
equilibrium passes the owner-swap audit, and the diameters stay far below
the Theorem 9 curve for *every* α — the uniform treatment the basic game
buys without knowing α.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..analysis.bounds import theorem9_diameter_bound
from ..graphs import diameter_or_inf, is_connected
from ..rng import derive_seed
from .fabrikant import FabrikantGame, StrategyProfile, random_profile
from .nash import greedy_dynamics, is_greedy_equilibrium

__all__ = ["owner_swap_stable", "TransferRecord", "transfer_sweep"]


def owner_swap_stable(game: FabrikantGame, profile: StrategyProfile) -> bool:
    """No owner can improve usage by relocating one of its bought edges.

    This is exactly the basic game's swap move restricted to edge owners;
    creation cost is unchanged by a relocation, so the comparison is on
    player cost directly.
    """
    n = game.n
    for v in range(n):
        current = game.player_cost(profile, v)
        mine = profile[v]
        for w in mine:
            for w2 in range(n):
                if w2 == v or w2 in mine:
                    continue
                candidate = (mine - {w}) | {w2}
                cost = game.player_cost(
                    game.with_strategy(profile, v, candidate), v
                )
                if cost < current:
                    return False
    return True


@dataclass
class TransferRecord:
    """One α-dynamics run and its transfer audit."""

    n: int
    alpha: float
    seed: int
    converged: bool
    steps: int
    connected: bool
    is_greedy_eq: bool
    owner_swap_stable: bool
    diameter: float
    theorem9_bound: float
    within_bound: bool
    m_edges: int


def transfer_sweep(
    n: int,
    alphas: Sequence[float],
    replicates: int = 3,
    root_seed: int = 0,
    edges_per_player: int = 2,
    max_steps: int = 5_000,
) -> list[TransferRecord]:
    """Greedy α-dynamics across an α grid; audit and record each endpoint."""
    records: list[TransferRecord] = []
    for ai, alpha in enumerate(alphas):
        game = FabrikantGame(n, alpha)
        for rep in range(replicates):
            seed = derive_seed(root_seed, ai, rep)
            initial = random_profile(n, edges_per_player, seed)
            result = greedy_dynamics(
                game, initial, max_steps=max_steps, seed=derive_seed(seed, 1)
            )
            graph = game.graph_of(result.profile)
            connected = is_connected(graph)
            diam = diameter_or_inf(graph)
            bound = theorem9_diameter_bound(n)
            greedy_eq = (
                is_greedy_equilibrium(game, result.profile)
                if result.converged
                else False
            )
            stable = (
                owner_swap_stable(game, result.profile)
                if connected
                else False
            )
            records.append(
                TransferRecord(
                    n=n,
                    alpha=float(alpha),
                    seed=seed,
                    converged=result.converged,
                    steps=result.steps,
                    connected=connected,
                    is_greedy_eq=greedy_eq,
                    owner_swap_stable=stable,
                    diameter=diam,
                    theorem9_bound=bound,
                    within_bound=(
                        math.isfinite(diam) and diam <= bound
                    ),
                    m_edges=graph.m,
                )
            )
    return records
