"""Social cost, social optimum, and price of anarchy.

Two cost conventions appear in this literature and both are implemented:

* **α-game social cost** — ``α·m + Σ_{u,v} d(u, v)`` (ordered pairs), the sum
  of player costs in :class:`~repro.games.fabrikant.FabrikantGame`;
* **basic-game usage cost** — just ``Σ_{u,v} d(u, v)``, since the basic game
  fixes the edge budget (swaps preserve ``m``) and cost is usage only.

For the α-game optimum we use the classical fact (Fabrikant et al.) that the
social optimum is the complete graph for ``α ≤ 2`` and the star for
``α ≥ 2`` — :func:`alpha_social_optimum` returns the exact minimum of the
two closed forms, and the test suite brute-forces tiny ``n`` to confirm.

The paper's headline relation — price of anarchy within a constant factor of
the maximum equilibrium diameter ([7]) — is measured by
:func:`poa_diameter_ratio`: for a graph ``G`` with fixed edge budget, the
usage-cost PoA against the same-``m`` star-plus-extras baseline, divided by
``diam(G)``.
"""

from __future__ import annotations

from ..errors import GraphError
from ..graphs import (
    CSRGraph,
    diameter,
    star_graph,
    total_pairwise_distance,
)

__all__ = [
    "alpha_social_cost",
    "star_social_cost",
    "clique_social_cost",
    "alpha_social_optimum",
    "usage_social_cost",
    "usage_optimum_same_budget",
    "price_of_anarchy_alpha",
    "poa_diameter_ratio",
    "star_plus_matching_graph",
]


def alpha_social_cost(graph: CSRGraph, alpha: float) -> float:
    """``α·m + Σ_{ordered pairs} d(u, v)`` (``inf`` when disconnected)."""
    usage = total_pairwise_distance(graph)
    return alpha * graph.m + usage


def star_social_cost(n: int, alpha: float) -> float:
    """Closed-form α-social cost of the star on ``n`` vertices.

    ``m = n−1``; usage: center ``n−1``, each leaf ``1 + 2(n−2)``, so the
    ordered-pair total is ``2(n−1) + 2(n−1)(n−2)``.
    """
    if n < 1:
        raise GraphError(f"need n >= 1, got {n}")
    if n == 1:
        return 0.0
    usage = 2 * (n - 1) + 2 * (n - 1) * (n - 2)
    return alpha * (n - 1) + usage


def clique_social_cost(n: int, alpha: float) -> float:
    """Closed-form α-social cost of ``K_n``: ``α·C(n,2) + n(n−1)``."""
    if n < 1:
        raise GraphError(f"need n >= 1, got {n}")
    return alpha * (n * (n - 1) // 2) + n * (n - 1)


def alpha_social_optimum(n: int, alpha: float) -> float:
    """The α-game social optimum: ``min(star, clique)`` (exact for all α).

    Classical result: for ``α ≤ 2`` the clique is optimal, for ``α ≥ 2`` the
    star; at ``α = 2`` they tie together with everything between.
    """
    return min(star_social_cost(n, alpha), clique_social_cost(n, alpha))


def usage_social_cost(graph: CSRGraph) -> float:
    """Basic-game social cost: total ordered-pair distance."""
    return total_pairwise_distance(graph)


def star_plus_matching_graph(n: int, m: int) -> CSRGraph:
    """A near-optimal usage-cost graph with exactly ``m`` edges.

    Star plus ``m − (n−1)`` extra leaf–leaf edges (greedily paired).  Its
    usage cost lower-bounds nothing but upper-bounds the optimum, which is
    all the PoA denominator needs (a smaller optimum would only *increase*
    measured PoA, so the reported ratios are conservative lower bounds).
    """
    if n < 1:
        raise GraphError(f"need n >= 1, got {n}")
    max_m = n * (n - 1) // 2
    if not (min(n - 1, max_m)) <= m <= max_m:
        raise GraphError(f"need n-1 <= m <= {max_m}, got m={m}")
    edges = set(star_graph(n).edge_set())
    extra = m - len(edges)
    leaves = [v for v in range(1, n)]
    for i in range(len(leaves)):
        if extra <= 0:
            break
        for j in range(i + 1, len(leaves)):
            if extra <= 0:
                break
            e = (leaves[i], leaves[j])
            if e not in edges:
                edges.add(e)
                extra -= 1
    return CSRGraph(n, edges)


def usage_optimum_same_budget(n: int, m: int) -> float:
    """Upper bound on the minimum usage cost among connected (n, m) graphs."""
    return usage_social_cost(star_plus_matching_graph(n, m))


def price_of_anarchy_alpha(
    equilibrium_graphs: "list[CSRGraph]", alpha: float
) -> float:
    """Worst α-social cost among equilibria divided by the social optimum."""
    if not equilibrium_graphs:
        raise GraphError("need at least one equilibrium graph")
    n = equilibrium_graphs[0].n
    if any(g.n != n for g in equilibrium_graphs):
        raise GraphError("equilibria must share a vertex count")
    worst = max(alpha_social_cost(g, alpha) for g in equilibrium_graphs)
    return worst / alpha_social_optimum(n, alpha)


def poa_diameter_ratio(graph: CSRGraph) -> tuple[float, int, float]:
    """``(PoA_usage, diameter, PoA_usage / diameter)`` for one equilibrium.

    ``PoA_usage`` compares the graph's usage cost to the same-edge-budget
    star-plus-extras baseline.  The final component is the constant the
    paper says is bounded — the bench tabulates it across every equilibrium
    family to exhibit the constant-factor relation empirically.
    """
    n, m = graph.n, graph.m
    usage = usage_social_cost(graph)
    opt = usage_optimum_same_budget(n, m)
    d = diameter(graph)
    poa = usage / opt if opt > 0 else 1.0
    return poa, d, (poa / d if d > 0 else poa)
