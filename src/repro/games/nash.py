"""Equilibrium notions for the α-game: exact Nash and greedy-restricted.

The paper's motivation cuts through here: *"computationally bounded agents
cannot even tell if they are in a Nash equilibrium (the problem is
NP-complete)"*.  Accordingly:

* :func:`is_nash_equilibrium` / :func:`exact_best_response` enumerate all
  ``2^{n-1}`` strategies of a player — exact, exponential, capped at a small
  ``n`` (the brute force that NP-completeness forces);
* :func:`is_greedy_equilibrium` / :func:`greedy_best_move` restrict
  deviations to **add one / drop one / swap one** bought edge — the
  polynomial move set matching the basic game's "weigh one edge against
  another" agents;
* :func:`greedy_dynamics` runs better-response over the greedy moves to
  *find* equilibria for the transfer experiment.

Every Nash equilibrium is a greedy equilibrium (greedy deviations are a
subset), so diameters of graphs surviving the greedy audit upper-bound the
diameters of Nash graphs our sweeps could produce — mirroring the paper's
"bounds on swap equilibria transfer to Nash equilibria" logic one level down.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..rng import make_rng
from .fabrikant import FabrikantGame, StrategyProfile

__all__ = [
    "EXACT_NASH_MAX_N",
    "exact_best_response",
    "is_nash_equilibrium",
    "greedy_best_move",
    "is_greedy_equilibrium",
    "greedy_dynamics",
    "GreedyDynamicsResult",
]

#: Hard cap for the exponential exact-Nash enumeration.
EXACT_NASH_MAX_N: int = 12


def exact_best_response(
    game: FabrikantGame, profile: StrategyProfile, v: int
) -> tuple[frozenset[int], float]:
    """Player ``v``'s exact best strategy against the rest of ``profile``.

    Enumerates all subsets of ``V \\ {v}`` — ``Θ(2^{n-1})`` cost evaluations,
    guarded by :data:`EXACT_NASH_MAX_N`.  Returns ``(strategy, cost)``.
    """
    n = game.n
    if n > EXACT_NASH_MAX_N:
        raise ConfigurationError(
            f"exact best response capped at n <= {EXACT_NASH_MAX_N}, got {n} "
            "(this is the NP-complete computation; use the greedy moves)"
        )
    others = [u for u in range(n) if u != v]
    best_strategy = profile[v]
    best_cost = game.player_cost(profile, v)
    for r in range(len(others) + 1):
        for combo in itertools.combinations(others, r):
            candidate = frozenset(combo)
            if candidate == profile[v]:
                continue
            cost = game.player_cost(game.with_strategy(profile, v, candidate), v)
            if cost < best_cost:
                best_cost = cost
                best_strategy = candidate
    return best_strategy, best_cost


def is_nash_equilibrium(game: FabrikantGame, profile: StrategyProfile) -> bool:
    """Whether no player can lower its cost with *any* strategy change."""
    for v in range(game.n):
        current = game.player_cost(profile, v)
        _, best = exact_best_response(game, profile, v)
        if best < current:
            return False
    return True


def _greedy_deviations(game: FabrikantGame, profile: StrategyProfile, v: int):
    """Yield the add-one / drop-one / swap-one strategies of player ``v``."""
    n = game.n
    mine = profile[v]
    non_targets = [u for u in range(n) if u != v and u not in mine]
    for w in mine:  # drop one
        yield mine - {w}
    for w in non_targets:  # add one
        yield mine | {w}
    for w in mine:  # swap one
        for w2 in non_targets:
            yield (mine - {w}) | {w2}


def greedy_best_move(
    game: FabrikantGame, profile: StrategyProfile, v: int
) -> tuple[frozenset[int], float] | None:
    """Best greedy deviation of player ``v``, or ``None`` when none improves."""
    current = game.player_cost(profile, v)
    best: tuple[frozenset[int], float] | None = None
    for candidate in _greedy_deviations(game, profile, v):
        cost = game.player_cost(game.with_strategy(profile, v, candidate), v)
        if cost < current and (best is None or cost < best[1]):
            best = (candidate, cost)
    return best


def is_greedy_equilibrium(game: FabrikantGame, profile: StrategyProfile) -> bool:
    """Whether no add-one/drop-one/swap-one deviation improves any player."""
    return all(
        greedy_best_move(game, profile, v) is None for v in range(game.n)
    )


@dataclass
class GreedyDynamicsResult:
    """Outcome of greedy better-response dynamics in the α-game."""

    profile: StrategyProfile
    converged: bool
    steps: int


def greedy_dynamics(
    game: FabrikantGame,
    initial: StrategyProfile,
    max_steps: int = 5_000,
    seed=None,
) -> GreedyDynamicsResult:
    """Round-robin greedy better-response until no player moves.

    Deterministic given the seed (used only to randomize the round-robin
    starting offset, decorrelating replicate runs).
    """
    rng = make_rng(seed)
    profile = game.normalize(initial)
    n = game.n
    offset = int(rng.integers(0, n))
    steps = 0
    quiet = 0
    idx = 0
    while steps < max_steps and quiet < n:
        v = (offset + idx) % n
        idx += 1
        move = greedy_best_move(game, profile, v)
        if move is None:
            quiet += 1
            continue
        quiet = 0
        profile = game.with_strategy(profile, v, move[0])
        steps += 1
    return GreedyDynamicsResult(profile, quiet >= n, steps)
