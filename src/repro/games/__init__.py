"""The α-parameterized network creation games the paper generalizes."""

from .fabrikant import (
    FabrikantGame,
    StrategyProfile,
    profile_from_graph,
    random_profile,
)
from .nash import (
    EXACT_NASH_MAX_N,
    GreedyDynamicsResult,
    exact_best_response,
    greedy_best_move,
    greedy_dynamics,
    is_greedy_equilibrium,
    is_nash_equilibrium,
)
from .social import (
    alpha_social_cost,
    alpha_social_optimum,
    clique_social_cost,
    poa_diameter_ratio,
    price_of_anarchy_alpha,
    star_plus_matching_graph,
    star_social_cost,
    usage_optimum_same_budget,
    usage_social_cost,
)
from .transfer import TransferRecord, owner_swap_stable, transfer_sweep

__all__ = [
    "EXACT_NASH_MAX_N",
    "FabrikantGame",
    "GreedyDynamicsResult",
    "StrategyProfile",
    "TransferRecord",
    "alpha_social_cost",
    "alpha_social_optimum",
    "clique_social_cost",
    "exact_best_response",
    "greedy_best_move",
    "greedy_dynamics",
    "is_greedy_equilibrium",
    "is_nash_equilibrium",
    "owner_swap_stable",
    "poa_diameter_ratio",
    "price_of_anarchy_alpha",
    "profile_from_graph",
    "random_profile",
    "star_plus_matching_graph",
    "star_social_cost",
    "transfer_sweep",
    "usage_optimum_same_budget",
    "usage_social_cost",
]
