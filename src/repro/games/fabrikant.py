"""The classical α-parameterized network creation game (Fabrikant et al.).

The paper's foil: each player ``v`` chooses a set of *bought* edges to other
vertices and pays ``α`` per bought edge plus its usage cost (sum of
distances) in the union graph.  All the behaviour the paper criticizes lives
here — the α-dependence of equilibria, and the NP-completeness of best
response (our exact checker enumerates strategies, exponential by necessity;
the *greedy* restricted moves in :mod:`repro.games.nash` are the
computationally-bounded alternative the paper argues for).

A strategy profile is a tuple of frozensets ``bought[v] ⊆ V \\ {v}``; the
induced graph is the union of all bought edges (both directions collapse to
one undirected edge; a doubly-bought edge costs each buyer separately, which
follows the standard model and never survives best response).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from ..errors import ConfigurationError, GraphError
from ..graphs import CSRGraph, bfs_aggregates
from ..rng import make_rng

__all__ = ["StrategyProfile", "FabrikantGame", "random_profile", "profile_from_graph"]

StrategyProfile = tuple[frozenset[int], ...]


def _validate_profile(n: int, profile: Sequence[Iterable[int]]) -> StrategyProfile:
    if len(profile) != n:
        raise ConfigurationError(
            f"profile has {len(profile)} strategies for n={n} players"
        )
    out = []
    for v, bought in enumerate(profile):
        s = frozenset(int(x) for x in bought)
        if v in s:
            raise ConfigurationError(f"player {v} buys a self-loop")
        if any(not 0 <= x < n for x in s):
            raise ConfigurationError(f"player {v} buys an out-of-range edge")
        out.append(s)
    return tuple(out)


class FabrikantGame:
    """The sum-version α-game on ``n`` players.

    Parameters
    ----------
    n:
        Number of players/vertices.
    alpha:
        Per-edge creation cost (the parameter the basic game removes).
    """

    def __init__(self, n: int, alpha: float):
        if n < 1:
            raise ConfigurationError(f"need n >= 1 players, got {n}")
        if alpha < 0:
            raise ConfigurationError(f"alpha must be non-negative, got {alpha}")
        self.n = int(n)
        self.alpha = float(alpha)

    # ------------------------------------------------------------------
    def normalize(self, profile: Sequence[Iterable[int]]) -> StrategyProfile:
        """Validate and freeze a profile."""
        return _validate_profile(self.n, profile)

    def graph_of(self, profile: StrategyProfile) -> CSRGraph:
        """The undirected union graph of all bought edges."""
        edges = set()
        for v, bought in enumerate(profile):
            for w in bought:
                edges.add((v, w) if v < w else (w, v))
        return CSRGraph(self.n, edges)

    def player_cost(
        self,
        profile: StrategyProfile,
        v: int,
        graph: CSRGraph | None = None,
    ) -> float:
        """``α · |bought_v| + Σ_u d(v, u)`` (``inf`` when ``v`` is cut off)."""
        if graph is None:
            graph = self.graph_of(profile)
        total, _, reached = bfs_aggregates(graph, v)
        if reached < self.n:
            return math.inf
        return self.alpha * len(profile[v]) + float(total)

    def total_cost(self, profile: StrategyProfile) -> float:
        """Sum of all player costs — the α-game's social cost.

        Equals ``α · (#bought edges, with multiplicity) + Σ_{u,v} d(u,v)``.
        """
        graph = self.graph_of(profile)
        return sum(
            self.player_cost(profile, v, graph) for v in range(self.n)
        )

    def with_strategy(
        self, profile: StrategyProfile, v: int, strategy: Iterable[int]
    ) -> StrategyProfile:
        """Profile with player ``v``'s strategy replaced (validated)."""
        updated = list(profile)
        updated[v] = frozenset(int(x) for x in strategy)
        return self.normalize(updated)


def profile_from_graph(graph: CSRGraph, owners: dict[tuple[int, int], int] | None = None) -> StrategyProfile:
    """A profile realizing ``graph`` with each edge bought by one endpoint.

    ``owners`` maps canonical edges to the buying endpoint; by default the
    smaller endpoint buys (deterministic, good enough for cost accounting
    since ownership does not affect the union graph).
    """
    n = graph.n
    bought: list[set[int]] = [set() for _ in range(n)]
    for u, v in graph.iter_edges():
        owner = u
        if owners is not None:
            owner = owners.get((u, v), u)
            if owner not in (u, v):
                raise GraphError(
                    f"owner {owner} of edge ({u},{v}) is not an endpoint"
                )
        other = v if owner == u else u
        bought[owner].add(other)
    return tuple(frozenset(s) for s in bought)


def random_profile(n: int, edges_per_player: int, seed=None) -> StrategyProfile:
    """Random initial profile: each player buys ``edges_per_player`` targets."""
    if edges_per_player < 0 or edges_per_player > n - 1:
        raise ConfigurationError(
            f"edges_per_player must be in [0, {n - 1}], got {edges_per_player}"
        )
    rng = make_rng(seed)
    profile = []
    for v in range(n):
        others = np.asarray([u for u in range(n) if u != v])
        pick = rng.choice(others, size=edges_per_player, replace=False)
        profile.append(frozenset(int(x) for x in pick))
    return tuple(profile)
