"""Small-world metrics for equilibrium graphs.

The paper motivates its diameter question as "a first step toward
understanding the structure of equilibria, in particular suggesting the
emergence of a small-world phenomenon."  These metrics make the suggestion
measurable on the equilibria the library produces: characteristic path
length L (small-world: ≈ random-graph L ~ ln n / ln k̄) and clustering
coefficient C (small-world: ≫ random-graph C ~ k̄/n).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DisconnectedGraphError
from ..graphs import CSRGraph, average_distance, is_connected

__all__ = ["SmallWorldReport", "clustering_coefficient", "small_world_report"]


def clustering_coefficient(graph: CSRGraph) -> float:
    """Mean local clustering coefficient (vertices of degree < 2 count 0).

    For each vertex, the fraction of neighbour pairs that are themselves
    adjacent; triangles are counted with a set-intersection sweep —
    O(Σ deg²) — fine at library scales.
    """
    n = graph.n
    if n == 0:
        return 0.0
    adjacency = [set(int(x) for x in graph.neighbors(v)) for v in range(n)]
    total = 0.0
    for v in range(n):
        nbrs = sorted(adjacency[v])
        k = len(nbrs)
        if k < 2:
            continue
        links = 0
        for i, a in enumerate(nbrs):
            links += sum(1 for b in nbrs[i + 1 :] if b in adjacency[a])
        total += 2.0 * links / (k * (k - 1))
    return total / n


@dataclass(frozen=True, slots=True)
class SmallWorldReport:
    """L, C, and their random-graph baselines for one graph.

    ``sigma``-style index: (C / C_rand) / (L / L_rand); values ≫ 1 indicate
    small-world structure (high clustering at near-random path lengths).
    Baselines use the standard Erdős–Rényi approximations at the same n and
    mean degree; degenerate baselines (mean degree ≤ 1) yield ``nan``.
    """

    n: int
    mean_degree: float
    path_length: float
    clustering: float
    random_path_length: float
    random_clustering: float
    sigma: float


def small_world_report(graph: CSRGraph) -> SmallWorldReport:
    """Compute the small-world diagnostics of a connected graph."""
    if not is_connected(graph):
        raise DisconnectedGraphError("small-world metrics need connectivity")
    n = graph.n
    kbar = 2.0 * graph.m / n if n else 0.0
    L = average_distance(graph)
    C = clustering_coefficient(graph)
    if kbar > 1.0 and n > 1:
        L_rand = float(np.log(n) / np.log(kbar))
        C_rand = kbar / n
    else:
        L_rand = float("nan")
        C_rand = float("nan")
    if L > 0 and L_rand == L_rand and C_rand and C_rand > 0:
        sigma = (C / C_rand) / (L / L_rand)
    else:
        sigma = float("nan")
    return SmallWorldReport(
        n=n,
        mean_degree=kbar,
        path_length=L,
        clustering=C,
        random_path_length=L_rand,
        random_clustering=C_rand,
        sigma=sigma,
    )
