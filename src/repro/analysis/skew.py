"""Skew triples — the counting tool inside Theorem 13's proof.

The proof calls an ordered vertex triple ``(a, b, c)`` **skew** when
``d(a, c) > p·lg n + d(a, b)`` and shows (first claim) that in a sum
equilibrium fewer than a ``4/p`` fraction of all triples can be skew —
otherwise some vertex could profitably swap a removable edge (Lemma 10) onto
``b``.  The second claim converts "few skew triples" into "distances from
any vertex concentrate in an O(lg n)-wide interval".

We expose the machinery in both exact and sampled forms:

* :func:`skew_triple_fraction` — exact fraction, vectorized (O(n²) memory,
  so guard with sampling for n over ~2000);
* :func:`sample_skew_fraction` — unbiased estimator for big graphs;
* :func:`middle_distance_interval` — the per-vertex middle-(1−2β) distance
  interval ``[ℓ_a, u_a]`` of the second claim.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigurationError, DisconnectedGraphError
from ..graphs import CSRGraph, UNREACHABLE, distance_matrix
from ..rng import make_rng

__all__ = [
    "skew_threshold",
    "skew_triple_fraction",
    "sample_skew_fraction",
    "middle_distance_interval",
    "interval_widths",
]


def skew_threshold(n: int, p: float) -> float:
    """The paper's threshold ``p · lg n`` (lg = log base 2)."""
    if n < 2:
        return 0.0
    return p * math.log2(n)


def skew_triple_fraction(
    graph: CSRGraph, p: float, dm: np.ndarray | None = None
) -> float:
    """Exact fraction of ordered triples ``(a, b, c)`` that are skew.

    A triple is skew when ``d(a, c) > p lg n + d(a, b)``; the count is
    ``Σ_a Σ_t (#{b : d(a,b) < t_a - …})`` — computed per anchor ``a`` by
    sorting its distance row once, so the total cost is O(n² log n) and no
    n³ loop materializes.
    """
    n = graph.n
    if n < 3:
        return 0.0
    if dm is None:
        dm = distance_matrix(graph)
    if (dm == UNREACHABLE).any():
        raise DisconnectedGraphError("skew triples of a disconnected graph")
    thresh = skew_threshold(n, p)
    total = 0
    for a in range(n):
        row = np.delete(dm[a], a).astype(np.float64)
        row.sort()
        # For each c, count b with d(a,b) < d(a,c) - thresh; pairs (b, c)
        # with b == c cannot occur since that needs thresh < 0.
        cutoffs = row - thresh
        counts = np.searchsorted(row, cutoffs, side="left")
        total += int(counts.sum())
    return total / (n * (n - 1) * (n - 2))


def sample_skew_fraction(
    graph: CSRGraph,
    p: float,
    samples: int = 20_000,
    seed=None,
    dm: np.ndarray | None = None,
) -> float:
    """Monte-Carlo estimate of the skew fraction (for large graphs)."""
    n = graph.n
    if n < 3:
        return 0.0
    if dm is None:
        dm = distance_matrix(graph)
    if (dm == UNREACHABLE).any():
        raise DisconnectedGraphError("skew triples of a disconnected graph")
    rng = make_rng(seed)
    thresh = skew_threshold(n, p)
    hits = 0
    done = 0
    while done < samples:
        batch = min(samples - done, 65536)
        a = rng.integers(0, n, batch)
        b = rng.integers(0, n, batch)
        c = rng.integers(0, n, batch)
        distinct = (a != b) & (b != c) & (a != c)
        a, b, c = a[distinct], b[distinct], c[distinct]
        hits += int((dm[a, c] > thresh + dm[a, b]).sum())
        done += int(distinct.sum())
    return hits / max(done, 1)


def middle_distance_interval(
    graph: CSRGraph, a: int, beta: float, dm: np.ndarray | None = None
) -> tuple[int, int]:
    """``[ℓ_a, u_a]``: distances of the middle ``(1 - 2β) n`` vertices from ``a``.

    Drops the nearest ``⌊βn⌋`` and farthest ``⌊βn⌋`` vertices (the paper's
    trimming) and returns the min and max of what remains.
    """
    if not 0 <= beta < 0.5:
        raise ConfigurationError(f"beta must be in [0, 0.5), got {beta}")
    if dm is None:
        dm = distance_matrix(graph)
    if (dm == UNREACHABLE).any():
        raise DisconnectedGraphError("distance interval of a disconnected graph")
    n = graph.n
    row = np.sort(np.delete(dm[a], a))
    k = int(beta * n)
    trimmed = row[k : row.size - k] if row.size > 2 * k else row
    if trimmed.size == 0:
        trimmed = row
    return int(trimmed[0]), int(trimmed[-1])


def interval_widths(
    graph: CSRGraph, beta: float, dm: np.ndarray | None = None
) -> np.ndarray:
    """Widths ``u_a - ℓ_a`` for every anchor ``a`` (Theorem 13's second claim).

    In a sum equilibrium these widths are O(lg n); the uniformity bench
    reports the max width against ``2 p lg n``.
    """
    if dm is None:
        dm = distance_matrix(graph)
    n = graph.n
    widths = np.empty(n, dtype=np.int64)
    for a in range(n):
        lo, hi = middle_distance_interval(graph, a, beta, dm)
        widths[a] = hi - lo
    return widths
