"""Dynamics trajectory analysis.

The sum version of the basic game is **not a potential game**: an improving
swap lowers the mover's sum of distances but can raise other vertices' —
and therefore the social cost.  (This is why the paper's equilibria need
direct structural arguments rather than potential-function ones, and why the
dynamics engine carries cycle detection.)  These helpers quantify that on
recorded runs: how often society lost while an agent won, how much diameter
moved, and whether the trajectory was socially monotone.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass

from ..core.dynamics import DynamicsResult
from ..errors import ConfigurationError

__all__ = ["TrajectorySummary", "summarize_trajectory"]


@dataclass(frozen=True, slots=True)
class TrajectorySummary:
    """Aggregates of one recorded dynamics run.

    Attributes
    ----------
    steps:
        Applied improving moves.
    social_cost_initial / social_cost_final:
        Endpoints of the social-cost trace.
    selfish_regressions:
        Steps where the *social* cost strictly increased even though the
        mover improved — the non-potential signature.
    max_social_cost_increase:
        Largest single-step social-cost increase (0 when monotone).
    socially_monotone:
        No regressions anywhere in the run.
    diameter_initial / diameter_final / diameter_peak:
        Diameter endpoints and the worst diameter visited en route (the
        trajectory can transiently exceed both endpoints).
    """

    steps: int
    social_cost_initial: float
    social_cost_final: float
    selfish_regressions: int
    max_social_cost_increase: float
    socially_monotone: bool
    diameter_initial: float
    diameter_final: float
    diameter_peak: float

    def as_dict(self) -> dict:
        """Field dict (the trajectory census embeds these in its records)."""
        return asdict(self)


def summarize_trajectory(result: DynamicsResult) -> TrajectorySummary:
    """Summarize a dynamics run executed with ``record=True``."""
    costs = result.social_cost_trace
    diams = result.diameter_trace
    if not costs or not diams:
        raise ConfigurationError(
            "trajectory analysis needs a run recorded with record=True"
        )
    regressions = 0
    worst_jump = 0.0
    for before, after in zip(costs, costs[1:]):
        if after > before:
            regressions += 1
            worst_jump = max(worst_jump, after - before)
    return TrajectorySummary(
        steps=result.steps,
        social_cost_initial=float(costs[0]),
        social_cost_final=float(costs[-1]),
        selfish_regressions=regressions,
        max_social_cost_increase=worst_jump,
        socially_monotone=regressions == 0,
        diameter_initial=float(diams[0]),
        diameter_final=float(diams[-1]),
        diameter_peak=float(max(diams)),
    )
