"""Distance uniformity — the Section 5 definitions, measurable exactly.

The paper calls an n-vertex graph **ε-distance-uniform** when some radius
``r`` has, *for every vertex v*, at least ``(1-ε) n`` vertices at distance
exactly ``r`` from ``v``; and **ε-distance-almost-uniform** when distances
``r`` or ``r+1`` together cover ``(1-ε) n`` from every vertex.

Both definitions quantify over vertices, and the paper stresses (after
Conjecture 14) that the per-vertex quantifier is essential: concentrating
almost all *pairs* at one distance is strictly weaker (the spider
counterexample).  We therefore expose both the per-vertex measurements and
the pairwise one, so the ``conj14-counterexample`` experiment can display the
separation.

All quantities are exact, computed from the distance matrix by one
``bincount`` per vertex (vectorized into a single pass).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DisconnectedGraphError
from ..graphs import CSRGraph, UNREACHABLE, distance_matrix

__all__ = [
    "UniformityReport",
    "per_vertex_distance_counts",
    "distance_uniformity",
    "distance_almost_uniformity",
    "pairwise_concentration",
]


@dataclass(frozen=True, slots=True)
class UniformityReport:
    """Best-achievable uniformity of a graph.

    ``epsilon`` is the *smallest* ε for which the graph is ε-distance-
    (almost-)uniform, achieved at radius ``radius`` (for the almost version,
    distances ``radius`` and ``radius + 1``).  ``worst_vertex`` attains the
    minimum coverage.
    """

    epsilon: float
    radius: int
    worst_vertex: int
    almost: bool


def per_vertex_distance_counts(
    graph: CSRGraph, dm: np.ndarray | None = None
) -> np.ndarray:
    """Matrix ``counts[v, k] = #{u : d(v, u) = k}`` (including ``k = 0``).

    Shape is ``(n, diameter + 1)``.  Requires connectivity.
    """
    if dm is None:
        dm = distance_matrix(graph)
    if (dm == UNREACHABLE).any():
        raise DisconnectedGraphError("distance counts of a disconnected graph")
    n = graph.n
    diam = int(dm.max()) if n else 0
    width = diam + 1
    # One global bincount over row-offset distances does all vertices at once.
    offsets = (np.arange(n, dtype=np.int64) * width)[:, None]
    flat = (dm.astype(np.int64) + offsets).ravel()
    counts = np.bincount(flat, minlength=n * width).reshape(n, width)
    return counts


def distance_uniformity(
    graph: CSRGraph, dm: np.ndarray | None = None
) -> UniformityReport:
    """The minimal ε such that the graph is ε-distance-uniform.

    For each candidate radius ``r`` the coverage of vertex ``v`` is
    ``counts[v, r] / n``; the report takes the radius maximizing the minimum
    coverage over vertices.
    """
    n = graph.n
    if n == 0:
        raise DisconnectedGraphError("uniformity of the empty graph")
    counts = per_vertex_distance_counts(graph, dm)
    # Exclude r=0 (the trivial self-distance) from candidate radii unless
    # n == 1, where r=0 is all there is.
    if counts.shape[1] == 1:
        return UniformityReport(0.0, 0, 0, almost=False)
    per_radius_min = counts[:, 1:].min(axis=0)  # min over vertices, per r
    best_r = int(np.argmax(per_radius_min)) + 1
    worst_vertex = int(np.argmin(counts[:, best_r]))
    eps = 1.0 - per_radius_min[best_r - 1] / n
    return UniformityReport(float(eps), best_r, worst_vertex, almost=False)


def distance_almost_uniformity(
    graph: CSRGraph, dm: np.ndarray | None = None
) -> UniformityReport:
    """The minimal ε such that the graph is ε-distance-*almost*-uniform.

    Coverage of radius ``r`` is the mass at distances ``r`` and ``r + 1``.
    """
    n = graph.n
    if n == 0:
        raise DisconnectedGraphError("uniformity of the empty graph")
    counts = per_vertex_distance_counts(graph, dm)
    if counts.shape[1] == 1:
        return UniformityReport(0.0, 0, 0, almost=True)
    padded = np.concatenate(
        [counts, np.zeros((n, 1), dtype=counts.dtype)], axis=1
    )
    window = padded[:, 1:-1] + padded[:, 2:]  # mass at {r, r+1} for r >= 1
    if window.shape[1] == 0:
        window = counts[:, 1:2]
    per_radius_min = window.min(axis=0)
    best_r = int(np.argmax(per_radius_min)) + 1
    worst_vertex = int(np.argmin(window[:, best_r - 1]))
    eps = 1.0 - per_radius_min[best_r - 1] / n
    return UniformityReport(float(eps), best_r, worst_vertex, almost=True)


def pairwise_concentration(
    graph: CSRGraph, dm: np.ndarray | None = None
) -> tuple[int, float]:
    """The *pairwise* (weaker) notion: the modal distance and its pair-fraction.

    Returns ``(r, fraction)`` where ``fraction`` of all ordered distinct
    pairs lie at distance exactly ``r``.  The spider construction drives
    this fraction toward 1 while per-vertex uniformity stays poor — the
    separation the paper's per-vertex definition exists to avoid.
    """
    if dm is None:
        dm = distance_matrix(graph)
    if (dm == UNREACHABLE).any():
        raise DisconnectedGraphError("concentration of a disconnected graph")
    n = graph.n
    if n <= 1:
        return 0, 1.0
    hist = np.bincount(dm.ravel())
    hist[0] = 0  # drop the diagonal
    r = int(np.argmax(hist))
    return r, float(hist[r]) / (n * (n - 1))
