"""Analysis layer: distance uniformity, skew triples, sumsets, bound curves."""

from .bounds import (
    conjectured_polylog_bound,
    corollary11_gain_bound,
    lemma10_removal_bound,
    theorem9_diameter_bound,
    theorem12_lower_bound,
    theorem12_tradeoff_bound,
    theorem13_almost_uniform_diameter,
    theorem13_uniform_diameter,
    theorem15_diameter_bound,
)
from .smallworld import (
    SmallWorldReport,
    clustering_coefficient,
    small_world_report,
)
from .skew import (
    interval_widths,
    middle_distance_interval,
    sample_skew_fraction,
    skew_threshold,
    skew_triple_fraction,
)
from .sumsets import (
    iterated_sumset_masks,
    iterated_sumset_sizes,
    plunnecke_violations,
    theorem15_radius_bound,
)
from .trajectories import TrajectorySummary, summarize_trajectory
from .transform import Theorem13Result, suggested_p, theorem13_transform
from .uniformity import (
    UniformityReport,
    distance_almost_uniformity,
    distance_uniformity,
    pairwise_concentration,
    per_vertex_distance_counts,
)

__all__ = [
    "SmallWorldReport",
    "Theorem13Result",
    "TrajectorySummary",
    "UniformityReport",
    "clustering_coefficient",
    "small_world_report",
    "conjectured_polylog_bound",
    "corollary11_gain_bound",
    "distance_almost_uniformity",
    "distance_uniformity",
    "interval_widths",
    "iterated_sumset_masks",
    "iterated_sumset_sizes",
    "lemma10_removal_bound",
    "middle_distance_interval",
    "pairwise_concentration",
    "per_vertex_distance_counts",
    "plunnecke_violations",
    "sample_skew_fraction",
    "skew_threshold",
    "skew_triple_fraction",
    "suggested_p",
    "summarize_trajectory",
    "theorem12_lower_bound",
    "theorem12_tradeoff_bound",
    "theorem13_almost_uniform_diameter",
    "theorem13_uniform_diameter",
    "theorem15_diameter_bound",
    "theorem15_radius_bound",
    "theorem9_diameter_bound",
]
