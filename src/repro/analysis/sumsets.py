"""Iterated sumsets in Abelian groups — Theorem 15's engine.

For a symmetric connection set ``S`` in an Abelian group ``A``, the iterated
sumset ``iS = {s₁ + … + s_i : s_j ∈ S}`` is exactly the set of vertices
reachable from 0 by a walk of length ``i`` in the Cayley graph.  Theorem 15
pins the diameter of ε-distance-uniform Abelian Cayley graphs by squeezing
``|​(r−1)S| ≤ εn`` against ``|(r+1)S| ≥ (1−ε)n`` through the Plünnecke-type
inequality ``|qS| ≤ |pS|^{q/p}``.

This module computes the iterated sumsets exactly (boolean convolution over
the group, vectorized) and checks the inequality on concrete instances.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from ..constructions.cayley import AbelianGroup
from ..errors import ConfigurationError, GraphError

__all__ = [
    "iterated_sumset_sizes",
    "iterated_sumset_masks",
    "plunnecke_violations",
    "theorem15_radius_bound",
]


def _connection_mask(group: AbelianGroup, connection: Iterable[Sequence[int]]) -> np.ndarray:
    mask = np.zeros(group.order, dtype=bool)
    for s in connection:
        mask[group.index(s)] = True
    zero = (0,) * group.k
    if mask[group.index(zero)]:
        raise GraphError("connection set must not contain 0")
    return mask


def iterated_sumset_masks(
    group: AbelianGroup,
    connection: Iterable[Sequence[int]],
    up_to: int,
) -> list[np.ndarray]:
    """Boolean membership masks of ``iS`` for ``i = 1 .. up_to``.

    Each step convolves the previous mask with ``S``: vectorized as one
    roll-accumulate per generator over the mixed-radix index space, i.e.
    O(|S| · n) per level — fine for the n ≤ 4096 instances of the bench.
    """
    if up_to < 1:
        raise GraphError(f"up_to must be >= 1, got {up_to}")
    conn_elems = [group.reduce(s) for s in connection]
    s_mask = _connection_mask(group, conn_elems)
    shape = group.moduli
    masks: list[np.ndarray] = []
    current = s_mask.reshape(shape)
    masks.append(current.copy().ravel())
    for _ in range(1, up_to):
        nxt = np.zeros(shape, dtype=bool)
        for s in conn_elems:
            rolled = current
            for axis, shift in enumerate(s):
                if shift % shape[axis]:
                    rolled = np.roll(rolled, shift % shape[axis], axis=axis)
            nxt |= rolled
        current = nxt
        masks.append(current.copy().ravel())
    return masks


def iterated_sumset_sizes(
    group: AbelianGroup,
    connection: Iterable[Sequence[int]],
    up_to: int,
) -> np.ndarray:
    """``|iS|`` for ``i = 1 .. up_to`` (int64 array)."""
    masks = iterated_sumset_masks(group, connection, up_to)
    return np.asarray([int(m.sum()) for m in masks], dtype=np.int64)


def plunnecke_violations(sizes: np.ndarray) -> list[tuple[int, int]]:
    """All ``(p, q)`` pairs with ``q > p`` violating ``|qS| ≤ |pS|^{q/p}``.

    An empty list is the expected outcome (the inequality is a theorem); the
    check exists so the Theorem 15 bench can *demonstrate* the ingredient on
    every instance it touches rather than assume it.
    """
    out: list[tuple[int, int]] = []
    k = len(sizes)
    for p in range(1, k + 1):
        sp = float(sizes[p - 1])
        if sp <= 0:
            continue
        for q in range(p + 1, k + 1):
            bound = sp ** (q / p)
            # Tolerate float representation error on the huge powers.
            if float(sizes[q - 1]) > bound * (1 + 1e-9):
                out.append((p, q))
    return out


def theorem15_radius_bound(n: int, epsilon: float) -> float:
    """The paper's radius bound ``r ≤ O(lg n / lg(1/ε))``, explicit form.

    From ``lg((1-ε)/ε) ≤ (2/(r-1)) lg n`` the proof gives
    ``r ≤ 1 + 2 lg n / lg((1-ε)/ε)`` and diameter ``≤ 2r + 2``; we return
    the radius bound (the bench applies the final doubling itself).
    """
    if not 0 < epsilon < 0.5:
        raise ConfigurationError(f"epsilon must be in (0, 0.5), got {epsilon}")
    if n < 2:
        return 1.0
    return 1.0 + 2.0 * math.log2(n) / math.log2((1 - epsilon) / epsilon)
