"""The Theorem 13 pipeline: equilibrium → distance-(almost-)uniform graph.

Theorem 13 takes a sum equilibrium ``G`` with ``n ≥ 24`` vertices and
diameter ``d > 2 lg n`` and produces

* an ε-distance-**almost**-uniform power graph ``G^x`` with
  ``x = 2p lg n + 1`` and diameter ``Θ(ε d / lg n)``, and
* an ε-distance-**uniform** power graph using an ``x = O(lg² n)`` chosen so
  no multiple of ``x`` lands in the distance interval ``D ± 2p lg n``
  (collapsing the two residual distances ``r, r+1`` into one).

The pipeline below implements the construction *unconditionally* (it applies
to any connected graph); the equilibrium hypothesis is what *guarantees* the
distance-interval premise, and the experiment records how far each input
satisfies it.  No high-diameter sum equilibrium is known (the paper
conjectures none exists beyond polylog), so the ``thm13-uniformity`` bench
exercises the pipeline on the max-equilibrium torus and on census equilibria,
as declared in DESIGN.md's substitution table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, DisconnectedGraphError, GraphError
from ..graphs import CSRGraph, UNREACHABLE, distance_matrix
from ..graphs.power import power_distance_matrix
from ..theory.primes import interval_avoidance_bound, multiple_free_modulus
from .uniformity import UniformityReport

__all__ = ["Theorem13Result", "theorem13_transform", "suggested_p"]


def suggested_p(beta: float) -> float:
    """The constant the proof needs: ``p ≥ 8/β`` covers both claims."""
    if not 0 < beta < 0.5:
        raise ConfigurationError(f"beta must be in (0, 0.5), got {beta}")
    return 8.0 / beta


@dataclass(frozen=True, slots=True)
class Theorem13Result:
    """Everything the Theorem 13 construction produced for one input graph."""

    n: int
    input_diameter: int
    meets_diameter_premise: bool
    #: The almost-uniform branch: x = 2 p lg n + 1 (rounded to >= 1).
    almost_power: int
    almost_diameter: int
    almost_report: UniformityReport
    #: The uniform branch: multiple-free x = O(lg^2 n).
    uniform_power: int
    uniform_power_within_bound: bool
    uniform_diameter: int
    uniform_report: UniformityReport


def _power_diameter(dm_pow: np.ndarray) -> int:
    return int(dm_pow.max())


def theorem13_transform(
    graph: CSRGraph,
    beta: float = 0.125,
    p: float | None = None,
) -> Theorem13Result:
    """Run both branches of the Theorem 13 construction on ``graph``.

    Parameters
    ----------
    beta:
        The trimming fraction of the proof's second claim; the resulting
        uniformity parameter is ε = 6β.
    p:
        The skew-threshold constant; defaults to :func:`suggested_p`.

    Returns the powers used, the diameters of the power graphs, and their
    measured (almost-)uniformity reports — the quantities EXPERIMENTS.md
    tabulates against ``Θ(ε d / lg n)`` and ``Θ(ε d / lg² n)``.
    """
    n = graph.n
    if n < 2:
        raise GraphError("Theorem 13 transform needs n >= 2")
    dm = distance_matrix(graph)
    if (dm == UNREACHABLE).any():
        raise DisconnectedGraphError("Theorem 13 transform needs connectivity")
    if p is None:
        p = suggested_p(beta)
    lg = math.log2(n)
    d = int(dm.max())
    meets_premise = n >= 24 and d > 2 * lg

    # Branch 1: almost-uniform via x = 2 p lg n + 1.
    x_almost = max(1, int(round(2 * p * lg + 1)))
    dm_almost = power_distance_matrix(graph, x_almost, dm)
    # Measure uniformity on the *power graph* distances.
    almost_report = _report_from_power(dm_almost, almost=True)

    # Branch 2: uniform via a multiple-free modulus around the distance
    # interval D ± 2 p lg n, where D is the median middle distance.
    center = _central_distance(dm)
    half_width = int(math.ceil(2 * p * lg))
    lo = max(1, center - half_width)
    hi = max(lo, center + half_width)
    bound = interval_avoidance_bound(n)
    try:
        x_uniform = multiple_free_modulus(lo, hi, limit=max(bound, hi + 1))
    except ValueError:  # pragma: no cover - cap is always sufficient
        x_uniform = hi + 1
    dm_uniform = power_distance_matrix(graph, x_uniform, dm)
    uniform_report = _report_from_power(dm_uniform, almost=False)

    return Theorem13Result(
        n=n,
        input_diameter=d,
        meets_diameter_premise=meets_premise,
        almost_power=x_almost,
        almost_diameter=_power_diameter(dm_almost),
        almost_report=almost_report,
        uniform_power=x_uniform,
        uniform_power_within_bound=x_uniform <= bound,
        uniform_diameter=_power_diameter(dm_uniform),
        uniform_report=uniform_report,
    )


def _central_distance(dm: np.ndarray) -> int:
    """Median off-diagonal distance — the interval center ``D`` of the proof."""
    n = dm.shape[0]
    off = dm[~np.eye(n, dtype=bool)]
    return int(np.median(off))


def _report_from_power(dm_pow: np.ndarray, almost: bool) -> UniformityReport:
    """Uniformity report computed directly from power-graph distances."""
    n = dm_pow.shape[0]
    diam = int(dm_pow.max()) if n else 0
    width = diam + 1
    offsets = (np.arange(n, dtype=np.int64) * width)[:, None]
    counts = np.bincount(
        (dm_pow.astype(np.int64) + offsets).ravel(), minlength=n * width
    ).reshape(n, width)
    if width == 1:
        return UniformityReport(0.0, 0, 0, almost=almost)
    if almost:
        padded = np.concatenate(
            [counts, np.zeros((n, 1), dtype=counts.dtype)], axis=1
        )
        window = padded[:, 1:-1] + padded[:, 2:]
        if window.shape[1] == 0:
            window = counts[:, 1:2]
        per_radius_min = window.min(axis=0)
        best_r = int(np.argmax(per_radius_min)) + 1
        worst = int(np.argmin(window[:, best_r - 1]))
        eps = 1.0 - per_radius_min[best_r - 1] / n
        return UniformityReport(float(eps), best_r, worst, almost=True)
    per_radius_min = counts[:, 1:].min(axis=0)
    best_r = int(np.argmax(per_radius_min)) + 1
    worst = int(np.argmin(counts[:, best_r]))
    eps = 1.0 - per_radius_min[best_r - 1] / n
    return UniformityReport(float(eps), best_r, worst, almost=False)
