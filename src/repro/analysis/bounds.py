"""Closed-form bound curves from the paper, for tables and comparisons.

Asymptotic statements can't be "checked" at one n, but every experiment
reports measured values *next to* the corresponding curve so the shape
comparison (who grows how fast, where crossings occur) is visible in the
output tables.  Constants are explicit and documented; where the paper gives
only an order, the constant is 1 unless the proof pins one down.
"""

from __future__ import annotations

import math
from ..errors import ConfigurationError

__all__ = [
    "theorem9_diameter_bound",
    "conjectured_polylog_bound",
    "theorem12_lower_bound",
    "theorem12_tradeoff_bound",
    "theorem13_almost_uniform_diameter",
    "theorem13_uniform_diameter",
    "theorem15_diameter_bound",
    "corollary11_gain_bound",
    "lemma10_removal_bound",
]


def theorem9_diameter_bound(n: int, c: float = 2.0) -> float:
    """Theorem 9: sum equilibria have diameter ``2^{O(√lg n)}``.

    Returned as ``2^{c √lg n}``; the census compares its measured maxima to
    this curve (and to the polylog conjecture's) to display the gap.
    """
    if n < 2:
        return 1.0
    return 2.0 ** (c * math.sqrt(math.log2(n)))


def conjectured_polylog_bound(n: int, power: float = 2.0, c: float = 1.0) -> float:
    """The conjectured ``O(lg^power n)`` diameter (power 2 if Conjecture 14 holds)."""
    if n < 2:
        return 1.0
    return c * math.log2(n) ** power


def theorem12_lower_bound(n: int) -> float:
    """Theorem 12: max equilibria of diameter ``Θ(√n)`` exist — ``√(n/2)``.

    The torus on ``n = 2k²`` vertices has diameter exactly ``k = √(n/2)``,
    so the constant here is exact for the construction.
    """
    return math.sqrt(n / 2.0)


def theorem12_tradeoff_bound(n: int, k: int) -> float:
    """The k-insertion trade-off ``Ω(n^{1/(k+1)})``: ``(n/2)^{1/(k+1)}``.

    The d-dimensional torus with ``d = k + 1`` has diameter
    ``(n/2)^{1/d}`` and is stable under ``k = d − 1`` insertions.
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    return (n / 2.0) ** (1.0 / (k + 1))


def theorem13_almost_uniform_diameter(eps: float, d: int, n: int) -> float:
    """Theorem 13: the almost-uniform power graph has diameter ``Θ(ε d / lg n)``."""
    if n < 2:
        return float(d)
    return eps * d / math.log2(n)


def theorem13_uniform_diameter(eps: float, d: int, n: int) -> float:
    """Theorem 13: the uniform power graph has diameter ``Θ(ε d / lg² n)``."""
    if n < 2:
        return float(d)
    return eps * d / (math.log2(n) ** 2)


def theorem15_diameter_bound(n: int, epsilon: float) -> float:
    """Theorem 15's diameter bound ``2r + 2`` with ``r = 1 + 2 lg n / lg((1-ε)/ε)``."""
    if not 0 < epsilon < 0.5:
        raise ConfigurationError(f"epsilon must be in (0, 0.5), got {epsilon}")
    if n < 2:
        return 2.0
    r = 1.0 + 2.0 * math.log2(n) / math.log2((1 - epsilon) / epsilon)
    return 2.0 * r + 2.0


def corollary11_gain_bound(n: int) -> float:
    """Corollary 11: adding one edge gains the endpoint at most ``5 n lg n``."""
    if n < 2:
        return 0.0
    return 5.0 * n * math.log2(n)


def lemma10_removal_bound(n: int) -> float:
    """Lemma 10: the removable edge costs its endpoint at most ``2n(1 + lg n)``."""
    if n < 2:
        return 0.0
    return 2.0 * n * (1.0 + math.log2(n))
