"""Seeding discipline for reproducible experiments.

All randomness in the library flows through :class:`numpy.random.Generator`
objects created here.  Public APIs accept ``seed`` arguments that may be

* ``None`` — fresh OS entropy (interactive use only; experiments always pass
  explicit seeds),
* an ``int`` — deterministic root seed,
* an existing ``Generator`` — used as-is (callers manage the stream).

Parallel sweeps derive *independent* child streams with
:func:`numpy.random.SeedSequence.spawn`, so a sweep's results do not depend on
worker scheduling, chunking, or the number of processes — a requirement the
hpc-parallel guides emphasise for reproducible parallel runs.
"""

from __future__ import annotations

import numpy as np
from .errors import ConfigurationError

__all__ = ["make_rng", "spawn_rngs", "derive_seed"]

SeedLike = "int | None | np.random.Generator | np.random.SeedSequence"


def make_rng(seed: "SeedLike" = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Passing an existing generator returns it unchanged so functions can be
    composed without splitting streams accidentally.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rngs(seed: "SeedLike", count: int) -> list[np.random.Generator]:
    """Spawn ``count`` statistically independent generators from ``seed``.

    Uses ``SeedSequence.spawn`` so child streams are independent regardless of
    how tasks are later distributed over processes.
    """
    if count < 0:
        raise ConfigurationError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive a root SeedSequence from the generator's own stream so that
        # repeated calls advance deterministically.
        root = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    elif isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(count)]


def derive_seed(root: int, *components: int) -> int:
    """Derive a stable 63-bit seed from a root seed and integer components.

    Used by sweeps to give every (parameter-point, replicate) pair its own
    deterministic seed: ``derive_seed(root, point_index, replicate)``.
    """
    ss = np.random.SeedSequence([root, *components])
    return int(ss.generate_state(1, dtype=np.uint64)[0] & (2**63 - 1))
