"""Command-line entry point: regenerate any experiment table.

Usage::

    python -m repro.cli list
    python -m repro.cli run fig4-torus
    python -m repro.cli run thm9-diameter-census --scale full --csv results/
    python -m repro.cli run dynamics-census            # trajectory census
    python -m repro.cli all --scale quick --csv results/
    python -m repro.cli experiment list                # registered fleets
    python -m repro.cli experiment run census --n 64   # resumable fleet
    python -m repro.cli serve --port 8642              # audit service
    python -m repro.cli lint src scripts               # contract checker

``run`` prints the tables as ASCII; ``--csv DIR`` additionally writes one
CSV per table under DIR.  ``all`` runs every experiment in DESIGN.md order.
``serve`` starts the crash-safe equilibrium-audit service (DESIGN.md §10).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from .bench import experiment_ids, run_experiment

__all__ = ["main"]


def _slug(title: str) -> str:
    out = []
    for ch in title.lower():
        if ch.isalnum():
            out.append(ch)
        elif out and out[-1] != "-":
            out.append("-")
    return "".join(out).strip("-")[:80]


def _run_one(exp_id: str, scale: str, csv_dir: "Path | None") -> None:
    start = time.perf_counter()
    tables = run_experiment(exp_id, scale)  # type: ignore[arg-type]
    elapsed = time.perf_counter() - start
    for table in tables:
        print(table.to_ascii())
        print()
        if csv_dir is not None:
            path = csv_dir / f"{exp_id}--{_slug(table.title)}.csv"
            table.write_csv(path)
            print(f"  [csv written: {path}]")
            print()
    print(f"[{exp_id} completed in {elapsed:.2f}s at scale={scale}]")


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description=(
            "Regenerate the experiments of 'Basic Network Creation Games' "
            "(SPAA 2010)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment ids")

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment", choices=experiment_ids())
    run_p.add_argument("--scale", choices=("quick", "full"), default="quick")
    run_p.add_argument("--csv", type=Path, default=None, metavar="DIR")

    all_p = sub.add_parser("all", help="run every experiment")
    all_p.add_argument("--scale", choices=("quick", "full"), default="quick")
    all_p.add_argument("--csv", type=Path, default=None, metavar="DIR")

    serve_p = sub.add_parser("serve", help="run the audit service")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=8642)
    serve_p.add_argument(
        "--cache-dir", default="results/audit_cache",
        help="result-cache root (content-addressed, crash-safe)",
    )
    serve_p.add_argument("--workers", type=int, default=2)
    serve_p.add_argument(
        "--default-timeout", type=float, default=30.0, metavar="SECONDS",
        help="per-request deadline when the request sets no timeout_s",
    )
    serve_p.add_argument(
        "--capacity", type=int, default=1,
        help="concurrent compute slots (cache hits bypass admission)",
    )
    serve_p.add_argument(
        "--queue-limit", type=int, default=8,
        help="requests allowed to wait for a slot before shedding",
    )
    serve_p.add_argument("--verbose", action="store_true")

    lint_p = sub.add_parser(
        "lint", help="run the AST contract checker (repro.lint)"
    )
    from .lint.cli import add_lint_arguments, run_lint

    add_lint_arguments(lint_p)

    from .experiments.cli import add_experiment_parser, run_experiment_command

    add_experiment_parser(sub)

    args = parser.parse_args(argv)

    if args.command == "lint":
        return run_lint(args)

    if args.command == "experiment":
        return run_experiment_command(args)

    if args.command == "list":
        for exp_id in experiment_ids():
            print(exp_id)
        return 0
    if args.command == "run":
        _run_one(args.experiment, args.scale, args.csv)
        return 0
    if args.command == "all":
        for exp_id in experiment_ids():
            _run_one(exp_id, args.scale, args.csv)
            print()
        return 0
    if args.command == "serve":
        from .service import serve

        serve(
            args.host,
            args.port,
            cache_dir=args.cache_dir,
            workers=args.workers,
            default_timeout=args.default_timeout,
            capacity=args.capacity,
            queue_limit=args.queue_limit,
            quiet=not args.verbose,
        )
        return 0
    return 2  # pragma: no cover - argparse enforces commands


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
