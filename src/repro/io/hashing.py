"""Content hashing: stable graph fingerprints for caches and censuses.

:func:`graph_fingerprint` started life inside the trajectory census
(:mod:`repro.core.trajcensus`) as the terminal-graph identity; the
equilibrium-audit service's content-addressed result cache (DESIGN.md §10)
keys on the same digest, and a cache key must not import the census layer —
so the function lives here, at the bottom of the io stack, and the census
re-exports it.

Stability is the whole point: fingerprints are **persisted** — in trajectory
JSONL records and as result-cache keys on disk — so the digest algorithm is
frozen.  ``tests/io/test_hashing.py`` pins known fingerprints; any change
that shifts them is a cache/census-breaking format change and must bump the
consumers' format versions, not silently re-key the world.
"""

from __future__ import annotations

import hashlib

__all__ = ["graph_fingerprint"]


def graph_fingerprint(graph) -> str:
    """Stable hex digest of ``(n, edge set)`` — the library's graph identity.

    Label-sensitive on purpose: two graphs share a fingerprint iff they are
    the *same labelled graph* (the equality the dynamics cycle detector also
    uses), which is what makes "k distinct terminal equilibria" a meaningful
    aggregate over a trajectory dataset and what lets the audit service
    cache answers per labelled instance.

    ``graph`` is anything with ``.n`` and ``.iter_edges()`` (a
    :class:`~repro.graphs.CSRGraph`); the digest is the first 16 hex chars
    of SHA-256 over ``"n|a1,b1;a2,b2;..."`` with edges normalized to
    ``(min, max)`` and sorted.  **Frozen format** — see the module
    docstring.
    """
    edges = sorted(
        (min(int(a), int(b)), max(int(a), int(b)))
        for a, b in graph.iter_edges()
    )
    payload = f"{graph.n}|" + ";".join(f"{a},{b}" for a, b in edges)
    return hashlib.sha256(payload.encode("ascii")).hexdigest()[:16]
