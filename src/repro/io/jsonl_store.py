"""Resumable JSONL record streams with config headers and atomic rewrites.

Both census fleets — the equilibrium census (:mod:`repro.core.census`) and
the trajectory census (:mod:`repro.core.trajcensus`) — stream one record per
line to disk so an interrupted overnight run can be picked back up.  The
resume machinery was hardened in ISSUE 3 against three real failure modes
and lives here so every stream shares one audited implementation:

1. **Config headers** — the first line of a stream is a run-config header
   (a JSON object carrying ``config_key``).  Resume validates the embedded
   header against the current run's configuration and raises on any
   mismatch instead of silently mixing records from different games.
   Headerless (pre-header) files are refused outright: the arguments they
   cannot prove are exactly the ones the header exists to pin.
2. **Atomic prefix rewrites** — re-emitting the validated prefix goes
   through a ``.tmp`` sidecar and ``os.replace``, so a crash at any instant
   leaves either the old file or the complete new prefix on disk — never a
   truncated stream.
3. **Torn-line policy** — a crash mid-append can only tear the *final*
   line (records are appended strictly in order), so a torn tail is dropped
   on resume.  An undecodable line anywhere earlier means the file was
   corrupted, hand-edited, or interleaved by two runs; resuming past it
   would silently discard every record after the tear, so it raises loudly.

The store is generic over the record type: callers supply ``decode``
(dict → record, raising ``TypeError`` on a shape mismatch, as a dataclass
constructor does) and ``write_records`` (the append serializer — kept a
caller-side hook so crash-injection tests can intercept exactly the writes
their module performs).

Fault-tolerance additions (ISSUE 6, DESIGN.md §9):

* **Durability cadence** — ``durability=`` selects what :meth:`JsonlStore.
  append` does after serializing a batch: ``"none"`` (leave it to the OS
  and the file object's buffer), ``"flush"`` (the default: flush the
  Python-level buffer, so a fleet crash loses at most the final batch to
  the torn-tail policy, never minutes of buffered records), or ``"fsync"``
  (flush + ``os.fsync``, surviving host power loss at a per-batch syscall
  cost).  The default is ``"flush"`` because the failure mode fleets
  actually see is process death, not power loss.
* **Quarantine records** — :class:`FleetFailure` is the on-disk shape of a
  task that failed past its retry budget: the task's grid coordinates, the
  error, and the attempt count, marked with the ``"fleet_failure"`` key so
  :func:`maybe_decode_failure` can tell it apart from a result record.
  Fleets stream it in the failed task's slot and ``--retry-failed`` resumes
  re-run exactly those slots.
* **Torn-write injection** — when the fault harness
  (:mod:`repro.parallel.faults`) is armed, ``append`` checks the
  ``torn-write`` site (``batch=`` ordinal) and, on a firing, writes only
  half of the serialized batch before flushing and raising — the
  deterministic stand-in for a crash tearing the stream's final line, which
  is exactly what the torn-tail resume policy must absorb.

Disk-fault hardening (ISSUE 10, DESIGN.md §13):

* **Directory durability** — the atomic prefix rewrite publishes through
  :func:`~repro.io.fsutil.publish_replace` (``os.replace`` **plus a
  parent-directory fsync** — a rename is not crash-durable until the
  directory entry is synced), and ``durability="fsync"`` appends sync the
  parent too.  ``publish_replace`` doubles as the ``torn-rename`` fault
  site.
* **ENOSPC as a typed error** — a failed append (injected ``enospc`` site
  per batch, or any real ``OSError``) raises
  :class:`~repro.errors.StoreIntegrityError` after at most tearing the
  stream's *tail* (which resume drops); fleets quarantine the slot and
  heal on retry instead of dying on a raw ``OSError``.
"""

from __future__ import annotations

import io
import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import IO, Callable, Iterable, Mapping, Sequence

from ..errors import ConfigurationError, StoreIntegrityError
from ..parallel import faults
from .fsutil import fsync_dir, publish_replace

__all__ = [
    "FleetFailure",
    "JsonlStore",
    "StreamSummary",
    "maybe_decode_failure",
    "summarize_stream",
]

#: Marker key identifying a quarantine line in a record stream.
_FAILURE_KEY = "fleet_failure"


@dataclass
class FleetFailure:
    """A permanently failed fleet task, quarantined in its record slot.

    ``coords`` carries the task's grid coordinates (the same fields the
    fleet's resume validation checks on result records, e.g. ``n`` /
    ``family`` / ``seed``), so a resumed run can both validate the slot and
    re-run exactly this task under ``--retry-failed``.

    ``checkpoint`` (optional) records the slot's in-task checkpoint
    progress at quarantine time — ``{"path": ..., "steps": ...}`` for a
    checkpointed dynamics task — so status readers and schedulers can see
    that a retry resumes rather than restarts.  ``None`` (the default, and
    every pre-checkpoint stream) serializes to *no* field at all, keeping
    historical stream bytes unchanged.
    """

    coords: dict
    error: str
    attempts: int
    checkpoint: "dict | None" = None

    def encode(self) -> dict:
        obj = {_FAILURE_KEY: 1, **asdict(self)}
        if obj.get("checkpoint") is None:
            obj.pop("checkpoint", None)
        return obj


def maybe_decode_failure(obj: dict) -> "FleetFailure | None":
    """Decode a quarantine line, or ``None`` when ``obj`` is a result record.

    Raises ``TypeError`` on a marked-but-torn line, matching the decode
    contract :meth:`JsonlStore.read_prefix` expects.
    """
    if not isinstance(obj, dict) or _FAILURE_KEY not in obj:
        return None
    try:
        checkpoint = obj.get("checkpoint")
        if checkpoint is not None:
            checkpoint = dict(checkpoint)
        return FleetFailure(
            coords=dict(obj["coords"]),
            error=str(obj["error"]),
            attempts=int(obj["attempts"]),
            checkpoint=checkpoint,
        )
    except (KeyError, TypeError, ValueError):
        raise TypeError(f"torn {_FAILURE_KEY} line: {obj!r}") from None


@dataclass
class StreamSummary:
    """What a stream contains, read without recomputing anything.

    ``results`` counts decoded result records, ``failures`` holds the
    quarantined :class:`FleetFailure` slots in stream order, and
    ``torn_tail`` reports whether the final line was torn by a crash (the
    resume machinery would drop it).  ``header`` is the raw run-config
    header dict (``None`` for legacy headerless files).
    """

    path: Path
    header: "dict | None"
    results: int
    failures: list
    torn_tail: bool

    @property
    def completed(self) -> int:
        """Slots occupied in the stream (results + quarantined failures)."""
        return self.results + len(self.failures)


def summarize_stream(
    path: "str | Path", *, record_name: str = "record"
) -> StreamSummary:
    """Summarize any record stream at ``path`` without a record schema.

    Applies the store's torn-line policy (a torn **final** line is
    reported, a tear anywhere earlier raises) and classifies every line:
    the first line whose keys include one ending in ``_config`` is the
    run-config header, ``fleet_failure``-marked lines decode to
    :class:`FleetFailure`, everything else counts as a result record.
    This is what ``repro experiment status`` reads — headers plus
    quarantine coordinates, no recompute.
    """
    path = Path(path)
    lines = path.read_text(encoding="utf-8").splitlines()
    header: "dict | None" = None
    results = 0
    failures: list = []
    torn_tail = False
    for idx, line in enumerate(lines):
        final = idx == len(lines) - 1
        try:
            obj = json.loads(line)
        except ValueError:
            if final:
                torn_tail = True
                break
            raise StoreIntegrityError(
                f"{path}: line {idx + 1} of {len(lines)} is not valid JSON "
                "but is not the final line — the stream is corrupt "
                "mid-file, not merely torn by a crash"
            ) from None
        if (
            idx == 0
            and isinstance(obj, dict)
            and any(key.endswith("_config") for key in obj)
        ):
            header = obj
            continue
        try:
            failure = maybe_decode_failure(obj)
        except TypeError:
            if final:
                torn_tail = True
                break
            raise StoreIntegrityError(
                f"{path}: line {idx + 1} of {len(lines)} is valid JSON but "
                f"not a {record_name}; the stream is corrupt mid-file"
            ) from None
        if failure is not None:
            failures.append(failure)
        else:
            results += 1
    return StreamSummary(
        path=path,
        header=header,
        results=results,
        failures=failures,
        torn_tail=torn_tail,
    )


class JsonlStore:
    """One resumable JSONL stream: header, prefix validation, atomic rewrite.

    Parameters
    ----------
    path:
        The stream file.
    config_key:
        Header marker key; its value in the header is the format version.
    config_version:
        Current format version (resume refuses other versions).
    config:
        Every record-determining run argument, as JSON-compatible values.
        Written into the header and validated field-by-field on resume.
    decode:
        ``dict -> record``; must raise ``TypeError`` when the dict does not
        have the record's shape (a dataclass ``**kwargs`` constructor does).
    record_name:
        Human name of the record type, used in corruption errors.
    write_records:
        ``(sink, records) -> None`` serializer used for both the prefix
        rewrite and appends.
    durability:
        What :meth:`append` does after each batch: ``"none"``, ``"flush"``
        (default), or ``"fsync"`` — see the module docstring.
    experiment:
        Optional experiment descriptor (name / grid order / seed scheme)
        written into the header as an ``"experiment"`` block and, like
        every header field, validated on resume.  Streams predating the
        experiment layer (the census formats) omit it, keeping their
        bytes and resume behavior unchanged.
    """

    def __init__(
        self,
        path: "str | Path",
        *,
        config_key: str,
        config_version: int,
        config: Mapping,
        decode: Callable[[dict], object],
        record_name: str = "record",
        write_records: Callable[[IO, Iterable], None],
        durability: str = "flush",
        experiment: "Mapping | None" = None,
    ):
        if durability not in ("none", "flush", "fsync"):
            raise ConfigurationError(
                f"durability must be 'none', 'flush' or 'fsync', "
                f"got {durability!r}"
            )
        self.path = Path(path)
        self.config_key = config_key
        self.config_version = config_version
        self.header = {config_key: config_version, **config}
        if experiment is not None:
            self.header = {
                config_key: config_version,
                "experiment": dict(experiment),
                **config,
            }
        self._decode = decode
        self.record_name = record_name
        self._write = write_records
        self.durability = durability
        self._append_batch = 0

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def summary(self) -> StreamSummary:
        """Header + slot counts + quarantined failures, no recomputation."""
        return summarize_stream(self.path, record_name=self.record_name)

    def read_prefix(self) -> "tuple[dict | None, list]":
        """Parse a (possibly torn) stream -> ``(config header, records)``.

        Implements the torn-line policy from the module docstring: a torn
        or wrong-shape **final** line is dropped silently; anything broken
        earlier raises.  The header (first line carrying ``config_key``)
        is returned separately when present; legacy files that start
        straight with records yield ``header=None``.
        """
        lines = self.path.read_text(encoding="utf-8").splitlines()
        header: "dict | None" = None
        records: list = []
        for idx, line in enumerate(lines):
            final = idx == len(lines) - 1
            try:
                obj = json.loads(line)
            except ValueError:
                if final:
                    break  # torn tail from a mid-write crash: drop and resume
                raise StoreIntegrityError(
                    f"{self.path}: line {idx + 1} of {len(lines)} is not "
                    "valid JSON but is not the final line — the stream is "
                    "corrupt mid-file, not merely torn by a crash; refusing "
                    "to resume (records beyond the tear would be silently "
                    "lost)"
                ) from None
            if idx == 0 and isinstance(obj, dict) and self.config_key in obj:
                header = obj
                continue
            try:
                records.append(self._decode(obj))
            except TypeError:
                if final:
                    break  # complete JSON but torn fields: treat as torn tail
                raise StoreIntegrityError(
                    f"{self.path}: line {idx + 1} of {len(lines)} is valid "
                    f"JSON but not a {self.record_name}; refusing to resume "
                    "from a corrupt stream"
                ) from None
        return header, records

    def check_header(self, header: dict) -> None:
        """Raise when a resumed file's embedded config differs from this run's."""
        version = header.get(self.config_key)
        if version != self.config_version:
            raise StoreIntegrityError(
                f"{self.path}: {self.config_key} header version {version!r} "
                f"!= {self.config_version}; cannot resume across formats"
            )
        mismatched = {
            key: (header.get(key), value)
            for key, value in self.header.items()
            if header.get(key) != value
        }
        if mismatched:
            detail = ", ".join(
                f"{key}: file has {old!r}, run has {new!r}"
                for key, (old, new) in sorted(mismatched.items())
            )
            raise StoreIntegrityError(
                f"resume mismatch: {self.path} was written by a run with a "
                f"different configuration ({detail}) — resuming would "
                "silently mix records from different games; rerun with the "
                "original arguments or point the stream at a fresh file"
            )

    def resume_records(self) -> list:
        """Validated records of an existing stream (``[]`` if no file yet).

        Reads the prefix, refuses headerless files, and checks the embedded
        header against this store's configuration.  Per-record validation
        (grid membership, objective tags, …) is the caller's job — the
        store knows the config, not the grid.
        """
        if not self.path.exists():
            return []
        header, records = self.read_prefix()
        if header is None:
            # Pre-header (legacy) files cannot prove the run arguments the
            # header exists to pin — exactly the silent-mixing bug it
            # closes — so refuse rather than guess.
            raise StoreIntegrityError(
                f"{self.path} has no run-config header (written before the "
                "header format); its configuration cannot be validated "
                "against this run.  Prepend the matching config line (the "
                f"{self.config_key!r} key) to adopt the file, or start a "
                "fresh stream path"
            )
        self.check_header(header)
        return records

    def start_stream(
        self,
        resume: bool,
        count: int,
        validate: "Callable[[int, object], None] | None" = None,
    ) -> list:
        """Prepare the stream for a run; returns the resumed prefix.

        A fresh run (``resume=False``) just (re)writes the header; a resume
        reloads the streamed prefix, truncates it to the run's ``count``
        tasks, calls ``validate(task_index, record)`` on each record (the
        caller's grid check — it must raise on any mismatch), and re-emits
        the validated prefix atomically.  Either way the caller continues
        with :meth:`open_append` and the remaining tasks.
        """
        # A crash mid-rewrite can leave the `.tmp` sidecar behind.  The
        # main file is always authoritative (`os.replace` is atomic: the
        # swap either happened completely or not at all), so a stale
        # sidecar is pure garbage — drop it rather than let it shadow the
        # next rewrite or alarm forensics.
        stale = self.path.with_name(self.path.name + ".tmp")
        try:
            stale.unlink()
        except OSError:
            pass
        done: list = []
        if resume:
            done = self.resume_records()[:count]
            if validate is not None:
                for idx, rec in enumerate(done):
                    validate(idx, rec)
        self.rewrite_prefix(done)
        return done

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def rewrite_prefix(self, records: Sequence) -> None:
        """Atomically replace the stream with header + ``records``.

        Builds the new content in a ``.tmp`` sidecar and swaps it in with
        ``os.replace``, so a crash between truncate and rewrite can no
        longer lose a previously streamed fleet.
        """
        tmp = self.path.with_name(self.path.name + ".tmp")
        with tmp.open("w", encoding="utf-8") as sink:
            sink.write(json.dumps(self.header) + "\n")
            self._write(sink, records)
            sink.flush()
            os.fsync(sink.fileno())
        # publish_replace = os.replace + parent-directory fsync (the rename
        # is not crash-durable until the directory entry is synced) + the
        # torn-rename fault site; see repro.io.fsutil.
        publish_replace(tmp, self.path)

    def open_append(self) -> "IO[str]":
        """An append handle for streaming finished records."""
        return self.path.open("a", encoding="utf-8")

    def append(self, sink: "IO[str]", records: Iterable) -> None:
        """Append ``records`` through the caller's serializer.

        Applies the store's durability cadence per batch, and honours an
        armed ``torn-write`` fault (half the serialized batch is written,
        flushed, and :class:`~repro.parallel.faults.InjectedFault` raised —
        the deterministic crash-mid-append the resume policy must absorb).
        """
        batch = self._append_batch
        self._append_batch += 1
        if faults.faults_armed():
            records = list(records)
            spec = faults.take("torn-write", batch=batch, path=str(self.path))
            if spec is not None:
                buf = io.StringIO()
                self._write(buf, records)
                text = buf.getvalue()
                sink.write(text[: len(text) // 2])
                sink.flush()
                raise faults.InjectedFault(
                    f"injected torn-write at batch {batch}"
                )
            spec = faults.take("enospc", batch=batch, path=str(self.path))
            if spec is not None:
                # The disk fills mid-append: half the batch lands (a torn
                # tail the resume policy drops) and the write path raises
                # its typed integrity error, exactly like the real-OSError
                # branch below.
                buf = io.StringIO()
                self._write(buf, records)
                text = buf.getvalue()
                sink.write(text[: len(text) // 2])
                sink.flush()
                raise StoreIntegrityError(
                    f"stream append failed: injected ENOSPC at batch "
                    f"{batch} of {self.path}"
                ) from faults.InjectedFault("no space left on device")
        try:
            self._write(sink, records)
            if self.durability == "flush":
                sink.flush()
            elif self.durability == "fsync":
                sink.flush()
                os.fsync(sink.fileno())
                # An appended record is only durable once the *file* is —
                # and a freshly created stream only once its directory
                # entry is.  Sync the parent to close the rename/creation
                # window under the fsync cadence.
                fsync_dir(self.path.parent)
        except OSError as exc:
            # A torn tail is recoverable (dropped on resume); losing the
            # typed error would not be.  ENOSPC and friends surface as the
            # store's integrity error so fleets quarantine the slot
            # instead of dying on a raw OSError.
            raise StoreIntegrityError(
                f"stream append failed at batch {batch} of "
                f"{self.path}: {exc}"
            ) from exc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JsonlStore({str(self.path)!r}, key={self.config_key!r})"
