"""Resumable JSONL record streams with config headers and atomic rewrites.

Both census fleets — the equilibrium census (:mod:`repro.core.census`) and
the trajectory census (:mod:`repro.core.trajcensus`) — stream one record per
line to disk so an interrupted overnight run can be picked back up.  The
resume machinery was hardened in ISSUE 3 against three real failure modes
and lives here so every stream shares one audited implementation:

1. **Config headers** — the first line of a stream is a run-config header
   (a JSON object carrying ``config_key``).  Resume validates the embedded
   header against the current run's configuration and raises on any
   mismatch instead of silently mixing records from different games.
   Headerless (pre-header) files are refused outright: the arguments they
   cannot prove are exactly the ones the header exists to pin.
2. **Atomic prefix rewrites** — re-emitting the validated prefix goes
   through a ``.tmp`` sidecar and ``os.replace``, so a crash at any instant
   leaves either the old file or the complete new prefix on disk — never a
   truncated stream.
3. **Torn-line policy** — a crash mid-append can only tear the *final*
   line (records are appended strictly in order), so a torn tail is dropped
   on resume.  An undecodable line anywhere earlier means the file was
   corrupted, hand-edited, or interleaved by two runs; resuming past it
   would silently discard every record after the tear, so it raises loudly.

The store is generic over the record type: callers supply ``decode``
(dict → record, raising ``TypeError`` on a shape mismatch, as a dataclass
constructor does) and ``write_records`` (the append serializer — kept a
caller-side hook so crash-injection tests can intercept exactly the writes
their module performs).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import IO, Callable, Iterable, Mapping, Sequence

__all__ = ["JsonlStore"]


class JsonlStore:
    """One resumable JSONL stream: header, prefix validation, atomic rewrite.

    Parameters
    ----------
    path:
        The stream file.
    config_key:
        Header marker key; its value in the header is the format version.
    config_version:
        Current format version (resume refuses other versions).
    config:
        Every record-determining run argument, as JSON-compatible values.
        Written into the header and validated field-by-field on resume.
    decode:
        ``dict -> record``; must raise ``TypeError`` when the dict does not
        have the record's shape (a dataclass ``**kwargs`` constructor does).
    record_name:
        Human name of the record type, used in corruption errors.
    write_records:
        ``(sink, records) -> None`` serializer used for both the prefix
        rewrite and appends.
    """

    def __init__(
        self,
        path: "str | Path",
        *,
        config_key: str,
        config_version: int,
        config: Mapping,
        decode: Callable[[dict], object],
        record_name: str = "record",
        write_records: Callable[[IO, Iterable], None],
    ):
        self.path = Path(path)
        self.config_key = config_key
        self.config_version = config_version
        self.header = {config_key: config_version, **config}
        self._decode = decode
        self.record_name = record_name
        self._write = write_records

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def read_prefix(self) -> "tuple[dict | None, list]":
        """Parse a (possibly torn) stream -> ``(config header, records)``.

        Implements the torn-line policy from the module docstring: a torn
        or wrong-shape **final** line is dropped silently; anything broken
        earlier raises.  The header (first line carrying ``config_key``)
        is returned separately when present; legacy files that start
        straight with records yield ``header=None``.
        """
        lines = self.path.read_text(encoding="utf-8").splitlines()
        header: "dict | None" = None
        records: list = []
        for idx, line in enumerate(lines):
            final = idx == len(lines) - 1
            try:
                obj = json.loads(line)
            except ValueError:
                if final:
                    break  # torn tail from a mid-write crash: drop and resume
                raise ValueError(
                    f"{self.path}: line {idx + 1} of {len(lines)} is not "
                    "valid JSON but is not the final line — the stream is "
                    "corrupt mid-file, not merely torn by a crash; refusing "
                    "to resume (records beyond the tear would be silently "
                    "lost)"
                ) from None
            if idx == 0 and isinstance(obj, dict) and self.config_key in obj:
                header = obj
                continue
            try:
                records.append(self._decode(obj))
            except TypeError:
                if final:
                    break  # complete JSON but torn fields: treat as torn tail
                raise ValueError(
                    f"{self.path}: line {idx + 1} of {len(lines)} is valid "
                    f"JSON but not a {self.record_name}; refusing to resume "
                    "from a corrupt stream"
                ) from None
        return header, records

    def check_header(self, header: dict) -> None:
        """Raise when a resumed file's embedded config differs from this run's."""
        version = header.get(self.config_key)
        if version != self.config_version:
            raise ValueError(
                f"{self.path}: {self.config_key} header version {version!r} "
                f"!= {self.config_version}; cannot resume across formats"
            )
        mismatched = {
            key: (header.get(key), value)
            for key, value in self.header.items()
            if header.get(key) != value
        }
        if mismatched:
            detail = ", ".join(
                f"{key}: file has {old!r}, run has {new!r}"
                for key, (old, new) in sorted(mismatched.items())
            )
            raise ValueError(
                f"resume mismatch: {self.path} was written by a run with a "
                f"different configuration ({detail}) — resuming would "
                "silently mix records from different games; rerun with the "
                "original arguments or point the stream at a fresh file"
            )

    def resume_records(self) -> list:
        """Validated records of an existing stream (``[]`` if no file yet).

        Reads the prefix, refuses headerless files, and checks the embedded
        header against this store's configuration.  Per-record validation
        (grid membership, objective tags, …) is the caller's job — the
        store knows the config, not the grid.
        """
        if not self.path.exists():
            return []
        header, records = self.read_prefix()
        if header is None:
            # Pre-header (legacy) files cannot prove the run arguments the
            # header exists to pin — exactly the silent-mixing bug it
            # closes — so refuse rather than guess.
            raise ValueError(
                f"{self.path} has no run-config header (written before the "
                "header format); its configuration cannot be validated "
                "against this run.  Prepend the matching config line (the "
                f"{self.config_key!r} key) to adopt the file, or start a "
                "fresh stream path"
            )
        self.check_header(header)
        return records

    def start_stream(
        self,
        resume: bool,
        count: int,
        validate: "Callable[[int, object], None] | None" = None,
    ) -> list:
        """Prepare the stream for a run; returns the resumed prefix.

        A fresh run (``resume=False``) just (re)writes the header; a resume
        reloads the streamed prefix, truncates it to the run's ``count``
        tasks, calls ``validate(task_index, record)`` on each record (the
        caller's grid check — it must raise on any mismatch), and re-emits
        the validated prefix atomically.  Either way the caller continues
        with :meth:`open_append` and the remaining tasks.
        """
        done: list = []
        if resume:
            done = self.resume_records()[:count]
            if validate is not None:
                for idx, rec in enumerate(done):
                    validate(idx, rec)
        self.rewrite_prefix(done)
        return done

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def rewrite_prefix(self, records: Sequence) -> None:
        """Atomically replace the stream with header + ``records``.

        Builds the new content in a ``.tmp`` sidecar and swaps it in with
        ``os.replace``, so a crash between truncate and rewrite can no
        longer lose a previously streamed fleet.
        """
        tmp = self.path.with_name(self.path.name + ".tmp")
        with tmp.open("w", encoding="utf-8") as sink:
            sink.write(json.dumps(self.header) + "\n")
            self._write(sink, records)
        os.replace(tmp, self.path)

    def open_append(self) -> "IO[str]":
        """An append handle for streaming finished records."""
        return self.path.open("a", encoding="utf-8")

    def append(self, sink: "IO[str]", records: Iterable) -> None:
        """Append ``records`` through the caller's serializer."""
        self._write(sink, records)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JsonlStore({str(self.path)!r}, key={self.config_key!r})"
