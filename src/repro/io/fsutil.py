"""Durable-publish primitives shared by every crash-safe store.

Every "atomic write" in this package follows the same discipline: build the
complete new content in a sidecar, ``os.replace`` it onto the final path,
and — the step this module exists to centralize — **fsync the parent
directory**.  ``os.replace`` alone makes the swap atomic against process
crashes, but the *rename itself* lives in the directory, and a directory
entry is just more file data: until it is synced, a power cut can roll the
rename back and resurrect the old file (or nothing).  PR 10 closed exactly
this hole across :class:`~repro.io.jsonl_store.JsonlStore`,
:class:`~repro.io.result_cache.ResultCache`, and
:class:`~repro.io.checkpoint.CheckpointStore` by routing every publish
through :func:`publish_replace`.

:func:`publish_replace` is also the instrumented ``torn-rename`` fault
site (:mod:`repro.parallel.faults`): a firing leaves the complete sidecar
in place, skips the rename, and raises — the deterministic stand-in for
the lost-rename crash window, which the stores' resume/sweep machinery
must absorb (the old final file is still authoritative; the sidecar is
garbage to sweep).

Lint rule R10 pins the discipline: raw ``os.replace`` / ``os.fsync``
calls outside :mod:`repro.io` are findings — durable writes go through
the sanctioned stores, and the stores come through here.
"""

from __future__ import annotations

import os
from pathlib import Path

from ..parallel import faults

__all__ = ["fsync_dir", "publish_replace"]


def fsync_dir(path: "str | os.PathLike") -> None:
    """Fsync a directory, making previously renamed entries crash-durable.

    Best-effort on platforms/filesystems that refuse to open or fsync a
    directory (some network filesystems): durability degrades to the
    filesystem's own guarantees there, which is the pre-PR-10 behavior —
    never an error on the write path.
    """
    try:
        fd = os.open(path, os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def publish_replace(tmp: "str | os.PathLike", final: "str | os.PathLike") -> None:
    """Atomically publish ``tmp`` as ``final`` and sync the directory entry.

    The one sanctioned way a complete sidecar becomes the live file: the
    caller has already written and fsynced ``tmp``; this renames it over
    ``final`` and fsyncs the parent directory so the rename survives power
    loss.  Honours an armed ``torn-rename`` fault (``path=`` filter
    matches ``final``): the sidecar is left intact, the rename is skipped,
    and :class:`~repro.parallel.faults.InjectedFault` is raised — the
    crash-window the directory fsync exists to close, injected
    deterministically so the recovery paths stay tested.
    """
    final = Path(final)
    spec = faults.take("torn-rename", path=str(final))
    if spec is not None:
        raise faults.InjectedFault(
            f"injected torn-rename publishing {final} (sidecar left behind)"
        )
    os.replace(tmp, final)
    fsync_dir(final.parent)
