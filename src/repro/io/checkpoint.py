"""Crash-safe single-slot checkpoints for resumable long-running tasks.

A :class:`CheckpointStore` holds the latest snapshot of one resumable
computation — for the dynamics engine, the full mid-run state of one
:meth:`~repro.core.dynamics.SwapDynamics.run` (DESIGN.md §13).  It shares
the integrity contract of :class:`~repro.io.result_cache.ResultCache`:

* **writes are atomic and durable** — the entry is serialized completely
  before any disk state changes, written to a writer-unique ``.tmp``
  sidecar, fsynced, and published via
  :func:`~repro.io.fsutil.publish_replace` (``os.replace`` + parent
  directory fsync).  A crash at any instant leaves either the previous
  checkpoint or the new one — never a torn final file;
* **reads verify** — entries carry a SHA-256 checksum of the canonically
  serialized payload plus the run configuration they claim to continue.
  A corrupt entry (torn bytes, bit rot) is moved aside to
  ``<path>.quarantined.<pid>`` and reported as "no checkpoint", so a
  damaged snapshot degrades to a restart, never to a wrong resume.  A
  *valid* entry whose embedded config differs from the caller's raises
  :class:`~repro.errors.StoreIntegrityError`: resuming someone else's run
  would silently splice two different games;
* **faults are injectable** — :meth:`CheckpointStore.save` exposes
  ``enospc`` (partial ``.tmp``, typed error, final file untouched) and
  ``torn-write`` (half an entry on the *final* path — the post-rename
  content loss the checksum must catch) sites, and the publish step
  inherits :func:`~repro.io.fsutil.publish_replace`'s ``torn-rename``
  site.  See :mod:`repro.parallel.faults`.

Payloads must be canonical-JSON serializable (the dynamics snapshot
encodes non-finite trace floats as strings; see ``core/dynamics.py``).
``clear()`` removes the slot once the computation finishes — a completed
run leaves no checkpoint behind.
"""

from __future__ import annotations

import errno
import hashlib
import itertools
import json
import os
from pathlib import Path

from ..errors import StoreIntegrityError
from ..parallel import faults
from .fsutil import publish_replace
from .result_cache import canonical_json

__all__ = ["CheckpointStore", "peek_checkpoint"]

_ENTRY_VERSION = 1


def _read_entry(path: Path) -> "dict | None":
    """Parse an entry file: ``None`` when absent, ``{}`` when unreadable."""
    try:
        raw = path.read_bytes()
    except (FileNotFoundError, OSError):
        return None
    try:
        entry = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return {}
    if not isinstance(entry, dict) or entry.get("v") != _ENTRY_VERSION:
        return {}
    return entry


def peek_checkpoint(path: "str | os.PathLike") -> "dict | None":
    """A checkpoint's ``meta`` progress block, with **no side effects**.

    Unlike constructing a :class:`CheckpointStore` (which sweeps stale
    sidecars and creates the parent directory), this only reads: the
    status path reports progress of checkpoints owned by a possibly-live
    fleet and must not race its writers.  Returns ``None`` for a missing
    or unreadable slot.
    """
    entry = _read_entry(Path(path))
    if not entry:
        return None
    meta = entry.get("meta")
    return dict(meta) if isinstance(meta, dict) else None


def _payload_checksum(payload) -> str:
    return hashlib.sha256(
        canonical_json(payload).encode("utf-8")
    ).hexdigest()


class CheckpointStore:
    """One crash-safe checkpoint slot at ``path``.

    ``save(payload, config, meta=...)`` atomically replaces the slot;
    ``load(config)`` returns the verified payload (or ``None`` after
    quarantining corruption / when no checkpoint exists); ``peek()``
    returns the unverified-but-parsed ``meta`` block for cheap progress
    reporting; ``clear()`` removes the slot.  Stale ``.tmp`` sidecars of
    this slot (crashed writers, injected torn renames) are swept on
    construction — the final file is always authoritative.
    """

    def __init__(self, path: "str | os.PathLike"):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._unique = itertools.count()
        self.swept_tmp = self._sweep_stale_tmp()

    # -- layout -----------------------------------------------------------

    def _tmp_path(self) -> Path:
        serial = next(self._unique)
        return self.path.with_name(
            f"{self.path.name}.{os.getpid()}.{serial}.tmp"
        )

    def _sweep_stale_tmp(self) -> int:
        swept = 0
        for tmp in self.path.parent.glob(self.path.name + ".*.tmp"):
            try:
                tmp.unlink()
                swept += 1
            except OSError:  # pragma: no cover - racing sweeper
                pass
        return swept

    def exists(self) -> bool:
        return self.path.exists()

    # -- write path -------------------------------------------------------

    def save(self, payload, config: dict, meta: "dict | None" = None) -> Path:
        """Atomically replace the slot with ``payload``; returns the path.

        ``config`` pins the run this snapshot continues (validated by
        :meth:`load`); ``meta`` is a small progress block readable via
        :meth:`peek` without deserializing the payload's semantics.
        Serializes the entry first, so encoding errors surface before any
        disk state changes.  Injected or real ``OSError`` on the sidecar
        write path (``ENOSPC`` above all) raises
        :class:`~repro.errors.StoreIntegrityError` with the final file
        untouched — the previous checkpoint, if any, stays live.
        """
        entry = {
            "v": _ENTRY_VERSION,
            "config": config,
            "meta": meta or {},
            "checksum": _payload_checksum(payload),
            "payload": payload,
        }
        blob = canonical_json(entry).encode("utf-8")
        spec = faults.take("torn-write", path=str(self.path))
        if spec is not None:
            # Post-rename content loss: half the entry on the FINAL path,
            # exactly what load()'s checksum must quarantine.
            self.path.write_bytes(blob[: len(blob) // 2])
            raise faults.InjectedFault(
                f"injected torn-write of checkpoint {self.path}"
            )
        tmp = self._tmp_path()
        spec = faults.take("enospc", path=str(self.path))
        if spec is not None:
            # The disk fills mid-sidecar-write: partial tmp, typed error,
            # final file untouched.  The stale sidecar is swept later.
            tmp.write_bytes(blob[: len(blob) // 2])
            raise StoreIntegrityError(
                f"checkpoint write failed: injected ENOSPC at {self.path}"
            ) from faults.InjectedFault(
                os.strerror(errno.ENOSPC)
            )
        try:
            with open(tmp, "wb") as fh:
                fh.write(blob)
                fh.flush()
                os.fsync(fh.fileno())
        except OSError as exc:
            try:
                tmp.unlink()
            except OSError:  # pragma: no cover - full-disk unlink race
                pass
            raise StoreIntegrityError(
                f"checkpoint write failed at {self.path}: {exc}"
            ) from exc
        publish_replace(tmp, self.path)
        return self.path

    # -- read path --------------------------------------------------------

    def _read_entry(self) -> "dict | None":
        return _read_entry(self.path)

    def load(self, config: dict):
        """The verified payload, or ``None`` (no / quarantined checkpoint).

        Corruption — unparsable entry, checksum mismatch — moves the file
        to ``<path>.quarantined.<pid>`` and returns ``None``: the caller
        restarts from scratch, which is always correct.  A verified entry
        written under a *different* config raises
        :class:`~repro.errors.StoreIntegrityError` instead: that file is
        not noise, it is somebody else's run, and resuming it would
        silently splice two games.
        """
        entry = self._read_entry()
        if entry is None:
            return None
        payload = entry.get("payload") if entry else None
        try:
            ok = bool(entry) and (
                _payload_checksum(payload) == entry.get("checksum")
            )
        except (TypeError, ValueError):
            ok = False
        if not ok:
            self._quarantine()
            return None
        if entry.get("config") != config:
            raise StoreIntegrityError(
                f"checkpoint {self.path} was written by a run with a "
                f"different configuration ({entry.get('config')!r} != "
                f"{config!r}); resuming it would splice two different "
                "runs — clear the checkpoint or rerun with the original "
                "arguments"
            )
        return payload

    def peek(self) -> "dict | None":
        """The entry's ``meta`` progress block, or ``None``.

        Cheap and side-effect free (no quarantine, no config check): the
        status path reports progress of checkpoints it does not own.
        """
        entry = self._read_entry()
        if not entry:
            return None
        meta = entry.get("meta")
        return dict(meta) if isinstance(meta, dict) else None

    def _quarantine(self) -> None:
        dest = self.path.with_name(
            f"{self.path.name}.quarantined.{os.getpid()}"
        )
        try:
            os.replace(self.path, dest)
        except OSError:  # pragma: no cover - concurrent quarantine
            pass

    # -- lifecycle --------------------------------------------------------

    def clear(self) -> None:
        """Remove the slot (a finished run leaves no checkpoint behind)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
