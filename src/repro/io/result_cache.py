"""Crash-safe content-addressed store for equilibrium-audit results.

The audit service (DESIGN.md §10) answers pure queries — ``(graph,
cost model, query)`` determines the answer bit-for-bit — so answers are
cached on disk keyed by content, not by request identity:
:func:`cache_key` hashes ``(graph_fingerprint, model_spec, query_kind,
params)`` into a hex digest, and :class:`ResultCache` maps each key to one
JSON entry file under a two-level sharded directory layout
(``root/<key[:2]>/<key>.json``).

Integrity is never assumed:

* **writes are atomic and durable** — each entry is serialized to a
  uniquely named ``*.tmp`` sidecar in the final directory, fsynced, then
  published with :func:`~repro.io.fsutil.publish_replace` (``os.replace``
  plus a parent-directory fsync: the rename itself is not crash-durable
  until the directory entry is synced).  A crash mid-write leaves only a
  ``.tmp`` (swept on the next startup), never a partial entry; two
  concurrent writers of the same key each publish a complete entry and the
  last rename wins — both are valid, because the payload is a pure
  function of the key.  A failed write — the injected ``enospc`` site or
  any real ``OSError`` — raises :class:`~repro.errors.StoreIntegrityError`
  with the final path untouched, so callers degrade (serve the computed
  answer uncached) instead of corrupting the cache;
* **reads verify** — every entry carries a SHA-256 checksum of its
  canonically serialized payload plus the key it claims to answer.  A
  mismatch (torn file, bit rot, hand-edited entry, key collision) moves
  the file into ``root/quarantine/`` and reports a miss, so corruption is
  *recomputed around*, never served;
* **faults are injectable** — :meth:`ResultCache.put` exposes a
  ``torn-write`` site (``path=`` filter matches the entry's final path):
  the injector writes only half of the serialized entry **to the final
  path** and raises, simulating the post-rename content loss a power cut
  inflicts on an unsynced file — exactly the corruption the checksum must
  catch (see :mod:`repro.parallel.faults`).

Counters (hits / misses / writes / quarantined / swept tmp files) feed the
service's ``/stats`` endpoint.  All methods are thread-safe: the service
handles requests from ``ThreadingHTTPServer`` threads.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import threading
from pathlib import Path

from ..errors import ConfigurationError, StoreIntegrityError
from ..parallel import faults
from .fsutil import publish_replace

__all__ = ["ResultCache", "cache_key", "canonical_json"]

_ENTRY_VERSION = 1


def canonical_json(value) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace, strict).

    The checksum contract hashes these bytes, so the encoding must be
    canonical and standard: ``allow_nan=False`` rejects non-finite floats
    — callers encode them as strings first (see the service's payload
    builders) — because ``Infinity`` is not valid JSON and would make
    entries unreadable to strict parsers.
    """
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def cache_key(
    fingerprint: str,
    model_spec: str,
    query_kind: str,
    params: "dict | None" = None,
) -> str:
    """Content address of one audit answer: 32 hex chars.

    ``fingerprint`` is :func:`repro.io.hashing.graph_fingerprint` output;
    ``model_spec`` the canonical cost-model spec string; ``params`` any
    extra query arguments that change the answer (e.g. ``{"vertex": 3}``
    for a best-swap query).  The audit ``mode`` is deliberately *not* part
    of the key: repair / batched / rebuild are answer-equivalent by the
    library's core invariant, and the cache stores answers.
    """
    material = canonical_json(
        [fingerprint, model_spec, query_kind, params or {}]
    )
    return hashlib.sha256(material.encode("ascii")).hexdigest()[:32]


def _payload_checksum(payload) -> str:
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


class ResultCache:
    """Content-addressed audit-result store with integrity verification.

    ``get`` returns the verified payload or ``None``; ``put`` atomically
    publishes ``payload`` under ``key``.  Payloads must be canonical-JSON
    serializable (plain dicts/lists/strings/finite numbers).
    """

    def __init__(self, root: "str | os.PathLike"):
        self.root = Path(root)
        self.quarantine_dir = self.root / "quarantine"
        self.root.mkdir(parents=True, exist_ok=True)
        self.quarantine_dir.mkdir(exist_ok=True)
        self._lock = threading.Lock()
        self._unique = itertools.count()
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.quarantined = 0
        self.swept_tmp = self._sweep_stale_tmp()

    # -- layout -----------------------------------------------------------

    def entry_path(self, key: str) -> Path:
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ConfigurationError(f"malformed cache key {key!r}")
        return self.root / key[:2] / f"{key}.json"

    def _tmp_path(self, final: Path) -> Path:
        with self._lock:
            serial = next(self._unique)
        return final.with_name(
            f"{final.stem}.{os.getpid()}.{serial}.tmp"
        )

    def _sweep_stale_tmp(self) -> int:
        """Remove ``.tmp`` litter left by crashed writers (startup only)."""
        swept = 0
        for tmp in self.root.glob("*/*.tmp"):
            try:
                tmp.unlink()
                swept += 1
            except OSError:  # pragma: no cover - racing sweeper
                pass
        return swept

    # -- read path --------------------------------------------------------

    def get(self, key: str, *, count_miss: bool = True):
        """The verified payload stored under ``key``, or ``None``.

        Any unreadable, unparsable, mis-keyed, or checksum-failing entry is
        moved to ``quarantine/`` and reported as a miss — the caller
        recomputes and overwrites.  ``count_miss=False`` keeps a re-check
        of an already-counted miss (the service double-checks under its
        admission gate) from inflating the miss counter; hits always count.
        """
        path = self.entry_path(key)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            if count_miss:
                with self._lock:
                    self.misses += 1
            return None
        payload = self._verify(key, raw)
        if payload is None:
            self._quarantine(path)
            if count_miss:
                with self._lock:
                    self.misses += 1
            return None
        with self._lock:
            self.hits += 1
        return payload

    @staticmethod
    def _verify(key: str, raw: bytes):
        try:
            entry = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        if not isinstance(entry, dict) or entry.get("v") != _ENTRY_VERSION:
            return None
        if entry.get("key") != key:
            return None
        payload = entry.get("payload")
        try:
            ok = _payload_checksum(payload) == entry.get("checksum")
        except (TypeError, ValueError):
            return None
        return payload if ok else None

    def _quarantine(self, path: Path) -> None:
        dest = self.quarantine_dir / f"{path.name}.{os.getpid()}.quarantined"
        try:
            os.replace(path, dest)
        except OSError:  # pragma: no cover - concurrent quarantine/overwrite
            return
        with self._lock:
            self.quarantined += 1

    # -- write path -------------------------------------------------------

    def put(self, key: str, payload, meta: "dict | None" = None) -> Path:
        """Atomically publish ``payload`` under ``key``; returns the path.

        Serializes the full entry first (so encoding errors surface before
        any disk state changes), writes it to a writer-unique ``.tmp``
        sidecar, fsyncs, and ``os.replace``s onto the final path.
        Concurrent writers of the same key converge: each rename publishes
        a complete, valid entry.
        """
        final = self.entry_path(key)
        entry = {
            "v": _ENTRY_VERSION,
            "key": key,
            "meta": meta or {},
            "checksum": _payload_checksum(payload),
            "payload": payload,
        }
        blob = canonical_json(entry).encode("utf-8")
        final.parent.mkdir(exist_ok=True)
        spec = faults.take("torn-write", path=str(final))
        if spec is not None:
            # Simulated post-rename content loss: half the entry lands on
            # the FINAL path (bypassing the tmp+rename discipline the way a
            # power cut bypasses it) and the writer dies.
            final.write_bytes(blob[: len(blob) // 2])
            raise faults.InjectedFault(
                f"injected torn-write of cache entry {final}"
            )
        tmp = self._tmp_path(final)
        spec = faults.take("enospc", path=str(final))
        if spec is not None:
            # The disk fills mid-sidecar-write: partial tmp (startup sweep
            # litter), typed error, final path untouched — never a torn
            # published entry.
            tmp.write_bytes(blob[: len(blob) // 2])
            raise StoreIntegrityError(
                f"cache write failed: injected ENOSPC at {final}"
            ) from faults.InjectedFault("no space left on device")
        try:
            with open(tmp, "wb") as fh:
                fh.write(blob)
                fh.flush()
                os.fsync(fh.fileno())
        except OSError as exc:
            try:
                tmp.unlink()
            except OSError:  # pragma: no cover - full-disk unlink race
                pass
            raise StoreIntegrityError(
                f"cache write failed at {final}: {exc}"
            ) from exc
        # os.replace + parent-directory fsync (+ the torn-rename fault
        # site): the rename is not crash-durable until the directory
        # entry is synced.
        publish_replace(tmp, final)
        with self._lock:
            self.writes += 1
        return final

    # -- introspection ----------------------------------------------------

    def stats(self) -> dict:
        """Counter snapshot (feeds the service's ``/stats``)."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "writes": self.writes,
                "quarantined": self.quarantined,
                "swept_tmp": self.swept_tmp,
                "hit_rate": (self.hits / total) if total else 0.0,
            }
