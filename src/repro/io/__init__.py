"""Audited on-disk state: record streams, fingerprints, caches, checkpoints."""

from .checkpoint import CheckpointStore, peek_checkpoint
from .fsutil import fsync_dir, publish_replace
from .hashing import graph_fingerprint
from .jsonl_store import (
    FleetFailure,
    JsonlStore,
    StreamSummary,
    maybe_decode_failure,
    summarize_stream,
)
from .result_cache import ResultCache, cache_key, canonical_json

__all__ = [
    "CheckpointStore",
    "FleetFailure",
    "JsonlStore",
    "ResultCache",
    "StreamSummary",
    "cache_key",
    "canonical_json",
    "fsync_dir",
    "graph_fingerprint",
    "maybe_decode_failure",
    "peek_checkpoint",
    "publish_replace",
    "summarize_stream",
]
