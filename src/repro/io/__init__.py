"""Audited on-disk state: record streams, fingerprints, result caches."""

from .hashing import graph_fingerprint
from .jsonl_store import (
    FleetFailure,
    JsonlStore,
    StreamSummary,
    maybe_decode_failure,
    summarize_stream,
)
from .result_cache import ResultCache, cache_key, canonical_json

__all__ = [
    "FleetFailure",
    "JsonlStore",
    "ResultCache",
    "StreamSummary",
    "cache_key",
    "canonical_json",
    "graph_fingerprint",
    "maybe_decode_failure",
    "summarize_stream",
]
