"""Audited on-disk record streams shared by the census fleets."""

from .jsonl_store import JsonlStore

__all__ = ["JsonlStore"]
