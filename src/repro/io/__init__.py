"""Audited on-disk record streams shared by the census fleets."""

from .jsonl_store import FleetFailure, JsonlStore, maybe_decode_failure

__all__ = ["FleetFailure", "JsonlStore", "maybe_decode_failure"]
