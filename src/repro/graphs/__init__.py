"""Graph substrate: CSR storage, BFS kernels, distances, generators.

This subpackage is game-agnostic — it knows nothing about swaps or equilibria
and can be used as a small standalone unweighted-graph toolkit.  The game
layer (:mod:`repro.core`) is built entirely on top of it.
"""

from .adjacency import AdjacencyGraph
from .bfs import UNREACHABLE, bfs_aggregates, bfs_distances, bfs_tree_parents
from .convert import (
    from_networkx,
    read_edge_list,
    relabel_to_integers,
    to_networkx,
    write_edge_list,
)
from .csr import CSRGraph
from .graph6 import from_graph6, to_graph6
from .distances import (
    average_distance,
    ball_sizes,
    diameter,
    diameter_or_inf,
    distance_histogram,
    distance_matrix,
    eccentricities,
    is_connected,
    radius,
    sphere_sizes,
    sum_distances_from,
    total_pairwise_distance,
)
from .generators import (
    all_trees,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    empty_graph,
    grid_graph,
    path_graph,
    prufer_to_tree,
    random_connected_gnm,
    random_tree,
    star_graph,
)
from .power import power_distance_matrix, power_graph
from .repair import (
    INT_INF_DISTANCE,
    batched_removal_rows_multi,
    predecessor_counts,
    removal_affected_matrix,
    removal_affected_sources,
    removal_matrix_repair,
    repair_row_after_removal,
)
from .properties import (
    connected_components,
    cut_vertices,
    degree_sequence,
    distance_profiles_identical,
    girth,
    is_bipartite,
    is_vertex_transitive,
    neighborhoods_are_independent,
)

__all__ = [
    "AdjacencyGraph",
    "CSRGraph",
    "INT_INF_DISTANCE",
    "UNREACHABLE",
    "all_trees",
    "average_distance",
    "ball_sizes",
    "batched_removal_rows_multi",
    "bfs_aggregates",
    "bfs_distances",
    "bfs_tree_parents",
    "complete_bipartite_graph",
    "complete_graph",
    "connected_components",
    "cut_vertices",
    "cycle_graph",
    "degree_sequence",
    "diameter",
    "diameter_or_inf",
    "distance_histogram",
    "distance_matrix",
    "distance_profiles_identical",
    "eccentricities",
    "empty_graph",
    "from_graph6",
    "from_networkx",
    "girth",
    "grid_graph",
    "is_bipartite",
    "is_connected",
    "is_vertex_transitive",
    "neighborhoods_are_independent",
    "path_graph",
    "power_distance_matrix",
    "power_graph",
    "predecessor_counts",
    "prufer_to_tree",
    "radius",
    "random_connected_gnm",
    "random_tree",
    "read_edge_list",
    "relabel_to_integers",
    "removal_affected_matrix",
    "removal_affected_sources",
    "removal_matrix_repair",
    "repair_row_after_removal",
    "sphere_sizes",
    "star_graph",
    "sum_distances_from",
    "to_graph6",
    "to_networkx",
    "total_pairwise_distance",
    "write_edge_list",
]
