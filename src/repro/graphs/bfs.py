"""Vectorized breadth-first search kernels.

These are the hot loops of the whole library: every equilibrium check and
every dynamics step reduces to BFS from one vertex, possibly under a *patch*
(one incident edge removed, one added) describing a candidate swap.

The implementation follows the frontier-at-a-time formulation recommended by
the hpc-parallel guides: each BFS level performs a single batched gather of
all neighbours of the frontier (``indices[idx]`` with a computed flat index),
one mask against the distance array, and one :func:`numpy.unique`.  No Python
loop runs per-vertex — only per *level*, of which there are at most
``diameter`` many.

Patched BFS evaluates ``G - {a,b} + extra`` without building the modified
graph: the excluded edge is masked out of each gathered (source, neighbour)
pair batch, and the few extra edges are appended whenever one of their
endpoints enters the frontier.  A swap evaluation therefore costs one O(m)
BFS with no allocation proportional to the graph beyond the distance array.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import GraphError
from .csr import CSRGraph

__all__ = [
    "bfs_distances",
    "bfs_aggregates",
    "bfs_tree_parents",
    "UNREACHABLE",
]

#: Sentinel distance for unreachable vertices (kept negative so masks are cheap).
UNREACHABLE: int = -1


def _frontier_neighbors(
    indptr: np.ndarray,
    indices: np.ndarray,
    frontier: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Gather all (source, neighbour) pairs for a frontier in one batch.

    Returns ``(srcs, nbrs)`` aligned arrays; both empty when the frontier has
    no outgoing half-edges.
    """
    starts = indptr[frontier]
    counts = indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=indices.dtype)
        return empty, empty
    cum = np.cumsum(counts)
    # idx[t] = starts[j] + (t - cum_prev[j]) for the frontier slot j owning t.
    idx = np.arange(total, dtype=np.int64) + np.repeat(starts - (cum - counts), counts)
    nbrs = indices[idx]
    srcs = np.repeat(frontier, counts)
    return srcs, nbrs


def bfs_distances(
    graph: CSRGraph,
    source: int,
    *,
    exclude: tuple[int, int] | None = None,
    extra: Sequence[tuple[int, int]] = (),
) -> np.ndarray:
    """Distances from ``source`` in ``graph`` (optionally patched), as int32.

    Parameters
    ----------
    graph:
        The base graph.
    source:
        Start vertex.
    exclude:
        An undirected edge ``(a, b)`` to treat as absent.  It need not exist
        in ``graph`` (the mask simply never fires).
    extra:
        Undirected edges to treat as present in addition to ``graph``'s.
        Intended for O(1)-sized patches (a swap adds one edge); the cost per
        level is O(len(extra)).

    Returns
    -------
    numpy.ndarray
        Length-``n`` int32 array; unreachable vertices hold ``UNREACHABLE``.
    """
    n = graph.n
    if not 0 <= source < n:
        raise GraphError(f"source {source} out of range for n={n}")
    indptr, indices = graph.indptr, graph.indices

    dist = np.full(n, UNREACHABLE, dtype=np.int32)
    dist[source] = 0
    frontier = np.asarray([source], dtype=np.int32)

    if exclude is not None:
        ea, eb = int(exclude[0]), int(exclude[1])
    else:
        ea = eb = -1

    # Map endpoint -> extra neighbours, both directions.
    extra_map: dict[int, np.ndarray] = {}
    if extra:
        tmp: dict[int, list[int]] = {}
        for a, b in extra:
            a, b = int(a), int(b)
            if a == b:
                raise GraphError(f"extra self-loop ({a}, {b}) not allowed")
            tmp.setdefault(a, []).append(b)
            tmp.setdefault(b, []).append(a)
        extra_map = {
            u: np.asarray(vs, dtype=np.int32) for u, vs in tmp.items()
        }

    level = 0
    while frontier.size:
        srcs, nbrs = _frontier_neighbors(indptr, indices, frontier)
        if ea >= 0 and nbrs.size:
            keep = ~(
                ((srcs == ea) & (nbrs == eb)) | ((srcs == eb) & (nbrs == ea))
            )
            nbrs = nbrs[keep]
        if extra_map:
            appended = [nbrs]
            for u, extra_nbrs in extra_map.items():
                if 0 <= u < n and dist[u] == level:
                    appended.append(extra_nbrs)
            if len(appended) > 1:
                nbrs = np.concatenate(appended)
        if nbrs.size == 0:
            break
        fresh = nbrs[dist[nbrs] == UNREACHABLE]
        if fresh.size == 0:
            break
        frontier = np.unique(fresh)
        level += 1
        dist[frontier] = level
    return dist


def bfs_aggregates(
    graph: CSRGraph,
    source: int,
    *,
    exclude: tuple[int, int] | None = None,
    extra: Sequence[tuple[int, int]] = (),
) -> tuple[int, int, int]:
    """BFS returning ``(sum_of_distances, eccentricity, reached)``.

    ``reached`` counts vertices at finite distance *including* the source.
    When the patched graph is disconnected from ``source``'s side,
    ``reached < n`` and callers should treat both aggregates as infinite.
    The sum and eccentricity are over reached vertices only.
    """
    dist = bfs_distances(graph, source, exclude=exclude, extra=extra)
    reached_mask = dist != UNREACHABLE
    reached = int(reached_mask.sum())
    if reached <= 1:
        return 0, 0, reached
    finite = dist[reached_mask]
    return int(finite.sum(dtype=np.int64)), int(finite.max()), reached


def bfs_tree_parents(graph: CSRGraph, source: int) -> np.ndarray:
    """Parents of a BFS tree rooted at ``source``.

    ``parents[source] == source``; unreachable vertices hold ``UNREACHABLE``.
    Among equal-distance parents the smallest-index neighbour wins, making
    the tree deterministic (Lemma 10's argument walks such a tree).
    """
    n = graph.n
    if not 0 <= source < n:
        raise GraphError(f"source {source} out of range for n={n}")
    indptr, indices = graph.indptr, graph.indices
    dist = np.full(n, UNREACHABLE, dtype=np.int32)
    parent = np.full(n, UNREACHABLE, dtype=np.int32)
    dist[source] = 0
    parent[source] = source
    frontier = np.asarray([source], dtype=np.int32)
    level = 0
    while frontier.size:
        srcs, nbrs = _frontier_neighbors(indptr, indices, frontier)
        if nbrs.size == 0:
            break
        mask = dist[nbrs] == UNREACHABLE
        srcs, nbrs = srcs[mask], nbrs[mask]
        if nbrs.size == 0:
            break
        # For each discovered vertex keep the smallest parent index:
        # sort by (child, parent) and keep the first occurrence per child.
        order = np.lexsort((srcs, nbrs))
        nbrs, srcs = nbrs[order], srcs[order]
        first = np.ones(nbrs.size, dtype=bool)
        first[1:] = nbrs[1:] != nbrs[:-1]
        children = nbrs[first]
        parent[children] = srcs[first]
        level += 1
        dist[children] = level
        frontier = children
    return parent
