"""graph6 encoding/decoding — interop with the nauty/geng ecosystem.

The graph6 format (McKay) is the lingua franca of exhaustive graph
enumeration tools; supporting it means censuses and witnesses from this
library can be exchanged with ``geng``/``nauty`` pipelines and vice versa
(e.g. to re-run the equilibrium census over *isomorphism classes* produced
by ``geng -c``).

Implemented: the standard format for 0 ≤ n ≤ 258047 (1- and 4-byte size
prefixes; the 8-byte variant for n ≥ 258048 is far beyond anything the
library handles and is rejected explicitly).  Upper-triangle bits are packed
column-major in 6-bit chunks offset by 63, per the specification.
"""

from __future__ import annotations

from ..errors import GraphError
from .csr import CSRGraph

__all__ = ["to_graph6", "from_graph6"]

_MAX_SMALL = 62
_MAX_SUPPORTED = 258047


def _encode_size(n: int) -> str:
    if n <= _MAX_SMALL:
        return chr(n + 63)
    # 4-byte form: '~' then 18 bits, big-endian, in three 6-bit chunks.
    return "~" + "".join(
        chr(((n >> shift) & 0x3F) + 63) for shift in (12, 6, 0)
    )


def _decode_size(s: str) -> tuple[int, int]:
    """Return (n, chars consumed)."""
    if not s:
        raise GraphError("empty graph6 string")
    c0 = ord(s[0]) - 63
    if c0 < 0:
        raise GraphError(f"invalid graph6 byte {s[0]!r}")
    if s[0] != "~":
        return c0, 1
    if len(s) >= 2 and s[1] == "~":
        raise GraphError(
            "8-byte graph6 sizes (n >= 258048) are not supported"
        )
    if len(s) < 4:
        raise GraphError("truncated graph6 size prefix")
    n = 0
    for ch in s[1:4]:
        v = ord(ch) - 63
        if not 0 <= v < 64:
            raise GraphError(f"invalid graph6 byte {ch!r}")
        n = (n << 6) | v
    return n, 4


def to_graph6(graph: CSRGraph) -> str:
    """Encode a graph as a graph6 string (no trailing newline)."""
    n = graph.n
    if n > _MAX_SUPPORTED:
        raise GraphError(f"graph6 encoder supports n <= {_MAX_SUPPORTED}")
    header = _encode_size(n)
    # Upper-triangle bit vector, column-major: bit for (i, j), i < j, is at
    # position j(j-1)/2 + i.
    nbits = n * (n - 1) // 2
    bits = bytearray(nbits)
    for u, v in graph.iter_edges():
        i, j = (u, v) if u < v else (v, u)
        bits[j * (j - 1) // 2 + i] = 1
    chunks = []
    for start in range(0, nbits, 6):
        value = 0
        for offset in range(6):
            value <<= 1
            if start + offset < nbits and bits[start + offset]:
                value |= 1
        chunks.append(chr(value + 63))
    return header + "".join(chunks)


def from_graph6(text: str) -> CSRGraph:
    """Decode a graph6 string (leading '>>graph6<<' header tolerated)."""
    s = text.strip()
    if s.startswith(">>graph6<<"):
        s = s[len(">>graph6<<") :]
    n, consumed = _decode_size(s)
    body = s[consumed:]
    nbits = n * (n - 1) // 2
    expected_chars = (nbits + 5) // 6
    if len(body) != expected_chars:
        raise GraphError(
            f"graph6 body for n={n} needs {expected_chars} chars, got {len(body)}"
        )
    bits: list[int] = []
    for ch in body:
        v = ord(ch) - 63
        if not 0 <= v < 64:
            raise GraphError(f"invalid graph6 byte {ch!r}")
        for shift in (5, 4, 3, 2, 1, 0):
            bits.append((v >> shift) & 1)
    edges = []
    pos = 0
    for j in range(1, n):
        for i in range(j):
            if bits[pos]:
                edges.append((i, j))
            pos += 1
    # Padding bits beyond nbits must be zero per the spec; tolerate quietly
    # (several producers emit junk padding) but never read them as edges.
    return CSRGraph(n, edges)
