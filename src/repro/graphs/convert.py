"""Bridges between :class:`~repro.graphs.csr.CSRGraph` and the outside world.

networkx conversion (for cross-validation in tests and for users who want to
plot), edge-list text I/O (for archiving experiment outputs), and
deterministic relabeling (canonicalizing vertex names from constructions that
naturally produce tuple-labelled vertices, like the torus).
"""

from __future__ import annotations

from pathlib import Path
from typing import Hashable, Iterable

from ..errors import GraphError
from .csr import CSRGraph

__all__ = [
    "to_networkx",
    "from_networkx",
    "relabel_to_integers",
    "write_edge_list",
    "read_edge_list",
]


def to_networkx(graph: CSRGraph):
    """Convert to :class:`networkx.Graph` (isolated vertices preserved)."""
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(range(graph.n))
    g.add_edges_from(graph.iter_edges())
    return g


def from_networkx(g) -> CSRGraph:
    """Convert a :class:`networkx.Graph` with integer nodes ``0..n-1``.

    Non-integer or non-contiguous labels should go through
    :func:`relabel_to_integers` first; we refuse to guess an ordering.
    """
    nodes = list(g.nodes())
    n = len(nodes)
    if sorted(nodes) != list(range(n)):
        raise GraphError(
            "networkx graph must be labelled 0..n-1; use relabel_to_integers"
        )
    return CSRGraph(n, ((int(u), int(v)) for u, v in g.edges()))


def relabel_to_integers(
    nodes: Iterable[Hashable], edges: Iterable[tuple[Hashable, Hashable]]
) -> tuple[CSRGraph, dict[Hashable, int]]:
    """Relabel arbitrary hashable vertices to ``0..n-1`` deterministically.

    Vertices are numbered in sorted order when sortable, falling back to
    first-seen order otherwise.  Returns the graph and the label -> index map
    so callers (e.g. the torus construction) can translate coordinates.
    """
    node_list = list(nodes)
    try:
        node_list = sorted(node_list)
    except TypeError:
        seen: dict[Hashable, None] = {}
        for x in node_list:
            seen.setdefault(x, None)
        node_list = list(seen)
    index: dict[Hashable, int] = {x: i for i, x in enumerate(node_list)}
    if len(index) != len(node_list):
        raise GraphError("duplicate vertex labels")
    edge_pairs = []
    for u, v in edges:
        if u not in index or v not in index:
            raise GraphError(f"edge ({u!r}, {v!r}) references unknown vertex")
        edge_pairs.append((index[u], index[v]))
    return CSRGraph(len(node_list), edge_pairs), index


def write_edge_list(graph: CSRGraph, path: "str | Path") -> None:
    """Write ``n m`` header plus one ``u v`` line per canonical edge."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        fh.write(f"{graph.n} {graph.m}\n")
        for u, v in graph.iter_edges():
            fh.write(f"{u} {v}\n")


def read_edge_list(path: "str | Path") -> CSRGraph:
    """Inverse of :func:`write_edge_list` (validates the edge count)."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        header = fh.readline().split()
        if len(header) != 2:
            raise GraphError(f"malformed edge-list header in {path}")
        n, m = int(header[0]), int(header[1])
        edges = []
        for line in fh:
            line = line.strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 2:
                raise GraphError(f"malformed edge line {line!r} in {path}")
            edges.append((int(parts[0]), int(parts[1])))
    if len(edges) != m:
        raise GraphError(
            f"edge-list {path} declares m={m} but contains {len(edges)} edges"
        )
    return CSRGraph(n, edges)
