"""Seeded graph generators for experiments and tests.

Everything is deterministic given a seed (see :mod:`repro.rng`).  The random
families are the initial conditions of the dynamics experiments: random trees
(via Prüfer sequences), connected ``G(n, m)`` graphs (random spanning tree
plus uniform extra edges), and ring-based graphs.  The deterministic families
(paths, cycles, stars, complete graphs, grids) anchor the unit tests because
their distance structure is known in closed form.
"""

from __future__ import annotations

from ..errors import GraphError
from ..rng import make_rng
from .csr import CSRGraph

__all__ = [
    "empty_graph",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "complete_bipartite_graph",
    "grid_graph",
    "random_tree",
    "random_connected_gnm",
    "prufer_to_tree",
    "all_trees",
]


def empty_graph(n: int) -> CSRGraph:
    """``n`` isolated vertices."""
    return CSRGraph(n, [])


def path_graph(n: int) -> CSRGraph:
    """The path ``0 - 1 - … - (n-1)``; diameter ``n - 1``."""
    return CSRGraph(n, [(i, i + 1) for i in range(n - 1)])


def cycle_graph(n: int) -> CSRGraph:
    """The cycle on ``n ≥ 3`` vertices; diameter ``⌊n/2⌋``."""
    if n < 3:
        raise GraphError(f"cycle needs n >= 3, got {n}")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return CSRGraph(n, edges)


def star_graph(n: int, center: int = 0) -> CSRGraph:
    """The star on ``n`` vertices with the given center; diameter 2 for n ≥ 3.

    Theorem 1: the unique sum-equilibrium tree family.
    """
    if n < 1:
        raise GraphError(f"star needs n >= 1, got {n}")
    if not 0 <= center < n:
        raise GraphError(f"center {center} out of range for n={n}")
    return CSRGraph(n, [(center, v) for v in range(n) if v != center])


def complete_graph(n: int) -> CSRGraph:
    """``K_n``; diameter 1 for n ≥ 2."""
    return CSRGraph(n, [(u, v) for u in range(n) for v in range(u + 1, n)])


def complete_bipartite_graph(a: int, b: int) -> CSRGraph:
    """``K_{a,b}`` with sides ``0..a-1`` and ``a..a+b-1``."""
    if a < 1 or b < 1:
        raise GraphError(f"bipartite sides must be positive, got {a}, {b}")
    return CSRGraph(a + b, [(u, a + v) for u in range(a) for v in range(b)])


def grid_graph(rows: int, cols: int) -> CSRGraph:
    """The ``rows × cols`` 4-neighbour grid; vertex ``(r, c)`` is ``r*cols + c``."""
    if rows < 1 or cols < 1:
        raise GraphError(f"grid needs positive dimensions, got {rows}x{cols}")
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return CSRGraph(rows * cols, edges)


def prufer_to_tree(prufer: "list[int] | np.ndarray", n: int) -> CSRGraph:
    """Decode a Prüfer sequence of length ``n - 2`` into the labelled tree.

    The decoding is the standard linear-time algorithm; every labelled tree on
    ``n`` vertices corresponds to exactly one sequence, which is what lets
    :func:`all_trees` enumerate trees exhaustively and :func:`random_tree`
    sample them uniformly.
    """
    import heapq

    seq = [int(x) for x in prufer]
    if n < 2:
        raise GraphError(f"prufer trees need n >= 2, got {n}")
    if len(seq) != n - 2:
        raise GraphError(
            f"prufer sequence for n={n} must have length {n - 2}, got {len(seq)}"
        )
    if any(not 0 <= x < n for x in seq):
        raise GraphError("prufer sequence labels out of range")
    degree = [1] * n
    for x in seq:
        degree[x] += 1
    leaves = [v for v in range(n) if degree[v] == 1]
    heapq.heapify(leaves)
    edges: list[tuple[int, int]] = []
    for x in seq:
        leaf = heapq.heappop(leaves)
        edges.append((leaf, x))
        degree[x] -= 1
        if degree[x] == 1:
            heapq.heappush(leaves, x)
    u = heapq.heappop(leaves)
    v = heapq.heappop(leaves)
    edges.append((u, v))
    return CSRGraph(n, edges)


def random_tree(n: int, seed=None) -> CSRGraph:
    """A uniformly random labelled tree on ``n`` vertices (Prüfer sampling)."""
    if n < 1:
        raise GraphError(f"tree needs n >= 1, got {n}")
    if n == 1:
        return empty_graph(1)
    if n == 2:
        return CSRGraph(2, [(0, 1)])
    rng = make_rng(seed)
    seq = rng.integers(0, n, size=n - 2)
    return prufer_to_tree(seq, n)


def random_connected_gnm(n: int, m: int, seed=None) -> CSRGraph:
    """A random connected graph with exactly ``m`` edges.

    Built as a uniform random spanning tree (Prüfer) plus ``m - (n-1)``
    additional edges sampled uniformly from the non-tree pairs.  This is not
    the uniform distribution over connected G(n, m) graphs, but it is a
    standard, cheap ensemble for dynamics initial conditions; its bias is
    irrelevant because dynamics only need *diverse connected seeds*.
    """
    if n < 1:
        raise GraphError(f"graph needs n >= 1, got {n}")
    max_m = n * (n - 1) // 2
    if not (n - 1) <= m <= max_m:
        raise GraphError(
            f"connected graph on n={n} needs n-1 <= m <= {max_m}, got {m}"
        )
    rng = make_rng(seed)
    tree = random_tree(n, rng)
    existing = set(tree.edge_set())
    extra_needed = m - (n - 1)
    if extra_needed == 0:
        return tree
    edges = set(existing)
    # Rejection-sample non-edges; when the graph is dense, switch to explicit
    # enumeration of the complement to avoid long rejection streaks.
    if m > 0.75 * max_m:
        complement = [
            (u, v)
            for u in range(n)
            for v in range(u + 1, n)
            if (u, v) not in existing
        ]
        pick = rng.choice(len(complement), size=extra_needed, replace=False)
        for i in pick:
            edges.add(complement[int(i)])
    else:
        while len(edges) < m:
            u = int(rng.integers(0, n))
            v = int(rng.integers(0, n))
            if u == v:
                continue
            e = (u, v) if u < v else (v, u)
            edges.add(e)
    return CSRGraph(n, edges)


def all_trees(n: int):
    """Yield every labelled tree on ``n`` vertices exactly once.

    Enumerates all ``n^(n-2)`` Prüfer sequences; practical for ``n ≤ 9``
    (9^7 ≈ 4.8M is the ceiling used by the exhaustive theorem tests at n ≤ 7,
    benches go a little higher).
    """
    if n < 1:
        raise GraphError(f"tree needs n >= 1, got {n}")
    if n == 1:
        yield empty_graph(1)
        return
    if n == 2:
        yield CSRGraph(2, [(0, 1)])
        return
    seq = [0] * (n - 2)
    while True:
        yield prufer_to_tree(seq, n)
        # Odometer increment over base-n digits.
        i = n - 3
        while i >= 0 and seq[i] == n - 1:
            seq[i] = 0
            i -= 1
        if i < 0:
            return
        seq[i] += 1
