"""Immutable CSR (compressed sparse row) graphs.

:class:`CSRGraph` is the read-mostly representation all distance kernels run
on.  Adjacency is stored as two contiguous ``int32`` arrays — ``indptr`` of
length ``n+1`` and ``indices`` of length ``2m`` — exactly the layout
scipy.sparse uses, so conversion to :class:`scipy.sparse.csr_array` is free.
Per the hpc-parallel guides the layout is chosen for cache-friendly frontier
expansion: the neighbours of a vertex are a contiguous slice, and batch
neighbour gathers are single fancy-indexing operations.

Graphs are simple (no self-loops, no parallel edges) and undirected; every
edge ``{u, v}`` is stored twice (as ``u -> v`` and ``v -> u``).  Mutation goes
through :class:`repro.graphs.adjacency.AdjacencyGraph`; CSR graphs are frozen
and hashable by canonical edge set.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from ..errors import GraphError, InvalidEdgeError

__all__ = ["CSRGraph"]


class CSRGraph:
    """An immutable simple undirected graph in CSR form.

    Parameters
    ----------
    n:
        Number of vertices; vertices are ``0 .. n-1``.
    edges:
        Iterable of ``(u, v)`` pairs.  Order and orientation are irrelevant;
        duplicates and self-loops raise :class:`InvalidEdgeError`.

    Notes
    -----
    Construction sorts each adjacency slice, so neighbour arrays are ordered
    and membership tests can use :func:`numpy.searchsorted`.
    """

    __slots__ = ("n", "indptr", "indices", "_edge_array", "_hash", "_scipy")

    def __init__(self, n: int, edges: Iterable[tuple[int, int]]):
        if n < 0:
            raise GraphError(f"vertex count must be non-negative, got {n}")
        self.n = int(n)

        edge_list = [(int(u), int(v)) for u, v in edges]
        m = len(edge_list)
        if m == 0:
            arr = np.empty((0, 2), dtype=np.int32)
        else:
            arr = np.asarray(edge_list, dtype=np.int64)
            if arr.min(initial=0) < 0 or (m and arr.max(initial=-1) >= n):
                bad = arr[(arr < 0).any(axis=1) | (arr >= n).any(axis=1)][0]
                raise InvalidEdgeError(
                    f"edge {tuple(bad)} out of range for n={n}"
                )
            if (arr[:, 0] == arr[:, 1]).any():
                bad = arr[arr[:, 0] == arr[:, 1]][0]
                raise InvalidEdgeError(f"self-loop {tuple(bad)} not allowed")
            lo = np.minimum(arr[:, 0], arr[:, 1])
            hi = np.maximum(arr[:, 0], arr[:, 1])
            keys = lo * np.int64(n) + hi
            if np.unique(keys).size != m:
                raise InvalidEdgeError("duplicate edges not allowed")
            order = np.argsort(keys, kind="stable")
            arr = np.stack([lo[order], hi[order]], axis=1).astype(np.int32)

        self._edge_array = arr
        self._edge_array.setflags(write=False)

        # Build CSR from the doubled (directed) edge list.
        if m:
            src = np.concatenate([arr[:, 0], arr[:, 1]])
            dst = np.concatenate([arr[:, 1], arr[:, 0]])
            order = np.argsort(src * np.int64(n) + dst, kind="stable")
            src = src[order]
            dst = dst[order]
            counts = np.bincount(src, minlength=n)
            self.indptr = np.concatenate(
                [[0], np.cumsum(counts)]
            ).astype(np.int32)
            self.indices = dst.astype(np.int32)
        else:
            self.indptr = np.zeros(n + 1, dtype=np.int32)
            self.indices = np.empty(0, dtype=np.int32)
        self.indptr.setflags(write=False)
        self.indices.setflags(write=False)
        self._hash: int | None = None
        self._scipy = None

    @classmethod
    def from_csr_arrays(
        cls, n: int, indptr: np.ndarray, indices: np.ndarray
    ) -> "CSRGraph":
        """Adopt existing CSR arrays without copying or re-sorting.

        The zero-copy constructor used by shared-memory workers: ``indptr``
        and ``indices`` may be read-only views into a shared segment and are
        used as-is.  The caller guarantees the arrays came from a
        :class:`CSRGraph` (doubled undirected edges, each adjacency slice
        sorted); only cheap shape/bounds invariants are re-checked.
        """
        n = int(n)
        indptr = np.asarray(indptr)
        indices = np.asarray(indices)
        if indptr.shape != (n + 1,) or int(indptr[0]) != 0:
            raise GraphError(
                f"indptr must have shape ({n + 1},) and start at 0"
            )
        if int(indptr[-1]) != indices.shape[0]:
            raise GraphError("indptr[-1] must equal len(indices)")
        obj = object.__new__(cls)
        obj.n = n
        obj.indptr = indptr
        obj.indices = indices
        # Canonical u < v edge array, recovered from the doubled adjacency.
        # Scanning rows in order yields pairs sorted by (u, v) since each
        # adjacency slice is sorted.
        counts = np.asarray(indptr[1:]) - np.asarray(indptr[:-1])
        src = np.repeat(
            np.arange(n, dtype=np.int32), counts.astype(np.int64)
        )
        mask = src < indices
        arr = np.stack([src[mask], indices[mask]], axis=1).astype(np.int32)
        obj._edge_array = arr
        obj._edge_array.setflags(write=False)
        obj._hash = None
        obj._scipy = None
        return obj

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        """Number of undirected edges."""
        return self._edge_array.shape[0]

    def degree(self, v: int) -> int:
        """Degree of vertex ``v``."""
        self._check_vertex(v)
        return int(self.indptr[v + 1] - self.indptr[v])

    def degrees(self) -> np.ndarray:
        """Vector of all vertex degrees (``int32``, length ``n``)."""
        return (self.indptr[1:] - self.indptr[:-1]).astype(np.int32)

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted ``int32`` array of neighbours of ``v`` (a read-only view)."""
        self._check_vertex(v)
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether edge ``{u, v}`` exists.  O(log deg) via binary search."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            return False
        nbrs = self.indices[self.indptr[u] : self.indptr[u + 1]]
        i = int(np.searchsorted(nbrs, v))
        return i < nbrs.size and int(nbrs[i]) == v

    def edges(self) -> np.ndarray:
        """Canonical ``(m, 2)`` array of edges with ``u < v``, sorted."""
        return self._edge_array

    def iter_edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over canonical edges as Python int pairs."""
        for u, v in self._edge_array:
            yield int(u), int(v)

    def edge_set(self) -> frozenset[tuple[int, int]]:
        """Frozen set of canonical edges, usable as a dynamics-state key."""
        return frozenset((int(u), int(v)) for u, v in self._edge_array)

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def with_edges(
        self,
        add: Iterable[tuple[int, int]] = (),
        remove: Iterable[tuple[int, int]] = (),
    ) -> "CSRGraph":
        """Return a new graph with ``remove`` dropped and ``add`` inserted.

        Raises :class:`InvalidEdgeError` when a removed edge does not exist or
        an added edge already does (after removals were applied).
        """
        current = set(self.edge_set())
        for u, v in remove:
            e = self._canon(u, v)
            if e not in current:
                raise InvalidEdgeError(f"cannot remove missing edge {e}")
            current.discard(e)
        for u, v in add:
            e = self._canon(u, v)
            if e in current:
                raise InvalidEdgeError(f"cannot add existing edge {e}")
            current.add(e)
        return CSRGraph(self.n, current)

    def _canon(self, u: int, v: int) -> tuple[int, int]:
        u, v = int(u), int(v)
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise InvalidEdgeError(f"self-loop ({u}, {v}) not allowed")
        return (u, v) if u < v else (v, u)

    def to_scipy(self):
        """Return the adjacency as a :class:`scipy.sparse.csr_array` of 1s.

        Cached: the graph is immutable, and repeated sparse products
        against the same adjacency (batched BFS blocks, one per audited
        edge or activation) must not pay the csr_array construction each
        time.  Treat the result as read-only.
        """
        if self._scipy is None:
            import scipy.sparse as sp

            data = np.ones(self.indices.size, dtype=np.int8)
            self._scipy = sp.csr_array(
                (data, self.indices, self.indptr), shape=(self.n, self.n)
            )
        return self._scipy

    # ------------------------------------------------------------------
    # Protocols
    # ------------------------------------------------------------------
    def _check_vertex(self, v: int) -> None:
        if not 0 <= int(v) < self.n:
            raise GraphError(f"vertex {v} out of range for n={self.n}")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return self.n == other.n and np.array_equal(
            self._edge_array, other._edge_array
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self.n, self._edge_array.tobytes()))
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSRGraph(n={self.n}, m={self.m})"
