"""Graph powers — the Theorem 13 machinery.

The ``x``-th power ``G^x`` of a connected graph ``G`` joins ``u, v`` whenever
``0 < d_G(u, v) <= x``.  The paper uses the exact distance law

    d_{G^x}(u, v) = ceil(d_G(u, v) / x)

("the power-graph construction coalesces distances between consecutive
integer multiples of x down to a common distance").  We implement both the
explicit power graph and the direct transformed distance matrix — the latter
is what the uniformity pipeline uses, since building the dense power graph is
O(n^2) edges for large x.
"""

from __future__ import annotations

import numpy as np

from ..errors import DisconnectedGraphError, GraphError
from .bfs import UNREACHABLE
from .csr import CSRGraph
from .distances import distance_matrix

__all__ = ["power_graph", "power_distance_matrix"]


def power_graph(graph: CSRGraph, x: int, dm: np.ndarray | None = None) -> CSRGraph:
    """The ``x``-th power of ``graph`` as an explicit :class:`CSRGraph`."""
    if x < 1:
        raise GraphError(f"power exponent must be >= 1, got {x}")
    n = graph.n
    if dm is None:
        dm = distance_matrix(graph)
    iu, iv = np.triu_indices(n, k=1)
    d = dm[iu, iv]
    if (d == UNREACHABLE).any():
        raise DisconnectedGraphError("power graph of a disconnected graph")
    keep = d <= x
    return CSRGraph(n, zip(iu[keep].tolist(), iv[keep].tolist()))


def power_distance_matrix(
    graph: CSRGraph, x: int, dm: np.ndarray | None = None
) -> np.ndarray:
    """Distance matrix of ``G^x`` computed by the exact law ``ceil(d/x)``.

    Verified against :func:`power_graph` + BFS by the property tests; this is
    the O(n^2) path used by the Theorem 13 pipeline.
    """
    if x < 1:
        raise GraphError(f"power exponent must be >= 1, got {x}")
    if dm is None:
        dm = distance_matrix(graph)
    if (dm == UNREACHABLE).any():
        raise DisconnectedGraphError("power distances of a disconnected graph")
    # ceil(d / x) for non-negative ints, vectorized without float round-trip.
    return ((dm + (x - 1)) // x).astype(np.int32)
