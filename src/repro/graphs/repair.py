"""Incremental single-edge-removal repair of cached distance rows.

The audit and dynamics hot paths evaluate ``G − e`` for every edge ``e`` of a
graph whose full APSP matrix is already known.  Recomputing APSP from scratch
per edge — the seed implementation — throws that knowledge away.  This module
keeps it:

* :func:`removal_affected_sources` — the **exact** set of BFS sources whose
  distance row changes when ``e = {a, b}`` is deleted.  Soundness rests on two
  level facts: a shortest path only uses edges between consecutive BFS levels,
  so a source ``s`` with ``|d(s,a) − d(s,b)| ≠ 1`` never routes through ``e``;
  and when ``d(s,b) = d(s,a) + 1`` but ``b`` retains another predecessor at
  level ``d(s,a)``, every path through ``e`` can be rerouted at ``b`` without
  a detour, so the whole row survives.  What remains — sources for which ``a``
  is ``b``'s *only* predecessor — is exactly the affected set.
* :func:`repair_row_after_removal` — a **seeded partial BFS** fixing one
  affected row in place of a fresh BFS: it walks the shortest-path DAG from
  the orphaned endpoint to find the *invalid* vertices (those whose every
  shortest path used ``e``), keeps all other distances, and re-settles the
  invalid region by a multi-source unit-weight Dijkstra seeded from the valid
  boundary.  Cost is proportional to the invalid region, not the graph.
* :func:`removal_matrix_repair` — the matrix-level wrapper: copy the base
  matrix, repair only affected rows.

All inputs and outputs here use the *lifted* int64 convention (unreachable =
:data:`INT_INF_DISTANCE`), matching :func:`repro.core.costs.lift_distances`,
because the repair arithmetic needs infinities that compare large rather than
the raw :data:`~repro.graphs.bfs.UNREACHABLE` sentinel.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError
from .bfs import UNREACHABLE, _frontier_neighbors, bfs_distances
from .csr import CSRGraph

__all__ = [
    "INT_INF_DISTANCE",
    "batched_removal_rows_multi",
    "predecessor_counts",
    "removal_affected_matrix",
    "removal_affected_sources",
    "repair_row_after_removal",
    "removal_matrix_repair",
]

#: Lifted "infinite distance" sentinel; identical to repro.core.costs.INT_INF
#: (duplicated here so the game-agnostic graphs layer stays dependency-free).
INT_INF_DISTANCE: int = 1 << 40


def _check_edge(graph: CSRGraph, a: int, b: int) -> tuple[int, int]:
    a, b = int(a), int(b)
    if not graph.has_edge(a, b):
        raise GraphError(f"edge ({a}, {b}) not in graph")
    return a, b


def removal_affected_sources(
    graph: CSRGraph, dm: np.ndarray, edge: tuple[int, int]
) -> np.ndarray:
    """Boolean mask of sources whose distance row changes in ``G − edge``.

    ``dm`` is the lifted APSP matrix of ``graph``.  The mask is exact: row
    ``s`` of ``G − edge``'s APSP differs from ``dm[s]`` iff ``mask[s]``.
    """
    a, b = _check_edge(graph, *edge)
    da = dm[a]
    db = dm[b]
    finite = (da < INT_INF_DISTANCE) & (db < INT_INF_DISTANCE)
    affected = np.zeros(graph.n, dtype=bool)
    for hi, lo in ((b, a), (a, b)):
        # Sources that see the edge as lo -> hi (hi one level further away).
        d_hi, d_lo = (db, da) if hi == b else (da, db)
        cand = finite & (d_hi == d_lo + 1)
        if not cand.any():
            continue
        others = graph.neighbors(hi)
        others = others[others != lo]
        if others.size:
            # hi keeps a predecessor besides lo => the row survives.
            has_alt = (dm[others] == d_hi[None, :] - 1).any(axis=0)
            cand = cand & ~has_alt
        affected |= cand
    return affected


def predecessor_counts(
    graph: CSRGraph,
    dm: np.ndarray,
    vertices: "np.ndarray | None" = None,
) -> np.ndarray:
    """``pc[v, s]`` = number of BFS predecessors of ``v`` from source ``s``.

    A predecessor is a neighbour ``u`` of ``v`` with ``d(s, u) = d(s, v) − 1``.
    ``dm`` is the lifted APSP matrix.  This is the quantity the affected-source
    test needs: deleting ``{a, b}`` can change row ``s`` only when the far
    endpoint has *exactly one* predecessor (the near endpoint), i.e. its
    ``pc`` entry is 1.  One (n, n) int32 matrix shared by every edge of an
    audit — O(m·n) total work, no per-edge recomputation.

    ``vertices`` restricts the computation to the given rows (the rest stay
    zero) — the per-vertex best-response kernel only audits edges incident to
    one agent, so it needs ``deg(v) + 1`` rows, not the full table.
    """
    n = graph.n
    pc = np.zeros((n, n), dtype=np.int32)
    indptr, indices = graph.indptr, graph.indices
    rows = range(n) if vertices is None else np.asarray(vertices, dtype=np.int64)
    for v in rows:
        nbrs = indices[indptr[v] : indptr[v + 1]]
        if nbrs.size:
            pc[v] = (dm[nbrs] == dm[v] - 1).sum(axis=0)
    return pc


def removal_affected_matrix(
    graph: CSRGraph,
    dm: np.ndarray,
    edges: "np.ndarray | list[tuple[int, int]] | None" = None,
    *,
    pred_counts: np.ndarray | None = None,
) -> np.ndarray:
    """Affected-source masks for **many** edges in one vectorized pass.

    Returns a ``(len(edges), n)`` boolean matrix whose row ``i`` equals
    :func:`removal_affected_sources` for ``edges[i]`` — the level-difference
    test becomes one |E|×n comparison against the base matrix, and the
    only-predecessor test one lookup into :func:`predecessor_counts` (pass
    ``pred_counts`` to amortize it across calls).  ``edges`` defaults to
    every edge of the graph; each pair must be an existing edge.
    """
    if edges is None:
        edges = graph.edges()
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if edges.shape[0] == 0:
        return np.zeros((0, graph.n), dtype=bool)
    pc = predecessor_counts(graph, dm) if pred_counts is None else pred_counts
    a = edges[:, 0]
    b = edges[:, 1]
    da = dm[a]
    db = dm[b]
    finite = (da < INT_INF_DISTANCE) & (db < INT_INF_DISTANCE)
    affected = finite & (db == da + 1) & (pc[b] < 2)
    affected |= finite & (da == db + 1) & (pc[a] < 2)
    return affected


def _invalid_set(
    indptr: np.ndarray,
    indices: np.ndarray,
    old: np.ndarray,
    lo: int,
    hi: int,
) -> np.ndarray:
    """Vertices whose distance from the row's source strictly increases.

    ``old`` is the pre-removal row; ``hi`` is the far endpoint of the removed
    edge (already known to have lost its only predecessor ``lo``).  A vertex
    at level ``L+1`` is invalid iff *all* of its level-``L`` predecessors are
    invalid; propagation is level-synchronous starting from ``hi``.
    """
    n = old.shape[0]
    invalid = np.zeros(n, dtype=bool)
    invalid[hi] = True
    frontier = np.asarray([hi], dtype=np.int32)
    level = int(old[hi])
    while frontier.size:
        srcs, nbrs = _frontier_neighbors(indptr, indices, frontier)
        if nbrs.size == 0:
            break
        cand = np.unique(nbrs[(old[nbrs] == level + 1) & ~invalid[nbrs]])
        if cand.size == 0:
            break
        csrcs, cnbrs = _frontier_neighbors(indptr, indices, cand.astype(np.int32))
        valid_pred = (old[cnbrs] == level) & ~invalid[cnbrs]
        has_valid = np.zeros(n, dtype=bool)
        has_valid[csrcs[valid_pred]] = True
        newly = cand[~has_valid[cand]]
        if newly.size == 0:
            break
        invalid[newly] = True
        frontier = newly.astype(np.int32)
        level += 1
    return invalid


def repair_row_after_removal(
    graph: CSRGraph,
    edge: tuple[int, int],
    old_row: np.ndarray,
) -> np.ndarray:
    """Repair one lifted distance row of ``graph`` for the deletion of ``edge``.

    ``old_row`` is the row *before* removal (lifted int64); the source is
    implicit (the unique vertex at distance 0).  Returns a fresh row equal to
    a from-scratch BFS in ``G − edge`` — including :data:`INT_INF_DISTANCE`
    entries when the removal disconnects part of the graph from the source.

    The repair is a seeded partial BFS: distances outside the invalid region
    are kept verbatim; the invalid region is re-settled by unit-weight
    multi-source Dijkstra seeded from its valid boundary.  Rows that the
    removal provably cannot change are returned as a plain copy.
    """
    a, b = _check_edge(graph, *edge)
    old = np.asarray(old_row, dtype=np.int64)
    da, db = int(old[a]), int(old[b])
    if da >= INT_INF_DISTANCE or db >= INT_INF_DISTANCE or abs(da - db) != 1:
        return old.copy()
    lo, hi = (a, b) if da < db else (b, a)
    indptr, indices = graph.indptr, graph.indices

    # If hi keeps another predecessor the row is provably unchanged.
    others = graph.neighbors(hi)
    others = others[others != lo]
    if others.size and (old[others] == old[hi] - 1).any():
        return old.copy()

    invalid = _invalid_set(indptr, indices, old, lo, hi)
    inv = np.nonzero(invalid)[0].astype(np.int32)
    new = old.copy()
    new[inv] = INT_INF_DISTANCE

    # Adjacency of the invalid region, with the removed edge masked out.
    isrcs, inbrs = _frontier_neighbors(indptr, indices, inv)
    if isrcs.size:
        keep = ~(
            ((isrcs == a) & (inbrs == b)) | ((isrcs == b) & (inbrs == a))
        )
        isrcs, inbrs = isrcs[keep], inbrs[keep]

    unresolved = invalid.copy()
    while isrcs.size:
        open_pairs = unresolved[isrcs]
        nbr_dist = new[inbrs]
        usable = open_pairs & (nbr_dist < INT_INF_DISTANCE)
        if not usable.any():
            break  # the rest is cut off from the source: stays infinite
        cand_dist = nbr_dist[usable] + 1
        settle_at = int(cand_dist.min())
        settled = np.unique(isrcs[usable][cand_dist == settle_at])
        new[settled] = settle_at
        unresolved[settled] = False
        if not unresolved.any():
            break
    return new


#: Column cap for one batched-BFS frontier block (bounds peak memory at
#: roughly ``3 · n · _BLOCK_ENTRIES_TARGET / n`` int32/bool entries).
_BLOCK_ENTRIES_TARGET = 1 << 24


def batched_removal_rows_multi(
    graph: CSRGraph,
    edges_a: np.ndarray,
    edges_b: np.ndarray,
    sources: np.ndarray,
    *,
    block_columns: int | None = None,
) -> np.ndarray:
    """Distance rows for many ``(removed edge, source)`` jobs in one BFS.

    Job ``j`` computes the distance row of ``sources[j]`` in
    ``G − {edges_a[j], edges_b[j]}`` — jobs may remove *different* edges.
    The sweep is level-synchronous over all jobs simultaneously: each BFS
    level is a single sparse product of the **full** adjacency against an
    ``(n, k)`` frontier block, after which the flow that crossed each job's
    removed edge is cancelled column-wise (``reached[b_j, j] −=
    frontier[a_j, j]`` and symmetrically).  Python overhead for a whole
    audit is therefore O(max diameter), not O(edges · diameter).

    Returns a ``(len(sources), n)`` lifted int64 matrix; vertices cut off
    from a job's source hold :data:`INT_INF_DISTANCE`.  ``block_columns``
    caps the frontier width per sweep (``None`` → a ~64 MB working set).
    """
    n = graph.n
    ea = np.asarray(edges_a, dtype=np.int64).ravel()
    eb = np.asarray(edges_b, dtype=np.int64).ravel()
    src = np.asarray(sources, dtype=np.int64).ravel()
    if not (ea.size == eb.size == src.size):
        raise GraphError(
            f"job arrays must align: {ea.size}, {eb.size}, {src.size}"
        )
    total = src.size
    out = np.full((total, n), INT_INF_DISTANCE, dtype=np.int64)
    if total == 0:
        return out
    adj = graph.to_scipy()
    if block_columns is None:
        block_columns = max(1, _BLOCK_ENTRIES_TARGET // max(n, 1))
    for lo in range(0, total, block_columns):
        hi = min(total, lo + block_columns)
        k = hi - lo
        a, b, s = ea[lo:hi], eb[lo:hi], src[lo:hi]
        dist = out[lo:hi]
        cols = np.arange(k)
        dist[cols, s] = 0
        # int32 frontier: the product counts frontier neighbours, which
        # reaches vertex degree — int8 would wrap at hubs of degree >= 128.
        frontier = np.zeros((n, k), dtype=np.int32)
        frontier[s, cols] = 1
        unvisited = np.ones((n, k), dtype=bool)
        unvisited[s, cols] = False
        level = 0
        while True:
            reached = adj.dot(frontier)
            # Cancel the contribution that flowed through each job's
            # removed edge; (b_j, j) pairs are distinct per column, so the
            # fancy-indexed subtraction is exact.
            reached[b, cols] -= frontier[a, cols]
            reached[a, cols] -= frontier[b, cols]
            newly = (reached > 0) & unvisited
            if not newly.any():
                break
            level += 1
            dist.T[newly] = level
            unvisited[newly] = False
            frontier = newly.astype(np.int32)
    return out


def _batched_removal_rows(
    graph: CSRGraph, a: int, b: int, sources: np.ndarray
) -> np.ndarray:
    """Single-edge convenience wrapper over the cross-edge batched BFS."""
    k = np.asarray(sources).size
    return batched_removal_rows_multi(
        graph,
        np.full(k, a, dtype=np.int64),
        np.full(k, b, dtype=np.int64),
        sources,
    )


#: Affected-row count above which the batched BFS beats per-row repairs.
_BATCH_THRESHOLD = 4


def removal_matrix_repair(
    graph: CSRGraph,
    dm: np.ndarray,
    edge: tuple[int, int],
    *,
    affected: np.ndarray | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Lifted APSP matrix of ``graph − edge`` derived from the base matrix.

    Unaffected rows are copied from ``dm`` wholesale (one memcpy); affected
    rows are recomputed, picking the cheapest sound strategy:

    * **bridge** — deleting a bridge leaves within-component distances
      untouched (a simple path cannot cross a bridge twice), so the update
      is two block assignments of the infinite sentinel — the dominant case
      for tree dynamics;
    * **few rows** — seeded partial BFS per row
      (:func:`repair_row_after_removal`);
    * **many rows** — one batched level-synchronous BFS over all affected
      sources (:func:`_batched_removal_rows`).

    Exactly equal to recomputing APSP on the rebuilt graph.  ``affected``
    lets a caller that already computed :func:`removal_affected_sources`
    pass it in.  ``out`` selects the destination: ``None`` (default)
    allocates a fresh copy of ``dm``; passing ``dm`` itself repairs **in
    place** (sound — every strategy reads only a row's own pre-repair
    state) — the dynamics engine's per-move path, which owns its matrix
    and must not pay an n×n copy per applied swap.
    """
    a, b = _check_edge(graph, *edge)
    if out is None:
        out = np.array(dm, dtype=np.int64, copy=True)
    elif out is not dm:
        np.copyto(out, dm)
    mask = (
        removal_affected_sources(graph, dm, (a, b))
        if affected is None
        else affected
    )
    sources = np.nonzero(mask)[0]
    if sources.size == 0:
        return out
    if sources.size <= _BATCH_THRESHOLD:
        # Small affected sets go straight to seeded per-row repairs (which
        # handle disconnection themselves); a bridge cannot land here for
        # n > threshold since it affects every source.
        for s in sources:
            out[s] = repair_row_after_removal(graph, (a, b), dm[s])
        return out
    half = bfs_distances(graph, b, exclude=(a, b))
    if half[a] == UNREACHABLE:  # bridge: b's side is cut off from a's
        side = half != UNREACHABLE
        out[np.ix_(side, ~side)] = INT_INF_DISTANCE
        out[np.ix_(~side, side)] = INT_INF_DISTANCE
        return out
    out[sources] = _batched_removal_rows(graph, a, b, sources)
    return out
