"""Mutable adjacency-set graphs for best-response dynamics.

:class:`AdjacencyGraph` trades the cache-friendly layout of
:class:`~repro.graphs.csr.CSRGraph` for O(1) edge mutation, which is what the
swap-dynamics inner loop needs: a dynamics run applies thousands of single
edge swaps, and rebuilding CSR arrays per swap would dominate the runtime.
The dynamics engine mutates an :class:`AdjacencyGraph` and snapshots to CSR
only when a distance kernel needs one (the snapshot is cached and invalidated
on mutation).
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from ..errors import GraphError, InvalidEdgeError
from .csr import CSRGraph

__all__ = ["AdjacencyGraph"]


class AdjacencyGraph:
    """A mutable simple undirected graph backed by per-vertex sets.

    Parameters
    ----------
    n:
        Number of vertices.
    edges:
        Initial edges; duplicates/self-loops raise :class:`InvalidEdgeError`.
    """

    __slots__ = ("n", "_adj", "_m", "_csr_cache")

    def __init__(self, n: int, edges: Iterable[tuple[int, int]] = ()):
        if n < 0:
            raise GraphError(f"vertex count must be non-negative, got {n}")
        self.n = int(n)
        self._adj: list[set[int]] = [set() for _ in range(self.n)]
        self._m = 0
        self._csr_cache: CSRGraph | None = None
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_csr(cls, g: CSRGraph) -> "AdjacencyGraph":
        """Build a mutable copy of ``g``."""
        out = cls(g.n)
        for u, v in g.iter_edges():
            out.add_edge(u, v)
        return out

    def copy(self) -> "AdjacencyGraph":
        """Deep copy (adjacency sets are duplicated)."""
        out = AdjacencyGraph(self.n)
        out._adj = [set(s) for s in self._adj]
        out._m = self._m
        return out

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        """Number of undirected edges."""
        return self._m

    def degree(self, v: int) -> int:
        """Degree of vertex ``v``."""
        self._check_vertex(v)
        return len(self._adj[v])

    def neighbors(self, v: int) -> set[int]:
        """The neighbour set of ``v`` (a live reference; do not mutate)."""
        self._check_vertex(v)
        return self._adj[v]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether edge ``{u, v}`` exists."""
        self._check_vertex(u)
        self._check_vertex(v)
        return v in self._adj[u]

    def iter_edges(self) -> Iterator[tuple[int, int]]:
        """Iterate canonical ``(u, v)`` with ``u < v``."""
        for u in range(self.n):
            for v in self._adj[u]:
                if u < v:
                    yield (u, v)

    def edge_set(self) -> frozenset[tuple[int, int]]:
        """Frozen canonical edge set (dynamics cycle-detection key)."""
        return frozenset(self.iter_edges())

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int) -> None:
        """Insert edge ``{u, v}``; raises if it exists or is a self-loop."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise InvalidEdgeError(f"self-loop ({u}, {v}) not allowed")
        if v in self._adj[u]:
            raise InvalidEdgeError(f"edge ({u}, {v}) already present")
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._m += 1
        self._csr_cache = None

    def remove_edge(self, u: int, v: int) -> None:
        """Delete edge ``{u, v}``; raises if missing."""
        self._check_vertex(u)
        self._check_vertex(v)
        if v not in self._adj[u]:
            raise InvalidEdgeError(f"edge ({u}, {v}) not present")
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._m -= 1
        self._csr_cache = None

    def swap_edge(self, v: int, drop: int, add: int) -> None:
        """Apply the basic-game move at ``v``: replace ``v–drop`` by ``v–add``.

        Following the paper, swapping onto an existing neighbour (or onto
        ``drop`` itself … a no-op) encodes *deletion* of the dropped edge:
        the result is always a simple graph.
        """
        self._check_vertex(v)
        self._check_vertex(drop)
        self._check_vertex(add)
        if drop not in self._adj[v]:
            raise InvalidEdgeError(f"swap drops missing edge ({v}, {drop})")
        if add == v:
            raise InvalidEdgeError(f"swap cannot add self-loop at {v}")
        self.remove_edge(v, drop)
        if add != drop and add not in self._adj[v]:
            self.add_edge(v, add)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def to_csr(self) -> CSRGraph:
        """Immutable CSR snapshot (cached until the next mutation)."""
        if self._csr_cache is None:
            self._csr_cache = CSRGraph(self.n, self.iter_edges())
        return self._csr_cache

    def neighbors_array(self, v: int) -> np.ndarray:
        """Sorted ``int32`` array of neighbours of ``v`` (a fresh copy)."""
        self._check_vertex(v)
        return np.fromiter(
            sorted(self._adj[v]), dtype=np.int32, count=len(self._adj[v])
        )

    # ------------------------------------------------------------------
    # Protocols
    # ------------------------------------------------------------------
    def _check_vertex(self, v: int) -> None:
        if not 0 <= int(v) < self.n:
            raise GraphError(f"vertex {v} out of range for n={self.n}")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AdjacencyGraph):
            return NotImplemented
        return self.n == other.n and self._adj == other._adj

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AdjacencyGraph(n={self.n}, m={self.m})"
