"""Distance computations: APSP, eccentricities, diameter, Wiener-type costs.

Two engines are provided and cross-validated by the test suite:

* ``"scipy"`` — :func:`scipy.sparse.csgraph.shortest_path` with
  ``unweighted=True`` (compiled BFS per source; the fast path);
* ``"numpy"`` — the library's own vectorized frontier BFS from
  :mod:`repro.graphs.bfs`, one source at a time (the reference path, also the
  only path that supports patches).

``method="auto"`` picks scipy.  All distance matrices are int32 with
:data:`~repro.graphs.bfs.UNREACHABLE` (= -1) for disconnected pairs, a
convention chosen so a single ``>= 0`` mask recovers reachability.
"""

from __future__ import annotations

import math
from typing import Literal

import numpy as np

from ..errors import DisconnectedGraphError, GraphError
from .bfs import UNREACHABLE, bfs_distances
from .csr import CSRGraph

__all__ = [
    "distance_matrix",
    "eccentricities",
    "diameter",
    "diameter_or_inf",
    "radius",
    "is_connected",
    "sum_distances_from",
    "total_pairwise_distance",
    "average_distance",
    "distance_histogram",
    "sphere_sizes",
    "ball_sizes",
]

Method = Literal["auto", "scipy", "numpy"]


def distance_matrix(graph: CSRGraph, method: Method = "auto") -> np.ndarray:
    """All-pairs shortest-path distances as an ``(n, n)`` int32 matrix.

    Unreachable pairs hold :data:`UNREACHABLE`.  The diagonal is 0.
    """
    n = graph.n
    if n == 0:
        return np.empty((0, 0), dtype=np.int32)
    if method not in ("auto", "scipy", "numpy"):
        raise GraphError(f"unknown distance method {method!r}")
    if method in ("auto", "scipy"):
        from scipy.sparse import csgraph

        dm = csgraph.shortest_path(
            graph.to_scipy(), method="D", unweighted=True, directed=False
        )
        out = np.full((n, n), UNREACHABLE, dtype=np.int32)
        finite = np.isfinite(dm)
        out[finite] = dm[finite].astype(np.int32)
        return out
    out = np.empty((n, n), dtype=np.int32)
    for v in range(n):
        out[v] = bfs_distances(graph, v)
    return out


def is_connected(graph: CSRGraph) -> bool:
    """Whether the graph is connected (the empty graph counts as connected)."""
    if graph.n <= 1:
        return True
    dist = bfs_distances(graph, 0)
    return bool((dist != UNREACHABLE).all())


def eccentricities(graph: CSRGraph, dm: np.ndarray | None = None) -> np.ndarray:
    """Per-vertex eccentricity (the paper's *local diameter*), int64.

    Disconnected graphs yield :data:`UNREACHABLE` for every vertex, matching
    the convention that a swap disconnecting the graph is never improving.
    """
    n = graph.n
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if dm is None:
        dm = distance_matrix(graph)
    if (dm == UNREACHABLE).any():
        return np.full(n, UNREACHABLE, dtype=np.int64)
    return dm.max(axis=1).astype(np.int64)


def diameter(graph: CSRGraph, dm: np.ndarray | None = None) -> int:
    """Graph diameter; raises :class:`DisconnectedGraphError` if disconnected."""
    if graph.n <= 1:
        return 0
    if dm is None:
        dm = distance_matrix(graph)
    if (dm == UNREACHABLE).any():
        raise DisconnectedGraphError("diameter of a disconnected graph")
    return int(dm.max())


def diameter_or_inf(graph: CSRGraph, dm: np.ndarray | None = None) -> float:
    """Diameter as a float, ``math.inf`` when disconnected."""
    try:
        return float(diameter(graph, dm))
    except DisconnectedGraphError:
        return math.inf


def radius(graph: CSRGraph, dm: np.ndarray | None = None) -> int:
    """Graph radius (min eccentricity); raises when disconnected."""
    if graph.n <= 1:
        return 0
    ecc = eccentricities(graph, dm)
    if (ecc == UNREACHABLE).any():
        raise DisconnectedGraphError("radius of a disconnected graph")
    return int(ecc.min())


def sum_distances_from(graph: CSRGraph, v: int) -> float:
    """Sum of distances from ``v`` to all vertices; ``inf`` when some are unreachable."""
    dist = bfs_distances(graph, v)
    if (dist == UNREACHABLE).any():
        return math.inf
    return float(dist.sum(dtype=np.int64))


def total_pairwise_distance(
    graph: CSRGraph, dm: np.ndarray | None = None
) -> float:
    """Sum of d(u, v) over *ordered* pairs — the sum-version social cost.

    This equals twice the Wiener index.  Returns ``inf`` when disconnected.
    """
    if graph.n <= 1:
        return 0.0
    if dm is None:
        dm = distance_matrix(graph)
    if (dm == UNREACHABLE).any():
        return math.inf
    return float(dm.sum(dtype=np.int64))


def average_distance(graph: CSRGraph, dm: np.ndarray | None = None) -> float:
    """Mean distance over ordered distinct pairs; ``inf`` when disconnected."""
    n = graph.n
    if n <= 1:
        return 0.0
    total = total_pairwise_distance(graph, dm)
    return total / (n * (n - 1))


def distance_histogram(
    graph: CSRGraph, dm: np.ndarray | None = None
) -> np.ndarray:
    """Counts of ordered vertex pairs at each distance ``0..diameter``.

    Index ``k`` holds ``#{(u, v) : d(u, v) = k}``; requires connectivity.
    """
    if graph.n == 0:
        return np.zeros(1, dtype=np.int64)
    if dm is None:
        dm = distance_matrix(graph)
    if (dm == UNREACHABLE).any():
        raise DisconnectedGraphError("distance histogram of a disconnected graph")
    return np.bincount(dm.ravel()).astype(np.int64)


def sphere_sizes(graph: CSRGraph, v: int) -> np.ndarray:
    """``S_k(v)``: number of vertices at distance exactly ``k`` from ``v``.

    The paper's Theorem 9 notation.  Length is ``ecc(v) + 1``; requires the
    graph to be connected (unreachable vertices would make the spheres
    ill-defined).
    """
    dist = bfs_distances(graph, v)
    if (dist == UNREACHABLE).any():
        raise DisconnectedGraphError("sphere sizes of a disconnected graph")
    return np.bincount(dist).astype(np.int64)


def ball_sizes(graph: CSRGraph, v: int) -> np.ndarray:
    """``B_k(v) = Σ_{i ≤ k} S_i(v)``: closed-ball sizes (Theorem 9 notation)."""
    return np.cumsum(sphere_sizes(graph, v))
