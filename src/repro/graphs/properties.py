"""Structural graph properties used by the paper's proofs.

* **girth** — Lemma 8 applies to girth-4 graphs (Theorem 5's verification);
* **cut vertices** — Lemma 3 constrains components hanging off a cut vertex
  of a max equilibrium (Tarjan's articulation-point algorithm, iterative);
* **vertex transitivity** — Theorem 12's torus proofs lean on transitivity;
  we provide an exact check (small n, via automorphism search on distance
  profiles) and a cheap necessary condition (identical sorted distance
  vectors), which suffices for large instances;
* **neighborhood independence** — the paper proves Figure 3 has girth 4 "by
  checking that the neighbor set of each vertex is an independent set"; we
  expose that exact test.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError
from .csr import CSRGraph
from .distances import distance_matrix

__all__ = [
    "girth",
    "cut_vertices",
    "connected_components",
    "is_bipartite",
    "neighborhoods_are_independent",
    "distance_profiles_identical",
    "is_vertex_transitive",
    "degree_sequence",
]


def girth(graph: CSRGraph) -> float:
    """Length of the shortest cycle; ``inf`` for forests.

    BFS from every vertex; a non-tree edge closing at depth ``d`` witnesses a
    cycle of length ``2d + 1`` (cross edge within a level) or ``2d`` (edge to
    the previous level's sibling).  O(n·m) total — fine for the instance sizes
    the equilibrium audits handle.
    """
    n = graph.n
    best = float("inf")
    for root in range(n):
        dist = np.full(n, -1, dtype=np.int32)
        parent = np.full(n, -1, dtype=np.int32)
        dist[root] = 0
        queue = [root]
        head = 0
        while head < len(queue):
            u = queue[head]
            head += 1
            if dist[u] * 2 >= best:
                break
            for v in graph.neighbors(u):
                v = int(v)
                if dist[v] == -1:
                    dist[v] = dist[u] + 1
                    parent[v] = u
                    queue.append(v)
                elif parent[u] != v:
                    # Non-tree edge: cycle through root of length <= d(u)+d(v)+1.
                    cycle = int(dist[u]) + int(dist[v]) + 1
                    if cycle < best:
                        best = cycle
    return best


def connected_components(graph: CSRGraph) -> list[list[int]]:
    """Connected components as sorted vertex lists, ordered by minimum vertex."""
    n = graph.n
    seen = np.zeros(n, dtype=bool)
    comps: list[list[int]] = []
    for s in range(n):
        if seen[s]:
            continue
        stack = [s]
        seen[s] = True
        comp = []
        while stack:
            u = stack.pop()
            comp.append(u)
            for v in graph.neighbors(u):
                v = int(v)
                if not seen[v]:
                    seen[v] = True
                    stack.append(v)
        comps.append(sorted(comp))
    return comps


def cut_vertices(graph: CSRGraph) -> set[int]:
    """Articulation points, via iterative Tarjan lowlink DFS."""
    n = graph.n
    disc = np.full(n, -1, dtype=np.int64)
    low = np.full(n, -1, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64)
    result: set[int] = set()
    timer = 0
    for root in range(n):
        if disc[root] != -1:
            continue
        root_children = 0
        # Each frame: (vertex, iterator over neighbours).
        stack = [(root, iter(graph.neighbors(root)))]
        disc[root] = low[root] = timer
        timer += 1
        while stack:
            u, it = stack[-1]
            advanced = False
            for v in it:
                v = int(v)
                if disc[v] == -1:
                    parent[v] = u
                    if u == root:
                        root_children += 1
                    disc[v] = low[v] = timer
                    timer += 1
                    stack.append((v, iter(graph.neighbors(v))))
                    advanced = True
                    break
                elif v != parent[u]:
                    low[u] = min(low[u], disc[v])
            if not advanced:
                stack.pop()
                if stack:
                    p = stack[-1][0]
                    low[p] = min(low[p], low[u])
                    if p != root and low[u] >= disc[p]:
                        result.add(int(p))
        if root_children >= 2:
            result.add(root)
    return result


def is_bipartite(graph: CSRGraph) -> bool:
    """2-colourability via BFS layering."""
    n = graph.n
    color = np.full(n, -1, dtype=np.int8)
    for s in range(n):
        if color[s] != -1:
            continue
        color[s] = 0
        queue = [s]
        head = 0
        while head < len(queue):
            u = queue[head]
            head += 1
            for v in graph.neighbors(u):
                v = int(v)
                if color[v] == -1:
                    color[v] = 1 - color[u]
                    queue.append(v)
                elif color[v] == color[u]:
                    return False
    return True


def neighborhoods_are_independent(graph: CSRGraph) -> bool:
    """Whether every vertex's neighbour set is independent (no triangles).

    The paper's girth-4 certificate for Figure 3: neighbourhood independence
    is exactly triangle-freeness, so (for a graph containing a cycle) it
    certifies girth ≥ 4.
    """
    for u in range(graph.n):
        nbrs = graph.neighbors(u)
        nbr_set = set(int(x) for x in nbrs)
        for v in nbrs:
            if nbr_set & set(int(x) for x in graph.neighbors(int(v))):
                return False
    return True


def degree_sequence(graph: CSRGraph) -> tuple[int, ...]:
    """Sorted (descending) degree sequence."""
    return tuple(sorted((int(d) for d in graph.degrees()), reverse=True))


def distance_profiles_identical(
    graph: CSRGraph, dm: np.ndarray | None = None
) -> bool:
    """Necessary condition for vertex transitivity.

    Every vertex of a vertex-transitive graph has the same multiset of
    distances to the other vertices.  This is cheap (one sort of the distance
    matrix rows) and is what the large-instance torus audits use.
    """
    if graph.n <= 1:
        return True
    if dm is None:
        dm = distance_matrix(graph)
    rows = np.sort(dm, axis=1)
    return bool((rows == rows[0]).all())


def is_vertex_transitive(graph: CSRGraph, max_n: int = 64) -> bool:
    """Exact vertex-transitivity check by automorphism search.

    For every target vertex ``t`` we search for an automorphism mapping
    vertex 0 to ``t`` with a backtracking search over candidate images,
    pruned by degree and distance-profile invariants.  Exponential in the
    worst case, hence guarded by ``max_n``; the paper's constructions are
    highly symmetric and resolve quickly.
    """
    n = graph.n
    if n > max_n:
        raise GraphError(
            f"exact transitivity check limited to n <= {max_n}, got {n}"
        )
    if n <= 1:
        return True
    dm = distance_matrix(graph)
    if not distance_profiles_identical(graph, dm):
        return False
    profiles = [tuple(np.sort(dm[v]).tolist()) for v in range(n)]
    degs = graph.degrees()
    adj = [set(int(x) for x in graph.neighbors(v)) for v in range(n)]

    def extend(mapping: dict[int, int], used: set[int]) -> bool:
        if len(mapping) == n:
            return True
        # Pick the unmapped vertex with the most mapped neighbours (most
        # constrained first).
        v = max(
            (x for x in range(n) if x not in mapping),
            key=lambda x: sum(1 for y in adj[x] if y in mapping),
        )
        mapped_nbrs = [(y, mapping[y]) for y in adj[v] if y in mapping]
        for img in range(n):
            if img in used:
                continue
            if degs[img] != degs[v] or profiles[img] != profiles[v]:
                continue
            if any(img not in adj[iy] for _, iy in mapped_nbrs):
                continue
            # Non-neighbours must also map to non-neighbours; enforced lazily:
            # since we only check edges, verify non-adjacency violations too.
            ok = True
            for y, iy in mapping.items():
                if (y in adj[v]) != (iy in adj[img]):
                    ok = False
                    break
            if not ok:
                continue
            mapping[v] = img
            used.add(img)
            if extend(mapping, used):
                return True
            del mapping[v]
            used.discard(img)
        return False

    for target in range(1, n):
        if not extend({0: target}, {target}):
            return False
    return True
