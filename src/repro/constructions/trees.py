"""Equilibrium trees: stars and double stars (Section 2, Figures 1–2).

Theorem 1: the only sum-equilibrium tree is the star (diameter 2).
Theorem 4 + Figure 2: max-equilibrium trees have diameter at most 3, and
diameter 3 is achieved by **double stars** — two adjacent roots each carrying
at least two leaves.  ("To be in max equilibrium, the latter type must have
at least two leaves attached to each star root.")

:func:`figure2_insertion_effects` scripts the caption of Figure 2: of the
three dashed candidate insertions (leaf→cousin-leaf, leaf→sibling-leaf,
leaf→far root), only the far-root edge ``aw`` lowers the local diameter of
its leaf endpoint — and any *swap* at that leaf must drop ``av``, restoring
the original local diameter.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import GraphError
from ..graphs import CSRGraph, bfs_aggregates
from ..graphs.distances import eccentricities

__all__ = [
    "double_star",
    "figure2_tree",
    "InsertionEffect",
    "figure2_insertion_effects",
]


def double_star(p: int, q: int) -> CSRGraph:
    """The double star: roots ``0`` (with ``p`` leaves) and ``1`` (with ``q``).

    Vertices: ``0``, ``1`` are the adjacent roots; ``2..p+1`` are root-0
    leaves; ``p+2..p+q+1`` are root-1 leaves.  Diameter 3 when both sides
    have a leaf.  Max equilibrium requires ``p, q >= 2`` (with a single leaf,
    the leaf's swap onto the far root strictly improves it).
    """
    if p < 1 or q < 1:
        raise GraphError(f"double star needs p, q >= 1, got {p}, {q}")
    edges = [(0, 1)]
    edges += [(0, 2 + i) for i in range(p)]
    edges += [(1, 2 + p + j) for j in range(q)]
    return CSRGraph(2 + p + q, edges)


def figure2_tree() -> CSRGraph:
    """The exact tree drawn in Figure 2: roots ``v, w`` with two leaves each.

    Layout (matching the figure's labels): ``v=0``, ``w=1``, leaves ``a=2``
    and ``a'=3`` on ``v``, leaves ``b=4`` and ``5`` on ``w``.
    """
    return double_star(2, 2)


@dataclass(frozen=True, slots=True)
class InsertionEffect:
    """Effect of inserting one edge on the endpoints' local diameters."""

    label: str
    edge: tuple[int, int]
    ecc_before: tuple[int, int]
    ecc_after: tuple[int, int]

    @property
    def helps_someone(self) -> bool:
        return (
            self.ecc_after[0] < self.ecc_before[0]
            or self.ecc_after[1] < self.ecc_before[1]
        )


def _ecc_pair_after_insertion(g: CSRGraph, u: int, v: int) -> tuple[int, int]:
    added = g.with_edges(add=[(u, v)])
    _, ecc_u, _ = bfs_aggregates(added, u)
    _, ecc_v, _ = bfs_aggregates(added, v)
    return int(ecc_u), int(ecc_v)


def figure2_insertion_effects() -> list[InsertionEffect]:
    """The three dashed insertions of Figure 2, measured.

    Returns effects for ``a–a'`` (cousin leaf), ``a–b`` (leaf across), and
    ``a–w`` (far root), with vertex numbering from :func:`figure2_tree`.
    The caption's claim — only ``a–w`` decreases an endpoint's local
    diameter, and only for ``a`` — is asserted by the test suite against
    this function's output.
    """
    g = figure2_tree()
    ecc = eccentricities(g)
    a, a_prime, b, w = 2, 3, 4, 1
    effects = []
    for label, (x, y) in (
        ("a-a' (cousin leaf)", (a, a_prime)),
        ("a-b (far leaf)", (a, b)),
        ("a-w (far root)", (a, w)),
    ):
        after = _ecc_pair_after_insertion(g, x, y)
        effects.append(
            InsertionEffect(
                label=label,
                edge=(x, y),
                ecc_before=(int(ecc[x]), int(ecc[y])),
                ecc_after=after,
            )
        )
    return effects
