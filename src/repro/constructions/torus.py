"""The Theorem 12 family: max equilibria of diameter Θ(√n) — and Θ(n^{1/d}).

Figure 4's graph is "a 2D torus rotated 45°": vertices are integer pairs
``(i, j)`` with ``0 ≤ i, j < 2k`` and ``i + j`` even (so ``n = 2k²``), and
every vertex is adjacent to its four diagonal neighbours
``(i±1, j±1) mod 2k``.  The paper proves its distance law

    d((i,j), (i',j')) = max( d_circ(i, i'), d_circ(j, j') )

(each step moves *both* coordinates by ±1), giving local diameter exactly
``k`` everywhere, and shows the graph is deletion-critical and
insertion-stable — hence a max equilibrium of diameter Θ(√n).  A standard
(axis-aligned) torus is **not** in max equilibrium; the rotation is
load-bearing, and :func:`standard_torus` exists so the benches can exhibit
the difference.

The d-dimensional generalization puts a vertex at every
``(i_1, …, i_d) ∈ [0, 2k)^d`` with all coordinates of equal parity
(``n = 2k^d``) and joins all ``2^d`` sign patterns ``(i_1±1, …, i_d±1)``.
It has diameter ``k = Θ(n^{1/d})`` and is stable under up to ``d − 1``
simultaneous insertions at one vertex — the diameter-vs-computational-power
trade-off Ω(n^{1/(k+1)}).
"""

from __future__ import annotations

import itertools

from ..errors import GraphError
from ..graphs import CSRGraph

__all__ = [
    "rotated_torus",
    "rotated_torus_vertices",
    "rotated_torus_index",
    "rotated_torus_distance",
    "diagonal_torus",
    "diagonal_torus_vertices",
    "diagonal_torus_distance",
    "standard_torus",
    "circular_distance",
]


def circular_distance(a: int, b: int, modulus: int) -> int:
    """1D distance on the modulo-``modulus`` circle (the paper's ``d(i, i')``)."""
    diff = abs(int(a) - int(b)) % modulus
    return min(diff, modulus - diff)


# ---------------------------------------------------------------------------
# 2D rotated torus (Figure 4)
# ---------------------------------------------------------------------------

def rotated_torus_vertices(k: int) -> list[tuple[int, int]]:
    """The ``2k²`` coordinate pairs ``(i, j)``, ``i + j`` even, sorted."""
    if k < 2:
        raise GraphError(f"rotated torus needs k >= 2, got {k}")
    side = 2 * k
    return [
        (i, j) for i in range(side) for j in range(side) if (i + j) % 2 == 0
    ]


def rotated_torus_index(k: int) -> dict[tuple[int, int], int]:
    """Coordinate → vertex-id map consistent with :func:`rotated_torus`."""
    return {c: idx for idx, c in enumerate(rotated_torus_vertices(k))}


def rotated_torus(k: int) -> CSRGraph:
    """Figure 4's graph on ``n = 2k²`` vertices (``k ≥ 2``)."""
    side = 2 * k
    coords = rotated_torus_vertices(k)
    index = {c: idx for idx, c in enumerate(coords)}
    edges = set()
    for (i, j) in coords:
        u = index[(i, j)]
        for di, dj in ((1, 1), (1, -1), (-1, 1), (-1, -1)):
            v = index[((i + di) % side, (j + dj) % side)]
            if u != v:
                edges.add((u, v) if u < v else (v, u))
    return CSRGraph(len(coords), edges)


def rotated_torus_distance(
    k: int, a: tuple[int, int], b: tuple[int, int]
) -> int:
    """The closed-form distance ``max(d_circ(i,i'), d_circ(j,j'))``.

    Verified against BFS by the property tests — this is the identity the
    whole Theorem 12 proof rests on.
    """
    side = 2 * k
    return max(
        circular_distance(a[0], b[0], side),
        circular_distance(a[1], b[1], side),
    )


def standard_torus(rows: int, cols: int) -> CSRGraph:
    """The ordinary 4-neighbour (axis-aligned) torus grid.

    The paper notes it is *not* in max equilibrium — the contrast graph for
    the Figure 4 bench.  Vertex ``(r, c)`` is ``r * cols + c``.
    """
    if rows < 3 or cols < 3:
        raise GraphError(
            f"standard torus needs rows, cols >= 3, got {rows}x{cols}"
        )
    edges = set()
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            for v in (r * cols + (c + 1) % cols, ((r + 1) % rows) * cols + c):
                if u != v:
                    edges.add((u, v) if u < v else (v, u))
    return CSRGraph(rows * cols, edges)


# ---------------------------------------------------------------------------
# d-dimensional generalization
# ---------------------------------------------------------------------------

def diagonal_torus_vertices(k: int, d: int) -> list[tuple[int, ...]]:
    """All points of ``[0, 2k)^d`` whose coordinates share one parity.

    ``n = 2 k^d``: the even-coordinate class and the odd-coordinate class,
    each of size ``k^d``.
    """
    if k < 2:
        raise GraphError(f"diagonal torus needs k >= 2, got {k}")
    if d < 1:
        raise GraphError(f"diagonal torus needs d >= 1, got {d}")
    evens = range(0, 2 * k, 2)
    odds = range(1, 2 * k, 2)
    verts = [tuple(p) for p in itertools.product(evens, repeat=d)]
    verts += [tuple(p) for p in itertools.product(odds, repeat=d)]
    return sorted(verts)


def diagonal_torus(k: int, d: int) -> CSRGraph:
    """The d-dimensional Theorem 12 construction (``n = 2k^d``, degree ``2^d``)."""
    side = 2 * k
    coords = diagonal_torus_vertices(k, d)
    index = {c: idx for idx, c in enumerate(coords)}
    edges = set()
    signs = list(itertools.product((1, -1), repeat=d))
    for c in coords:
        u = index[c]
        for sign in signs:
            target = tuple((c[t] + sign[t]) % side for t in range(d))
            v = index[target]
            if u != v:
                edges.add((u, v) if u < v else (v, u))
    return CSRGraph(len(coords), edges)


def diagonal_torus_distance(
    k: int, a: tuple[int, ...], b: tuple[int, ...]
) -> int:
    """Closed-form distance ``max_t d_circ(a_t, b_t)`` for same-parity points.

    Exact because every step shifts *every* coordinate by ±1 and all the
    per-coordinate circular distances share one parity (``2k`` is even), so
    ``t = max_t d_circ`` steps realize all displacements simultaneously.
    """
    side = 2 * k
    if len(a) != len(b):
        raise GraphError("dimension mismatch")
    return max(circular_distance(x, y, side) for x, y in zip(a, b))
