"""Every explicit construction appearing in the paper, plus contrast graphs.

* :mod:`~repro.constructions.trees` — stars / double stars (Figures 1–2);
* :mod:`~repro.constructions.figure3` — the diameter-3 sum equilibrium;
* :mod:`~repro.constructions.torus` — the Θ(√n) max equilibrium and its
  d-dimensional generalization (Figure 4 / Theorem 12);
* :mod:`~repro.constructions.projective` — PG(2, q) and polarity graphs
  (the Albers et al. diameter-2 equilibrium lineage);
* :mod:`~repro.constructions.cayley` — Abelian Cayley graphs (Theorem 15);
* :mod:`~repro.constructions.spider` — the Conjecture 14 counterexample.
"""

from .cayley import (
    AbelianGroup,
    cayley_graph,
    circulant_graph,
    even_sum_subgroup_cayley,
    hypercube_graph,
    random_connection_set,
)
from .figure3 import (
    figure3_all_straight_variant,
    figure3_graph,
    figure3_improving_swap,
    figure3_vertex_names,
    minimal_diameter3_witness,
    repaired_diameter3_witness,
)
from .projective import (
    absolute_points,
    incidence_graph,
    is_prime,
    polarity_graph,
    projective_plane_lines,
    projective_plane_points,
)
from .spider import SpiderShape, spider_for_epsilon, spider_graph
from .torus import (
    circular_distance,
    diagonal_torus,
    diagonal_torus_distance,
    diagonal_torus_vertices,
    rotated_torus,
    rotated_torus_distance,
    rotated_torus_index,
    rotated_torus_vertices,
    standard_torus,
)
from .trees import (
    InsertionEffect,
    double_star,
    figure2_insertion_effects,
    figure2_tree,
)

__all__ = [
    "AbelianGroup",
    "InsertionEffect",
    "SpiderShape",
    "absolute_points",
    "cayley_graph",
    "circulant_graph",
    "circular_distance",
    "diagonal_torus",
    "diagonal_torus_distance",
    "diagonal_torus_vertices",
    "double_star",
    "even_sum_subgroup_cayley",
    "figure2_insertion_effects",
    "figure2_tree",
    "figure3_all_straight_variant",
    "figure3_graph",
    "figure3_improving_swap",
    "figure3_vertex_names",
    "repaired_diameter3_witness",
    "hypercube_graph",
    "incidence_graph",
    "is_prime",
    "minimal_diameter3_witness",
    "polarity_graph",
    "projective_plane_lines",
    "projective_plane_points",
    "random_connection_set",
    "rotated_torus",
    "rotated_torus_distance",
    "rotated_torus_index",
    "rotated_torus_vertices",
    "spider_for_epsilon",
    "spider_graph",
    "standard_torus",
]
