"""The Conjecture 14 counterexample ("spider") graph.

After stating Conjecture 14 (distance-almost-uniform graphs have diameter
O(lg n)) the paper warns that the *per-vertex* quantifier is crucial:

    "Otherwise, a large-diameter example would be a node of degree Θ(1/ε)
    attached to paths of length (d−2)/2, with Θ(εn) vertices attached to
    the end of each path."

That graph — a hub with ``L`` legs, each a path ending in a blob of leaves —
has almost all *pairs* of vertices at one common distance ``≈ d`` (blob-to-
blob across the hub), yet is wildly non-uniform *per vertex* (the hub sees
everything within ``d/2 + 1``) and has diameter ``d + 2``.  It separates the
pairwise and per-vertex notions of distance uniformity, which is what the
``conj14-counterexample`` experiment measures.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import GraphError
from ..graphs import CSRGraph

__all__ = ["spider_graph", "SpiderShape", "spider_for_epsilon"]


@dataclass(frozen=True, slots=True)
class SpiderShape:
    """Parameters of a spider instance.

    ``legs`` paths of ``path_len`` inner vertices each leave the hub; each
    path's far end carries ``blob`` extra leaves.  Total
    ``n = 1 + legs * (path_len + blob)``.
    """

    legs: int
    path_len: int
    blob: int

    @property
    def n(self) -> int:
        return 1 + self.legs * (self.path_len + self.blob)

    @property
    def diameter(self) -> int:
        """Blob leaf → blob leaf across the hub: ``2 (path_len + 1)``."""
        return 2 * (self.path_len + 1)

    @property
    def modal_pair_distance(self) -> int:
        """The distance shared by blob-to-blob pairs on different legs."""
        return 2 * (self.path_len + 1)


def spider_graph(shape: SpiderShape) -> CSRGraph:
    """Build the spider.  Vertex 0 is the hub; legs are laid out consecutively.

    Leg ``t`` occupies vertices ``1 + t*(path_len+blob) .. ``: first its
    ``path_len`` path vertices (hub-adjacent first), then its ``blob``
    leaves hanging off the last path vertex.
    """
    if shape.legs < 2:
        raise GraphError(f"spider needs >= 2 legs, got {shape.legs}")
    if shape.path_len < 1 or shape.blob < 1:
        raise GraphError(
            f"spider needs path_len, blob >= 1, got {shape.path_len}, {shape.blob}"
        )
    edges = []
    per_leg = shape.path_len + shape.blob
    for t in range(shape.legs):
        base = 1 + t * per_leg
        edges.append((0, base))
        for i in range(shape.path_len - 1):
            edges.append((base + i, base + i + 1))
        tip = base + shape.path_len - 1
        for b in range(shape.blob):
            edges.append((tip, base + shape.path_len + b))
    return CSRGraph(shape.n, edges)


def spider_for_epsilon(epsilon: float, target_diameter: int) -> SpiderShape:
    """The paper's parameterization: degree Θ(1/ε), paths of length (d−2)/2.

    Chooses ``legs = ⌈1/ε⌉`` and sizes blobs so each holds about an ε
    fraction of the graph (the smallest blob size that dominates the path
    vertices), giving a graph where all but an O(ε) fraction of *pairs*
    realize one common distance while per-vertex uniformity fails.
    """
    if not 0 < epsilon <= 0.5:
        raise GraphError(f"epsilon must be in (0, 0.5], got {epsilon}")
    if target_diameter < 4 or target_diameter % 2 != 0:
        raise GraphError(
            f"target diameter must be an even integer >= 4, got {target_diameter}"
        )
    legs = max(2, int(round(1.0 / epsilon)))
    path_len = (target_diameter - 2) // 2
    # Blobs must dominate path interiors for the pairwise mass to concentrate
    # (cross-leg blob pairs approach the 1 - 1/legs ceiling as blobs grow);
    # a 4x multiplier keeps instances small while getting within ~85% of it.
    blob = max(1, 4 * path_len * legs)
    return SpiderShape(legs=legs, path_len=path_len, blob=blob)
