"""Cayley graphs of Abelian groups — the Theorem 15 setting.

A Cayley graph of an Abelian group ``A`` with respect to a symmetric
connection set ``S ⊂ A`` (``S = -S``, ``0 ∉ S``) joins ``a ~ a + s``.  The
paper proves that ε-distance-uniform Abelian Cayley graphs (ε < 1/4) have
diameter ``O(lg n / lg(1/ε))`` via iterated-sumset growth; the sumset side
lives in :mod:`repro.analysis.sumsets`, the graphs live here.

Groups are products ``Z_{m1} × … × Z_{mk}``, elements encoded as integer
tuples and indexed in mixed-radix order, so group arithmetic vectorizes into
modular adds on an ``(n, k)`` int array.

The paper's own bridge between its two constructions is included:
Figure 4's rotated torus *is* the Cayley graph of the even-coordinate-sum
subgroup of ``Z_{2k}²`` with ``S = {(±1, ±1)}``
(:func:`even_sum_subgroup_cayley`), and the test suite checks it is
isomorphic to :func:`repro.constructions.torus.rotated_torus` via the
explicit coordinate bijection.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..errors import GraphError
from ..graphs import CSRGraph
from ..rng import make_rng

__all__ = [
    "AbelianGroup",
    "cayley_graph",
    "circulant_graph",
    "hypercube_graph",
    "random_connection_set",
    "even_sum_subgroup_cayley",
]


class AbelianGroup:
    """The group ``Z_{m1} × … × Z_{mk}`` with vectorized element arithmetic.

    Elements are tuples; :meth:`index` and :meth:`element` convert between
    tuples and the mixed-radix vertex ids used by the Cayley graphs.
    """

    def __init__(self, moduli: Sequence[int]):
        moduli = tuple(int(m) for m in moduli)
        if not moduli or any(m < 1 for m in moduli):
            raise GraphError(f"moduli must be positive, got {moduli}")
        self.moduli = moduli
        self.k = len(moduli)
        self.order = int(np.prod([np.int64(m) for m in moduli]))
        # Mixed-radix place values: index = sum(coord[i] * place[i]).
        self._places = np.ones(self.k, dtype=np.int64)
        for i in range(self.k - 2, -1, -1):
            self._places[i] = self._places[i + 1] * moduli[i + 1]

    def elements(self) -> np.ndarray:
        """All elements as an ``(order, k)`` int64 array in index order."""
        grids = np.indices(self.moduli).reshape(self.k, -1).T
        return grids.astype(np.int64)

    def index(self, element: Sequence[int]) -> int:
        """Vertex id of an element tuple."""
        e = self.reduce(element)
        return int((np.asarray(e, dtype=np.int64) * self._places).sum())

    def element(self, index: int) -> tuple[int, ...]:
        """Element tuple of a vertex id."""
        if not 0 <= index < self.order:
            raise GraphError(f"index {index} out of range for order {self.order}")
        out = []
        for i in range(self.k):
            out.append(int(index // self._places[i]) % self.moduli[i])
        return tuple(out)

    def reduce(self, element: Sequence[int]) -> tuple[int, ...]:
        """Canonical representative (coordinates reduced mod m_i)."""
        if len(element) != self.k:
            raise GraphError(
                f"element has {len(element)} coordinates, expected {self.k}"
            )
        return tuple(int(x) % m for x, m in zip(element, self.moduli))

    def negate(self, element: Sequence[int]) -> tuple[int, ...]:
        """``-element``."""
        return tuple((-int(x)) % m for x, m in zip(element, self.moduli))

    def add(self, a: Sequence[int], b: Sequence[int]) -> tuple[int, ...]:
        """``a + b``."""
        return tuple(
            (int(x) + int(y)) % m for x, y, m in zip(a, b, self.moduli)
        )

    def is_symmetric_connection_set(
        self, connection: Iterable[Sequence[int]]
    ) -> bool:
        """Whether ``S = -S`` and ``0 ∉ S`` (after canonical reduction)."""
        s = {self.reduce(x) for x in connection}
        zero = (0,) * self.k
        if zero in s:
            return False
        return all(self.negate(x) in s for x in s)


def cayley_graph(
    moduli: Sequence[int], connection: Iterable[Sequence[int]]
) -> CSRGraph:
    """The Cayley graph of ``Z_{m1}×…×Z_{mk}`` w.r.t. symmetric ``connection``.

    Vertices are element indices (see :class:`AbelianGroup`).  Edges are
    computed by one vectorized modular add per generator.
    """
    group = AbelianGroup(moduli)
    conn = {group.reduce(s) for s in connection}
    if not group.is_symmetric_connection_set(conn):
        raise GraphError("connection set must satisfy S = -S and 0 not in S")
    elems = group.elements()  # (n, k)
    n = group.order
    ids = (elems * group._places[None, :]).sum(axis=1)
    edges: set[tuple[int, int]] = set()
    mods = np.asarray(group.moduli, dtype=np.int64)
    for s in conn:
        shifted = (elems + np.asarray(s, dtype=np.int64)[None, :]) % mods
        targets = (shifted * group._places[None, :]).sum(axis=1)
        for u, v in zip(ids.tolist(), targets.tolist()):
            if u != v:
                edges.add((u, v) if u < v else (v, u))
    return CSRGraph(n, edges)


def circulant_graph(n: int, offsets: Iterable[int]) -> CSRGraph:
    """Cayley graph of ``Z_n`` with ``S = {±o : o in offsets}``."""
    conn = set()
    for o in offsets:
        o = int(o) % n
        if o == 0:
            raise GraphError("circulant offsets must be nonzero mod n")
        conn.add((o,))
        conn.add((n - o,))
    return cayley_graph((n,), conn)


def hypercube_graph(d: int) -> CSRGraph:
    """Cayley graph of ``Z_2^d`` with the unit vectors (the d-cube)."""
    if d < 1:
        raise GraphError(f"hypercube needs d >= 1, got {d}")
    conn = []
    for i in range(d):
        e = [0] * d
        e[i] = 1
        conn.append(tuple(e))
    return cayley_graph((2,) * d, conn)


def random_connection_set(
    moduli: Sequence[int], size: int, seed=None
) -> set[tuple[int, ...]]:
    """A random symmetric connection set with ``size`` generator pairs.

    Picks ``size`` distinct non-zero elements and closes under negation, so
    the result has between ``size`` and ``2·size`` elements (involutions
    contribute one each).
    """
    group = AbelianGroup(moduli)
    if size < 1:
        raise GraphError(f"size must be >= 1, got {size}")
    max_pairs = (group.order - 1 + 1) // 2
    if size > max_pairs:
        raise GraphError(
            f"requested {size} generator pairs but only {max_pairs} exist"
        )
    rng = make_rng(seed)
    conn: set[tuple[int, ...]] = set()
    pairs = 0
    while pairs < size:
        idx = int(rng.integers(1, group.order))
        e = group.element(idx)
        if e in conn:
            continue
        conn.add(e)
        conn.add(group.negate(e))
        pairs += 1
    return conn


def even_sum_subgroup_cayley(k: int) -> tuple[CSRGraph, list[tuple[int, int]]]:
    """Figure 4's torus as the paper describes it group-theoretically.

    "The graph described in Section 4 is the Cayley graph of the group of
    all elements of Z_{2k}² with an even sum of coordinates, with respect to
    S = {(1,1), (1,−1), (−1,1), (−1,−1)}."

    Returns the graph (vertices = sorted even-sum pairs) and the coordinate
    list, so the isomorphism with
    :func:`repro.constructions.torus.rotated_torus` is the identity on
    coordinates.
    """
    if k < 2:
        raise GraphError(f"even-sum Cayley torus needs k >= 2, got {k}")
    side = 2 * k
    coords = [
        (i, j)
        for i in range(side)
        for j in range(side)
        if (i + j) % 2 == 0
    ]
    index = {c: t for t, c in enumerate(coords)}
    gens = [(1, 1), (1, -1), (-1, 1), (-1, -1)]
    edges = set()
    for (i, j) in coords:
        u = index[(i, j)]
        for gi, gj in gens:
            v = index[((i + gi) % side, (j + gj) % side)]
            if u != v:
                edges.add((u, v) if u < v else (v, u))
    return CSRGraph(len(coords), edges), coords
