"""The Figure 3 graph — and a machine-verified repair of Theorem 5.

Theorem 5 claims a diameter-3 sum equilibrium exists; before this paper every
known sum equilibrium had diameter 2.  Figure 3 is the paper's witness: a
13-vertex, 21-edge graph of diameter 3 and girth 4.

**Reproduction finding.**  The graph as literally described is *not* a sum
equilibrium: vertex ``d1`` improves its sum of distances from 27 to 26 by
swapping edge ``d1–c1,1`` to ``d1–c2,1`` (the straight-matched partner of the
dropped vertex).  The gain is 3 (``c2,1``: 2→1, ``b2``: 3→2, ``d2``: 3→2)
against a loss of 2 (``c1,1``: 1→2, ``c3,2``: 2→3).  The paper's omitted
case analysis applies Lemma 8's generic "+2" loss to this swap, but the
lemma's own carve-out — "*unless w′ is a neighbor of w*, in which case it
increases by at least 1" — fires precisely when the swap targets a matched
partner, and then only the +1 loss is available.  The gap is intrinsic to the
architecture: ``d_j`` and ``b_j`` always sit at distance 3 from ``d_i``, so a
swap onto any matched partner in group ``j`` buys all three gains at once.
This was confirmed by two independent implementations (the library's
vectorized auditor and a plain networkx recomputation).

**Theorem 5 itself survives**: :func:`repaired_diameter3_witness` is a
10-vertex, 20-edge graph of diameter 3 in sum equilibrium, found by simulated
annealing over connected diameter-3 graphs (minimizing the library's
equilibrium gap) and verified exhaustively — all 320 legal swaps evaluated
independently in copy mode are non-improving.  So the paper's *statement*
stands with a replacement witness; only the printed construction is faulty.

Construction of the literal Figure 3 (verbatim from the paper):

* one vertex ``a`` with three neighbours ``b1, b2, b3``;
* each ``bi`` has two further private neighbours ``C_i = {c_{i,1}, c_{i,2}}``;
* each ``d_i`` is adjacent to all of ``C_i``;
* perfect matchings between the ``C`` groups: the *straight* matching
  (``c_{i,1}c_{j,1}``, ``c_{i,2}c_{j,2}``) between C1–C2 and C2–C3, and the
  *twisted* matching (``c_{1,1}c_{3,2}``, ``c_{1,2}c_{3,1}``) between C1–C3.

The twist still matters for what the paper *can* prove: with three straight
matchings the ``c`` layer decomposes into two triangles (girth 3), killing
the Lemma-8 machinery entirely.
"""

from __future__ import annotations

from ..graphs import CSRGraph

__all__ = [
    "figure3_graph",
    "figure3_vertex_names",
    "figure3_all_straight_variant",
    "figure3_improving_swap",
    "minimal_diameter3_witness",
    "repaired_diameter3_witness",
    "A",
    "B",
    "C",
    "D",
]

#: Vertex indices of the construction, exported for tests and docs.
A: int = 0
B: tuple[int, int, int] = (1, 2, 3)
#: ``C[i][k]`` is c_{i+1, k+1} in the paper's 1-based notation.
C: tuple[tuple[int, int], ...] = ((4, 5), (6, 7), (8, 9))
D: tuple[int, int, int] = (10, 11, 12)


def figure3_vertex_names() -> dict[int, str]:
    """Human-readable names matching the paper's labels."""
    names = {A: "a"}
    for i, b in enumerate(B, start=1):
        names[b] = f"b{i}"
    for i, pair in enumerate(C, start=1):
        for k, c in enumerate(pair, start=1):
            names[c] = f"c{i},{k}"
    for i, d in enumerate(D, start=1):
        names[d] = f"d{i}"
    return names


def _base_edges() -> list[tuple[int, int]]:
    edges: list[tuple[int, int]] = []
    for i in range(3):
        edges.append((A, B[i]))
        edges.append((B[i], C[i][0]))
        edges.append((B[i], C[i][1]))
        edges.append((D[i], C[i][0]))
        edges.append((D[i], C[i][1]))
    return edges


def figure3_graph() -> CSRGraph:
    """The exact Theorem 5 graph (13 vertices, 21 edges, diameter 3, girth 4)."""
    edges = _base_edges()
    # Straight matchings C1-C2 and C2-C3.
    for i, j in ((0, 1), (1, 2)):
        edges.append((C[i][0], C[j][0]))
        edges.append((C[i][1], C[j][1]))
    # Twisted matching C1-C3.
    edges.append((C[0][0], C[2][1]))
    edges.append((C[0][1], C[2][0]))
    return CSRGraph(13, edges)


def figure3_all_straight_variant() -> CSRGraph:
    """The *wrong* variant with three straight matchings.

    Used by tests and the bench to demonstrate that the twisted C1–C3
    matching is load-bearing: this variant has girth 3 (the c_{·,k} layers
    become triangles) so the paper's Lemma-8-based audit does not cover it.
    """
    edges = _base_edges()
    for i, j in ((0, 1), (1, 2), (0, 2)):
        edges.append((C[i][0], C[j][0]))
        edges.append((C[i][1], C[j][1]))
    return CSRGraph(13, edges)


def figure3_improving_swap() -> tuple[int, int, int]:
    """The counterexample swap ``(vertex, drop, add) = (d1, c1,1, c2,1)``.

    Applying it lowers ``d1``'s sum of distances from 27 to 26 in
    :func:`figure3_graph` — the machine-found refutation of the paper's
    claim that Figure 3 is in sum equilibrium.  The test suite re-derives
    the per-vertex gain/loss ledger documented in the module docstring.
    """
    return (D[0], C[0][0], C[1][0])


#: Canonical edge list of the repaired Theorem 5 witness (see module docs).
_REPAIRED_WITNESS_EDGES: tuple[tuple[int, int], ...] = (
    (0, 3), (0, 4), (1, 4), (1, 5), (1, 7), (1, 8), (2, 7), (2, 9),
    (3, 5), (3, 6), (3, 7), (3, 8), (3, 9), (4, 8), (4, 9), (5, 6),
    (5, 9), (6, 9), (7, 8), (8, 9),
)


def repaired_diameter3_witness() -> CSRGraph:
    """A 10-vertex diameter-3 **sum equilibrium** (Theorem 5, repaired).

    Diameter 3 is realized by the single pair ``(0, 2)``; every one of the
    320 legal swaps weakly increases its mover's sum of distances (verified
    exhaustively by the test suite with the copy-mode evaluator, i.e.
    independently of the vectorized auditor that also certifies it).

    This was the first replacement witness found; the smaller
    :func:`minimal_diameter3_witness` (n = 8) supersedes it as the extremal
    example but both are kept — two independent witnesses make Theorem 5's
    repaired status easier to trust.
    """
    return CSRGraph(10, _REPAIRED_WITNESS_EDGES)


#: Canonical edge list of the minimal (n = 8) witness.
_MINIMAL_WITNESS_EDGES: tuple[tuple[int, int], ...] = (
    (0, 3), (0, 5), (0, 6), (1, 2), (1, 4), (1, 6), (2, 3), (3, 4),
    (3, 7), (4, 5), (4, 7), (6, 7),
)


def minimal_diameter3_witness() -> CSRGraph:
    """The smallest known diameter-3 sum equilibrium: ``n = 8``, ``m = 12``.

    Found by the same annealing search (``scripts/witness_search.py``) and
    verified three independent ways (vectorized auditor, exhaustive
    copy-mode audit of all 144 swaps, plain-networkx recomputation).
    Diameter 3 is realized by the single pair ``(2, 5)``.

    **Provably minimal**: the exhaustive census (``repro.core.exhaustive``
    inline for n ≤ 6, ``scripts/census_n7.py`` sharded for n = 7) audited
    every connected labelled graph with n ≤ 7 — 1 893 726 graphs, of which
    1 205 952 have diameter ≥ 3 — and found **zero** diameter-≥3 sum
    equilibria.  Hence 8 vertices is exactly the minimum order at which
    Theorem 5's phenomenon exists (EXPERIMENTS.md, `small-census`).
    """
    return CSRGraph(8, _MINIMAL_WITNESS_EDGES)
