"""Finite projective planes and the Erdős–Rényi polarity graph.

The disproof of the tree conjecture (Albers et al., cited as the paper's [2])
exhibited a *cyclic* sum equilibrium "arising from finite projective planes"
of diameter 2.  This module supplies that substrate:

* :func:`projective_plane_points` — the points of PG(2, q) over a prime
  field GF(q), in normalized homogeneous coordinates;
* :func:`incidence_graph` — the bipartite point–line (Levi) graph: girth 6,
  diameter 3, ``2(q²+q+1)`` vertices;
* :func:`polarity_graph` — the Erdős–Rényi graph ER_q: vertices are points,
  with ``u ~ v`` iff ``u · v ≡ 0 (mod q)``.  It has ``q² + q + 1`` vertices,
  diameter 2, girth ≥ 4 minus self-polar adjacencies, and ``q + 1``
  *absolute* points of degree ``q`` (the rest have degree ``q + 1``).

Because **every** connected graph of diameter ≤ 2 is a sum swap equilibrium
(Lemma 6 plus the fact that eccentricity-1 vertices have no legal improving
swap — see :func:`repro.theory.lemmas.lemma6_holds_at`), the polarity graph
is a natural non-tree, cyclic equilibrium family; the audit in the test
suite confirms it with the generic checker rather than the lemma.

Only prime orders are implemented: GF(p^e) arithmetic for e > 1 would add a
field-extension layer the experiments do not need (the family {ER_p} is
already infinite).  Requesting a prime power raises, with a pointer here.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError
from ..graphs import CSRGraph

__all__ = [
    "is_prime",
    "projective_plane_points",
    "projective_plane_lines",
    "incidence_graph",
    "polarity_graph",
    "absolute_points",
]


def is_prime(q: int) -> bool:
    """Trial-division primality (inputs here are small plane orders)."""
    if q < 2:
        return False
    if q % 2 == 0:
        return q == 2
    f = 3
    while f * f <= q:
        if q % f == 0:
            return False
        f += 2
    return True


def _require_prime(q: int) -> None:
    if not is_prime(q):
        raise GraphError(
            f"projective constructions require a prime order, got {q} "
            "(prime powers would need GF(p^e) arithmetic; see module docs)"
        )


def projective_plane_points(q: int) -> np.ndarray:
    """Normalized points of PG(2, q): an ``(q²+q+1, 3)`` int array.

    Each projective point is represented by its unique scalar multiple whose
    first nonzero coordinate equals 1, enumerated in lexicographic order:
    ``(1, y, z)``, then ``(0, 1, z)``, then ``(0, 0, 1)``.
    """
    _require_prime(q)
    pts = [(1, y, z) for y in range(q) for z in range(q)]
    pts += [(0, 1, z) for z in range(q)]
    pts.append((0, 0, 1))
    return np.asarray(pts, dtype=np.int64)


def projective_plane_lines(q: int) -> np.ndarray:
    """Lines of PG(2, q) in the same normalized coordinates (duality)."""
    return projective_plane_points(q)


def incidence_graph(q: int) -> CSRGraph:
    """The bipartite Levi graph of PG(2, q).

    Vertices ``0 .. N-1`` are points and ``N .. 2N-1`` are lines
    (``N = q²+q+1``); point ``p`` lies on line ``L`` iff ``p · L ≡ 0``.
    Every vertex has degree ``q + 1``; the graph has girth 6 and diameter 3.
    """
    pts = projective_plane_points(q)
    lines = projective_plane_lines(q)
    N = pts.shape[0]
    dots = (pts @ lines.T) % q
    pi, li = np.nonzero(dots == 0)
    return CSRGraph(2 * N, zip(pi.tolist(), (li + N).tolist()))


def polarity_graph(q: int) -> CSRGraph:
    """The Erdős–Rényi polarity graph ER_q (diameter 2 for q ≥ 2)."""
    pts = projective_plane_points(q)
    dots = (pts @ pts.T) % q
    iu, iv = np.nonzero(np.triu(dots == 0, k=1))
    return CSRGraph(pts.shape[0], zip(iu.tolist(), iv.tolist()))


def absolute_points(q: int) -> np.ndarray:
    """Indices of self-orthogonal points (``p · p ≡ 0``); exactly ``q + 1``.

    These lose their would-be self-loop in :func:`polarity_graph` and have
    degree ``q`` instead of ``q + 1``.
    """
    pts = projective_plane_points(q)
    norms = (pts * pts).sum(axis=1) % q
    return np.nonzero(norms == 0)[0]
