"""Trajectory census: dynamics themselves as the measured object.

The equilibrium census (:mod:`repro.core.census`) asks *where* dynamics
land; following Kawald–Lenzner ("On Dynamics in Selfish Network Creation"),
the scientifically interesting object is often *how* they get there —
convergence speed, cycling, and sensitivity to the activation schedule and
the responder.  This census runs :class:`~repro.core.dynamics.SwapDynamics`
over a full grid of

    schedules × responders × cost-model specs × initial families × n
    × replicates

and records one row per trajectory: the outcome trichotomy (``converged`` /
``cycle_detected`` / ``exhausted`` — a max-steps timeout is *not* a cycle),
move/activation counts, the recorded trajectory's summary statistics
(:func:`repro.analysis.trajectories.summarize_trajectory` — selfish
regressions, social-cost endpoints, diameter peak), a final-graph
fingerprint (so distinct runs landing on the same equilibrium are visible
across the whole dataset), and the exact equilibrium audit of converged
endpoints.

Execution and persistence reuse the library's hardened infrastructure:

* the grid is a :class:`~repro.parallel.Sweep` — seeds derive from grid
  position, so records are bit-identical at any worker count;
* ``workers > 1`` shards trajectories over the persistent shared-memory
  pool (:func:`~repro.parallel.get_shared_pool`), consuming chunk futures
  in submission order so the stream keeps serial order;
* ``jsonl_path`` streams records through the shared
  :class:`~repro.io.jsonl_store.JsonlStore` (the same audited header /
  atomic-rewrite / torn-line machinery the equilibrium census runs on), so
  ``resume=True`` picks an interrupted fleet back up losslessly and a
  changed configuration raises instead of mixing games.

``scripts/trajectory_fleet.py`` is the command-line fleet runner; the
``dynamics-census`` CLI experiment renders aggregate tables.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, asdict
from pathlib import Path
from typing import IO, Iterable, Literal, Sequence

from ..experiments.experiment import Experiment, run_fleet
from ..io.hashing import graph_fingerprint
from ..io.jsonl_store import FleetFailure, JsonlStore, maybe_decode_failure
from ..graphs import CSRGraph
from ..parallel import Sweep
from ..rng import derive_seed
from .census import InitialFamily, seed_graph
from .costmodel import CostModel, cost_model_spec, resolve_cost_model
from .dynamics import SwapDynamics
from .equilibrium import is_equilibrium

__all__ = [
    "TRAJ_CONFIG_KEY",
    "TrajectoryRecord",
    "graph_fingerprint",
    "run_trajectory_census",
    "trajectory_census_to_rows",
    "trajectory_experiment",
    "trajectory_sweep",
]

Schedule = Literal["round_robin", "random", "greedy"]
Responder = Literal["best", "first"]

#: First-line marker of the JSONL run-config header.
TRAJ_CONFIG_KEY = "trajectory_census_config"

#: v2: headers record ``activation_accounting`` ("engine" / "oracle") so a
#: stream written by the seed oracle path — whose ``activations`` counts
#: come from full sweeps — cannot be silently resumed by an engine-backed
#: mode (or vice versa) into a column-inconsistent dataset.
_CONFIG_VERSION = 2


@dataclass
class TrajectoryRecord:
    """One dynamics trajectory, fully described.

    The grid block (``n`` … ``responder``) pins the game and schedule; the
    outcome block records the trichotomy and counts; the trajectory block
    carries the recorded-run summary (social cost is the resolved cost
    model's Σ-of-agent-costs, see :class:`~repro.core.dynamics.
    DynamicsResult`); ``final_fingerprint`` identifies the terminal graph
    across the dataset.
    """

    # grid
    n: int
    family: str
    replicate: int
    seed: int
    objective: str
    schedule: str
    responder: str
    # outcome
    m_initial: int
    m_final: int
    converged: bool
    cycle_detected: bool
    exhausted: bool
    steps: int
    activations: int
    # trajectory summary
    diameter_initial: float
    diameter_final: float
    diameter_peak: float
    social_cost_initial: float
    social_cost_final: float
    selfish_regressions: int
    max_social_cost_increase: float
    socially_monotone: bool
    # terminal graph
    final_fingerprint: str
    verified_equilibrium: bool | None


# graph_fingerprint moved to repro.io.hashing (the result cache keys on it
# and must not import the census layer); re-exported here for compatibility.


def trajectory_sweep(
    n_values: Sequence[int],
    families: Sequence[InitialFamily],
    objectives: Sequence["str | CostModel"],
    schedules: Sequence[Schedule],
    responders: Sequence[Responder],
    replicates: int,
    root_seed: int,
) -> Sweep:
    """The census grid as a :class:`~repro.parallel.Sweep`.

    Objectives canonicalize to spec strings (validated here, resolved
    per-n inside each task); seeds derive from grid position via the
    sweep's own :func:`~repro.rng.derive_seed` discipline, which is what
    makes the fleet bit-identical at any worker count.
    """
    return Sweep(
        grid={
            "objective": [cost_model_spec(o) for o in objectives],
            "schedule": list(schedules),
            "responder": list(responders),
            "family": list(families),
            "n": [int(n) for n in n_values],
        },
        replicates=replicates,
        root_seed=root_seed,
    )


def _trajectory_task(task: tuple) -> TrajectoryRecord:
    """One trajectory, fully determined by its task tuple.

    Module-level and seeded purely from the tuple, so the record is
    identical wherever (and in whatever order) the task runs.
    """
    (
        n, family, replicate, seed, objective, schedule, responder,
        max_steps, verify, audit_mode, engine_mode,
        checkpoint_path, checkpoint_every,
    ) = task
    # Deferred: repro.analysis imports repro.core.dynamics, so a module-top
    # import here would cycle during package init.
    from ..analysis.trajectories import summarize_trajectory

    model = resolve_cost_model(objective, n)
    initial = seed_graph(family, n, seed)
    dyn = SwapDynamics(
        objective=model,
        schedule=schedule,
        responder=responder,
        max_steps=max_steps,
        record=True,
        seed=derive_seed(seed, 1),
        engine_mode=engine_mode,
    )
    result = dyn.run(
        initial,
        checkpoint=checkpoint_path,
        checkpoint_every=checkpoint_every if checkpoint_path else None,
    )
    summary = summarize_trajectory(result).as_dict()
    summary.pop("steps")  # duplicated by the outcome block
    final = result.graph
    verified: bool | None = None
    if verify and result.converged:
        # The endpoint audit rides the dynamics engine's own matrix —
        # verifying a converged trajectory never recomputes the APSP.
        verified = is_equilibrium(
            final, model, mode=audit_mode, base_dm=result.final_dm
        )
    return TrajectoryRecord(
        n=n,
        family=family,
        replicate=replicate,
        seed=seed,
        objective=model.spec,
        schedule=schedule,
        responder=responder,
        m_initial=initial.m,
        m_final=final.m,
        converged=result.converged,
        cycle_detected=result.cycle_detected,
        exhausted=result.exhausted,
        steps=result.steps,
        activations=result.activations,
        final_fingerprint=graph_fingerprint(final),
        verified_equilibrium=verified,
        **summary,
    )


def _write_jsonl(sink: "IO[str]", records: Iterable) -> None:
    # Module-global on purpose: the crash-window tests intercept this exact
    # hook, and the store calls back into it for every prefix/append write.
    # Quarantined slots (FleetFailure) serialize with their marker key.
    for rec in records:
        obj = rec.encode() if isinstance(rec, FleetFailure) else asdict(rec)
        sink.write(json.dumps(obj) + "\n")
    sink.flush()


def _decode_record(obj: dict):
    return maybe_decode_failure(obj) or TrajectoryRecord(**obj)


def _make_store(
    path: "str | Path", config: dict, durability: str = "flush"
) -> JsonlStore:
    """The shared resumable-stream machinery, bound to trajectory records."""
    return JsonlStore(
        path,
        config_key=TRAJ_CONFIG_KEY,
        config_version=_CONFIG_VERSION,
        config=config,
        decode=_decode_record,
        record_name="trajectory record",
        write_records=lambda sink, recs: _write_jsonl(sink, recs),
        durability=durability,
    )


def run_trajectory_census(
    n_values: Sequence[int],
    families: Sequence[InitialFamily] = ("tree", "sparse", "dense"),
    objectives: Sequence["str | CostModel"] = ("sum",),
    schedules: Sequence[Schedule] = ("round_robin",),
    responders: Sequence[Responder] = ("best",),
    replicates: int = 2,
    root_seed: int = 0,
    max_steps: int = 20_000,
    verify: bool = True,
    workers: int = 1,
    audit_mode: str = "batched",
    engine_mode: str = "batched",
    jsonl_path: "str | Path | None" = None,
    resume: bool = False,
    timeout: "float | None" = None,
    retries: int = 2,
    backoff: float = 0.05,
    on_error: str = "record",
    retry_failed: bool = False,
    durability: str = "flush",
    checkpoint_dir: "str | Path | None" = None,
    checkpoint_every: "int | None" = None,
    deadline: "float | None" = None,
) -> list:
    """Run the trajectory census; one record per grid point × replicate.

    The grid enumerates ``objectives × schedules × responders × families ×
    n_values`` (in :func:`trajectory_sweep`'s declared order, first
    dimension slowest) with ``replicates`` runs each; every record carries
    its grid coordinates, so the flat list (or the streamed JSONL) is the
    dataset.

    ``verify`` re-audits every converged endpoint with the exact
    model-aware equilibrium checker (``audit_mode`` selects the kernel,
    and the audit reuses the dynamics engine's final distance matrix).
    ``engine_mode`` selects the dynamics engine — the default ``"batched"``
    bound-then-verify kernel, ``"incremental"``, or the seed ``"oracle"``;
    like ``workers`` it is an execution detail: the engine-backed modes
    produce bit-identical records and resume each other's streams freely.
    The oracle path replays the same trajectories but counts activations
    by full sweeps, so only its ``activations`` column differs — the
    stream header therefore records the *accounting* (``"engine"`` vs
    ``"oracle"``), and resuming across that boundary raises instead of
    silently mixing incompatible activation counts.
    ``workers > 1`` shards trajectories over the persistent pool with the
    record list bit-identical to the serial run for any worker count.
    ``jsonl_path`` streams records in record order through the shared
    :class:`~repro.io.jsonl_store.JsonlStore`; ``resume=True`` reloads the
    streamed prefix of an interrupted run with the *same arguments*,
    validating the embedded config header and each resumed record against
    this call's grid, and raises rather than silently mixing datasets
    (see the store's docstring for the crash-window guarantees).

    Fault tolerance (DESIGN.md §9): ``timeout``/``retries``/``backoff``
    tune the runtime's per-chunk recovery; with the default
    ``on_error="record"`` a trajectory failing past its retry budget
    streams as a quarantined :class:`~repro.io.jsonl_store.FleetFailure`
    slot instead of killing the fleet, ``retry_failed=True`` re-runs
    exactly those slots on resume, and ``durability`` sets the stream's
    flush cadence.

    Preemption (DESIGN.md §13): ``checkpoint_dir`` gives each trajectory
    a crash-safe in-task checkpoint (snapshot every ``checkpoint_every``
    applied moves), so killed or deadline-preempted slots *resume* on
    retry and still stream records bit-identical to an uninterrupted
    run; ``deadline`` (absolute monotonic instant) makes running
    trajectories snapshot-and-yield at the cutoff.
    """
    experiment = trajectory_experiment(
        n_values,
        families=families,
        objectives=objectives,
        schedules=schedules,
        responders=responders,
        replicates=replicates,
        root_seed=root_seed,
        max_steps=max_steps,
        verify=verify,
        audit_mode=audit_mode,
        engine_mode=engine_mode,
    )
    return run_fleet(
        experiment,
        workers=workers,
        jsonl_path=jsonl_path,
        resume=resume,
        timeout=timeout,
        retries=retries,
        backoff=backoff,
        on_error=on_error,
        retry_failed=retry_failed,
        durability=durability,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
        deadline=deadline,
    )


def trajectory_experiment(
    n_values: Sequence[int],
    families: Sequence[InitialFamily] = ("tree", "sparse", "dense"),
    objectives: Sequence["str | CostModel"] = ("sum",),
    schedules: Sequence[Schedule] = ("round_robin",),
    responders: Sequence[Responder] = ("best",),
    replicates: int = 2,
    root_seed: int = 0,
    max_steps: int = 20_000,
    verify: bool = True,
    audit_mode: str = "batched",
    engine_mode: str = "batched",
) -> Experiment:
    """The trajectory census as a declarative :class:`Experiment`.

    The grid and its order are exactly :func:`trajectory_sweep`'s
    (objective slowest, n fastest) with the sweep's flat positional seed
    scheme, the legacy :data:`TRAJ_CONFIG_KEY` header, and the module's
    own store factory — so the compiled fleet streams JSONL byte-identical
    to the pre-refactor ``run_trajectory_census`` (pinned by the
    golden-file suite).
    """
    config = {
        "objectives": [cost_model_spec(o) for o in objectives],
        "schedules": list(schedules),
        "responders": list(responders),
        "families": list(families),
        "n_values": [int(n) for n in n_values],
        "replicates": replicates,
        "root_seed": root_seed,
        "max_steps": max_steps,
        "verify": verify,
        "audit_mode": audit_mode,
        # Not engine_mode itself: incremental/batched records are
        # bit-identical and interchangeable; only the oracle path's
        # activation accounting differs.
        "activation_accounting": (
            "oracle" if engine_mode == "oracle" else "engine"
        ),
    }
    sweep = trajectory_sweep(
        n_values, families, objectives, schedules, responders,
        replicates, root_seed,
    )
    return Experiment(
        name="trajectory",
        point_fn=_trajectory_task,
        grid=sweep.grid,
        task_fields=(
            "n", "family", "replicate", "seed", "objective", "schedule",
            "responder", "max_steps", "verify", "audit_mode", "engine_mode",
            "checkpoint_path", "checkpoint_every",
        ),
        coord_fields=(
            "n", "family", "replicate", "seed", "objective", "schedule",
            "responder",
        ),
        replicates=replicates,
        root_seed=root_seed,
        seed_scheme="flat",
        fixed={
            "max_steps": max_steps,
            "verify": verify,
            "audit_mode": audit_mode,
            "engine_mode": engine_mode,
        },
        int_coords=("n", "replicate", "seed"),
        config_key=TRAJ_CONFIG_KEY,
        config_version=_CONFIG_VERSION,
        config=config,
        record_name="trajectory record",
        decode_record=_decode_record,
        store_factory=lambda path, durability: _make_store(
            path, config, durability
        ),
    )


def trajectory_census_to_rows(records: Iterable) -> list[dict]:
    """Records as plain dicts (for the reporting layer / CSV writers)."""
    return [
        r.encode() if isinstance(r, FleetFailure) else asdict(r)
        for r in records
    ]
