"""Exact k-swap stability — the brute-force cross-check.

Theorem 12's trade-off statement speaks of agents that may *swap* up to
``k`` incident edges at once.  The library's fast path certifies the
stronger **k-insertion** stability and invokes monotonicity (removing edges
never shrinks distances, so if ``k`` insertions cannot lower an agent's
local diameter, neither can any combination of ≤ k insertions plus
deletions).  This module implements the literal definition — enumerate every
(drop-set, add-set) pair — so the implication itself is testable on finite
instances rather than trusted.

The audited objective is pluggable (``objective=`` accepts any
:class:`~repro.core.costmodel.CostModel` or spec string) with one hard
restriction: the model must be a **pure row aggregate** — the agent's cost
a function of its own distance row alone, with every multi-swap legal.
``sum``, ``max``, and the interest variants qualify; a model that
constrains the move set (the budget games' ``target_mask``) does not —
its multi-move legality is not defined by row aggregates, so auditing it
here would certify a wrong answer, and the module raises
:class:`~repro.errors.ConfigurationError` instead.

Exponential in ``k`` and the degree; intended for audits at ``k ≤ 2`` on
graphs of a few dozen vertices.  The exact closure used per candidate:

    d_new(v, x) = min over surviving/added incident edges (v, a) of
                  1 + d_{G - v}(a, x),  and 0 for x = v

where ``d_{G - v}`` is the distance in the graph with *all* of ``v``'s
edges removed — correct because every path from ``v`` starts with one
incident edge and never returns to ``v``.
"""

from __future__ import annotations

import itertools
import math
from typing import Iterable

import numpy as np

from ..errors import ConfigurationError, DisconnectedGraphError
from ..graphs import CSRGraph, distance_matrix, is_connected
from ..parallel import check_deadline
from .costmodel import CostModel, resolve_cost_model
from .costs import INT_INF, lift_distances

__all__ = ["k_swap_witness", "is_k_swap_stable"]


def _row_aggregate_model(
    objective: "str | CostModel", n: int
) -> CostModel:
    """Resolve ``objective``; reject models whose move set is constrained.

    A model that overrides :meth:`~repro.core.costmodel.CostModel.
    target_mask` (the budget games) declares some swaps illegal; the
    exhaustive (drop-set, add-set) enumeration below assumes every
    combination is legal, so auditing such a model here would silently
    answer a different question.
    """
    model = resolve_cost_model(objective, n)
    if type(model).target_mask is not CostModel.target_mask:
        raise ConfigurationError(
            f"k-swap auditing supports pure row-aggregate cost models only; "
            f"{model.spec!r} constrains the move set (target_mask), and "
            "enumerating all multi-swaps as if they were legal would "
            "certify a wrong answer"
        )
    return model


def _distances_without_vertex(graph: CSRGraph, v: int) -> np.ndarray:
    """Lifted APSP of ``graph`` with all edges at ``v`` removed."""
    incident = [(v, int(w)) for w in graph.neighbors(v)]
    reduced = graph.with_edges(remove=incident)
    return lift_distances(distance_matrix(reduced))


def k_swap_witness(
    graph: CSRGraph,
    v: int,
    k: int,
    *,
    objective: "str | CostModel" = "max",
    candidate_adds: Iterable[int] | None = None,
    deadline: "float | None" = None,
) -> tuple[tuple[int, ...], tuple[int, ...]] | None:
    """A (drop-set, add-set) pair of size ≤ k lowering ``v``'s cost, or ``None``.

    Enumerates all subsets ``D ⊆ N(v)`` and ``A ⊆ V∖({v} ∪ N(v))`` with
    ``|D| ≤ k``, ``|A| ≤ k`` (the basic game's multi-swap keeps
    ``|A| ≤ |D|`` optional — a pure insertion is at least as strong, so
    covering ``|A| ≤ k`` audits the paper's "insertion (or swapping)"
    phrasing in full).

    ``objective`` selects the audited cost (default ``"max"``, the paper's
    local diameter); any pure row-aggregate model is accepted, and
    move-set-constrained models raise ``ConfigurationError`` (see module
    docstring).  ``candidate_adds`` restricts the add-endpoint pool
    (vertex-transitive callers can prune by distance).  ``deadline`` is an
    absolute ``time.monotonic()`` budget checked once per drop-set (the
    enumeration is exponential; callers with a ``timeout_s`` must be able
    to abandon it mid-scan with :class:`~repro.errors.DeadlineExceeded`).
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    model = _row_aggregate_model(objective, graph.n)
    if not is_connected(graph):
        raise DisconnectedGraphError("k-swap stability needs connectivity")
    n = graph.n
    base = lift_distances(distance_matrix(graph))
    cost_before = model.row_cost(v, base[v])
    if int(base[v].max()) <= 1:
        # v is adjacent to everyone: its row is entrywise minimal, so by
        # the monotone-aggregate contract no reachable row costs less.
        return None
    hollow = _distances_without_vertex(graph, v)
    neighbors = sorted(int(x) for x in graph.neighbors(v))
    neighbor_set = frozenset(neighbors)  # hoisted: O(deg) once, not per pool entry
    if candidate_adds is None:
        pool = [a for a in range(n) if a != v and a not in neighbor_set]
    else:
        pool = [
            int(a)
            for a in candidate_adds
            if int(a) != v and int(a) not in neighbor_set
        ]

    def cost_after(kept: list[int]) -> float:
        """Cost of v when its incident set becomes ``kept``."""
        if not kept:
            return math.inf
        rows = hollow[np.asarray(kept)]
        dist = rows.min(axis=0) + 1
        # Lifted entries overflow the sentinel by one under +1; clamp so
        # the model's >= INT_INF infinity encoding stays intact.
        np.minimum(dist, INT_INF, out=dist)
        dist[v] = 0
        return model.row_cost(v, dist)

    for d_size in range(0, min(k, len(neighbors)) + 1):
        for drops in itertools.combinations(neighbors, d_size):
            check_deadline(deadline)
            surviving = [w for w in neighbors if w not in drops]
            for a_size in range(0, min(k, len(pool)) + 1):
                if d_size == 0 and a_size == 0:
                    continue
                for adds in itertools.combinations(pool, a_size):
                    if cost_after(surviving + list(adds)) < cost_before:
                        return drops, adds
    return None


def is_k_swap_stable(
    graph: CSRGraph,
    k: int,
    vertices: Iterable[int] | None = None,
    *,
    objective: "str | CostModel" = "max",
    deadline: "float | None" = None,
) -> bool:
    """Whether no vertex lowers its cost with ≤ k drops + ≤ k adds.

    ``objective`` follows the same row-aggregate contract (and raises the
    same ``ConfigurationError``) as :func:`k_swap_witness`; ``deadline``
    is forwarded into every per-vertex enumeration.
    """
    # Resolve once: validates the model (and materializes interest sets a
    # single time) before any per-vertex enumeration starts.
    model = _row_aggregate_model(objective, graph.n)
    vs = range(graph.n) if vertices is None else vertices
    return all(
        k_swap_witness(graph, int(v), k, objective=model, deadline=deadline)
        is None
        for v in vs
    )
