"""Exact k-swap stability — the brute-force cross-check.

Theorem 12's trade-off statement speaks of agents that may *swap* up to
``k`` incident edges at once.  The library's fast path certifies the
stronger **k-insertion** stability and invokes monotonicity (removing edges
never shrinks distances, so if ``k`` insertions cannot lower an agent's
local diameter, neither can any combination of ≤ k insertions plus
deletions).  This module implements the literal definition — enumerate every
(drop-set, add-set) pair — so the implication itself is testable on finite
instances rather than trusted.

Exponential in ``k`` and the degree; intended for audits at ``k ≤ 2`` on
graphs of a few dozen vertices.  The exact closure used per candidate:

    d_new(v, x) = min over surviving/added incident edges (v, a) of
                  1 + d_{G - v}(a, x),  and 0 for x = v

where ``d_{G - v}`` is the distance in the graph with *all* of ``v``'s
edges removed — correct because every path from ``v`` starts with one
incident edge and never returns to ``v``.
"""

from __future__ import annotations

import itertools
import math
from typing import Iterable

import numpy as np

from ..errors import DisconnectedGraphError
from ..graphs import CSRGraph, distance_matrix, is_connected
from .costs import INT_INF, lift_distances

__all__ = ["k_swap_witness", "is_k_swap_stable"]


def _distances_without_vertex(graph: CSRGraph, v: int) -> np.ndarray:
    """Lifted APSP of ``graph`` with all edges at ``v`` removed."""
    incident = [(v, int(w)) for w in graph.neighbors(v)]
    reduced = graph.with_edges(remove=incident)
    return lift_distances(distance_matrix(reduced))


def k_swap_witness(
    graph: CSRGraph,
    v: int,
    k: int,
    *,
    candidate_adds: Iterable[int] | None = None,
) -> tuple[tuple[int, ...], tuple[int, ...]] | None:
    """A (drop-set, add-set) pair of size ≤ k lowering ``v``'s ecc, or ``None``.

    Enumerates all subsets ``D ⊆ N(v)`` and ``A ⊆ V∖({v} ∪ N(v))`` with
    ``|D| ≤ k``, ``|A| ≤ k`` (the basic game's multi-swap keeps
    ``|A| ≤ |D|`` optional — a pure insertion is at least as strong, so
    covering ``|A| ≤ k`` audits the paper's "insertion (or swapping)"
    phrasing in full).

    ``candidate_adds`` restricts the add-endpoint pool (vertex-transitive
    callers can prune by distance).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if not is_connected(graph):
        raise DisconnectedGraphError("k-swap stability needs connectivity")
    n = graph.n
    base = lift_distances(distance_matrix(graph))
    ecc_before = int(base[v].max())
    if ecc_before <= 1:
        return None
    hollow = _distances_without_vertex(graph, v)
    neighbors = sorted(int(x) for x in graph.neighbors(v))
    if candidate_adds is None:
        pool = [a for a in range(n) if a != v and a not in set(neighbors)]
    else:
        pool = [
            int(a)
            for a in candidate_adds
            if int(a) != v and int(a) not in set(neighbors)
        ]

    def ecc_after(kept: list[int]) -> float:
        """Ecc of v when its incident set becomes ``kept``."""
        if not kept:
            return math.inf
        rows = hollow[np.asarray(kept)]
        dist = rows.min(axis=0) + 1
        dist = dist.copy()
        dist[v] = 0
        worst = int(dist.max())
        return math.inf if worst >= INT_INF else float(worst)

    for d_size in range(0, min(k, len(neighbors)) + 1):
        for drops in itertools.combinations(neighbors, d_size):
            surviving = [w for w in neighbors if w not in drops]
            for a_size in range(0, min(k, len(pool)) + 1):
                if d_size == 0 and a_size == 0:
                    continue
                for adds in itertools.combinations(pool, a_size):
                    if ecc_after(surviving + list(adds)) < ecc_before:
                        return drops, adds
    return None


def is_k_swap_stable(graph: CSRGraph, k: int, vertices: Iterable[int] | None = None) -> bool:
    """Whether no vertex lowers its local diameter with ≤ k drops + ≤ k adds."""
    vs = range(graph.n) if vertices is None else vertices
    return all(k_swap_witness(graph, int(v), k) is None for v in vs)
