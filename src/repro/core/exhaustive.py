"""Exhaustive equilibrium census over *all* connected graphs of small order.

The paper's lower-bound question — how small can a diameter-3 sum
equilibrium be? — is answerable by brute force at small n: enumerate every
labelled graph on n vertices (2^C(n,2) edge subsets), keep the connected
ones, audit each.  This module implements that census with the pruning that
makes n = 7 (2 097 152 subsets) feasible:

* subsets are enumerated as bitmasks over the C(n,2) canonical edge slots;
* disconnected graphs are skipped by a union-find pass over the bitmask
  (no graph object is built);
* for the *sum* census, diameter-≤2 graphs are counted as equilibria
  without an audit (a theorem: Lemma 6 covers eccentricity-2 vertices and
  eccentricity-≤1 vertices have no legal improving swap), so the expensive
  auditor only runs on diameter-≥3 graphs — a small minority.

Labelled counting: isomorphic graphs are counted once per labelling.  That
is the right denominator for "does any graph with property X exist" — the
census's purpose — and avoids needing canonical forms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..graphs import CSRGraph, diameter
from .equilibrium import find_sum_violation, is_max_equilibrium

__all__ = [
    "CensusCell",
    "ExhaustiveCensus",
    "exhaustive_equilibrium_census",
    "smallest_diameter3_sum_equilibria",
]


@dataclass
class CensusCell:
    """Counts for one (diameter, kind) cell of the census."""

    graphs: int = 0
    equilibria: int = 0
    example: "tuple[tuple[int, int], ...] | None" = None


@dataclass
class ExhaustiveCensus:
    """Result of an exhaustive census at one n."""

    n: int
    connected_graphs: int
    audited: int
    #: diameter -> cell, for the requested objective.
    by_diameter: dict[int, CensusCell] = field(default_factory=dict)

    def equilibria_with_diameter(self, d: int) -> int:
        cell = self.by_diameter.get(d)
        return cell.equilibria if cell else 0

    def max_equilibrium_diameter(self) -> int:
        eq_diams = [
            d for d, cell in self.by_diameter.items() if cell.equilibria > 0
        ]
        return max(eq_diams) if eq_diams else 0


def _connected_bitmask(mask: int, pairs: list[tuple[int, int]], n: int) -> bool:
    """Union-find connectivity straight off the edge bitmask."""
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    components = n
    m = mask
    idx = 0
    while m:
        if m & 1:
            u, v = pairs[idx]
            ru, rv = find(u), find(v)
            if ru != rv:
                parent[ru] = rv
                components -= 1
                if components == 1:
                    return True
        m >>= 1
        idx += 1
    return components == 1


def _census_shard(payload: tuple) -> "ExhaustiveCensus":
    """One contiguous mask-range shard (module-level for the process pool)."""
    n, objective, max_n, mask_range = payload
    return exhaustive_equilibrium_census(
        n, objective, max_n=max_n, mask_range=mask_range
    )


def exhaustive_equilibrium_census(
    n: int,
    objective: str = "sum",
    max_n: int = 7,
    mask_range: "tuple[int, int] | None" = None,
    workers: int = 1,
) -> ExhaustiveCensus:
    """Census all connected labelled graphs on ``n`` vertices.

    For ``objective="sum"``, diameter-≤2 graphs are equilibria by theorem
    (counted without audit); diameter-≥3 graphs get the full auditor.  For
    ``objective="max"`` every connected graph is audited (no comparable
    shortcut exists: deletion-criticality fails even at diameter 1).

    ``max_n`` guards the 2^C(n,2) enumeration; n = 7 takes minutes, n = 8
    (2^28) is out of reach for this path.

    ``mask_range`` restricts the enumeration to ``[lo, hi)`` over the edge
    bitmask space; ``workers > 1`` shards the whole space into contiguous
    ranges, runs one census per shard on the persistent process pool, and
    :func:`merge_censuses` folds them back — ascending shard order keeps
    the merged counts *and* the per-cell example graphs identical to the
    serial scan.  (``workers`` and an explicit ``mask_range`` are mutually
    exclusive: a caller sharding by hand owns the split.)
    """
    if objective not in ("sum", "max"):
        raise ConfigurationError(f"unknown objective {objective!r}")
    if n < 2:
        raise ConfigurationError(f"census needs n >= 2, got {n}")
    if n > max_n:
        raise ConfigurationError(
            f"exhaustive census capped at n <= {max_n} (2^C(n,2) blow-up), got {n}"
        )
    pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    total_masks = 1 << len(pairs)
    if workers > 1 and mask_range is not None:
        raise ConfigurationError(
            "pass either workers or an explicit mask_range, not both"
        )
    if workers > 1 and total_masks > workers:
        from ..parallel import parallel_map

        shards = max(1, min(4 * workers, total_masks))
        bounds = [
            round(s * total_masks / shards) for s in range(shards + 1)
        ]
        payloads = [
            (n, objective, max_n, (blo, bhi))
            for blo, bhi in zip(bounds[:-1], bounds[1:])
            if bhi > blo
        ]
        parts = parallel_map(
            _census_shard, payloads, workers=workers, backend="persistent"
        )
        return merge_censuses(parts)
    lo, hi = (0, total_masks) if mask_range is None else mask_range
    if not (0 <= lo <= hi <= total_masks):
        raise ConfigurationError(
            f"mask_range {mask_range} out of bounds for {total_masks} masks"
        )
    census = ExhaustiveCensus(n=n, connected_graphs=0, audited=0)

    for mask in range(lo, hi):
        if not _connected_bitmask(mask, pairs, n):
            continue
        census.connected_graphs += 1
        edges = tuple(
            pairs[i] for i in range(len(pairs)) if mask & (1 << i)
        )
        g = CSRGraph(n, edges)
        d = diameter(g)
        cell = census.by_diameter.setdefault(d, CensusCell())
        cell.graphs += 1
        if objective == "sum":
            if d <= 2:
                is_eq = True  # Lemma-6 shortcut, validated by tests
            else:
                census.audited += 1
                is_eq = find_sum_violation(g) is None
        else:
            census.audited += 1
            is_eq = is_max_equilibrium(g)
        if is_eq:
            cell.equilibria += 1
            if cell.example is None:
                cell.example = edges
    return census


def merge_censuses(parts: "list[ExhaustiveCensus]") -> ExhaustiveCensus:
    """Merge shard censuses produced with disjoint ``mask_range`` values."""
    if not parts:
        raise ConfigurationError("nothing to merge")
    if len({p.n for p in parts}) != 1:
        raise ConfigurationError("shards must share n")
    merged = ExhaustiveCensus(
        n=parts[0].n,
        connected_graphs=sum(p.connected_graphs for p in parts),
        audited=sum(p.audited for p in parts),
    )
    for part in parts:
        for d, cell in part.by_diameter.items():
            target = merged.by_diameter.setdefault(d, CensusCell())
            target.graphs += cell.graphs
            target.equilibria += cell.equilibria
            if target.example is None:
                target.example = cell.example
    return merged


def smallest_diameter3_sum_equilibria(
    up_to_n: int,
) -> dict[int, int]:
    """Count diameter-3 sum equilibria for each n ≤ ``up_to_n`` (labelled).

    The question the Figure 3 finding raises: since the paper's 13-vertex
    witness fails and this repo's replacement has 10 vertices, what is the
    *smallest* order at which diameter-3 sum equilibria exist at all?
    Exhaustive for the n this function is allowed to reach.
    """
    out: dict[int, int] = {}
    for n in range(4, up_to_n + 1):
        census = exhaustive_equilibrium_census(n, "sum")
        out[n] = census.equilibria_with_diameter(3)
    return out
