"""The incremental distance engine — one APSP, everything else derived.

Every audit and every dynamics activation in this library ultimately asks
distance questions about graphs that differ from a known base graph by one or
two edges.  The seed implementation answered each question from scratch (a
rebuilt CSR graph plus a fresh scipy APSP per candidate edge); the
:class:`DistanceEngine` answers them from a cached base matrix:

* **removal rows** — :meth:`removal_matrix` derives the APSP of ``G − e`` via
  :func:`repro.graphs.removal_matrix_repair`: exact affected-source detection
  plus a seeded partial BFS per affected row, no graph rebuild, no scipy;
* **applied swaps** — :meth:`apply_swap` keeps the matrix current across
  dynamics moves: the dropped edge is handled by row repair, the added edge
  by the exact single-insertion min-plus closure
  ``d'(x, y) = min(d(x, y), d(x, v) + 1 + d(v', y), d(x, v') + 1 + d(v, y))``
  (an inserted edge appears at most once on any shortest path), so a move
  costs O(affected + n²) instead of a full APSP;
* **best responses** — :meth:`best_swap` evaluates an agent against the
  cached matrix, sharing all of the above.

The engine reports which matrix rows each applied swap changed; the dynamics
layer uses that as its dirty-vertex signal.  Matrices use the lifted int64
convention (:data:`repro.core.costs.INT_INF` for unreachable pairs)
throughout, and the old rebuild/copy paths remain available as
cross-validation oracles (``mode="rebuild"`` / ``mode="oracle"`` in
:mod:`repro.core.swap_eval` and :mod:`repro.core.best_response`).
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from ..errors import GraphError
from ..graphs import AdjacencyGraph, CSRGraph, distance_matrix
from ..graphs.repair import (
    predecessor_counts,
    removal_affected_sources,
    removal_matrix_repair,
)
from .costs import INT_INF, lift_distances
from .moves import Swap

__all__ = ["DistanceEngine"]

Objective = Literal["sum", "max"]
BestSwapMode = Literal["incremental", "batched"]


class DistanceEngine:
    """Cached-APSP view of a mutable graph, updated incrementally.

    Parameters
    ----------
    graph:
        Initial graph (CSR or adjacency form; copied either way).
    dm:
        Optional precomputed distance matrix of ``graph`` — raw int32 with
        ``UNREACHABLE`` or already lifted — to skip the base APSP.
    """

    __slots__ = ("_adj", "_dm", "_pc", "_base_plus1", "_scratch")

    def __init__(
        self,
        graph: CSRGraph | AdjacencyGraph,
        dm: np.ndarray | None = None,
    ):
        self._pc: np.ndarray | None = None  # lazy predecessor-count table
        self._base_plus1: np.ndarray | None = None  # lazy dm + 1 scratch
        self._scratch: np.ndarray | None = None  # (n, n) kernel workspace
        if isinstance(graph, AdjacencyGraph):
            self._adj = graph.copy()
        elif isinstance(graph, CSRGraph):
            self._adj = AdjacencyGraph.from_csr(graph)
        else:
            raise GraphError(
                f"DistanceEngine needs a CSRGraph or AdjacencyGraph, "
                f"got {type(graph).__name__}"
            )
        if dm is None:
            dm = distance_matrix(self.graph)
        self._dm = lift_distances(np.asarray(dm))

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self._adj.n

    @property
    def graph(self) -> CSRGraph:
        """Current CSR snapshot (cached by the underlying adjacency graph)."""
        return self._adj.to_csr()

    @property
    def adjacency(self) -> AdjacencyGraph:
        """The live mutable graph.  Mutate only through :meth:`apply_swap`."""
        return self._adj

    @property
    def dm(self) -> np.ndarray:
        """Current lifted (int64, :data:`INT_INF`) distance matrix."""
        return self._dm

    def pred_counts(self) -> np.ndarray:
        """Predecessor-count table of the current graph/matrix, cached.

        The shared input of the batched audit kernel
        (:func:`repro.graphs.predecessor_counts`): computed lazily on first
        use and invalidated by :meth:`apply_swap`, so dynamics verification
        sweeps, trajectory-census endpoint audits, and anything else riding
        this engine reuse one table per quiescent graph state.
        """
        if self._pc is None:
            self._pc = predecessor_counts(self.graph, self._dm)
        return self._pc

    def _kernel_scratch(self) -> tuple[np.ndarray, np.ndarray]:
        """Cached ``(dm + 1, (n, n) workspace)`` for the batched kernel.

        ``dm + 1`` is invalidated by :meth:`apply_swap`; the workspace is
        overwritten by every kernel call and persists across swaps.
        """
        if self._base_plus1 is None:
            self._base_plus1 = self._dm + 1
        if self._scratch is None:
            self._scratch = np.empty((self.n, self.n), dtype=np.int64)
        return self._base_plus1, self._scratch

    def is_connected(self) -> bool:
        if self.n <= 1:
            return True
        return bool((self._dm[0] < INT_INF).all())

    def cost(self, v: int, objective: "Objective | str" = "sum") -> float:
        """The agent cost of ``v`` in the current graph (``inf`` if disconnected).

        ``objective`` accepts any cost model or spec string
        (:mod:`repro.core.costmodel`); the historical ``"sum"``/``"max"``
        strings behave exactly as before.
        """
        from .costmodel import resolve_cost_model

        return resolve_cost_model(objective, self.n).row_cost(v, self._dm[v])

    def sum_costs(self) -> np.ndarray:
        """Lifted int64 vector of per-vertex sum costs."""
        return self._dm.sum(axis=1)

    def eccentricities(self) -> np.ndarray:
        """Lifted int64 vector of per-vertex eccentricities."""
        return self._dm.max(axis=1)

    # ------------------------------------------------------------------
    # Derived matrices
    # ------------------------------------------------------------------
    def removal_matrix(self, a: int, b: int) -> np.ndarray:
        """Lifted APSP of the current graph minus edge ``{a, b}``.

        Copy-on-write against the base matrix: only rows the deletion can
        change are recomputed (by seeded partial BFS).
        """
        return removal_matrix_repair(self.graph, self._dm, (a, b))

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def apply_swap(self, swap: Swap) -> np.ndarray:
        """Apply ``swap`` and repair the matrix; returns the changed-row mask.

        The mask is sound: every row that differs between the old and new
        graphs is marked.  It may over-report a row whose removal-time change
        is exactly undone by the insertion closure — harmless for the dirty
        bookkeeping it feeds.
        """
        swap.validate(self._adj)
        v, w, add = swap.vertex, swap.drop, swap.add
        csr = self.graph  # snapshot of the pre-move graph
        changed = removal_affected_sources(csr, self._dm, (v, w))
        # In-place repair: the engine owns its matrix, so the removal's
        # affected rows are rewritten directly (out=dm) instead of copying
        # all n×n entries per move; audit callers keep the copying default.
        new_dm = removal_matrix_repair(
            csr, self._dm, (v, w), affected=changed, out=self._dm
        )
        self._adj.remove_edge(v, w)
        if add != w and not self._adj.has_edge(v, add):
            self._adj.add_edge(v, add)
            dv = new_dm[v]
            da = new_dm[add]
            # min(dv[x] + da[y], da[x] + dv[y]) + 1: one outer sum and its
            # transpose instead of two full broadcast products.
            closure = np.add.outer(dv, da)
            closure = np.minimum(closure, closure.T)
            closure += 1
            improved = (closure < new_dm).any(axis=1)
            changed |= improved
            # The min against new_dm (whose entries are <= INT_INF) also
            # discards any closure sums that overflowed past the sentinel.
            np.minimum(new_dm, closure, out=new_dm)
        self._pc = None  # derived caches follow the matrix
        self._base_plus1 = None
        return changed

    # ------------------------------------------------------------------
    # Best response
    # ------------------------------------------------------------------
    def best_swap(
        self,
        v: int,
        objective: Objective = "sum",
        *,
        prefer_deletions_on_tie: bool | None = None,
        mode: BestSwapMode = "incremental",
    ):
        """Exact best response of ``v``, computed against the cached matrix.

        Identical in outcome (including tie-breaking) to the oracle
        :func:`repro.core.best_response.best_swap`.  ``mode="batched"``
        routes through the bound-then-verify per-vertex kernel
        (:func:`repro.core.batched.best_swap_scan`) with the engine's
        cached ``dm + 1`` / workspace scratch — same response, and most
        activations certified move-free without materializing a single
        removal matrix.
        """
        from .best_response import best_swap

        if mode == "batched":
            from .batched import best_swap_scan

            base_plus1, buf = self._kernel_scratch()
            return best_swap_scan(
                self.graph,
                v,
                objective,
                self._dm,
                prefer_deletions_on_tie=prefer_deletions_on_tie,
                base_plus1=base_plus1,
                buf=buf,
            )
        if mode != "incremental":
            raise GraphError(f"unknown engine best_swap mode {mode!r}")
        return best_swap(
            self.graph,
            v,
            objective,
            prefer_deletions_on_tie=prefer_deletions_on_tie,
            engine=self,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DistanceEngine(n={self.n}, m={self._adj.m})"
