"""Swap evaluation: what does a candidate swap do to the mover's cost?

Two evaluation strategies, ablated in ``bench_checker_scaling``:

* ``patched`` — one BFS over the base graph with the dropped edge masked and
  the added edge injected (:func:`repro.graphs.bfs.bfs_aggregates` with a
  patch).  O(m) per candidate, zero graph copies.  Best for evaluating a
  *single* swap.
* ``copy`` — materialize the swapped graph and BFS it.  Baseline used for
  cross-validation.

For evaluating *all* swap targets of one dropped edge at once, use
:func:`all_swap_costs_for_drop`, which computes APSP of ``G − vw`` once and
then closes over every candidate ``w'`` with the exact min-plus identity

    d_{G-vw+vw'}(v, u) = min( d_{G-vw}(v, u),  1 + d_{G-vw}(w', u) )

valid because any shortest path from ``v`` using the new edge must use it
first (revisiting ``v`` never shortens a path).  This identity is what makes
full equilibrium audits O(m) APSP calls instead of O(n·m) BFS calls.

Since the incremental distance engine (DESIGN.md §2), the removal APSP itself
is no longer recomputed per edge: :func:`removal_distance_matrix` defaults to
``mode="repair"``, deriving ``G − e`` from a cached base matrix by repairing
only the rows the deletion can change.  ``mode="rebuild"`` keeps the seed
path (fresh scipy APSP on a rebuilt graph) as the cross-validation oracle.
"""

from __future__ import annotations

import math
from typing import Literal

import numpy as np
from ..errors import ConfigurationError

from ..graphs import CSRGraph, distance_matrix
from ..graphs.repair import removal_matrix_repair
from .costmodel import CostModel, resolve_cost_model
from .costs import ensure_lifted, lift_distances
from .moves import Swap, swapped_graph

__all__ = [
    "swap_cost_after",
    "swap_delta",
    "all_swap_costs_for_drop",
    "removal_distance_matrix",
]

Objective = Literal["sum", "max"]
EvalMode = Literal["patched", "copy"]
RemovalMode = Literal["repair", "rebuild"]


def swap_cost_after(
    graph: CSRGraph,
    swap: Swap,
    objective: "Objective | str | CostModel" = "sum",
    mode: EvalMode = "patched",
) -> float:
    """The mover's cost in the swapped graph (``inf`` if it disconnects them)."""
    model = resolve_cost_model(objective, graph.n)
    swap.validate(graph)
    if mode == "copy":
        g2 = swapped_graph(graph, swap)
        return model.bfs_cost(g2, swap.vertex)
    if mode != "patched":
        raise ConfigurationError(f"unknown eval mode {mode!r}")
    extra = []
    if not graph.has_edge(swap.vertex, swap.add):
        extra = [(swap.vertex, swap.add)]
    return model.bfs_cost(
        graph, swap.vertex, exclude=(swap.vertex, swap.drop), extra=extra
    )


def swap_delta(
    graph: CSRGraph,
    swap: Swap,
    objective: "Objective | str | CostModel" = "sum",
    mode: EvalMode = "patched",
) -> float:
    """``cost_after - cost_before`` for the mover; negative means improving."""
    model = resolve_cost_model(objective, graph.n)
    before = model.bfs_cost(graph, swap.vertex)
    after = swap_cost_after(graph, swap, model, mode)
    return after - before


def removal_distance_matrix(
    graph: CSRGraph,
    edge: tuple[int, int],
    *,
    base_dm: np.ndarray | None = None,
    mode: RemovalMode = "repair",
) -> np.ndarray:
    """Lifted (int64, INT_INF) APSP matrix of ``graph`` minus one edge.

    Parameters
    ----------
    base_dm:
        Optional precomputed distance matrix of ``graph`` (raw int32 or
        already lifted — a lifted input is used by reference, no n×n
        copy).  With ``mode="repair"`` it is the matrix the removal
        rows are derived from; amortize it across edges when auditing.
    mode:
        ``"repair"`` (default) — affected-row detection plus seeded partial
        BFS against the base matrix; ``"rebuild"`` — the seed oracle path, a
        fresh APSP on a rebuilt graph.
    """
    a, b = int(edge[0]), int(edge[1])
    if mode == "rebuild":
        reduced = graph.with_edges(remove=[(a, b)])
        return lift_distances(distance_matrix(reduced))
    if mode != "repair":
        raise ConfigurationError(f"unknown removal mode {mode!r}")
    if base_dm is None:
        base_dm = distance_matrix(graph)
    return removal_matrix_repair(graph, ensure_lifted(base_dm), (a, b))


def all_swap_costs_for_drop(
    graph: CSRGraph,
    v: int,
    w: int,
    objective: "Objective | str | CostModel" = "sum",
    removal_dm: np.ndarray | None = None,
) -> np.ndarray:
    """Cost of ``v`` after swapping edge ``v–w`` to ``v–w'``, for **every** w'.

    Returns a float array ``costs`` of length ``n`` where ``costs[w']`` is
    the mover's post-swap cost (``inf`` encodes disconnection).  Entries for
    ``w' == v`` (illegal) and ``w' == w`` (identity) are set to ``inf`` and
    the base cost respectively so callers can take a plain argmin.

    Deletion-as-swap falls out automatically: when ``w'`` is an existing
    neighbour of ``v`` in ``G − vw``, the min-plus closure with ``w'``'s row
    cannot beat ``v``'s own row, so ``costs[w']`` equals the deletion cost.

    ``objective`` accepts a :class:`~repro.core.costmodel.CostModel` or any
    spec string; the costs are the model's (``"sum"``/``"max"`` reproduce
    the paper's objectives bit-for-bit).  Move legality (budget caps) is
    *not* applied here — this is the cost of every hypothetical target;
    movers mask illegal targets via ``model.target_mask``.

    Parameters
    ----------
    removal_dm:
        Optional precomputed :func:`removal_distance_matrix` for ``(v, w)``
        (shared by the two endpoints of an edge during a full audit).
    """
    model = (
        objective
        if isinstance(objective, CostModel)
        else resolve_cost_model(objective, graph.n)
    )
    if removal_dm is None:
        removal_dm = removal_distance_matrix(graph, (v, w))
    dv = removal_dm[v]  # distances from v in G - vw
    # candidate[w', u] = min(dv[u], 1 + removal_dm[w', u])
    candidate = np.minimum(dv[None, :], removal_dm + 1)
    costs = model.candidate_costs(v, candidate)

    # w' == w re-adds the dropped edge: identity. Recover the base cost
    # directly from the same min-plus closure (row w is exact for it).
    # w' == v is illegal.
    costs[v] = math.inf
    return costs
