"""Asynchronous swap dynamics — how equilibria are *reached*.

The paper defines equilibria statically; to populate an empirical census
(Theorem 9's experiment) we need a process that finds them.  This engine
runs better/best-response dynamics: repeatedly activate a vertex, let it
perform its chosen improving swap, until no vertex can improve.

Design notes
------------
* **Schedules** — ``round_robin`` (deterministic sweeps), ``random``
  (uniform activations), and ``greedy`` (activate the vertex with the
  globally best improvement — expensive but canonical).
* **Incremental state** — the default ``engine_mode="incremental"`` routes
  every activation through a :class:`~repro.core.engine.DistanceEngine`:
  the distance matrix is maintained across applied swaps by BFS row repair
  plus the insertion closure (never recomputed from scratch), and a
  **dirty-vertex set** lets the ``round_robin`` and ``random`` schedules
  skip vertices that were observed move-free and whose relevant state has
  not been touched since (``greedy`` always scans every vertex — its argmax
  is global by definition, and the full scan doubles as the convergence
  certificate).  The dirty
  rule (re-dirty the move's endpoints and every vertex whose distance row
  changed) is a heuristic, so convergence is *never* declared from it alone:
  once the dirty set drains, a full verification sweep activates every
  vertex, and only a clean sweep certifies the equilibrium.  Near
  convergence this turns each quiet sweep from O(n · deg · APSP) into a set
  lookup, with one exact sweep at the end.  ``engine_mode="oracle"`` keeps
  the seed implementation (fresh best responses against copied graphs) for
  cross-validation and benchmarking.
* **Batched best responses** — ``engine_mode="batched"`` keeps all of the
  incremental bookkeeping and additionally routes every activation through
  the bound-then-verify per-vertex kernel (DESIGN.md §8): a clean vertex's
  no-move observation is a **bound certificate** — stored in the dirty set,
  invalidated the moment a swap touches anything the certificate depended
  on — and a freshly activated vertex is usually re-certified from one
  aggregation pass over the cached base matrix, with zero BFS work and no
  removal matrices materialized.  The verification sweep collapses into
  one cross-edge batched audit scan
  (:func:`~repro.core.batched.certify_at_rest`); when the scan does find a
  mover, the sweep falls back to the ordered per-vertex kernel so the
  applied move — and therefore the whole trajectory, trace for trace —
  stays bit-identical to the ``incremental`` and ``oracle`` paths.
  Certificates are *never* trusted for termination: convergence is still
  declared only by the exact sweep, so a stale certificate can delay a
  move's discovery but can never suppress it.
* **Termination** — sum dynamics have no known potential (a swap lowers the
  mover's cost but can raise others'), so cycles are possible in principle;
  the engine hashes every visited edge set and reports ``cycle_detected``
  instead of looping.  Deletions strictly reduce the edge count, so only
  pure-swap cycles can occur.
* **Instrumentation** — optional trajectory recording (applied swaps,
  per-step diameter and social cost) feeds the convergence examples and the
  census diagnostics.
* **Preemptibility** — ``run(checkpoint=, checkpoint_every=)`` keeps a
  crash-safe :class:`~repro.io.checkpoint.CheckpointStore` current with the
  run's *full* resumable state — edge set, the cycle detector's ``seen``
  hashes, the serialized RNG stream, dirty set, counters, traces, and the
  schedule's loop position — snapshotted only at applied-move boundaries
  (the states a resumed loop can actually re-enter).  A run killed at any
  instant and re-``run`` with the same configuration resumes from its last
  snapshot and produces a :class:`DynamicsResult` bit-identical to the
  uninterrupted run, for every ``engine_mode`` and cost model; a
  ``deadline=`` expiry checkpoints-and-yields (typed
  :class:`~repro.errors.DeadlineExceeded`) so fleet/service budgets convert
  to persisted progress instead of lost work.  DESIGN.md §13.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Literal

import numpy as np

from ..errors import (
    ConfigurationError,
    DeadlineExceeded,
    DisconnectedGraphError,
)
from ..graphs import (
    AdjacencyGraph,
    CSRGraph,
    diameter_or_inf,
    distance_matrix,
    is_connected,
)
from ..io.checkpoint import CheckpointStore
from ..io.hashing import graph_fingerprint
from ..parallel import check_deadline, current_task_deadline
from ..rng import make_rng
from .best_response import BestResponse, best_swap, first_improving_swap
from .costmodel import CostModel, parse_cost_spec, resolve_cost_model
from .costs import INT_INF, lift_distances
from .engine import DistanceEngine
from .moves import Swap

__all__ = ["DynamicsResult", "SwapDynamics"]

Objective = Literal["sum", "max"]
Schedule = Literal["round_robin", "random", "greedy"]
Responder = Literal["best", "first"]
EngineMode = Literal["incremental", "batched", "oracle"]


# ----------------------------------------------------------------------
# Checkpoint payload codecs.  The checkpoint contract (DESIGN.md §13) is
# canonical JSON — strict, no NaN/Infinity literals — so non-finite trace
# floats round-trip as strings and every edge/move coordinate is coerced
# to a plain int (numpy scalars are not JSON).
# ----------------------------------------------------------------------
def _encode_trace(values: "list[float]") -> list:
    out: list = []
    for x in values:
        if x == math.inf:
            out.append("inf")
        elif x == -math.inf:
            out.append("-inf")
        elif x != x:
            out.append("nan")
        else:
            out.append(float(x))
    return out


def _decode_trace(values: list) -> "list[float]":
    # float("inf") / float("-inf") / float("nan") parse the string forms.
    return [float(x) for x in values]


def _encode_edges(edge_set) -> list:
    return [[int(a), int(b)] for a, b in sorted(edge_set)]


def _decode_edges(edges: list) -> "list[tuple[int, int]]":
    return [(int(a), int(b)) for a, b in edges]


@dataclass
class DynamicsResult:
    """Outcome of a dynamics run.

    Attributes
    ----------
    graph:
        Final graph (an equilibrium iff ``converged``).
    converged:
        No vertex had an improving move at the end (for the incremental
        engine this is certified by a full verification sweep, independent
        of the dirty-set bookkeeping).
    cycle_detected:
        The run revisited a previously seen graph (terminated to avoid
        looping); ``converged`` is ``False`` in that case.
    steps:
        Number of improving moves applied.
    activations:
        Number of best-response computations performed (dirty-set skips are
        not activations).
    moves:
        The applied swaps, in order (empty unless recording was enabled).
    diameter_trace / social_cost_trace:
        Per-applied-move snapshots (recording only).  The social cost is
        the resolved cost model's own Σ-of-agent-costs — for the paper's
        sum game that is the total pairwise distance, for ``max`` the sum
        of eccentricities, for interest/budget variants the variant's
        social cost.
    final_dm:
        The engine's lifted distance matrix of :attr:`graph` (engine-backed
        modes only; ``None`` for the oracle path).  Endpoint audits pass it
        as ``base_dm`` so verifying a converged trajectory never recomputes
        the APSP the dynamics already hold; excluded from equality.
    """

    graph: CSRGraph
    converged: bool
    cycle_detected: bool
    steps: int
    activations: int
    moves: list[Swap] = field(default_factory=list)
    diameter_trace: list[float] = field(default_factory=list)
    social_cost_trace: list[float] = field(default_factory=list)
    final_dm: "np.ndarray | None" = field(
        default=None, compare=False, repr=False
    )

    @property
    def exhausted(self) -> bool:
        """The ``max_steps`` budget ran out mid-flight.

        Distinct from :attr:`cycle_detected`: an exhausted run saw no
        repeated state — it simply was not given enough moves.  Exactly one
        of ``converged`` / ``cycle_detected`` / ``exhausted`` is true for
        every finished run.
        """
        return not self.converged and not self.cycle_detected


class SwapDynamics:
    """Configurable asynchronous swap dynamics.

    Parameters
    ----------
    objective:
        ``"sum"`` or ``"max"`` (the paper's two versions), any variant spec
        string (``"interest-sum:k=4,seed=9"``, ``"budget-max:cap=3"``), or a
        :class:`~repro.core.costmodel.CostModel` instance.
    schedule:
        Activation order (see module docstring).
    responder:
        ``"best"`` — exact best swap per activation; ``"first"`` — first
        improving swap in random order (better-response).
    max_steps:
        Budget of applied moves before giving up (the result then has
        ``converged=False``).
    record:
        Record moves and per-move diameter / social-cost traces.
    seed:
        Seeds activation order and the better-response candidate order.
        Every :meth:`run` derives a **fresh** generator from this seed, so
        repeated runs on one instance are identical (pass an existing
        ``numpy.random.Generator`` to opt back into a shared advancing
        stream across runs).
    engine_mode:
        ``"incremental"`` (default) — cached-APSP engine with dirty-set
        skipping; ``"batched"`` — the same engine with bound-then-verify
        best responses, bound certificates, and scan-based verification
        sweeps (bit-identical trajectories, the fast path for convergence
        runs); ``"oracle"`` — the seed path, kept for cross-validation.
    """

    def __init__(
        self,
        objective: "Objective | str | CostModel" = "sum",
        schedule: Schedule = "round_robin",
        responder: Responder = "best",
        max_steps: int = 10_000,
        record: bool = False,
        seed=None,
        engine_mode: EngineMode = "incremental",
    ):
        if not isinstance(objective, CostModel):
            # Validate the spec eagerly; n-dependent models (interest sets)
            # materialize lazily in run() where the graph size is known.
            parse_cost_spec(objective)
        if schedule not in ("round_robin", "random", "greedy"):
            raise ConfigurationError(f"unknown schedule {schedule!r}")
        if responder not in ("best", "first"):
            raise ConfigurationError(f"unknown responder {responder!r}")
        if max_steps < 1:
            raise ConfigurationError(f"max_steps must be >= 1, got {max_steps}")
        if engine_mode not in ("incremental", "batched", "oracle"):
            raise ConfigurationError(f"unknown engine_mode {engine_mode!r}")
        self.objective: "Objective | str | CostModel" = objective
        self.schedule: Schedule = schedule
        self.responder: Responder = responder
        self.max_steps = max_steps
        self.record = record
        self.engine_mode: EngineMode = engine_mode
        self.seed = seed
        self._rng = None  # derived per run()
        self._model: CostModel | None = None  # resolved per run()
        self._ckpt: "CheckpointStore | None" = None  # armed per run()
        self._ckpt_every: "int | None" = None
        self._deadline: "float | None" = None

    # ------------------------------------------------------------------
    def run(
        self,
        initial: CSRGraph,
        *,
        checkpoint: "CheckpointStore | str | None" = None,
        checkpoint_every: "int | None" = None,
        deadline: "float | None" = None,
    ) -> DynamicsResult:
        """Run the dynamics from ``initial`` (must be connected).

        Preemption contract (DESIGN.md §13): ``checkpoint`` names a
        :class:`~repro.io.checkpoint.CheckpointStore` (or a path for one)
        that the run keeps current — a full resumable snapshot every
        ``checkpoint_every`` applied moves.  A later ``run`` with the same
        configuration (objective spec, schedule, responder, ``max_steps``,
        ``record``, activation accounting, initial graph) finds the
        snapshot and continues it, producing a :class:`DynamicsResult`
        bit-identical to the uninterrupted run — same moves, traces,
        counters and terminal graph — for every ``engine_mode`` and cost
        model; the RNG stream is serialized with the state, so the
        configured ``seed`` only matters for fresh starts.  A corrupt
        checkpoint is quarantined and the run restarts; a checkpoint from
        a *different* configuration raises
        :class:`~repro.errors.StoreIntegrityError`.  A finished run clears
        the slot.

        ``deadline`` (a ``time.monotonic()`` instant, as everywhere in the
        runtime) is checked at applied-move boundaries — the only states a
        resumed loop can re-enter — and on expiry the run snapshots its
        state (when a checkpoint store is armed) and raises
        :class:`~repro.errors.DeadlineExceeded`: the budget converts to
        persisted progress, not lost work.  When no explicit deadline is
        given, the run adopts the surrounding mapped task's
        (:func:`~repro.parallel.current_task_deadline`), which is how a
        fleet-level deadline preempts its in-flight trajectories.
        """
        if not is_connected(initial):
            raise DisconnectedGraphError("dynamics require a connected start")
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ConfigurationError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        if checkpoint_every is not None and checkpoint is None:
            raise ConfigurationError(
                "checkpoint_every needs a checkpoint store/path to write to"
            )
        # A fresh per-run generator: a second run() on this instance replays
        # the same schedule / candidate order instead of continuing the
        # first run's stream (re-running from `seed` must be reproducible).
        # A Generator passed as the seed is the documented opt-out: the
        # caller owns the stream, and it keeps advancing across runs.
        # (A resumed checkpoint then *overwrites* the generator's state —
        # the serialized stream is part of the bit-identity guarantee.)
        self._rng = make_rng(self.seed)
        self._model = resolve_cost_model(self.objective, initial.n)
        self._ckpt = self._checkpoint_store(checkpoint)
        self._ckpt_every = checkpoint_every
        self._deadline = (
            current_task_deadline() if deadline is None else deadline
        )
        if self.engine_mode == "oracle":
            result = self._run_oracle(initial)
        else:
            result = self._run_incremental(initial)
        if self._ckpt is not None:
            # A finished run leaves no checkpoint behind (a deadline expiry
            # raises above, so its freshly saved snapshot survives).
            self._ckpt.clear()
        return result

    @staticmethod
    def _checkpoint_store(
        checkpoint: "CheckpointStore | str | None",
    ) -> "CheckpointStore | None":
        if checkpoint is None or isinstance(checkpoint, CheckpointStore):
            return checkpoint
        return CheckpointStore(checkpoint)

    def _checkpoint_config(self, initial: CSRGraph) -> dict:
        """What a snapshot must agree on before it may be resumed.

        ``engine_mode`` is deliberately folded to its activation
        *accounting* ("engine" vs "oracle"), matching the trajectory
        census header: incremental and batched runs are bit-identical and
        resume each other's checkpoints freely, while the oracle path
        counts activations differently and must not splice.
        """
        return {
            "v": 1,
            "objective": self._model.spec,
            "schedule": self.schedule,
            "responder": self.responder,
            "max_steps": int(self.max_steps),
            "record": bool(self.record),
            "accounting": (
                "oracle" if self.engine_mode == "oracle" else "engine"
            ),
            "n": int(initial.n),
            "initial": graph_fingerprint(initial),
        }

    # ------------------------------------------------------------------
    # Incremental engine + dirty-set path (the default), shared with the
    # batched kernel path — engine_mode="batched" keeps every scheduling
    # decision identical and only changes *how* a best response is computed
    # (bound-then-verify kernel) and *how* a sweep certifies (one batched
    # audit scan), so trajectories are bit-identical across the modes.
    # ------------------------------------------------------------------
    def _run_incremental(self, initial: CSRGraph) -> DynamicsResult:
        batched = self.engine_mode == "batched"
        config = self._checkpoint_config(initial)
        loaded = None if self._ckpt is None else self._ckpt.load(config)
        if loaded is None:
            engine = DistanceEngine(initial)
            n = engine.n
            seen: set[frozenset[tuple[int, int]]] = {
                engine.adjacency.edge_set()
            }
            steps = 0
            activations = 0
            moves: list[Swap] = []
            diam_trace: list[float] = []
            cost_trace: list[float] = []
            dirty = np.ones(n, dtype=bool)
            pos = {"idx": 0, "quiet": 0}
        else:
            # Resume: rebuild the engine from the snapshotted edge set (the
            # recomputed distance matrix is exact, like the maintained one)
            # and restore every piece of loop state — including the RNG
            # stream — so the continuation is bit-identical to the run the
            # snapshot interrupted.
            n = initial.n
            engine = DistanceEngine(
                CSRGraph(n, _decode_edges(loaded["edges"]))
            )
            seen = {
                frozenset(_decode_edges(key)) for key in loaded["seen"]
            }
            steps = int(loaded["steps"])
            activations = int(loaded["activations"])
            moves = [
                Swap(int(a), int(b), int(c)) for a, b, c in loaded["moves"]
            ]
            diam_trace = _decode_trace(loaded["diam"])
            cost_trace = _decode_trace(loaded["cost"])
            dirty = np.array(loaded["dirty"], dtype=bool)
            pos = {"idx": int(loaded["idx"]), "quiet": int(loaded["quiet"])}
            self._rng.bit_generator.state = loaded["rng"]

        def save_checkpoint() -> None:
            payload = {
                "edges": _encode_edges(engine.adjacency.edge_set()),
                "seen": sorted(_encode_edges(key) for key in seen),
                "rng": self._rng.bit_generator.state,
                "dirty": [int(b) for b in dirty],
                "steps": steps,
                "activations": activations,
                "moves": [
                    [int(s.vertex), int(s.drop), int(s.add)] for s in moves
                ],
                "diam": _encode_trace(diam_trace),
                "cost": _encode_trace(cost_trace),
                "idx": pos["idx"],
                "quiet": pos["quiet"],
            }
            self._ckpt.save(
                payload, config,
                meta={"steps": steps, "activations": activations},
            )

        def guard_deadline() -> None:
            """Checkpoint-and-yield when the caller's budget has expired.

            Checked only at applied-move boundaries (loop tops): those are
            exactly the states a resumed loop re-enters, so the snapshot
            taken here loses nothing and splices nothing.
            """
            if self._deadline is None:
                return
            try:
                check_deadline(self._deadline)
            except DeadlineExceeded:
                if self._ckpt is not None:
                    save_checkpoint()
                raise

        def record_state() -> None:
            if self.record:
                dm = engine.dm
                if dm.size == 0:
                    diam_trace.append(0.0)
                    cost_trace.append(0.0)
                    return
                diam = int(dm.max())
                diam_trace.append(
                    math.inf if diam >= INT_INF else float(diam)
                )
                # The model's social cost, not a hardcoded dm.sum: under
                # max/interest/budget games the trace must report the game
                # actually being played (for SumCost this is bit-identical
                # to the historical total-pairwise-distance recording).
                cost_trace.append(self._model.social_cost(dm))

        def respond(v: int) -> BestResponse:
            nonlocal activations
            activations += 1
            if self.responder == "best":
                if batched:
                    # Bound-then-verify kernel: usually re-certifies the
                    # vertex move-free from one pass over the cached base
                    # matrix, no BFS and no removal matrices.
                    return engine.best_swap(v, self._model, mode="batched")
                return engine.best_swap(v, self._model)
            return first_improving_swap(
                engine.graph, v, self._model, self._rng
            )

        def apply(br: BestResponse) -> bool:
            """Apply a move; returns False when it closes a cycle."""
            nonlocal steps
            assert br.swap is not None
            changed = engine.apply_swap(br.swap)
            steps += 1
            dirty[changed] = True
            dirty[[br.swap.vertex, br.swap.drop, br.swap.add]] = True
            if self.record:
                moves.append(br.swap)
                record_state()
            key = engine.adjacency.edge_set()
            if key in seen:
                return False
            seen.add(key)
            if (
                self._ckpt is not None
                and self._ckpt_every is not None
                and steps % self._ckpt_every == 0
            ):
                save_checkpoint()
            return True

        def verification_sweep() -> BestResponse | None:
            """Activate every vertex; the exactness guard over the dirty rule.

            The batched mode first runs one cross-edge audit scan
            (:func:`~repro.core.batched.certify_at_rest`): in the common
            convergent case it certifies every vertex at once.  A positive
            scan falls back to the ordered per-vertex kernel so the applied
            move — and the activation count — matches the incremental
            sweep exactly.
            """
            nonlocal activations
            if batched and self.responder == "best":
                from .batched import certify_at_rest

                if certify_at_rest(
                    engine.graph,
                    engine.dm,
                    self._model,
                    pred_counts=engine.pred_counts(),
                ):
                    activations += n
                    dirty[:] = False
                    return None
            for v in range(n):
                br = respond(v)
                if br.swap is not None:
                    return br
                dirty[v] = False
            if batched and self.responder == "best":  # pragma: no cover
                raise AssertionError(
                    "certify_at_rest reported a move no vertex produced"
                )
            return None

        cycle = False
        converged = False
        if loaded is None:
            record_state()  # a resumed trace already holds this snapshot

        if self.schedule == "greedy":
            # Greedy is canonical: every step compares ALL vertices, so the
            # dirty heuristic must not narrow the argmax — a clean vertex may
            # still hold the globally best improvement.  The engine makes each
            # activation cheap; the full scan doubling as the convergence
            # certificate means no separate verification sweep is needed.
            while steps < self.max_steps:
                guard_deadline()
                best: BestResponse | None = None
                for v in range(n):
                    br = respond(v)
                    if br.swap is not None and (
                        best is None or br.improvement > best.improvement
                    ):
                        best = br
                if best is None:
                    converged = True
                    break
                if not apply(best):
                    cycle = True
                    break

        elif self.schedule == "round_robin":
            while steps < self.max_steps:
                guard_deadline()
                if not dirty.any():
                    pending = verification_sweep()
                    if pending is None:
                        converged = True
                        break
                    if not apply(pending):
                        cycle = True
                        break
                    continue
                v = pos["idx"] % n
                pos["idx"] += 1
                if not dirty[v]:
                    continue  # provably quiet since its last no-op
                br = respond(v)
                if br.swap is None:
                    dirty[v] = False
                    continue
                if not apply(br):
                    cycle = True
                    break

        else:  # random schedule
            while steps < self.max_steps:
                guard_deadline()
                if not dirty.any() or pos["quiet"] >= 2 * n:
                    pending = verification_sweep()
                    if pending is None:
                        converged = True
                        break
                    pos["quiet"] = 0
                    if not apply(pending):
                        cycle = True
                        break
                    continue
                v = int(self._rng.integers(0, n))
                if not dirty[v]:
                    pos["quiet"] += 1
                    continue
                br = respond(v)
                if br.swap is None:
                    dirty[v] = False
                    pos["quiet"] += 1
                    continue
                pos["quiet"] = 0
                if not apply(br):
                    cycle = True
                    break

        return DynamicsResult(
            engine.graph, converged, cycle, steps, activations,
            moves, diam_trace, cost_trace, final_dm=engine.dm,
        )

    # ------------------------------------------------------------------
    # Seed path: copied graphs, fresh best responses (cross-validation oracle)
    # ------------------------------------------------------------------
    def _respond_oracle(self, graph: CSRGraph, v: int) -> BestResponse:
        if self.responder == "best":
            return best_swap(graph, v, self._model, mode="oracle")
        return first_improving_swap(graph, v, self._model, self._rng)

    def _run_oracle(self, initial: CSRGraph) -> DynamicsResult:
        config = self._checkpoint_config(initial)
        loaded = None if self._ckpt is None else self._ckpt.load(config)
        n = initial.n
        if loaded is None:
            state = AdjacencyGraph.from_csr(initial)
            seen: set[frozenset[tuple[int, int]]] = {state.edge_set()}
            steps = 0
            activations = 0
            moves: list[Swap] = []
            diam_trace: list[float] = []
            cost_trace: list[float] = []
            pos = {"idx": 0, "quiet": 0}
        else:
            # Same restore discipline as the incremental path (the oracle's
            # checkpoints carry no dirty set — it has none).
            state = AdjacencyGraph.from_csr(
                CSRGraph(n, _decode_edges(loaded["edges"]))
            )
            seen = {
                frozenset(_decode_edges(key)) for key in loaded["seen"]
            }
            steps = int(loaded["steps"])
            activations = int(loaded["activations"])
            moves = [
                Swap(int(a), int(b), int(c)) for a, b, c in loaded["moves"]
            ]
            diam_trace = _decode_trace(loaded["diam"])
            cost_trace = _decode_trace(loaded["cost"])
            pos = {"idx": int(loaded["idx"]), "quiet": int(loaded["quiet"])}
            self._rng.bit_generator.state = loaded["rng"]

        def snapshot() -> CSRGraph:
            return state.to_csr()

        def save_checkpoint() -> None:
            payload = {
                "edges": _encode_edges(state.edge_set()),
                "seen": sorted(_encode_edges(key) for key in seen),
                "rng": self._rng.bit_generator.state,
                "steps": steps,
                "activations": activations,
                "moves": [
                    [int(s.vertex), int(s.drop), int(s.add)] for s in moves
                ],
                "diam": _encode_trace(diam_trace),
                "cost": _encode_trace(cost_trace),
                "idx": pos["idx"],
                "quiet": pos["quiet"],
            }
            self._ckpt.save(
                payload, config,
                meta={"steps": steps, "activations": activations},
            )

        def guard_deadline() -> None:
            if self._deadline is None:
                return
            try:
                check_deadline(self._deadline)
            except DeadlineExceeded:
                if self._ckpt is not None:
                    save_checkpoint()
                raise

        def record_state() -> None:
            if self.record:
                g = snapshot()
                diam_trace.append(diameter_or_inf(g))
                if g.n == 0:
                    cost_trace.append(0.0)
                else:
                    # Same model-resolved social cost as the incremental
                    # path (asserted trace-equal on the variant battery).
                    cost_trace.append(
                        self._model.social_cost(
                            lift_distances(distance_matrix(g))
                        )
                    )

        def apply(br: BestResponse) -> bool:
            """Apply a move; returns False when it closes a cycle."""
            nonlocal steps
            assert br.swap is not None
            state.swap_edge(br.swap.vertex, br.swap.drop, br.swap.add)
            steps += 1
            if self.record:
                moves.append(br.swap)
                record_state()
            key = state.edge_set()
            if key in seen:
                return False
            seen.add(key)
            if (
                self._ckpt is not None
                and self._ckpt_every is not None
                and steps % self._ckpt_every == 0
            ):
                save_checkpoint()
            return True

        cycle = False
        converged = False
        if loaded is None:
            record_state()  # a resumed trace already holds this snapshot

        if self.schedule == "greedy":
            while steps < self.max_steps:
                guard_deadline()
                best: BestResponse | None = None
                g = snapshot()
                for v in range(n):
                    activations += 1
                    br = self._respond_oracle(g, v)
                    if br.swap is not None and (
                        best is None or br.improvement > best.improvement
                    ):
                        best = br
                if best is None:
                    converged = True
                    break
                if not apply(best):
                    cycle = True
                    break
            return DynamicsResult(
                snapshot(), converged, cycle, steps, activations,
                moves, diam_trace, cost_trace,
            )

        if self.schedule == "round_robin":
            # pos["quiet"]: consecutive activations without a move
            order = list(range(n))
            while steps < self.max_steps and pos["quiet"] < n:
                guard_deadline()
                v = order[pos["idx"] % n]
                pos["idx"] += 1
                activations += 1
                br = self._respond_oracle(snapshot(), v)
                if br.swap is None:
                    pos["quiet"] += 1
                    continue
                pos["quiet"] = 0
                if not apply(br):
                    cycle = True
                    break
            converged = (not cycle) and pos["quiet"] >= n
            return DynamicsResult(
                snapshot(), converged, cycle, steps, activations,
                moves, diam_trace, cost_trace,
            )

        # random schedule: quiet streak of 2n activations triggers a full
        # deterministic verification sweep before declaring convergence.
        while steps < self.max_steps:
            guard_deadline()
            if pos["quiet"] >= 2 * n:
                g = snapshot()
                verified = True
                pending: BestResponse | None = None
                for v in range(n):
                    activations += 1
                    br = self._respond_oracle(g, v)
                    if br.swap is not None:
                        verified = False
                        pending = br
                        break
                if verified:
                    converged = True
                    break
                pos["quiet"] = 0
                assert pending is not None
                if not apply(pending):
                    cycle = True
                    break
                continue
            v = int(self._rng.integers(0, n))
            activations += 1
            br = self._respond_oracle(snapshot(), v)
            if br.swap is None:
                pos["quiet"] += 1
                continue
            pos["quiet"] = 0
            if not apply(br):
                cycle = True
                break
        return DynamicsResult(
            snapshot(), converged, cycle, steps, activations,
            moves, diam_trace, cost_trace,
        )
