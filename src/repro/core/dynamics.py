"""Asynchronous swap dynamics — how equilibria are *reached*.

The paper defines equilibria statically; to populate an empirical census
(Theorem 9's experiment) we need a process that finds them.  This engine
runs better/best-response dynamics: repeatedly activate a vertex, let it
perform its chosen improving swap, until no vertex can improve.

Design notes
------------
* **Schedules** — ``round_robin`` (deterministic sweeps; convergence =
  one full sweep without a move), ``random`` (uniform activations; a full
  verification sweep confirms convergence after a quiet streak), and
  ``greedy`` (activate the vertex with the globally best improvement —
  expensive but canonical).
* **Termination** — sum dynamics have no known potential (a swap lowers the
  mover's cost but can raise others'), so cycles are possible in principle;
  the engine hashes every visited edge set and reports ``cycle_detected``
  instead of looping.  Deletions strictly reduce the edge count, so only
  pure-swap cycles can occur.
* **Instrumentation** — optional trajectory recording (applied swaps,
  per-step diameter and social cost) feeds the convergence examples and the
  census diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

from ..errors import ConfigurationError, DisconnectedGraphError
from ..graphs import (
    AdjacencyGraph,
    CSRGraph,
    diameter_or_inf,
    is_connected,
    total_pairwise_distance,
)
from ..rng import make_rng
from .best_response import BestResponse, best_swap, first_improving_swap
from .moves import Swap

__all__ = ["DynamicsResult", "SwapDynamics"]

Objective = Literal["sum", "max"]
Schedule = Literal["round_robin", "random", "greedy"]
Responder = Literal["best", "first"]


@dataclass
class DynamicsResult:
    """Outcome of a dynamics run.

    Attributes
    ----------
    graph:
        Final graph (an equilibrium iff ``converged``).
    converged:
        No vertex had an improving move at the end.
    cycle_detected:
        The run revisited a previously seen graph (terminated to avoid
        looping); ``converged`` is ``False`` in that case.
    steps:
        Number of improving moves applied.
    activations:
        Number of best-response computations performed.
    moves:
        The applied swaps, in order (empty unless recording was enabled).
    diameter_trace / social_cost_trace:
        Per-applied-move snapshots (recording only).
    """

    graph: CSRGraph
    converged: bool
    cycle_detected: bool
    steps: int
    activations: int
    moves: list[Swap] = field(default_factory=list)
    diameter_trace: list[float] = field(default_factory=list)
    social_cost_trace: list[float] = field(default_factory=list)


class SwapDynamics:
    """Configurable asynchronous swap dynamics.

    Parameters
    ----------
    objective:
        ``"sum"`` or ``"max"`` (the paper's two versions).
    schedule:
        Activation order (see module docstring).
    responder:
        ``"best"`` — exact best swap per activation; ``"first"`` — first
        improving swap in random order (better-response).
    max_steps:
        Budget of applied moves before giving up (the result then has
        ``converged=False``).
    record:
        Record moves and per-move diameter / social-cost traces.
    seed:
        Seeds activation order and the better-response candidate order.
    """

    def __init__(
        self,
        objective: Objective = "sum",
        schedule: Schedule = "round_robin",
        responder: Responder = "best",
        max_steps: int = 10_000,
        record: bool = False,
        seed=None,
    ):
        if objective not in ("sum", "max"):
            raise ConfigurationError(f"unknown objective {objective!r}")
        if schedule not in ("round_robin", "random", "greedy"):
            raise ConfigurationError(f"unknown schedule {schedule!r}")
        if responder not in ("best", "first"):
            raise ConfigurationError(f"unknown responder {responder!r}")
        if max_steps < 1:
            raise ConfigurationError(f"max_steps must be >= 1, got {max_steps}")
        self.objective: Objective = objective
        self.schedule: Schedule = schedule
        self.responder: Responder = responder
        self.max_steps = max_steps
        self.record = record
        self._rng = make_rng(seed)

    # ------------------------------------------------------------------
    def _respond(self, graph: CSRGraph, v: int) -> BestResponse:
        if self.responder == "best":
            return best_swap(graph, v, self.objective)
        return first_improving_swap(graph, v, self.objective, self._rng)

    def run(self, initial: CSRGraph) -> DynamicsResult:
        """Run the dynamics from ``initial`` (must be connected)."""
        if not is_connected(initial):
            raise DisconnectedGraphError("dynamics require a connected start")
        state = AdjacencyGraph.from_csr(initial)
        n = state.n
        seen: set[frozenset[tuple[int, int]]] = {state.edge_set()}
        steps = 0
        activations = 0
        moves: list[Swap] = []
        diam_trace: list[float] = []
        cost_trace: list[float] = []

        def snapshot() -> CSRGraph:
            return state.to_csr()

        def record_state() -> None:
            if self.record:
                g = snapshot()
                diam_trace.append(diameter_or_inf(g))
                cost_trace.append(total_pairwise_distance(g))

        def apply(br: BestResponse) -> bool:
            """Apply a move; returns False when it closes a cycle."""
            nonlocal steps
            assert br.swap is not None
            state.swap_edge(br.swap.vertex, br.swap.drop, br.swap.add)
            steps += 1
            if self.record:
                moves.append(br.swap)
                record_state()
            key = state.edge_set()
            if key in seen:
                return False
            seen.add(key)
            return True

        cycle = False
        converged = False
        record_state()

        if self.schedule == "greedy":
            while steps < self.max_steps:
                best: BestResponse | None = None
                g = snapshot()
                for v in range(n):
                    activations += 1
                    br = self._respond(g, v)
                    if br.swap is not None and (
                        best is None or br.improvement > best.improvement
                    ):
                        best = br
                if best is None:
                    converged = True
                    break
                if not apply(best):
                    cycle = True
                    break
            return DynamicsResult(
                snapshot(), converged, cycle, steps, activations,
                moves, diam_trace, cost_trace,
            )

        if self.schedule == "round_robin":
            quiet = 0  # consecutive activations without a move
            order = list(range(n))
            idx = 0
            while steps < self.max_steps and quiet < n:
                v = order[idx % n]
                idx += 1
                activations += 1
                br = self._respond(snapshot(), v)
                if br.swap is None:
                    quiet += 1
                    continue
                quiet = 0
                if not apply(br):
                    cycle = True
                    break
            converged = (not cycle) and quiet >= n
            return DynamicsResult(
                snapshot(), converged, cycle, steps, activations,
                moves, diam_trace, cost_trace,
            )

        # random schedule: quiet streak of 2n activations triggers a full
        # deterministic verification sweep before declaring convergence.
        quiet = 0
        while steps < self.max_steps:
            if quiet >= 2 * n:
                g = snapshot()
                verified = True
                pending: BestResponse | None = None
                for v in range(n):
                    activations += 1
                    br = self._respond(g, v)
                    if br.swap is not None:
                        verified = False
                        pending = br
                        break
                if verified:
                    converged = True
                    break
                quiet = 0
                assert pending is not None
                if not apply(pending):
                    cycle = True
                    break
                continue
            v = int(self._rng.integers(0, n))
            activations += 1
            br = self._respond(snapshot(), v)
            if br.swap is None:
                quiet += 1
                continue
            quiet = 0
            if not apply(br):
                cycle = True
                break
        return DynamicsResult(
            snapshot(), converged, cycle, steps, activations,
            moves, diam_trace, cost_trace,
        )
