"""Asynchronous swap dynamics — how equilibria are *reached*.

The paper defines equilibria statically; to populate an empirical census
(Theorem 9's experiment) we need a process that finds them.  This engine
runs better/best-response dynamics: repeatedly activate a vertex, let it
perform its chosen improving swap, until no vertex can improve.

Design notes
------------
* **Schedules** — ``round_robin`` (deterministic sweeps), ``random``
  (uniform activations), and ``greedy`` (activate the vertex with the
  globally best improvement — expensive but canonical).
* **Incremental state** — the default ``engine_mode="incremental"`` routes
  every activation through a :class:`~repro.core.engine.DistanceEngine`:
  the distance matrix is maintained across applied swaps by BFS row repair
  plus the insertion closure (never recomputed from scratch), and a
  **dirty-vertex set** lets the ``round_robin`` and ``random`` schedules
  skip vertices that were observed move-free and whose relevant state has
  not been touched since (``greedy`` always scans every vertex — its argmax
  is global by definition, and the full scan doubles as the convergence
  certificate).  The dirty
  rule (re-dirty the move's endpoints and every vertex whose distance row
  changed) is a heuristic, so convergence is *never* declared from it alone:
  once the dirty set drains, a full verification sweep activates every
  vertex, and only a clean sweep certifies the equilibrium.  Near
  convergence this turns each quiet sweep from O(n · deg · APSP) into a set
  lookup, with one exact sweep at the end.  ``engine_mode="oracle"`` keeps
  the seed implementation (fresh best responses against copied graphs) for
  cross-validation and benchmarking.
* **Batched best responses** — ``engine_mode="batched"`` keeps all of the
  incremental bookkeeping and additionally routes every activation through
  the bound-then-verify per-vertex kernel (DESIGN.md §8): a clean vertex's
  no-move observation is a **bound certificate** — stored in the dirty set,
  invalidated the moment a swap touches anything the certificate depended
  on — and a freshly activated vertex is usually re-certified from one
  aggregation pass over the cached base matrix, with zero BFS work and no
  removal matrices materialized.  The verification sweep collapses into
  one cross-edge batched audit scan
  (:func:`~repro.core.batched.certify_at_rest`); when the scan does find a
  mover, the sweep falls back to the ordered per-vertex kernel so the
  applied move — and therefore the whole trajectory, trace for trace —
  stays bit-identical to the ``incremental`` and ``oracle`` paths.
  Certificates are *never* trusted for termination: convergence is still
  declared only by the exact sweep, so a stale certificate can delay a
  move's discovery but can never suppress it.
* **Termination** — sum dynamics have no known potential (a swap lowers the
  mover's cost but can raise others'), so cycles are possible in principle;
  the engine hashes every visited edge set and reports ``cycle_detected``
  instead of looping.  Deletions strictly reduce the edge count, so only
  pure-swap cycles can occur.
* **Instrumentation** — optional trajectory recording (applied swaps,
  per-step diameter and social cost) feeds the convergence examples and the
  census diagnostics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Literal

import numpy as np

from ..errors import ConfigurationError, DisconnectedGraphError
from ..graphs import (
    AdjacencyGraph,
    CSRGraph,
    diameter_or_inf,
    distance_matrix,
    is_connected,
)
from ..rng import make_rng
from .best_response import BestResponse, best_swap, first_improving_swap
from .costmodel import CostModel, parse_cost_spec, resolve_cost_model
from .costs import INT_INF, lift_distances
from .engine import DistanceEngine
from .moves import Swap

__all__ = ["DynamicsResult", "SwapDynamics"]

Objective = Literal["sum", "max"]
Schedule = Literal["round_robin", "random", "greedy"]
Responder = Literal["best", "first"]
EngineMode = Literal["incremental", "batched", "oracle"]


@dataclass
class DynamicsResult:
    """Outcome of a dynamics run.

    Attributes
    ----------
    graph:
        Final graph (an equilibrium iff ``converged``).
    converged:
        No vertex had an improving move at the end (for the incremental
        engine this is certified by a full verification sweep, independent
        of the dirty-set bookkeeping).
    cycle_detected:
        The run revisited a previously seen graph (terminated to avoid
        looping); ``converged`` is ``False`` in that case.
    steps:
        Number of improving moves applied.
    activations:
        Number of best-response computations performed (dirty-set skips are
        not activations).
    moves:
        The applied swaps, in order (empty unless recording was enabled).
    diameter_trace / social_cost_trace:
        Per-applied-move snapshots (recording only).  The social cost is
        the resolved cost model's own Σ-of-agent-costs — for the paper's
        sum game that is the total pairwise distance, for ``max`` the sum
        of eccentricities, for interest/budget variants the variant's
        social cost.
    final_dm:
        The engine's lifted distance matrix of :attr:`graph` (engine-backed
        modes only; ``None`` for the oracle path).  Endpoint audits pass it
        as ``base_dm`` so verifying a converged trajectory never recomputes
        the APSP the dynamics already hold; excluded from equality.
    """

    graph: CSRGraph
    converged: bool
    cycle_detected: bool
    steps: int
    activations: int
    moves: list[Swap] = field(default_factory=list)
    diameter_trace: list[float] = field(default_factory=list)
    social_cost_trace: list[float] = field(default_factory=list)
    final_dm: "np.ndarray | None" = field(
        default=None, compare=False, repr=False
    )

    @property
    def exhausted(self) -> bool:
        """The ``max_steps`` budget ran out mid-flight.

        Distinct from :attr:`cycle_detected`: an exhausted run saw no
        repeated state — it simply was not given enough moves.  Exactly one
        of ``converged`` / ``cycle_detected`` / ``exhausted`` is true for
        every finished run.
        """
        return not self.converged and not self.cycle_detected


class SwapDynamics:
    """Configurable asynchronous swap dynamics.

    Parameters
    ----------
    objective:
        ``"sum"`` or ``"max"`` (the paper's two versions), any variant spec
        string (``"interest-sum:k=4,seed=9"``, ``"budget-max:cap=3"``), or a
        :class:`~repro.core.costmodel.CostModel` instance.
    schedule:
        Activation order (see module docstring).
    responder:
        ``"best"`` — exact best swap per activation; ``"first"`` — first
        improving swap in random order (better-response).
    max_steps:
        Budget of applied moves before giving up (the result then has
        ``converged=False``).
    record:
        Record moves and per-move diameter / social-cost traces.
    seed:
        Seeds activation order and the better-response candidate order.
        Every :meth:`run` derives a **fresh** generator from this seed, so
        repeated runs on one instance are identical (pass an existing
        ``numpy.random.Generator`` to opt back into a shared advancing
        stream across runs).
    engine_mode:
        ``"incremental"`` (default) — cached-APSP engine with dirty-set
        skipping; ``"batched"`` — the same engine with bound-then-verify
        best responses, bound certificates, and scan-based verification
        sweeps (bit-identical trajectories, the fast path for convergence
        runs); ``"oracle"`` — the seed path, kept for cross-validation.
    """

    def __init__(
        self,
        objective: "Objective | str | CostModel" = "sum",
        schedule: Schedule = "round_robin",
        responder: Responder = "best",
        max_steps: int = 10_000,
        record: bool = False,
        seed=None,
        engine_mode: EngineMode = "incremental",
    ):
        if not isinstance(objective, CostModel):
            # Validate the spec eagerly; n-dependent models (interest sets)
            # materialize lazily in run() where the graph size is known.
            parse_cost_spec(objective)
        if schedule not in ("round_robin", "random", "greedy"):
            raise ConfigurationError(f"unknown schedule {schedule!r}")
        if responder not in ("best", "first"):
            raise ConfigurationError(f"unknown responder {responder!r}")
        if max_steps < 1:
            raise ConfigurationError(f"max_steps must be >= 1, got {max_steps}")
        if engine_mode not in ("incremental", "batched", "oracle"):
            raise ConfigurationError(f"unknown engine_mode {engine_mode!r}")
        self.objective: "Objective | str | CostModel" = objective
        self.schedule: Schedule = schedule
        self.responder: Responder = responder
        self.max_steps = max_steps
        self.record = record
        self.engine_mode: EngineMode = engine_mode
        self.seed = seed
        self._rng = None  # derived per run()
        self._model: CostModel | None = None  # resolved per run()

    # ------------------------------------------------------------------
    def run(self, initial: CSRGraph) -> DynamicsResult:
        """Run the dynamics from ``initial`` (must be connected)."""
        if not is_connected(initial):
            raise DisconnectedGraphError("dynamics require a connected start")
        # A fresh per-run generator: a second run() on this instance replays
        # the same schedule / candidate order instead of continuing the
        # first run's stream (re-running from `seed` must be reproducible).
        # A Generator passed as the seed is the documented opt-out: the
        # caller owns the stream, and it keeps advancing across runs.
        self._rng = make_rng(self.seed)
        self._model = resolve_cost_model(self.objective, initial.n)
        if self.engine_mode == "oracle":
            return self._run_oracle(initial)
        return self._run_incremental(initial)

    # ------------------------------------------------------------------
    # Incremental engine + dirty-set path (the default), shared with the
    # batched kernel path — engine_mode="batched" keeps every scheduling
    # decision identical and only changes *how* a best response is computed
    # (bound-then-verify kernel) and *how* a sweep certifies (one batched
    # audit scan), so trajectories are bit-identical across the modes.
    # ------------------------------------------------------------------
    def _run_incremental(self, initial: CSRGraph) -> DynamicsResult:
        batched = self.engine_mode == "batched"
        engine = DistanceEngine(initial)
        n = engine.n
        seen: set[frozenset[tuple[int, int]]] = {engine.adjacency.edge_set()}
        steps = 0
        activations = 0
        moves: list[Swap] = []
        diam_trace: list[float] = []
        cost_trace: list[float] = []
        dirty = np.ones(n, dtype=bool)

        def record_state() -> None:
            if self.record:
                dm = engine.dm
                if dm.size == 0:
                    diam_trace.append(0.0)
                    cost_trace.append(0.0)
                    return
                diam = int(dm.max())
                diam_trace.append(
                    math.inf if diam >= INT_INF else float(diam)
                )
                # The model's social cost, not a hardcoded dm.sum: under
                # max/interest/budget games the trace must report the game
                # actually being played (for SumCost this is bit-identical
                # to the historical total-pairwise-distance recording).
                cost_trace.append(self._model.social_cost(dm))

        def respond(v: int) -> BestResponse:
            nonlocal activations
            activations += 1
            if self.responder == "best":
                if batched:
                    # Bound-then-verify kernel: usually re-certifies the
                    # vertex move-free from one pass over the cached base
                    # matrix, no BFS and no removal matrices.
                    return engine.best_swap(v, self._model, mode="batched")
                return engine.best_swap(v, self._model)
            return first_improving_swap(
                engine.graph, v, self._model, self._rng
            )

        def apply(br: BestResponse) -> bool:
            """Apply a move; returns False when it closes a cycle."""
            nonlocal steps
            assert br.swap is not None
            changed = engine.apply_swap(br.swap)
            steps += 1
            dirty[changed] = True
            dirty[[br.swap.vertex, br.swap.drop, br.swap.add]] = True
            if self.record:
                moves.append(br.swap)
                record_state()
            key = engine.adjacency.edge_set()
            if key in seen:
                return False
            seen.add(key)
            return True

        def verification_sweep() -> BestResponse | None:
            """Activate every vertex; the exactness guard over the dirty rule.

            The batched mode first runs one cross-edge audit scan
            (:func:`~repro.core.batched.certify_at_rest`): in the common
            convergent case it certifies every vertex at once.  A positive
            scan falls back to the ordered per-vertex kernel so the applied
            move — and the activation count — matches the incremental
            sweep exactly.
            """
            nonlocal activations
            if batched and self.responder == "best":
                from .batched import certify_at_rest

                if certify_at_rest(
                    engine.graph,
                    engine.dm,
                    self._model,
                    pred_counts=engine.pred_counts(),
                ):
                    activations += n
                    dirty[:] = False
                    return None
            for v in range(n):
                br = respond(v)
                if br.swap is not None:
                    return br
                dirty[v] = False
            if batched and self.responder == "best":  # pragma: no cover
                raise AssertionError(
                    "certify_at_rest reported a move no vertex produced"
                )
            return None

        cycle = False
        converged = False
        record_state()

        if self.schedule == "greedy":
            # Greedy is canonical: every step compares ALL vertices, so the
            # dirty heuristic must not narrow the argmax — a clean vertex may
            # still hold the globally best improvement.  The engine makes each
            # activation cheap; the full scan doubling as the convergence
            # certificate means no separate verification sweep is needed.
            while steps < self.max_steps:
                best: BestResponse | None = None
                for v in range(n):
                    br = respond(v)
                    if br.swap is not None and (
                        best is None or br.improvement > best.improvement
                    ):
                        best = br
                if best is None:
                    converged = True
                    break
                if not apply(best):
                    cycle = True
                    break

        elif self.schedule == "round_robin":
            idx = 0
            while steps < self.max_steps:
                if not dirty.any():
                    pending = verification_sweep()
                    if pending is None:
                        converged = True
                        break
                    if not apply(pending):
                        cycle = True
                        break
                    continue
                v = idx % n
                idx += 1
                if not dirty[v]:
                    continue  # provably quiet since its last no-op
                br = respond(v)
                if br.swap is None:
                    dirty[v] = False
                    continue
                if not apply(br):
                    cycle = True
                    break

        else:  # random schedule
            quiet = 0
            while steps < self.max_steps:
                if not dirty.any() or quiet >= 2 * n:
                    pending = verification_sweep()
                    if pending is None:
                        converged = True
                        break
                    quiet = 0
                    if not apply(pending):
                        cycle = True
                        break
                    continue
                v = int(self._rng.integers(0, n))
                if not dirty[v]:
                    quiet += 1
                    continue
                br = respond(v)
                if br.swap is None:
                    dirty[v] = False
                    quiet += 1
                    continue
                quiet = 0
                if not apply(br):
                    cycle = True
                    break

        return DynamicsResult(
            engine.graph, converged, cycle, steps, activations,
            moves, diam_trace, cost_trace, final_dm=engine.dm,
        )

    # ------------------------------------------------------------------
    # Seed path: copied graphs, fresh best responses (cross-validation oracle)
    # ------------------------------------------------------------------
    def _respond_oracle(self, graph: CSRGraph, v: int) -> BestResponse:
        if self.responder == "best":
            return best_swap(graph, v, self._model, mode="oracle")
        return first_improving_swap(graph, v, self._model, self._rng)

    def _run_oracle(self, initial: CSRGraph) -> DynamicsResult:
        state = AdjacencyGraph.from_csr(initial)
        n = state.n
        seen: set[frozenset[tuple[int, int]]] = {state.edge_set()}
        steps = 0
        activations = 0
        moves: list[Swap] = []
        diam_trace: list[float] = []
        cost_trace: list[float] = []

        def snapshot() -> CSRGraph:
            return state.to_csr()

        def record_state() -> None:
            if self.record:
                g = snapshot()
                diam_trace.append(diameter_or_inf(g))
                if g.n == 0:
                    cost_trace.append(0.0)
                else:
                    # Same model-resolved social cost as the incremental
                    # path (asserted trace-equal on the variant battery).
                    cost_trace.append(
                        self._model.social_cost(
                            lift_distances(distance_matrix(g))
                        )
                    )

        def apply(br: BestResponse) -> bool:
            """Apply a move; returns False when it closes a cycle."""
            nonlocal steps
            assert br.swap is not None
            state.swap_edge(br.swap.vertex, br.swap.drop, br.swap.add)
            steps += 1
            if self.record:
                moves.append(br.swap)
                record_state()
            key = state.edge_set()
            if key in seen:
                return False
            seen.add(key)
            return True

        cycle = False
        converged = False
        record_state()

        if self.schedule == "greedy":
            while steps < self.max_steps:
                best: BestResponse | None = None
                g = snapshot()
                for v in range(n):
                    activations += 1
                    br = self._respond_oracle(g, v)
                    if br.swap is not None and (
                        best is None or br.improvement > best.improvement
                    ):
                        best = br
                if best is None:
                    converged = True
                    break
                if not apply(best):
                    cycle = True
                    break
            return DynamicsResult(
                snapshot(), converged, cycle, steps, activations,
                moves, diam_trace, cost_trace,
            )

        if self.schedule == "round_robin":
            quiet = 0  # consecutive activations without a move
            order = list(range(n))
            idx = 0
            while steps < self.max_steps and quiet < n:
                v = order[idx % n]
                idx += 1
                activations += 1
                br = self._respond_oracle(snapshot(), v)
                if br.swap is None:
                    quiet += 1
                    continue
                quiet = 0
                if not apply(br):
                    cycle = True
                    break
            converged = (not cycle) and quiet >= n
            return DynamicsResult(
                snapshot(), converged, cycle, steps, activations,
                moves, diam_trace, cost_trace,
            )

        # random schedule: quiet streak of 2n activations triggers a full
        # deterministic verification sweep before declaring convergence.
        quiet = 0
        while steps < self.max_steps:
            if quiet >= 2 * n:
                g = snapshot()
                verified = True
                pending: BestResponse | None = None
                for v in range(n):
                    activations += 1
                    br = self._respond_oracle(g, v)
                    if br.swap is not None:
                        verified = False
                        pending = br
                        break
                if verified:
                    converged = True
                    break
                quiet = 0
                assert pending is not None
                if not apply(pending):
                    cycle = True
                    break
                continue
            v = int(self._rng.integers(0, n))
            activations += 1
            br = self._respond_oracle(snapshot(), v)
            if br.swap is None:
                quiet += 1
                continue
            quiet = 0
            if not apply(br):
                cycle = True
                break
        return DynamicsResult(
            snapshot(), converged, cycle, steps, activations,
            moves, diam_trace, cost_trace,
        )
