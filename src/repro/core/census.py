"""Equilibrium census: the empirical side of Theorem 9.

The paper bounds the diameter of *every* sum equilibrium by 2^O(√lg n) and
conjectures polylog; no equilibrium with diameter > 3 is known.  The census
runs swap dynamics from diverse random seeds (trees, sparse and dense
connected G(n, m)) and records what the reachable equilibria look like —
their diameters, their social costs, whether trees collapsed to stars
(Theorem 1), and how the whole population compares to the bound curves.

The census is embarrassingly parallel across trajectories, and
``run_census(workers=...)`` shards them over the persistent worker pool
(:mod:`repro.parallel.shared`): every task carries its own
:func:`~repro.rng.derive_seed`-derived seed keyed by grid position, so the
record list is bit-identical to the serial run for any worker count.
``jsonl_path`` streams finished records to disk incrementally (in record
order — tail the file to watch the fleet), and ``resume=True`` picks an
interrupted run back up from the streamed prefix, which is what makes
overnight n = 512–1024 fleets restartable rather than an all-or-nothing
batch.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, asdict
from pathlib import Path
from typing import IO, Iterable, Literal, Sequence

import numpy as np

from ..graphs import (
    CSRGraph,
    degree_sequence,
    diameter_or_inf,
    random_connected_gnm,
    random_tree,
    total_pairwise_distance,
)
from ..parallel import chunk_evenly, get_shared_pool
from ..rng import derive_seed
from .dynamics import SwapDynamics
from .equilibrium import is_max_equilibrium, is_sum_equilibrium

__all__ = ["CensusRecord", "run_census", "census_to_rows", "seed_graph"]

InitialFamily = Literal["tree", "sparse", "dense"]


@dataclass
class CensusRecord:
    """One dynamics run, fully described."""

    n: int
    family: str
    seed: int
    objective: str
    schedule: str
    responder: str
    m_initial: int
    m_final: int
    converged: bool
    cycle_detected: bool
    steps: int
    activations: int
    diameter_initial: float
    diameter_final: float
    social_cost_final: float
    is_star: bool
    verified_equilibrium: bool | None


def seed_graph(family: InitialFamily, n: int, seed) -> CSRGraph:
    """An initial condition from one of the census families.

    * ``tree`` — uniform random labelled tree;
    * ``sparse`` — connected G(n, m) with m = ⌈1.5 (n−1)⌉;
    * ``dense`` — connected G(n, m) with m = ⌈n lg n / 2⌉ (capped at C(n,2)).
    """
    if family == "tree":
        return random_tree(n, seed)
    if family == "sparse":
        m = min(n * (n - 1) // 2, max(n - 1, int(math.ceil(1.5 * (n - 1)))))
        return random_connected_gnm(n, m, seed)
    if family == "dense":
        m = min(
            n * (n - 1) // 2,
            max(n - 1, int(math.ceil(n * math.log2(max(n, 2)) / 2))),
        )
        return random_connected_gnm(n, m, seed)
    raise ValueError(f"unknown census family {family!r}")


def _is_star(graph: CSRGraph) -> bool:
    if graph.n <= 2:
        return True
    degs = degree_sequence(graph)
    return degs[0] == graph.n - 1 and all(d == 1 for d in degs[1:])


def _census_task(task: tuple) -> CensusRecord:
    """One trajectory of the census fleet, fully determined by its task.

    Module-level and seeded purely from the task tuple, so records are
    identical wherever (and in whatever order) the task runs.
    """
    (
        n, family, seed, objective, schedule, responder,
        max_steps, verify, verify_workers, audit_mode,
    ) = task
    initial = seed_graph(family, n, seed)
    dyn = SwapDynamics(
        objective=objective,
        schedule=schedule,
        responder=responder,
        max_steps=max_steps,
        seed=derive_seed(seed, 1),
    )
    result = dyn.run(initial)
    final = result.graph
    verified: bool | None = None
    if verify and result.converged:
        verified = (
            is_sum_equilibrium(
                final, workers=verify_workers, mode=audit_mode
            )
            if objective == "sum"
            else is_max_equilibrium(
                final, workers=verify_workers, mode=audit_mode
            )
        )
    return CensusRecord(
        n=n,
        family=family,
        seed=seed,
        objective=objective,
        schedule=schedule,
        responder=responder,
        m_initial=initial.m,
        m_final=final.m,
        converged=result.converged,
        cycle_detected=result.cycle_detected,
        steps=result.steps,
        activations=result.activations,
        diameter_initial=diameter_or_inf(initial),
        diameter_final=diameter_or_inf(final),
        social_cost_final=total_pairwise_distance(final),
        is_star=_is_star(final),
        verified_equilibrium=verified,
    )


def _write_jsonl(sink: "IO[str]", records: Iterable[CensusRecord]) -> None:
    for rec in records:
        sink.write(json.dumps(asdict(rec)) + "\n")
    sink.flush()


def _read_jsonl_prefix(path: Path) -> list[CensusRecord]:
    """Parse the valid record prefix of a (possibly torn) census JSONL.

    A crash mid-write can leave a truncated final line; parsing stops at
    the first undecodable line and the caller rewrites the file with the
    surviving prefix before appending.
    """
    records: list[CensusRecord] = []
    for line in path.read_text(encoding="utf-8").splitlines():
        try:
            records.append(CensusRecord(**json.loads(line)))
        except (ValueError, TypeError):
            break
    return records


def run_census(
    n_values: Sequence[int],
    families: Sequence[InitialFamily] = ("tree", "sparse", "dense"),
    replicates: int = 3,
    objective: Literal["sum", "max"] = "sum",
    schedule: Literal["round_robin", "random", "greedy"] = "round_robin",
    responder: Literal["best", "first"] = "best",
    root_seed: int = 0,
    max_steps: int = 20_000,
    verify: bool = True,
    verify_workers: int = 1,
    workers: int = 1,
    audit_mode: str = "batched",
    jsonl_path: "str | Path | None" = None,
    resume: bool = False,
) -> list[CensusRecord]:
    """Run the dynamics census and return one record per (n, family, replicate).

    ``verify`` re-checks every converged terminal graph with the exact
    equilibrium auditor (``audit_mode`` selects its kernel; the default is
    the batched one) — the census is only evidence if the endpoints really
    are equilibria.  ``verify_workers`` chunks each audit's edge loop
    across processes (see :func:`repro.core.equilibrium.find_sum_violation`).

    ``workers > 1`` shards whole *trajectories* across the persistent
    process pool instead: seeds derive from grid position, so the record
    list (and the streamed JSONL) is bit-identical to the serial run for
    any worker count.  Trajectory sharding and per-audit sharding are
    mutually exclusive (``verify_workers`` must stay 1 when ``workers > 1``
    — nested pools would oversubscribe).

    ``jsonl_path`` streams one JSON object per record, in record order, as
    soon as each record (or parallel chunk of records) completes.  A fresh
    run truncates the file; ``resume=True`` instead reloads the streamed
    prefix of an interrupted run with the *same arguments* (validated
    against the task grid, torn final lines dropped), skips those
    trajectories, and appends from where the previous run stopped.
    """
    if workers > 1 and verify_workers > 1:
        raise ValueError(
            "choose one sharding axis: workers (trajectories) or "
            "verify_workers (audit edges), not both"
        )
    if resume and jsonl_path is None:
        raise ValueError("resume=True needs a jsonl_path to resume from")
    tasks = [
        (
            n, family, derive_seed(root_seed, ni, fi, rep), objective,
            schedule, responder, max_steps, verify, verify_workers,
            audit_mode,
        )
        for ni, n in enumerate(n_values)
        for fi, family in enumerate(families)
        for rep in range(replicates)
    ]
    records: list[CensusRecord] = []
    sink = None
    if jsonl_path is not None:
        path = Path(jsonl_path)
        done: list[CensusRecord] = []
        if resume and path.exists():
            done = _read_jsonl_prefix(path)[: len(tasks)]
            for rec, task in zip(done, tasks):
                if (rec.n, rec.family, rec.seed) != task[:3]:
                    raise ValueError(
                        "resume mismatch: existing record "
                        f"(n={rec.n}, family={rec.family!r}, seed={rec.seed})"
                        " does not match this grid — same arguments required"
                    )
        records = list(done)
        tasks = tasks[len(done) :]
        # Rewrite the validated prefix (dropping any torn final line),
        # then append from there.
        sink = path.open("w", encoding="utf-8")
        _write_jsonl(sink, done)
    try:
        if workers <= 1 or len(tasks) <= 1:
            for task in tasks:
                rec = _census_task(task)
                records.append(rec)
                if sink is not None:
                    _write_jsonl(sink, [rec])
        else:
            # Shard trajectories over the persistent pool; consume chunk
            # futures in submission order so the stream (and the returned
            # list) keeps the serial order while later chunks still run.
            chunks = [
                chunk for _, chunk in chunk_evenly(tasks, 4 * workers)
            ]
            pool = get_shared_pool(workers)
            for fut in pool.submit_chunks(_census_task, chunks):
                part = fut.result()
                records.extend(part)
                if sink is not None:
                    _write_jsonl(sink, part)
    finally:
        if sink is not None:
            sink.close()
    return records


def census_to_rows(records: Iterable[CensusRecord]) -> list[dict]:
    """Records as plain dicts (for the reporting layer / CSV writers)."""
    return [asdict(r) for r in records]
