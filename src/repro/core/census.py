"""Equilibrium census: the empirical side of Theorem 9.

The paper bounds the diameter of *every* sum equilibrium by 2^O(√lg n) and
conjectures polylog; no equilibrium with diameter > 3 is known.  The census
runs swap dynamics from diverse random seeds (trees, sparse and dense
connected G(n, m)) and records what the reachable equilibria look like —
their diameters, their social costs, whether trees collapsed to stars
(Theorem 1), and how the whole population compares to the bound curves.

The census is embarrassingly parallel across trajectories, and
``run_census(workers=...)`` shards them over the persistent worker pool
(:mod:`repro.parallel.shared`): every task carries its own
:func:`~repro.rng.derive_seed`-derived seed keyed by grid position, so the
record list is bit-identical to the serial run for any worker count.
``jsonl_path`` streams finished records to disk incrementally (in record
order — tail the file to watch the fleet), and ``resume=True`` picks an
interrupted run back up from the streamed prefix, which is what makes
overnight n = 512–1024 fleets restartable rather than an all-or-nothing
batch.  The stream rides the shared :class:`~repro.io.jsonl_store.JsonlStore`
(also under the trajectory census): it opens with a run-config header line
and resume validates it (plus every resumed record) against the current
arguments, rewriting the prefix atomically (``.tmp`` + ``os.replace``) —
see DESIGN.md §6 for the crash-window analysis.

``objective`` accepts any cost-model spec (:mod:`repro.core.costmodel`),
so the same fleet machinery covers the interest and budget game variants.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, asdict
from pathlib import Path
from typing import IO, Iterable, Literal, Sequence

from ..errors import ConfigurationError

from ..experiments.experiment import Experiment, run_fleet
from ..io.jsonl_store import FleetFailure, JsonlStore, maybe_decode_failure
from ..graphs import (
    CSRGraph,
    degree_sequence,
    diameter_or_inf,
    random_connected_gnm,
    random_tree,
    total_pairwise_distance,
)
from ..rng import derive_seed
from .costmodel import CostModel, cost_model_spec, resolve_cost_model
from .dynamics import SwapDynamics
from .equilibrium import is_equilibrium

__all__ = [
    "CENSUS_CONFIG_KEY",
    "CensusRecord",
    "census_experiment",
    "census_to_rows",
    "run_census",
    "seed_graph",
]

InitialFamily = Literal["tree", "sparse", "dense"]

#: First-line marker of the JSONL run-config header (see :func:`run_census`).
CENSUS_CONFIG_KEY = "census_config"

_CONFIG_VERSION = 1


@dataclass
class CensusRecord:
    """One dynamics run, fully described."""

    n: int
    family: str
    seed: int
    objective: str
    schedule: str
    responder: str
    m_initial: int
    m_final: int
    converged: bool
    cycle_detected: bool
    steps: int
    activations: int
    diameter_initial: float
    diameter_final: float
    social_cost_final: float
    is_star: bool
    verified_equilibrium: bool | None


def seed_graph(family: InitialFamily, n: int, seed) -> CSRGraph:
    """An initial condition from one of the census families.

    * ``tree`` — uniform random labelled tree;
    * ``sparse`` — connected G(n, m) with m = ⌈1.5 (n−1)⌉;
    * ``dense`` — connected G(n, m) with m = ⌈n lg n / 2⌉ (capped at C(n,2)).
    """
    if family == "tree":
        return random_tree(n, seed)
    if family == "sparse":
        m = min(n * (n - 1) // 2, max(n - 1, int(math.ceil(1.5 * (n - 1)))))
        return random_connected_gnm(n, m, seed)
    if family == "dense":
        m = min(
            n * (n - 1) // 2,
            max(n - 1, int(math.ceil(n * math.log2(max(n, 2)) / 2))),
        )
        return random_connected_gnm(n, m, seed)
    raise ConfigurationError(f"unknown census family {family!r}")


def _is_star(graph: CSRGraph) -> bool:
    if graph.n <= 2:
        return True
    degs = degree_sequence(graph)
    return degs[0] == graph.n - 1 and all(d == 1 for d in degs[1:])


def _census_task(task: tuple) -> CensusRecord:
    """One trajectory of the census fleet, fully determined by its task.

    Module-level and seeded purely from the task tuple, so records are
    identical wherever (and in whatever order) the task runs.
    """
    (
        n, family, seed, objective, schedule, responder,
        max_steps, verify, verify_workers, audit_mode,
    ) = task
    # A spec string resolves per-n here (interest sets carry their own seed
    # inside the spec, so the model is a pure function of (spec, n)); a
    # CostModel instance passes straight through.
    model = resolve_cost_model(objective, n)
    initial = seed_graph(family, n, seed)
    dyn = SwapDynamics(
        objective=model,
        schedule=schedule,
        responder=responder,
        max_steps=max_steps,
        seed=derive_seed(seed, 1),
    )
    result = dyn.run(initial)
    final = result.graph
    verified: bool | None = None
    if verify and result.converged:
        verified = is_equilibrium(
            final, model, workers=verify_workers, mode=audit_mode
        )
    return CensusRecord(
        n=n,
        family=family,
        seed=seed,
        objective=model.spec,
        schedule=schedule,
        responder=responder,
        m_initial=initial.m,
        m_final=final.m,
        converged=result.converged,
        cycle_detected=result.cycle_detected,
        steps=result.steps,
        activations=result.activations,
        diameter_initial=diameter_or_inf(initial),
        diameter_final=diameter_or_inf(final),
        social_cost_final=total_pairwise_distance(final),
        is_star=_is_star(final),
        verified_equilibrium=verified,
    )


def _write_jsonl(sink: "IO[str]", records: Iterable) -> None:
    # Module-global on purpose: the crash-window tests intercept this exact
    # hook, and the store calls back into it for every prefix/append write.
    # Quarantined slots (FleetFailure) serialize with their marker key so
    # resume can tell them from result records.
    for rec in records:
        obj = rec.encode() if isinstance(rec, FleetFailure) else asdict(rec)
        sink.write(json.dumps(obj) + "\n")
    sink.flush()


def _decode_record(obj: dict):
    return maybe_decode_failure(obj) or CensusRecord(**obj)


def _make_store(
    path: "str | Path", config: dict, durability: str = "flush"
) -> JsonlStore:
    """The shared resumable-stream machinery, bound to census records."""
    return JsonlStore(
        path,
        config_key=CENSUS_CONFIG_KEY,
        config_version=_CONFIG_VERSION,
        config=config,
        decode=_decode_record,
        record_name="census record",
        write_records=lambda sink, recs: _write_jsonl(sink, recs),
        durability=durability,
    )


def _read_jsonl_prefix(
    path: Path,
) -> "tuple[dict | None, list[CensusRecord]]":
    """Parse a (possibly torn) census JSONL -> ``(config header, records)``.

    Torn-line policy and header extraction live in
    :meth:`repro.io.jsonl_store.JsonlStore.read_prefix`; this wrapper binds
    the census record type for callers (and tests) that start from a path.
    """
    return _make_store(path, {}).read_prefix()


def run_census(
    n_values: Sequence[int],
    families: Sequence[InitialFamily] = ("tree", "sparse", "dense"),
    replicates: int = 3,
    objective: "str | CostModel" = "sum",
    schedule: Literal["round_robin", "random", "greedy"] = "round_robin",
    responder: Literal["best", "first"] = "best",
    root_seed: int = 0,
    max_steps: int = 20_000,
    verify: bool = True,
    verify_workers: int = 1,
    workers: int = 1,
    audit_mode: str = "batched",
    jsonl_path: "str | Path | None" = None,
    resume: bool = False,
    timeout: "float | None" = None,
    retries: int = 2,
    backoff: float = 0.05,
    on_error: str = "record",
    retry_failed: bool = False,
    durability: str = "flush",
) -> list:
    """Run the dynamics census and return one record per (n, family, replicate).

    ``verify`` re-checks every converged terminal graph with the exact
    equilibrium auditor (``audit_mode`` selects its kernel; the default is
    the batched one) — the census is only evidence if the endpoints really
    are equilibria.  ``verify_workers`` chunks each audit's edge loop
    across processes (see :func:`repro.core.equilibrium.find_sum_violation`).

    ``workers > 1`` shards whole *trajectories* across the persistent
    process pool instead: seeds derive from grid position, so the record
    list (and the streamed JSONL) is bit-identical to the serial run for
    any worker count.  Trajectory sharding and per-audit sharding are
    mutually exclusive (``verify_workers`` must stay 1 when ``workers > 1``
    — nested pools would oversubscribe).

    ``objective`` is a cost-model spec string (``"sum"``, ``"max"``,
    ``"interest-sum:k=4,seed=9"``, ``"budget-max:cap=3"``, …) or a
    :class:`~repro.core.costmodel.CostModel`; spec strings resolve per-n
    inside each task, so one census can sweep sizes under one variant.

    ``jsonl_path`` streams one JSON object per record, in record order, as
    soon as each record (or parallel chunk of records) completes.  The
    first line is a run-config header (:data:`CENSUS_CONFIG_KEY`) recording
    every record-determining argument.  A fresh run replaces the file;
    ``resume=True`` instead reloads the streamed prefix of an interrupted
    run with the *same arguments*, skips those trajectories, and appends
    from where the previous run stopped.  Resume validates the embedded
    header **and** each resumed record against this call's configuration
    and grid, and raises rather than silently mixing records from
    different games; the prefix rewrite goes through a ``.tmp`` sidecar
    and ``os.replace``, so a crash at any moment leaves either the old
    file or the complete new prefix on disk — never a truncated stream.

    Fault tolerance (DESIGN.md §9): ``timeout``/``retries``/``backoff``
    tune the runtime's per-chunk recovery.  With the default
    ``on_error="record"``, a trajectory that fails past its retry budget is
    *quarantined* — a :class:`~repro.io.jsonl_store.FleetFailure` carrying
    the task's grid coordinates, the error, and the attempt count takes its
    record slot (and streams to the JSONL) instead of killing the fleet;
    ``on_error="raise"`` restores fail-fast.  ``retry_failed=True`` on a
    resume re-runs exactly the quarantined slots of the streamed prefix
    before continuing with unfinished tasks.  ``durability`` sets the
    stream's flush cadence (:class:`~repro.io.jsonl_store.JsonlStore`).
    """
    if workers > 1 and verify_workers > 1:
        raise ConfigurationError(
            "choose one sharding axis: workers (trajectories) or "
            "verify_workers (audit edges), not both"
        )
    experiment = census_experiment(
        n_values,
        families=families,
        replicates=replicates,
        objective=objective,
        schedule=schedule,
        responder=responder,
        root_seed=root_seed,
        max_steps=max_steps,
        verify=verify,
        verify_workers=verify_workers,
        audit_mode=audit_mode,
    )
    return run_fleet(
        experiment,
        workers=workers,
        jsonl_path=jsonl_path,
        resume=resume,
        timeout=timeout,
        retries=retries,
        backoff=backoff,
        on_error=on_error,
        retry_failed=retry_failed,
        durability=durability,
    )


def census_experiment(
    n_values: Sequence[int],
    families: Sequence[InitialFamily] = ("tree", "sparse", "dense"),
    replicates: int = 3,
    objective: "str | CostModel" = "sum",
    schedule: str = "round_robin",
    responder: str = "best",
    root_seed: int = 0,
    max_steps: int = 20_000,
    verify: bool = True,
    verify_workers: int = 1,
    audit_mode: str = "batched",
) -> Experiment:
    """The equilibrium census as a declarative :class:`Experiment`.

    Grid ``n × family`` with the historical ``"axes"`` seed scheme
    (``derive_seed(root_seed, n_index, family_index, replicate)``), the
    legacy :data:`CENSUS_CONFIG_KEY` header, and the module's own store
    factory — so the compiled fleet streams JSONL byte-identical to the
    pre-refactor ``run_census`` (pinned by the golden-file suite).
    """
    spec = cost_model_spec(objective)  # canonical; validates the objective
    task_objective = objective if isinstance(objective, CostModel) else spec
    config = {
        "objective": spec,
        "schedule": schedule,
        "responder": responder,
        "max_steps": max_steps,
        "verify": verify,
        "audit_mode": audit_mode,
        "root_seed": root_seed,
        "n_values": [int(n) for n in n_values],
        "families": list(families),
        "replicates": replicates,
    }
    return Experiment(
        name="census",
        point_fn=_census_task,
        grid={"n": list(n_values), "family": list(families)},
        task_fields=(
            "n", "family", "seed", "objective", "schedule", "responder",
            "max_steps", "verify", "verify_workers", "audit_mode",
        ),
        coord_fields=(
            "n", "family", "seed", "objective", "schedule", "responder",
        ),
        replicates=replicates,
        root_seed=root_seed,
        seed_scheme="axes",
        fixed={
            "objective": task_objective,
            "schedule": schedule,
            "responder": responder,
            "max_steps": max_steps,
            "verify": verify,
            "verify_workers": verify_workers,
            "audit_mode": audit_mode,
        },
        # A CostModel instance rides the task tuple, but the stream's
        # coordinates always carry the canonical spec string.
        coord_overrides={"objective": spec},
        int_coords=("n", "seed"),
        config_key=CENSUS_CONFIG_KEY,
        config_version=_CONFIG_VERSION,
        config=config,
        record_name="census record",
        decode_record=_decode_record,
        store_factory=lambda path, durability: _make_store(
            path, config, durability
        ),
    )


def census_to_rows(records: Iterable) -> list[dict]:
    """Records as plain dicts (for the reporting layer / CSV writers)."""
    return [
        r.encode() if isinstance(r, FleetFailure) else asdict(r)
        for r in records
    ]
