"""Equilibrium census: the empirical side of Theorem 9.

The paper bounds the diameter of *every* sum equilibrium by 2^O(√lg n) and
conjectures polylog; no equilibrium with diameter > 3 is known.  The census
runs swap dynamics from diverse random seeds (trees, sparse and dense
connected G(n, m)) and records what the reachable equilibria look like —
their diameters, their social costs, whether trees collapsed to stars
(Theorem 1), and how the whole population compares to the bound curves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, asdict
from typing import Iterable, Literal, Sequence

import numpy as np

from ..graphs import (
    CSRGraph,
    degree_sequence,
    diameter_or_inf,
    random_connected_gnm,
    random_tree,
    total_pairwise_distance,
)
from ..rng import derive_seed
from .dynamics import SwapDynamics
from .equilibrium import is_max_equilibrium, is_sum_equilibrium

__all__ = ["CensusRecord", "run_census", "census_to_rows", "seed_graph"]

InitialFamily = Literal["tree", "sparse", "dense"]


@dataclass
class CensusRecord:
    """One dynamics run, fully described."""

    n: int
    family: str
    seed: int
    objective: str
    schedule: str
    responder: str
    m_initial: int
    m_final: int
    converged: bool
    cycle_detected: bool
    steps: int
    activations: int
    diameter_initial: float
    diameter_final: float
    social_cost_final: float
    is_star: bool
    verified_equilibrium: bool | None


def seed_graph(family: InitialFamily, n: int, seed) -> CSRGraph:
    """An initial condition from one of the census families.

    * ``tree`` — uniform random labelled tree;
    * ``sparse`` — connected G(n, m) with m = ⌈1.5 (n−1)⌉;
    * ``dense`` — connected G(n, m) with m = ⌈n lg n / 2⌉ (capped at C(n,2)).
    """
    if family == "tree":
        return random_tree(n, seed)
    if family == "sparse":
        m = min(n * (n - 1) // 2, max(n - 1, int(math.ceil(1.5 * (n - 1)))))
        return random_connected_gnm(n, m, seed)
    if family == "dense":
        m = min(
            n * (n - 1) // 2,
            max(n - 1, int(math.ceil(n * math.log2(max(n, 2)) / 2))),
        )
        return random_connected_gnm(n, m, seed)
    raise ValueError(f"unknown census family {family!r}")


def _is_star(graph: CSRGraph) -> bool:
    if graph.n <= 2:
        return True
    degs = degree_sequence(graph)
    return degs[0] == graph.n - 1 and all(d == 1 for d in degs[1:])


def run_census(
    n_values: Sequence[int],
    families: Sequence[InitialFamily] = ("tree", "sparse", "dense"),
    replicates: int = 3,
    objective: Literal["sum", "max"] = "sum",
    schedule: Literal["round_robin", "random", "greedy"] = "round_robin",
    responder: Literal["best", "first"] = "best",
    root_seed: int = 0,
    max_steps: int = 20_000,
    verify: bool = True,
    verify_workers: int = 1,
) -> list[CensusRecord]:
    """Run the dynamics census and return one record per (n, family, replicate).

    ``verify`` re-checks every converged terminal graph with the exact
    equilibrium auditor — the census is only evidence if the endpoints
    really are equilibria.  ``verify_workers`` chunks each audit's edge loop
    across processes (see :func:`repro.core.equilibrium.find_sum_violation`).
    """
    records: list[CensusRecord] = []
    for ni, n in enumerate(n_values):
        for fi, family in enumerate(families):
            for rep in range(replicates):
                seed = derive_seed(root_seed, ni, fi, rep)
                initial = seed_graph(family, n, seed)
                dyn = SwapDynamics(
                    objective=objective,
                    schedule=schedule,
                    responder=responder,
                    max_steps=max_steps,
                    seed=derive_seed(seed, 1),
                )
                result = dyn.run(initial)
                final = result.graph
                verified: bool | None = None
                if verify and result.converged:
                    verified = (
                        is_sum_equilibrium(final, workers=verify_workers)
                        if objective == "sum"
                        else is_max_equilibrium(final, workers=verify_workers)
                    )
                records.append(
                    CensusRecord(
                        n=n,
                        family=family,
                        seed=seed,
                        objective=objective,
                        schedule=schedule,
                        responder=responder,
                        m_initial=initial.m,
                        m_final=final.m,
                        converged=result.converged,
                        cycle_detected=result.cycle_detected,
                        steps=result.steps,
                        activations=result.activations,
                        diameter_initial=diameter_or_inf(initial),
                        diameter_final=diameter_or_inf(final),
                        social_cost_final=total_pairwise_distance(final),
                        is_star=_is_star(final),
                        verified_equilibrium=verified,
                    )
                )
    return records


def census_to_rows(records: Iterable[CensusRecord]) -> list[dict]:
    """Records as plain dicts (for the reporting layer / CSV writers)."""
    return [asdict(r) for r in records]
