"""Equilibrium census: the empirical side of Theorem 9.

The paper bounds the diameter of *every* sum equilibrium by 2^O(√lg n) and
conjectures polylog; no equilibrium with diameter > 3 is known.  The census
runs swap dynamics from diverse random seeds (trees, sparse and dense
connected G(n, m)) and records what the reachable equilibria look like —
their diameters, their social costs, whether trees collapsed to stars
(Theorem 1), and how the whole population compares to the bound curves.

The census is embarrassingly parallel across trajectories, and
``run_census(workers=...)`` shards them over the persistent worker pool
(:mod:`repro.parallel.shared`): every task carries its own
:func:`~repro.rng.derive_seed`-derived seed keyed by grid position, so the
record list is bit-identical to the serial run for any worker count.
``jsonl_path`` streams finished records to disk incrementally (in record
order — tail the file to watch the fleet), and ``resume=True`` picks an
interrupted run back up from the streamed prefix, which is what makes
overnight n = 512–1024 fleets restartable rather than an all-or-nothing
batch.  The stream opens with a run-config header line and resume
validates it (plus every resumed record) against the current arguments,
rewriting the prefix atomically (``.tmp`` + ``os.replace``) — see
DESIGN.md §6 for the crash-window analysis.

``objective`` accepts any cost-model spec (:mod:`repro.core.costmodel`),
so the same fleet machinery covers the interest and budget game variants.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, asdict
from pathlib import Path
from typing import IO, Iterable, Literal, Sequence

import numpy as np

from ..graphs import (
    CSRGraph,
    degree_sequence,
    diameter_or_inf,
    random_connected_gnm,
    random_tree,
    total_pairwise_distance,
)
from ..parallel import chunk_evenly, get_shared_pool
from ..rng import derive_seed
from .costmodel import CostModel, cost_model_spec, resolve_cost_model
from .dynamics import SwapDynamics
from .equilibrium import is_equilibrium

__all__ = [
    "CENSUS_CONFIG_KEY",
    "CensusRecord",
    "census_to_rows",
    "run_census",
    "seed_graph",
]

InitialFamily = Literal["tree", "sparse", "dense"]

#: First-line marker of the JSONL run-config header (see :func:`run_census`).
CENSUS_CONFIG_KEY = "census_config"

_CONFIG_VERSION = 1


@dataclass
class CensusRecord:
    """One dynamics run, fully described."""

    n: int
    family: str
    seed: int
    objective: str
    schedule: str
    responder: str
    m_initial: int
    m_final: int
    converged: bool
    cycle_detected: bool
    steps: int
    activations: int
    diameter_initial: float
    diameter_final: float
    social_cost_final: float
    is_star: bool
    verified_equilibrium: bool | None


def seed_graph(family: InitialFamily, n: int, seed) -> CSRGraph:
    """An initial condition from one of the census families.

    * ``tree`` — uniform random labelled tree;
    * ``sparse`` — connected G(n, m) with m = ⌈1.5 (n−1)⌉;
    * ``dense`` — connected G(n, m) with m = ⌈n lg n / 2⌉ (capped at C(n,2)).
    """
    if family == "tree":
        return random_tree(n, seed)
    if family == "sparse":
        m = min(n * (n - 1) // 2, max(n - 1, int(math.ceil(1.5 * (n - 1)))))
        return random_connected_gnm(n, m, seed)
    if family == "dense":
        m = min(
            n * (n - 1) // 2,
            max(n - 1, int(math.ceil(n * math.log2(max(n, 2)) / 2))),
        )
        return random_connected_gnm(n, m, seed)
    raise ValueError(f"unknown census family {family!r}")


def _is_star(graph: CSRGraph) -> bool:
    if graph.n <= 2:
        return True
    degs = degree_sequence(graph)
    return degs[0] == graph.n - 1 and all(d == 1 for d in degs[1:])


def _census_task(task: tuple) -> CensusRecord:
    """One trajectory of the census fleet, fully determined by its task.

    Module-level and seeded purely from the task tuple, so records are
    identical wherever (and in whatever order) the task runs.
    """
    (
        n, family, seed, objective, schedule, responder,
        max_steps, verify, verify_workers, audit_mode,
    ) = task
    # A spec string resolves per-n here (interest sets carry their own seed
    # inside the spec, so the model is a pure function of (spec, n)); a
    # CostModel instance passes straight through.
    model = resolve_cost_model(objective, n)
    initial = seed_graph(family, n, seed)
    dyn = SwapDynamics(
        objective=model,
        schedule=schedule,
        responder=responder,
        max_steps=max_steps,
        seed=derive_seed(seed, 1),
    )
    result = dyn.run(initial)
    final = result.graph
    verified: bool | None = None
    if verify and result.converged:
        verified = is_equilibrium(
            final, model, workers=verify_workers, mode=audit_mode
        )
    return CensusRecord(
        n=n,
        family=family,
        seed=seed,
        objective=model.spec,
        schedule=schedule,
        responder=responder,
        m_initial=initial.m,
        m_final=final.m,
        converged=result.converged,
        cycle_detected=result.cycle_detected,
        steps=result.steps,
        activations=result.activations,
        diameter_initial=diameter_or_inf(initial),
        diameter_final=diameter_or_inf(final),
        social_cost_final=total_pairwise_distance(final),
        is_star=_is_star(final),
        verified_equilibrium=verified,
    )


def _write_jsonl(sink: "IO[str]", records: Iterable[CensusRecord]) -> None:
    for rec in records:
        sink.write(json.dumps(asdict(rec)) + "\n")
    sink.flush()


def _read_jsonl_prefix(
    path: Path,
) -> "tuple[dict | None, list[CensusRecord]]":
    """Parse a (possibly torn) census JSONL -> ``(config header, records)``.

    A crash mid-write can only truncate the **final** line (records are
    appended strictly in order), so a torn final line is dropped silently.
    An undecodable line anywhere *before* the end is a different animal —
    the file was corrupted, hand-edited, or two runs interleaved — and
    resuming past it would silently discard every record after the tear,
    so it raises instead.

    The header (first line carrying :data:`CENSUS_CONFIG_KEY`) is returned
    separately when present; legacy files that start straight with records
    yield ``header=None``.
    """
    lines = path.read_text(encoding="utf-8").splitlines()
    header: dict | None = None
    records: list[CensusRecord] = []
    for idx, line in enumerate(lines):
        final = idx == len(lines) - 1
        try:
            obj = json.loads(line)
        except ValueError:
            if final:
                break  # torn tail from a mid-write crash: drop and resume
            raise ValueError(
                f"{path}: line {idx + 1} of {len(lines)} is not valid JSON "
                "but is not the final line — the stream is corrupt "
                "mid-file, not merely torn by a crash; refusing to resume "
                "(records beyond the tear would be silently lost)"
            ) from None
        if idx == 0 and isinstance(obj, dict) and CENSUS_CONFIG_KEY in obj:
            header = obj
            continue
        try:
            records.append(CensusRecord(**obj))
        except TypeError:
            if final:
                break  # complete JSON but torn fields: treat as torn tail
            raise ValueError(
                f"{path}: line {idx + 1} of {len(lines)} is valid JSON but "
                "not a census record; refusing to resume from a corrupt "
                "stream"
            ) from None
    return header, records


def _check_resume_config(header: dict, config: dict, path: Path) -> None:
    """Raise when a resumed file's embedded config differs from this run's."""
    version = header.get(CENSUS_CONFIG_KEY)
    if version != _CONFIG_VERSION:
        raise ValueError(
            f"{path}: census config header version {version!r} != "
            f"{_CONFIG_VERSION}; cannot resume across formats"
        )
    mismatched = {
        key: (header.get(key), value)
        for key, value in config.items()
        if header.get(key) != value
    }
    if mismatched:
        detail = ", ".join(
            f"{key}: file has {old!r}, run has {new!r}"
            for key, (old, new) in sorted(mismatched.items())
        )
        raise ValueError(
            f"resume mismatch: {path} was written by a run with a "
            f"different configuration ({detail}) — resuming would silently "
            "mix records from different games; rerun with the original "
            "arguments or point --out at a fresh file"
        )


def run_census(
    n_values: Sequence[int],
    families: Sequence[InitialFamily] = ("tree", "sparse", "dense"),
    replicates: int = 3,
    objective: "str | CostModel" = "sum",
    schedule: Literal["round_robin", "random", "greedy"] = "round_robin",
    responder: Literal["best", "first"] = "best",
    root_seed: int = 0,
    max_steps: int = 20_000,
    verify: bool = True,
    verify_workers: int = 1,
    workers: int = 1,
    audit_mode: str = "batched",
    jsonl_path: "str | Path | None" = None,
    resume: bool = False,
) -> list[CensusRecord]:
    """Run the dynamics census and return one record per (n, family, replicate).

    ``verify`` re-checks every converged terminal graph with the exact
    equilibrium auditor (``audit_mode`` selects its kernel; the default is
    the batched one) — the census is only evidence if the endpoints really
    are equilibria.  ``verify_workers`` chunks each audit's edge loop
    across processes (see :func:`repro.core.equilibrium.find_sum_violation`).

    ``workers > 1`` shards whole *trajectories* across the persistent
    process pool instead: seeds derive from grid position, so the record
    list (and the streamed JSONL) is bit-identical to the serial run for
    any worker count.  Trajectory sharding and per-audit sharding are
    mutually exclusive (``verify_workers`` must stay 1 when ``workers > 1``
    — nested pools would oversubscribe).

    ``objective`` is a cost-model spec string (``"sum"``, ``"max"``,
    ``"interest-sum:k=4,seed=9"``, ``"budget-max:cap=3"``, …) or a
    :class:`~repro.core.costmodel.CostModel`; spec strings resolve per-n
    inside each task, so one census can sweep sizes under one variant.

    ``jsonl_path`` streams one JSON object per record, in record order, as
    soon as each record (or parallel chunk of records) completes.  The
    first line is a run-config header (:data:`CENSUS_CONFIG_KEY`) recording
    every record-determining argument.  A fresh run replaces the file;
    ``resume=True`` instead reloads the streamed prefix of an interrupted
    run with the *same arguments*, skips those trajectories, and appends
    from where the previous run stopped.  Resume validates the embedded
    header **and** each resumed record against this call's configuration
    and grid, and raises rather than silently mixing records from
    different games; the prefix rewrite goes through a ``.tmp`` sidecar
    and ``os.replace``, so a crash at any moment leaves either the old
    file or the complete new prefix on disk — never a truncated stream.
    """
    if workers > 1 and verify_workers > 1:
        raise ValueError(
            "choose one sharding axis: workers (trajectories) or "
            "verify_workers (audit edges), not both"
        )
    if resume and jsonl_path is None:
        raise ValueError("resume=True needs a jsonl_path to resume from")
    spec = cost_model_spec(objective)  # canonical; validates the objective
    task_objective = objective if isinstance(objective, CostModel) else spec
    tasks = [
        (
            n, family, derive_seed(root_seed, ni, fi, rep), task_objective,
            schedule, responder, max_steps, verify, verify_workers,
            audit_mode,
        )
        for ni, n in enumerate(n_values)
        for fi, family in enumerate(families)
        for rep in range(replicates)
    ]
    records: list[CensusRecord] = []
    sink = None
    if jsonl_path is not None:
        path = Path(jsonl_path)
        config = {
            CENSUS_CONFIG_KEY: _CONFIG_VERSION,
            "objective": spec,
            "schedule": schedule,
            "responder": responder,
            "max_steps": max_steps,
            "verify": verify,
            "audit_mode": audit_mode,
            "root_seed": root_seed,
            "n_values": [int(n) for n in n_values],
            "families": list(families),
            "replicates": replicates,
        }
        done: list[CensusRecord] = []
        if resume and path.exists():
            header, done = _read_jsonl_prefix(path)
            if header is None:
                # Pre-header (legacy) files cannot prove their max_steps /
                # verify / audit_mode — exactly the silent-mixing bug this
                # header exists to close — so refuse rather than guess.
                raise ValueError(
                    f"{path} has no run-config header (written before the "
                    "header format); its max_steps/verify/audit_mode cannot "
                    "be validated against this run.  Prepend the matching "
                    "config line (see CENSUS_CONFIG_KEY) to adopt the file, "
                    "or start a fresh jsonl_path"
                )
            _check_resume_config(header, config, path)
            done = done[: len(tasks)]
            for rec, task in zip(done, tasks):
                # Seeds derive from grid *position*, so (n, family, seed)
                # alone cannot see an objective/schedule/responder change;
                # re-validate per record so a header pasted onto foreign
                # records is still caught.
                if (rec.n, rec.family, rec.seed) != task[:3] or (
                    rec.objective, rec.schedule, rec.responder
                ) != (spec, schedule, responder):
                    raise ValueError(
                        "resume mismatch: existing record (n="
                        f"{rec.n}, family={rec.family!r}, seed={rec.seed}, "
                        f"objective={rec.objective!r}, "
                        f"schedule={rec.schedule!r}, "
                        f"responder={rec.responder!r}) does not match this "
                        "run's grid/configuration — same arguments required"
                    )
        records = list(done)
        tasks = tasks[len(done) :]
        # Atomic prefix rewrite: build header + validated prefix in a .tmp
        # sidecar and swap it in, so a crash between truncate and rewrite
        # can no longer lose the previously streamed fleet.
        tmp = path.with_name(path.name + ".tmp")
        with tmp.open("w", encoding="utf-8") as prefix_sink:
            prefix_sink.write(json.dumps(config) + "\n")
            _write_jsonl(prefix_sink, done)
        os.replace(tmp, path)
        sink = path.open("a", encoding="utf-8")
    try:
        if workers <= 1 or len(tasks) <= 1:
            for task in tasks:
                rec = _census_task(task)
                records.append(rec)
                if sink is not None:
                    _write_jsonl(sink, [rec])
        else:
            # Shard trajectories over the persistent pool; consume chunk
            # futures in submission order so the stream (and the returned
            # list) keeps the serial order while later chunks still run.
            chunks = [
                chunk for _, chunk in chunk_evenly(tasks, 4 * workers)
            ]
            pool = get_shared_pool(workers)
            for fut in pool.submit_chunks(_census_task, chunks):
                part = fut.result()
                records.extend(part)
                if sink is not None:
                    _write_jsonl(sink, part)
    finally:
        if sink is not None:
            sink.close()
    return records


def census_to_rows(records: Iterable[CensusRecord]) -> list[dict]:
    """Records as plain dicts (for the reporting layer / CSV writers)."""
    return [asdict(r) for r in records]
