"""Best-response computation for a single agent.

The paper's agents are computationally bounded: they weigh one incident edge
against another.  :func:`best_swap` computes the *exact* best improving swap
for a vertex (the agent's greedy move), and :func:`first_improving_swap`
implements the cheaper "better-response" agent that scans candidates in
random order and takes the first win — both are exercised by the dynamics
engine and ablated in the census bench.

For the max objective the comparison is lexicographic ``(local diameter,
degree)``: the paper's max equilibrium requires deletion-criticality, which
means an agent strictly prefers deleting an edge whose removal leaves its
local diameter unchanged.  Sum agents never face this tie (removing an edge
strictly increases the mover's sum through the lost unit-distance endpoint).

:func:`best_swap` is engine-aware: by default it derives every per-neighbour
removal matrix from one cached base APSP (``mode="repair"``), or reuses a
long-lived :class:`~repro.core.engine.DistanceEngine` maintained by the
dynamics loop (``engine=...``).  ``mode="batched"`` routes through the
bound-then-verify per-vertex kernel (:func:`repro.core.batched.
best_swap_scan`, DESIGN.md §8) — most activations are certified move-free
from one aggregation pass over the base matrix, with exact removal
matrices materialized only for drops whose optimistic bound survives.
``mode="oracle"`` keeps the seed behaviour — a fresh APSP per incident
edge — for cross-validation; all paths produce bit-identical responses,
tie-breaking included.
"""

from __future__ import annotations

import math
from typing import Callable, Literal

import numpy as np

from ..errors import ConfigurationError
from ..graphs import CSRGraph, distance_matrix
from ..graphs.repair import removal_matrix_repair
from ..parallel import check_deadline
from ..rng import make_rng
from .costmodel import CostModel, resolve_cost_model
from .costs import ensure_lifted
from .moves import Swap
from .swap_eval import all_swap_costs_for_drop, removal_distance_matrix

__all__ = ["BestResponse", "best_swap", "first_improving_swap"]

Objective = Literal["sum", "max"]
BestSwapMode = Literal["repair", "batched", "oracle"]


class BestResponse:
    """The outcome of a best-response computation.

    Attributes
    ----------
    swap:
        The chosen move, or ``None`` when the vertex has no improving move.
    before / after:
        The mover's cost before and after (``after == before`` is possible
        only for max-objective tie-breaking deletions).
    is_deletion:
        Whether the chosen move deletes the dropped edge rather than
        relocating it.
    """

    __slots__ = ("swap", "before", "after", "is_deletion")

    def __init__(self, swap: Swap | None, before: float, after: float, is_deletion: bool):
        self.swap = swap
        self.before = before
        self.after = after
        self.is_deletion = is_deletion

    @property
    def improvement(self) -> float:
        return self.before - self.after

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BestResponse(swap={self.swap}, before={self.before}, "
            f"after={self.after})"
        )


def best_swap(
    graph: CSRGraph,
    v: int,
    objective: "Objective | str | CostModel" = "sum",
    *,
    prefer_deletions_on_tie: bool | None = None,
    engine=None,
    mode: BestSwapMode = "repair",
    base_dm: np.ndarray | None = None,
    deadline: "float | None" = None,
) -> BestResponse:
    """Exact best swap for vertex ``v`` (or no-op when none improves).

    Semantics:

    1. among all legal swaps (deletions included), find the minimum
       post-swap cost; if it beats the current cost, move there;
    2. otherwise, when ``prefer_deletions_on_tie`` (default for the max
       objective), take a deletion that leaves the cost unchanged — the
       lexicographic ``(cost, degree)`` improvement that drives graphs
       toward deletion-criticality;
    3. otherwise, no move.

    ``engine`` (a :class:`~repro.core.engine.DistanceEngine` for ``graph``)
    reuses its cached matrix; otherwise ``mode`` picks between one base APSP
    shared across incident edges (``"repair"``), the bound-then-verify
    per-vertex kernel (``"batched"``), and the seed oracle path of a fresh
    APSP per incident edge (``"oracle"``).  A caller that already holds the
    distance matrix of ``graph`` (audit loops, census probes, long-lived
    engines) can pass it as ``base_dm`` — raw int32 or lifted — and the
    repair/batched modes skip the APSP recomputation entirely; an
    already-lifted ``base_dm`` is used by reference, without even the n×n
    lifting copy.  ``deadline`` (absolute ``time.monotonic()`` instant)
    bounds the scan: it is checked per incident edge and raises
    :class:`~repro.errors.DeadlineExceeded` once spent.
    """
    check_deadline(deadline)
    model = resolve_cost_model(objective, graph.n)
    if prefer_deletions_on_tie is None:
        prefer_deletions_on_tie = model.prefer_deletions_on_tie
    removal: Callable[[int], np.ndarray]
    if engine is not None:
        before = model.row_cost(v, engine.dm[v])
        removal = lambda w: engine.removal_matrix(v, w)  # noqa: E731
    elif mode == "batched":
        # Deferred: repro.core.batched imports this module for BestResponse.
        from .batched import best_swap_scan

        base = ensure_lifted(
            distance_matrix(graph) if base_dm is None else base_dm
        )
        return best_swap_scan(
            graph, v, model, base,
            prefer_deletions_on_tie=prefer_deletions_on_tie,
            deadline=deadline,
        )
    elif mode == "repair":
        base = ensure_lifted(
            distance_matrix(graph) if base_dm is None else base_dm
        )
        before = model.row_cost(v, base[v])
        removal = lambda w: removal_matrix_repair(graph, base, (v, w))  # noqa: E731
    elif mode == "oracle":
        before = model.bfs_cost(graph, v)
        removal = lambda w: removal_distance_matrix(  # noqa: E731
            graph, (v, w), mode="rebuild"
        )
    else:
        raise ConfigurationError(f"unknown best_swap mode {mode!r}")
    best_cost = math.inf
    best_move: Swap | None = None
    best_is_deletion = False
    neutral_deletion: Swap | None = None
    neighbor_set = set(int(x) for x in graph.neighbors(v))
    for w in sorted(neighbor_set):
        check_deadline(deadline)
        removal_dm = removal(w)
        costs = all_swap_costs_for_drop(graph, v, w, model, removal_dm)
        mask = model.target_mask(graph, v, w)
        if mask is not None:
            costs[~mask] = math.inf  # move-set constraint (budget cap)
        costs[w] = math.inf  # identity
        top = int(np.argmin(costs))
        cost = float(costs[top])
        if cost < best_cost:
            best_cost = cost
            best_move = Swap(v, w, top)
            best_is_deletion = top in neighbor_set and top != w
        if prefer_deletions_on_tie and neutral_deletion is None:
            # Pure-deletion cost of edge vw is v's aggregate in G - vw.
            del_cost = model.row_cost(v, removal_dm[v])
            if del_cost != math.inf and del_cost <= before:
                rep = next(iter(neighbor_set - {w}), None)
                if rep is not None:
                    neutral_deletion = Swap(v, w, rep)
    if best_move is not None and best_cost < before:
        return BestResponse(best_move, before, best_cost, best_is_deletion)
    if neutral_deletion is not None:
        return BestResponse(neutral_deletion, before, before, True)
    return BestResponse(None, before, before, False)


def first_improving_swap(
    graph: CSRGraph,
    v: int,
    objective: "Objective | str | CostModel" = "sum",
    seed=None,
) -> BestResponse:
    """First improving swap for ``v`` in a random candidate order.

    The better-response agent: one patched BFS per candidate, stopping at the
    first strict improvement.  Cheaper per activation than :func:`best_swap`
    when improving moves are plentiful (early dynamics), slower near
    equilibrium — the census bench quantifies the trade.  Candidates outside
    the model's legal move set (budget caps) are skipped, not evaluated, so
    the rng stream stays aligned with the unconstrained scan order; for
    models without move constraints (``target_mask`` returning ``None``)
    the per-drop legality mask is skipped entirely — no all-True mask is
    materialized, and the rng draws are untouched either way.
    """
    model = resolve_cost_model(objective, graph.n)
    rng = make_rng(seed)
    before = model.bfs_cost(graph, v)
    neighbors = [int(x) for x in graph.neighbors(v)]
    rng.shuffle(neighbors)
    targets = np.arange(graph.n)
    for w in neighbors:
        rng.shuffle(targets)
        allowed = model.target_mask(graph, v, w)
        for w2 in targets:
            w2 = int(w2)
            if w2 == v or w2 == w or (
                allowed is not None and not allowed[w2]
            ):
                continue
            extra = [] if graph.has_edge(v, w2) else [(v, w2)]
            after = model.bfs_cost(graph, v, exclude=(v, w), extra=extra)
            if after == math.inf:
                continue
            if after < before:
                return BestResponse(
                    Swap(v, w, w2), before, after, graph.has_edge(v, w2)
                )
    return BestResponse(None, before, before, False)
