"""Equilibrium checkers — the paper's definitions, executable.

The paper stresses that, unlike Nash equilibria of the α-games (NP-complete
to verify), *swap equilibria can be checked in polynomial time, even locally
by each agent: simply try every possible edge swap and deletion*.  This
module is that procedure, vectorized:

* **sum equilibrium** — no swap decreases the mover's sum of distances;
* **max equilibrium** — no swap decreases the mover's local diameter, *and*
  the graph is deletion-critical (deleting any edge strictly increases the
  local diameter of both endpoints);
* **insertion-stable** — no single-edge insertion decreases the local
  diameter of either endpoint;
* **k-insertion stability** — no set of ≤ k insertions at one vertex
  decreases its local diameter (Theorem 12's trade-off notion).  By
  monotonicity of distances under edge removal this also implies stability
  under ≤ k swaps, the form the paper states.

All swap audits run through the pluggable cost-model layer
(:mod:`repro.core.costmodel` / DESIGN.md §6): :func:`find_swap_violation`
and :func:`is_equilibrium` take any model or spec string — the paper's
``"sum"``/``"max"`` plus the interest and budget variants — while the
historical :func:`find_sum_violation` / :func:`is_max_equilibrium` surface
stays bit-identical as thin wrappers.

The audits share one base APSP and derive every per-edge removal matrix from
it by affected-row BFS repair (DESIGN.md §2); ``mode="batched"`` goes one
step further and plans **all** edges up front — vectorized affected-source
detection, one union level-synchronous BFS for the repairs, and a scan that
reads the base matrix in place instead of copying it per edge (DESIGN.md
§2.6 / :mod:`repro.core.batched`).  ``mode="rebuild"`` restores the seed
behaviour (a fresh APSP per edge) as the cross-validation oracle.

The directed-edge loop can additionally be chunked across
:func:`repro.parallel.parallel_map` workers (``workers=``): the base matrix,
the CSR adjacency arrays, and (for the batched kernel) the predecessor-count
table are published once via shared memory
(:class:`repro.parallel.SharedArrayBundle`) and attached zero-copy in the
persistent worker pool — no per-chunk re-pickling of anything n×n-sized.
Results are deterministic and identical to the serial order regardless of
worker count.  ``workers`` applies to the repair and batched modes — the
``mode="rebuild"`` oracle always runs serially, so cross-validation
exercises the exact seed code path.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterable, Literal

import numpy as np

from ..errors import ConfigurationError, DisconnectedGraphError
from ..graphs import CSRGraph, distance_matrix, is_connected
from ..graphs.repair import predecessor_counts, removal_matrix_repair
from ..parallel import check_deadline, chunk_evenly, parallel_map
from .costmodel import CostModel, resolve_cost_model
from .costs import INT_INF, ensure_lifted, lift_distances
from .moves import Swap
from .swap_eval import all_swap_costs_for_drop, removal_distance_matrix

__all__ = [
    "Violation",
    "find_swap_violation",
    "find_sum_violation",
    "is_equilibrium",
    "is_sum_equilibrium",
    "sum_equilibrium_gap",
    "find_max_swap_violation",
    "find_deletion_criticality_violation",
    "is_deletion_critical",
    "is_max_equilibrium",
    "find_insertion_violation",
    "is_insertion_stable",
    "k_insertion_witness",
    "is_k_insertion_stable",
]


@dataclass(frozen=True, slots=True)
class Violation:
    """A certified counterexample to an equilibrium/stability property.

    ``kind`` is one of ``"sum-swap"``, ``"max-swap"``, ``"deletion"``,
    ``"insertion"``, ``"k-insertion"``.  ``before``/``after`` are the mover's
    costs; for ``deletion`` the violation is that the cost did *not* strictly
    increase, so ``after <= before``.
    """

    kind: str
    vertex: int
    drop: int | None
    add: "int | tuple[int, ...] | None"
    before: float
    after: float

    @property
    def improvement(self) -> float:
        """How much the mover gains (positive for swap/insertion violations)."""
        return self.before - self.after

    def as_swap(self) -> Swap:
        """The violating move as a :class:`Swap` (swap violations only)."""
        if self.kind not in ("sum-swap", "max-swap") or self.drop is None:
            raise ConfigurationError(f"{self.kind} violation is not a swap")
        assert isinstance(self.add, int)
        return Swap(self.vertex, self.drop, self.add)


def _prepare(
    graph: CSRGraph, base_dm: np.ndarray | None = None
) -> np.ndarray:
    """Lifted distance matrix of ``graph``; requires connectivity.

    ``base_dm`` — a precomputed distance matrix of ``graph`` (raw int32 or
    already lifted) — skips the APSP: a dynamics engine auditing its own
    converged endpoint already holds the matrix, and an already-lifted
    input is used by reference.  Connectivity is validated off the matrix.
    """
    if base_dm is not None:
        lifted = ensure_lifted(base_dm)
        if graph.n > 1 and bool((lifted[0] >= INT_INF).any()):
            raise DisconnectedGraphError(
                "equilibrium audits are defined on connected graphs"
            )
        return lifted
    if not is_connected(graph):
        raise DisconnectedGraphError(
            "equilibrium audits are defined on connected graphs"
        )
    return lift_distances(distance_matrix(graph))


AuditMode = Literal["repair", "rebuild", "batched"]

_AUDIT_MODES = ("repair", "rebuild", "batched")


def _check_mode(mode: str) -> None:
    if mode not in _AUDIT_MODES:
        raise ConfigurationError(
            f"unknown audit mode {mode!r}; known: {', '.join(_AUDIT_MODES)}"
        )


def _removal_for(
    graph: CSRGraph,
    lifted: np.ndarray,
    edge: tuple[int, int],
    mode: AuditMode,
) -> np.ndarray:
    if mode == "repair":
        return removal_matrix_repair(graph, lifted, edge)
    return removal_distance_matrix(graph, edge, mode="rebuild")


def _iter_drop_contexts(
    graph: CSRGraph,
    lifted: np.ndarray | None = None,
    mode: AuditMode = "repair",
):
    """Yield ``(v, w, removal_dm)`` for every directed edge, one matrix per edge.

    ``mode="repair"`` derives each removal matrix from the shared base matrix
    ``lifted``; ``mode="rebuild"`` is the seed oracle (fresh APSP per edge).
    """
    if lifted is None and mode == "repair":
        lifted = lift_distances(distance_matrix(graph))
    for a, b in graph.iter_edges():
        removal_dm = _removal_for(graph, lifted, (a, b), mode)
        yield a, b, removal_dm
        yield b, a, removal_dm


# ---------------------------------------------------------------------------
# Parallel audit plumbing: chunked directed-edge loops over a shared-memory
# base matrix.  Each worker function takes ``(payload, arrays)`` where
# ``arrays`` holds the zero-copy published inputs — the CSR adjacency, the
# lifted base matrix, and (batched mode) the predecessor-count table —
# attached once per worker process, never pickled per chunk.
# ---------------------------------------------------------------------------

def _shared_graph(arrays) -> tuple[CSRGraph, np.ndarray]:
    """Rebuild the audited graph + base matrix from a shared payload."""
    indptr = arrays["indptr"]
    graph = CSRGraph.from_csr_arrays(
        indptr.shape[0] - 1, indptr, arrays["indices"]
    )
    return graph, arrays["dm"]


def _detach_model(model):
    """Split a model into a small pickle stub + shared n×n-sized arrays.

    Chunk payloads cross the pickle boundary per chunk, so anything
    matrix-sized (an ``InterestCost`` weight matrix) rides the shared-array
    channel next to the base matrix instead — the same rule that keeps
    ``dm``/``pc`` out of the payloads (DESIGN.md §5).
    """
    from .costmodel import InterestCost

    if isinstance(model, InterestCost):
        return ("interest", model.kind, model.spec), {"cmw": model.weights}
    return (model, {})


def _attach_model(stub, arrays):
    """Inverse of :func:`_detach_model`, run inside the worker."""
    from .costmodel import InterestCost

    if isinstance(stub, tuple) and stub and stub[0] == "interest":
        _, kind, spec = stub
        return InterestCost(kind, arrays["cmw"], spec=spec)
    return stub


def _swap_violation_chunk(payload, arrays):
    """First swap violation in one edge chunk, tagged by directed-edge index."""
    edges, start, stub = payload
    model = _attach_model(stub, arrays)
    graph, lifted = _shared_graph(arrays)
    base = model.base_costs(lifted)
    for i, (a, b) in enumerate(edges):
        removal_dm = removal_matrix_repair(graph, lifted, (a, b))
        for j, (v, w) in enumerate(((a, b), (b, a))):
            costs = all_swap_costs_for_drop(graph, v, w, model, removal_dm)
            mask = model.target_mask(graph, v, w)
            if mask is not None:
                costs[~mask] = math.inf
            costs[w] = math.inf
            best = int(np.argmin(costs))
            if costs[best] < base[v]:
                return (
                    2 * (start + i) + j,
                    Violation(
                        model.violation_kind, v, w, best,
                        float(base[v]), float(costs[best]),
                    ),
                )
    return None


def _batched_violation_chunk(payload, arrays):
    """Batched-kernel analog of :func:`_swap_violation_chunk`."""
    from .batched import scan_swap_violations

    edges, start, stub = payload
    model = _attach_model(stub, arrays)
    graph, lifted = _shared_graph(arrays)
    return scan_swap_violations(
        graph,
        lifted,
        model.base_costs(lifted),
        edges,
        start,
        model,
        pred_counts=arrays["pc"],
    )


def _gap_chunk(payload, arrays):
    """Largest sum-swap improvement within one edge chunk."""
    (edges,) = payload
    graph, lifted = _shared_graph(arrays)
    base_sum = lifted.sum(axis=1)
    gap = 0.0
    for a, b in edges:
        removal_dm = removal_matrix_repair(graph, lifted, (a, b))
        for v, w in ((a, b), (b, a)):
            costs = all_swap_costs_for_drop(graph, v, w, "sum", removal_dm)
            costs[w] = math.inf
            best = float(np.min(costs))
            if best < base_sum[v]:
                gap = max(gap, float(base_sum[v]) - best)
    return gap


def _batched_gap_chunk(payload, arrays):
    """Batched-kernel analog of :func:`_gap_chunk`."""
    from .batched import scan_gap

    (edges,) = payload
    graph, lifted = _shared_graph(arrays)
    return scan_gap(
        graph, lifted, lifted.sum(axis=1), edges, pred_counts=arrays["pc"]
    )


def _deletion_chunk(payload, arrays):
    """First deletion-criticality violation in one edge chunk."""
    edges, start = payload
    graph, lifted = _shared_graph(arrays)
    base_ecc = lifted.max(axis=1)
    for i, (a, b) in enumerate(edges):
        removal_dm = removal_matrix_repair(graph, lifted, (a, b))
        ecc_after = removal_dm.max(axis=1)
        for j, v in enumerate((a, b)):
            after = math.inf if ecc_after[v] >= INT_INF else float(ecc_after[v])
            if not after > float(base_ecc[v]):
                other = b if v == a else a
                return (
                    2 * (start + i) + j,
                    Violation(
                        "deletion", v, other, None, float(base_ecc[v]), after
                    ),
                )
    return None


def _batched_deletion_chunk(payload, arrays):
    """Batched-kernel analog of :func:`_deletion_chunk`."""
    from .batched import scan_deletion_violations

    edges, start = payload
    graph, lifted = _shared_graph(arrays)
    return scan_deletion_violations(
        graph, lifted, lifted.max(axis=1), edges, start,
        pred_counts=arrays["pc"],
    )


def _audit_arrays(
    graph: CSRGraph, lifted: np.ndarray, mode: AuditMode
) -> dict[str, np.ndarray]:
    arrays = {
        "indptr": graph.indptr,
        "indices": graph.indices,
        "dm": lifted,
    }
    if mode == "batched":
        arrays["pc"] = predecessor_counts(graph, lifted)
    return arrays


def _scan_parallel(
    graph, lifted, mode, workers, fn_by_mode, make_payload,
    extra_arrays=None, deadline=None,
):
    """Chunk the edge loop, map over shared-memory workers, keep order."""
    chunks = chunk_evenly(list(graph.iter_edges()), workers)
    payloads = [make_payload(start, chunk) for start, chunk in chunks]
    shared = _audit_arrays(graph, lifted, mode)
    if extra_arrays:
        shared.update(extra_arrays)
    return parallel_map(
        fn_by_mode[mode],
        payloads,
        workers=min(workers, len(payloads)),
        chunk_size=1,
        shared=shared,
        deadline=deadline,
    )


def _first_violation_parallel(graph, lifted, model, workers, mode, deadline):
    stub, model_arrays = _detach_model(model)
    results = _scan_parallel(
        graph,
        lifted,
        mode,
        workers,
        {"repair": _swap_violation_chunk, "batched": _batched_violation_chunk},
        lambda start, chunk: (chunk, start, stub),
        extra_arrays=model_arrays,
        deadline=deadline,
    )
    hits = [r for r in results if r is not None]
    return min(hits)[1] if hits else None


def _batched_first_violation(graph, lifted, base, model, deadline=None):
    """Serial batched scan over every edge (workers == 1 path)."""
    from .batched import scan_swap_violations

    hit = scan_swap_violations(
        graph, lifted, base, list(graph.iter_edges()), 0, model,
        deadline=deadline,
    )
    return hit[1] if hit else None


# ---------------------------------------------------------------------------
# The generalized swap audit (sum / max / interest / budget cost models)
# ---------------------------------------------------------------------------

def find_swap_violation(
    graph: CSRGraph,
    objective: "str | CostModel" = "sum",
    *,
    workers: int = 1,
    mode: AuditMode = "repair",
    base_dm: np.ndarray | None = None,
    deadline: "float | None" = None,
) -> Violation | None:
    """First swap improving some agent's model cost, or ``None`` at rest.

    ``objective`` is a :class:`~repro.core.costmodel.CostModel` or spec
    string; ``"sum"``/``"max"`` reproduce the paper's audits bit-for-bit
    (same violations, same tie-breaks, same directed-edge order).  Models
    with constrained move sets (budget caps) only audit the legal moves.

    ``workers > 1`` chunks the directed-edge loop across shared-memory
    processes; the returned violation is the same one the serial scan
    finds.  Chunking applies to ``mode="repair"`` and ``mode="batched"`` —
    the rebuild oracle stays serial.  ``base_dm`` is an optional
    precomputed distance matrix of ``graph`` (see :func:`_prepare`) so
    callers that already hold it — dynamics endpoints, census probes —
    skip the audit's APSP.  ``deadline`` (absolute ``time.monotonic()``
    instant) bounds the whole audit: the serial scan checks it between
    drop contexts and the parallel scan propagates it into the pool, both
    raising :class:`~repro.errors.DeadlineExceeded` once it passes.
    """
    _check_mode(mode)
    model = resolve_cost_model(objective, graph.n)
    if graph.n <= 2:
        if not is_connected(graph):
            raise DisconnectedGraphError(
                "equilibrium audits are defined on connected graphs"
            )
        return None
    lifted = _prepare(graph, base_dm)
    if workers > 1 and mode in ("repair", "batched"):
        return _first_violation_parallel(
            graph, lifted, model, workers, mode, deadline
        )
    base = model.base_costs(lifted)
    if mode == "batched":
        check_deadline(deadline)
        return _batched_first_violation(
            graph, lifted, base, model, deadline=deadline
        )
    for v, w, removal_dm in _iter_drop_contexts(graph, lifted, mode):
        check_deadline(deadline)
        costs = all_swap_costs_for_drop(graph, v, w, model, removal_dm)
        mask = model.target_mask(graph, v, w)
        if mask is not None:
            costs[~mask] = math.inf  # move-set constraint (budget cap)
        costs[w] = math.inf  # identity move is not a violation
        best = int(np.argmin(costs))
        if costs[best] < base[v]:
            return Violation(
                model.violation_kind, v, w, best,
                float(base[v]), float(costs[best]),
            )
    return None


def is_equilibrium(
    graph: CSRGraph,
    objective: "str | CostModel" = "sum",
    *,
    workers: int = 1,
    mode: AuditMode = "repair",
    base_dm: np.ndarray | None = None,
    deadline: "float | None" = None,
) -> bool:
    """Whether ``graph`` is at rest under the model's equilibrium notion.

    Swap stability under the model's cost and move set; for the paper's max
    version (``requires_deletion_criticality``) the audit additionally
    demands deletion-criticality, matching :func:`is_max_equilibrium`
    exactly.  Variant max models (interest / budget) are swap-stability
    only — their literatures define no criticality condition.  ``base_dm``
    skips the audit's APSP when the caller already holds the matrix.
    """
    model = resolve_cost_model(objective, graph.n)
    if (
        find_swap_violation(
            graph, model, workers=workers, mode=mode, base_dm=base_dm,
            deadline=deadline,
        )
        is not None
    ):
        return False
    if model.requires_deletion_criticality:
        return (
            find_deletion_criticality_violation(
                graph, workers=workers, mode=mode, base_dm=base_dm,
                deadline=deadline,
            )
            is None
        )
    return True


# ---------------------------------------------------------------------------
# Sum version
# ---------------------------------------------------------------------------

def find_sum_violation(
    graph: CSRGraph,
    *,
    workers: int = 1,
    mode: AuditMode = "repair",
) -> Violation | None:
    """First improving sum-swap found, or ``None`` if in sum equilibrium."""
    return find_swap_violation(graph, "sum", workers=workers, mode=mode)


def is_sum_equilibrium(
    graph: CSRGraph, *, workers: int = 1, mode: AuditMode = "repair"
) -> bool:
    """Whether ``graph`` is a sum (swap) equilibrium."""
    return find_sum_violation(graph, workers=workers, mode=mode) is None


def sum_equilibrium_gap(
    graph: CSRGraph, *, workers: int = 1, mode: AuditMode = "repair"
) -> float:
    """The largest improvement any single swap offers (0.0 at equilibrium).

    A quantitative "distance from equilibrium" used by dynamics diagnostics;
    ``inf`` never occurs because disconnecting swaps cost ``inf``.
    """
    _check_mode(mode)
    if graph.n <= 2:
        return 0.0
    lifted = _prepare(graph)
    base_sum = lifted.sum(axis=1)
    if workers > 1 and mode in ("repair", "batched"):
        gaps = _scan_parallel(
            graph,
            lifted,
            mode,
            workers,
            {"repair": _gap_chunk, "batched": _batched_gap_chunk},
            lambda start, chunk: (chunk,),
        )
        return max(gaps, default=0.0)
    if mode == "batched":
        from .batched import scan_gap

        return scan_gap(graph, lifted, base_sum, list(graph.iter_edges()))
    gap = 0.0
    for v, w, removal_dm in _iter_drop_contexts(graph, lifted, mode):
        costs = all_swap_costs_for_drop(graph, v, w, "sum", removal_dm)
        costs[w] = math.inf
        best = float(np.min(costs))
        if best < base_sum[v]:
            gap = max(gap, float(base_sum[v]) - best)
    return gap


# ---------------------------------------------------------------------------
# Max version
# ---------------------------------------------------------------------------

def find_max_swap_violation(
    graph: CSRGraph,
    *,
    workers: int = 1,
    mode: AuditMode = "repair",
) -> Violation | None:
    """First swap strictly decreasing the mover's local diameter, or ``None``."""
    return find_swap_violation(graph, "max", workers=workers, mode=mode)


def find_deletion_criticality_violation(
    graph: CSRGraph,
    *,
    workers: int = 1,
    mode: AuditMode = "repair",
    base_dm: np.ndarray | None = None,
    deadline: "float | None" = None,
) -> Violation | None:
    """First edge whose deletion does **not** strictly raise an endpoint's ecc.

    Deletion-criticality is part of the paper's max-equilibrium definition
    and of the lower-bound constructions.
    """
    _check_mode(mode)
    lifted = _prepare(graph, base_dm)
    base_ecc = lifted.max(axis=1)
    if workers > 1 and mode in ("repair", "batched"):
        results = _scan_parallel(
            graph,
            lifted,
            mode,
            workers,
            {"repair": _deletion_chunk, "batched": _batched_deletion_chunk},
            lambda start, chunk: (chunk, start),
            deadline=deadline,
        )
        hits = [r for r in results if r is not None]
        return min(hits)[1] if hits else None
    if mode == "batched":
        from .batched import scan_deletion_violations

        check_deadline(deadline)
        hit = scan_deletion_violations(
            graph, lifted, base_ecc, list(graph.iter_edges()), 0,
            deadline=deadline,
        )
        return hit[1] if hit else None
    for a, b in graph.iter_edges():
        check_deadline(deadline)
        removal_dm = _removal_for(graph, lifted, (a, b), mode)
        ecc_after = removal_dm.max(axis=1)
        for v in (a, b):
            after = math.inf if ecc_after[v] >= INT_INF else float(ecc_after[v])
            if not after > float(base_ecc[v]):
                other = b if v == a else a
                return Violation(
                    "deletion", v, other, None, float(base_ecc[v]), after
                )
    return None


def is_deletion_critical(
    graph: CSRGraph, *, workers: int = 1, mode: AuditMode = "repair"
) -> bool:
    """Whether deleting any edge strictly increases both endpoints' ecc."""
    return (
        find_deletion_criticality_violation(graph, workers=workers, mode=mode)
        is None
    )


def is_max_equilibrium(
    graph: CSRGraph, *, workers: int = 1, mode: AuditMode = "repair"
) -> bool:
    """The paper's max equilibrium: swap-stable (max) **and** deletion-critical."""
    if find_max_swap_violation(graph, workers=workers, mode=mode) is not None:
        return False
    return (
        find_deletion_criticality_violation(graph, workers=workers, mode=mode)
        is None
    )


# ---------------------------------------------------------------------------
# Insertion stability
# ---------------------------------------------------------------------------

def find_insertion_violation(graph: CSRGraph) -> Violation | None:
    """First single-edge insertion decreasing an endpoint's local diameter.

    Uses the exact closure ``d_{G+uv}(u, x) = min(d(u,x), 1 + d(v,x))`` — an
    inserted edge incident to ``u`` can only be used as the first step of a
    shortest path from ``u``.
    """
    lifted = _prepare(graph)
    base_ecc = lifted.max(axis=1)
    n = graph.n
    adjacency = [set(int(x) for x in graph.neighbors(u)) for u in range(n)]
    for u in range(n):
        # Row v of `candidate` is the distance vector of u in G + uv.
        candidate = np.minimum(lifted[u][None, :], lifted + 1)
        new_ecc = candidate.max(axis=1)
        for v in np.nonzero(new_ecc < base_ecc[u])[0]:
            v = int(v)
            if v != u and v not in adjacency[u]:
                return Violation(
                    "insertion", u, None, v, float(base_ecc[u]), float(new_ecc[v])
                )
    return None


def is_insertion_stable(graph: CSRGraph) -> bool:
    """Whether no single-edge insertion helps either endpoint's local diameter."""
    return find_insertion_violation(graph) is None


# ---------------------------------------------------------------------------
# k-insertion stability (Theorem 12 trade-off)
# ---------------------------------------------------------------------------

def k_insertion_witness(
    graph: CSRGraph,
    v: int,
    k: int,
    dm: np.ndarray | None = None,
) -> tuple[int, ...] | None:
    """A set of ≤ k insertions at ``v`` lowering its local diameter, or ``None``.

    Exact: reduces to covering the far set ``F = {x : d(v,x) = ecc(v)}`` with
    balls ``{x : d(a,x) ≤ ecc(v) − 2}`` over candidate endpoints ``a``; a
    cover of size ≤ k exists iff ``v`` is k-insertion *unstable*.  The search
    enumerates candidate combinations after pruning dominated candidates, so
    it is exact for the small ``k`` (≤ 3) the paper's constructions use.
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    if dm is None:
        if not is_connected(graph):
            raise DisconnectedGraphError(
                "k-insertion stability is defined on connected graphs"
            )
        dm = distance_matrix(graph)
    n = graph.n
    ecc = int(dm[v].max())
    if ecc <= 1:
        return None  # cannot go below 1 by inserting edges
    far = np.nonzero(dm[v] == ecc)[0]
    neighbors = set(int(x) for x in graph.neighbors(v))
    candidates = [
        a for a in range(n) if a != v and a not in neighbors
    ]
    if not candidates:
        return None
    cover = dm[np.asarray(candidates)][:, far] <= ecc - 2  # (cands, |far|)
    useful = cover.any(axis=1)
    cand_arr = np.asarray(candidates)[useful]
    cover = cover[useful]
    if cover.size == 0:
        return None
    # Prune dominated rows (covering a subset of another row's far set).
    keep: list[int] = []
    for i in range(cover.shape[0]):
        dominated = False
        for j in range(cover.shape[0]):
            if i == j:
                continue
            if (cover[i] <= cover[j]).all() and (
                (cover[i] != cover[j]).any() or j < i
            ):
                dominated = True
                break
        if not dominated:
            keep.append(i)
    cover = cover[keep]
    cand_arr = cand_arr[keep]
    for size in range(1, min(k, len(cand_arr)) + 1):
        for combo in itertools.combinations(range(len(cand_arr)), size):
            if cover[list(combo)].any(axis=0).all():
                return tuple(int(cand_arr[i]) for i in combo)
    return None


def is_k_insertion_stable(
    graph: CSRGraph,
    k: int,
    vertices: Iterable[int] | None = None,
) -> bool:
    """Whether no vertex can lower its local diameter with ≤ k insertions.

    ``vertices`` restricts the audit (vertex-transitive constructions only
    need one representative).  By distance monotonicity under deletions this
    also certifies stability under ≤ k *swaps* at one vertex.
    """
    if not is_connected(graph):
        raise DisconnectedGraphError(
            "k-insertion stability is defined on connected graphs"
        )
    dm = distance_matrix(graph)
    vs = range(graph.n) if vertices is None else vertices
    for v in vs:
        if k_insertion_witness(graph, int(v), k, dm) is not None:
            return False
    return True
