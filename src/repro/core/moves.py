"""Move vocabulary of the basic network creation game.

The only move is the **edge swap**: vertex ``v`` replaces incident edge
``v–drop`` by ``v–add``.  Following the paper, a swap whose ``add`` endpoint
is already a neighbour (or equals ``drop``… a no-op we reject as a *move*)
encodes deletion of the dropped edge, so the move set closes over simple
graphs.  Insertions appear in the paper only inside *stability definitions*
(insertion-stable, k-insertion stability), not as game moves, and are
represented by plain edge tuples there.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import IllegalSwapError
from ..graphs import AdjacencyGraph, CSRGraph

__all__ = ["Swap", "apply_swap", "legal_add_targets", "swapped_graph"]


@dataclass(frozen=True, slots=True)
class Swap:
    """An edge swap performed by ``vertex``: drop ``v–drop``, add ``v–add``.

    Attributes
    ----------
    vertex:
        The moving agent ``v``.
    drop:
        Current neighbour whose edge is removed.
    add:
        New endpoint.  ``add == drop`` is the identity and is rejected by
        :meth:`validate`; ``add`` being an existing *other* neighbour makes
        the swap a pure deletion.
    """

    vertex: int
    drop: int
    add: int

    def validate(self, graph: "CSRGraph | AdjacencyGraph") -> None:
        """Raise :class:`IllegalSwapError` unless the swap is legal in ``graph``."""
        v, w, w2 = self.vertex, self.drop, self.add
        n = graph.n
        for x in (v, w, w2):
            if not 0 <= x < n:
                raise IllegalSwapError(f"{self} references vertex out of range")
        if v == w or v == w2:
            raise IllegalSwapError(f"{self} is a self-loop move")
        if w == w2:
            raise IllegalSwapError(f"{self} is the identity move")
        if not graph.has_edge(v, w):
            raise IllegalSwapError(f"{self} drops a non-existent edge")

    @property
    def is_deletion_when_add_exists(self) -> bool:
        """Marker used in reporting; resolved against a graph at apply time."""
        return False

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"swap(v={self.vertex}: drop {self.drop}, add {self.add})"


def legal_add_targets(
    graph: CSRGraph, v: int, w: int, model=None
) -> np.ndarray:
    """Boolean mask of legal add-targets for ``v`` dropping edge ``v–w``.

    The base game allows every target except the mover itself (``w`` is the
    identity re-add, left to callers to exclude where it matters).  A cost
    model with a constrained move set — budget caps on incident edges —
    narrows the mask further via ``model.target_mask``; models without move
    constraints leave it untouched.
    """
    mask = np.ones(graph.n, dtype=bool)
    mask[v] = False
    if model is not None:
        extra = model.target_mask(graph, v, w)
        if extra is not None:
            mask &= extra
    return mask


def apply_swap(graph: AdjacencyGraph, swap: Swap) -> None:
    """Apply ``swap`` to a mutable graph in place (validating first)."""
    swap.validate(graph)
    graph.swap_edge(swap.vertex, swap.drop, swap.add)


def swapped_graph(graph: CSRGraph, swap: Swap) -> CSRGraph:
    """Return the CSR graph resulting from ``swap`` (the *copy* eval mode).

    When ``add`` is an existing neighbour the result is pure deletion, per
    the paper's convention.
    """
    swap.validate(graph)
    if graph.has_edge(swap.vertex, swap.add):
        return graph.with_edges(remove=[(swap.vertex, swap.drop)])
    return graph.with_edges(
        add=[(swap.vertex, swap.add)], remove=[(swap.vertex, swap.drop)]
    )
