"""Cross-edge batched audit kernel — plan once, bound first, repair rarely.

The PR-1 audit loop (``mode="repair"``) already derives every removal matrix
from one cached base APSP, but it still pays per edge: affected-source
detection, row repairs, an n×n matrix copy, and the closure evaluation.
This module restructures a full audit (``mode="batched"`` on the
equilibrium checkers) around three batch ideas:

1. **Plan** — :func:`repro.graphs.removal_affected_matrix` computes the
   affected-source masks of *all* audited edges in one |E|×n comparison
   against the base matrix (plus one shared predecessor-count table), and
   classifies bridges with one half-BFS per all-sources edge.
2. **Endpoint rows in one BFS** — a mover's own post-removal row is the
   only repaired row most of the audit needs.  All 2·|E| endpoint rows are
   computed by a single level-synchronous BFS over the union of (edge, row)
   jobs (:func:`repro.graphs.batched_removal_rows_multi`), whose per-level
   cost is one sparse product — Python overhead O(diameter) per audit, not
   O(m · diameter).  Bridge endpoints are masked base rows (free).
3. **Bound-then-verify scan** — deleting an edge can only *increase*
   distances, so every other row of the removal matrix dominates its base
   row, and

   ``costs_lb[w'] = agg_u min(dv[u], 1 + base[w', u]) <= costs[w']``

   is a sound optimistic bound computed straight off the base matrix (no
   per-edge copy; it is *exact* for unaffected ``w'``).  A mover whose
   bound never beats its current cost provably has no improving swap —
   the common case on and near equilibria, where the census spends its
   time.  Only when a candidate survives does the kernel materialize the
   edge's exact removal matrix (via the same
   :func:`~repro.graphs.removal_matrix_repair` bucketing as ``mode="repair"``:
   bridge / few seeded rows / batched many-rows) and re-evaluate exactly.

Every scan outcome is bit-identical to the ``mode="repair"`` /
``mode="rebuild"`` paths — same costs, same argmin tie-breaking, same
directed-edge order — because the bound only ever *skips* movers whose
exact evaluation could not have produced a violation, and survivors are
re-evaluated with the repair-path code itself.  Scans compose with
``workers=`` (chunks of edges, each worker planning its own chunk against
the shared base matrix; see :mod:`repro.core.equilibrium`).
"""

from __future__ import annotations

import math

import numpy as np

from ..graphs import CSRGraph
from ..graphs.bfs import UNREACHABLE, bfs_distances
from ..graphs.repair import (
    batched_removal_rows_multi,
    predecessor_counts,
    removal_affected_matrix,
    removal_matrix_repair,
)
from .costmodel import SUM_COST, CostModel, resolve_cost_model
from .costs import INT_INF
from .equilibrium import Violation
from .swap_eval import all_swap_costs_for_drop

__all__ = [
    "BatchedRemovalPlan",
    "scan_swap_violations",
    "scan_gap",
    "scan_deletion_violations",
]


class BatchedRemovalPlan:
    """Batched audit state for a set of edges of one graph.

    Parameters
    ----------
    graph, lifted:
        The audited graph and its lifted base APSP matrix.
    edges:
        The (undirected) edges to plan, as ``(a, b)`` pairs — an audit
        chunk, or every edge.
    pred_counts:
        Optional precomputed :func:`repro.graphs.predecessor_counts`
        (shared across chunks / workers).
    """

    def __init__(
        self,
        graph: CSRGraph,
        lifted: np.ndarray,
        edges,
        *,
        pred_counts: np.ndarray | None = None,
    ):
        self.graph = graph
        self.lifted = lifted
        self.edges = [(int(a), int(b)) for a, b in edges]
        n = graph.n
        self._affected = removal_affected_matrix(
            graph, lifted, self.edges, pred_counts=pred_counts
        )
        counts = self._affected.sum(axis=1)

        #: edge index -> boolean mask of the component of ``b`` in G − e.
        self._bridge_side: dict[int, np.ndarray] = {}
        #: lazily materialized exact removal matrix of the last edge asked.
        self._full_cache: tuple[int, np.ndarray] | None = None

        jobs: list[tuple[int, int, int]] = []  # (a, b, source) per job
        slots: list[int] = []  # edge index owning jobs[k] (two per edge)
        for i, (a, b) in enumerate(self.edges):
            if counts[i] == n and n > 1:
                # All sources affected: bridge candidate.  One half-BFS
                # settles it (a bridge cuts a off from b's side).
                half = bfs_distances(graph, b, exclude=(a, b))
                if half[a] == UNREACHABLE:
                    self._bridge_side[i] = half != UNREACHABLE
                    continue
            # Non-bridge: both endpoint rows change (d(a, b) strictly
            # increases), and they are all the bound scan needs.
            jobs.append((a, b, a))
            jobs.append((a, b, b))
            slots.append(i)

        #: edge index -> (2, n) rows for sources (a, b); bridges absent.
        self._end_rows: dict[int, np.ndarray] = {}
        if jobs:
            arr = np.asarray(jobs, dtype=np.int64)
            rows = batched_removal_rows_multi(
                graph, arr[:, 0], arr[:, 1], arr[:, 2]
            )
            for k, i in enumerate(slots):
                self._end_rows[i] = rows[2 * k : 2 * k + 2]

    # ------------------------------------------------------------------
    def is_bridge(self, i: int) -> bool:
        return i in self._bridge_side

    def affected_sources(self, i: int) -> np.ndarray:
        """Sorted affected sources of edge ``i`` (all of them for a bridge)."""
        return np.nonzero(self._affected[i])[0]

    def endpoint_row(self, i: int, v: int) -> np.ndarray:
        """The exact distance row of endpoint ``v`` in ``G − edges[i]``."""
        a, b = self.edges[i]
        side = self._bridge_side.get(i)
        if side is not None:
            # A bridge leaves within-component distances untouched.
            row = np.array(self.lifted[v], copy=True)
            row[~side if side[v] else side] = INT_INF
            return row
        return self._end_rows[i][0 if v == a else 1]

    def removal_matrix(self, i: int) -> np.ndarray:
        """Exact lifted APSP of ``G − edges[i]``, cached for the last edge.

        The rare-path fallback behind the bound: bridges are two block
        assignments of the infinite sentinel; everything else reuses the
        ``mode="repair"`` bucketing (seeded few-row repairs / one batched
        BFS) via :func:`~repro.graphs.removal_matrix_repair`.
        """
        if self._full_cache is not None and self._full_cache[0] == i:
            return self._full_cache[1]
        side = self._bridge_side.get(i)
        if side is not None:
            out = np.array(self.lifted, copy=True)
            out[np.ix_(side, ~side)] = INT_INF
            out[np.ix_(~side, side)] = INT_INF
        else:
            out = removal_matrix_repair(
                self.graph,
                self.lifted,
                self.edges[i],
                affected=self._affected[i],
            )
        self._full_cache = (i, out)
        return out

    # ------------------------------------------------------------------
    def bound_costs(
        self,
        i: int,
        v: int,
        w: int,
        objective,
        base_plus1: np.ndarray,
        buf: np.ndarray,
    ) -> np.ndarray:
        """Optimistic post-swap costs of mover ``v`` dropping ``v–w``.

        ``bound_costs[w'] <= exact costs[w']`` for every target ``w'``
        (removal only increases distances, so ``1 + base`` row-dominates
        the true removal matrix — and every cost model's row aggregate is
        monotone under row dominance, the contract in
        :mod:`repro.core.costmodel`), with equality whenever ``w'`` is
        unaffected by the removal.  ``base_plus1`` (= base + 1) and the
        ``(n, n)`` scratch ``buf`` come from the scan loop, so the bound
        allocates nothing matrix-sized per edge.
        """
        model = (
            objective
            if isinstance(objective, CostModel)
            else resolve_cost_model(objective, self.graph.n)
        )
        dv = self.endpoint_row(i, v)
        np.minimum(dv[None, :], base_plus1, out=buf)
        costs = model.candidate_costs(v, buf)
        costs[v] = math.inf
        return costs

    def exact_costs(self, i: int, v: int, w: int, objective) -> np.ndarray:
        """Exact post-swap costs — the ``mode="repair"`` evaluation itself."""
        return all_swap_costs_for_drop(
            self.graph, v, w, objective, self.removal_matrix(i)
        )


# ---------------------------------------------------------------------------
# Scans (used serially over all edges, and per worker chunk)
# ---------------------------------------------------------------------------

#: Edges planned per lazily-built block.  Scans that can stop early (a
#: violation in the first block) then pay for one block of planning, not
#: the whole graph, while full equilibrium audits batch just as widely.
_SCAN_BLOCK = 128


def _plan_blocks(graph, lifted, edges, pred_counts):
    """Yield ``(block_offset, plan)`` for lazily planned edge blocks."""
    edges = [(int(a), int(b)) for a, b in edges]
    if len(edges) > _SCAN_BLOCK and pred_counts is None:
        # Amortize the predecessor-count table across blocks.
        pred_counts = predecessor_counts(graph, lifted)
    for lo in range(0, len(edges), _SCAN_BLOCK):
        yield lo, BatchedRemovalPlan(
            graph, lifted, edges[lo : lo + _SCAN_BLOCK],
            pred_counts=pred_counts,
        )


def scan_swap_violations(
    graph: CSRGraph,
    lifted: np.ndarray,
    base: np.ndarray,
    edges,
    start: int,
    objective,
    *,
    pred_counts: np.ndarray | None = None,
):
    """First swap violation among ``edges``, tagged by directed-edge index.

    The batched analog of the per-edge repair scan: same directed order
    (``(a, b)`` then ``(b, a)`` per canonical edge), same tie-breaking —
    movers are dismissed only when the sound bound proves no improving
    swap exists, and survivors are re-evaluated exactly.  ``objective`` is
    a cost model (or spec string); the same move-set mask is applied to
    the bound and the exact costs, so budget-constrained scans stay sound.
    """
    n = graph.n
    model = resolve_cost_model(objective, n)
    base_plus1 = lifted + 1
    buf = np.empty((n, n), dtype=np.int64)
    for lo, plan in _plan_blocks(graph, lifted, edges, pred_counts):
        for i, (a, b) in enumerate(plan.edges):
            for j, (v, w) in enumerate(((a, b), (b, a))):
                mask = model.target_mask(graph, v, w)
                bound = plan.bound_costs(i, v, w, model, base_plus1, buf)
                if mask is not None:
                    bound[~mask] = math.inf
                bound[w] = math.inf  # identity move is not a violation
                if float(np.min(bound)) >= base[v]:
                    continue  # exact costs dominate the bound: no violation
                costs = plan.exact_costs(i, v, w, model)
                if mask is not None:
                    costs[~mask] = math.inf
                costs[w] = math.inf
                best = int(np.argmin(costs))
                if costs[best] < base[v]:
                    return (
                        2 * (start + lo + i) + j,
                        Violation(
                            model.violation_kind, v, w, best,
                            float(base[v]), float(costs[best]),
                        ),
                    )
    return None


def scan_gap(
    graph: CSRGraph,
    lifted: np.ndarray,
    base_sum: np.ndarray,
    edges,
    *,
    pred_counts: np.ndarray | None = None,
) -> float:
    """Largest sum-swap improvement within ``edges`` (batched kernel).

    Sound despite the bound: a mover is skipped only when its *optimistic*
    best is no better than its current cost, in which case it contributes
    nothing to the gap; survivors use exact costs.
    """
    n = graph.n
    base_plus1 = lifted + 1
    buf = np.empty((n, n), dtype=np.int64)
    gap = 0.0
    for _, plan in _plan_blocks(graph, lifted, edges, pred_counts):
        for i, (a, b) in enumerate(plan.edges):
            for v, w in ((a, b), (b, a)):
                bound = plan.bound_costs(i, v, w, SUM_COST, base_plus1, buf)
                bound[w] = math.inf
                if float(np.min(bound)) >= base_sum[v]:
                    continue
                costs = plan.exact_costs(i, v, w, "sum")
                costs[w] = math.inf
                best = float(np.min(costs))
                if best < base_sum[v]:
                    gap = max(gap, float(base_sum[v]) - best)
    return gap


def scan_deletion_violations(
    graph: CSRGraph,
    lifted: np.ndarray,
    base_ecc: np.ndarray,
    edges,
    start: int,
    *,
    pred_counts: np.ndarray | None = None,
):
    """First deletion-criticality violation among ``edges`` (batched).

    Needs only the two endpoint rows per edge — no dense matrix at all —
    so this audit drops from O(m·n²) to O(m·n) plus the shared plan.
    """
    for lo, plan in _plan_blocks(graph, lifted, edges, pred_counts):
        for i, (a, b) in enumerate(plan.edges):
            for j, v in enumerate((a, b)):
                ecc_v = int(plan.endpoint_row(i, v).max())
                after = math.inf if ecc_v >= INT_INF else float(ecc_v)
                if not after > float(base_ecc[v]):
                    other = b if v == a else a
                    return (
                        2 * (start + lo + i) + j,
                        Violation(
                            "deletion", v, other, None,
                            float(base_ecc[v]), after,
                        ),
                    )
    return None
