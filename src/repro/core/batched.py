"""Cross-edge batched audit kernel — plan once, bound first, repair rarely.

The PR-1 audit loop (``mode="repair"``) already derives every removal matrix
from one cached base APSP, but it still pays per edge: affected-source
detection, row repairs, an n×n matrix copy, and the closure evaluation.
This module restructures a full audit (``mode="batched"`` on the
equilibrium checkers) around three batch ideas:

1. **Plan** — :func:`repro.graphs.removal_affected_matrix` computes the
   affected-source masks of *all* audited edges in one |E|×n comparison
   against the base matrix (plus one shared predecessor-count table), and
   classifies bridges with one half-BFS per all-sources edge.
2. **Endpoint rows in one BFS** — a mover's own post-removal row is the
   only repaired row most of the audit needs.  All 2·|E| endpoint rows are
   computed by a single level-synchronous BFS over the union of (edge, row)
   jobs (:func:`repro.graphs.batched_removal_rows_multi`), whose per-level
   cost is one sparse product — Python overhead O(diameter) per audit, not
   O(m · diameter).  Bridge endpoints are masked base rows (free).
3. **Bound-then-verify scan** — deleting an edge can only *increase*
   distances, so every other row of the removal matrix dominates its base
   row, and

   ``costs_lb[w'] = agg_u min(dv[u], 1 + base[w', u]) <= costs[w']``

   is a sound optimistic bound computed straight off the base matrix (no
   per-edge copy; it is *exact* for unaffected ``w'``).  A mover whose
   bound never beats its current cost provably has no improving swap —
   the common case on and near equilibria, where the census spends its
   time.  Only when a candidate survives does the kernel materialize the
   edge's exact removal matrix (via the same
   :func:`~repro.graphs.removal_matrix_repair` bucketing as ``mode="repair"``:
   bridge / few seeded rows / batched many-rows) and re-evaluate exactly.

Every scan outcome is bit-identical to the ``mode="repair"`` /
``mode="rebuild"`` paths — same costs, same argmin tie-breaking, same
directed-edge order — because the bound only ever *skips* movers whose
exact evaluation could not have produced a violation, and survivors are
re-evaluated with the repair-path code itself.  Scans compose with
``workers=`` (chunks of edges, each worker planning its own chunk against
the shared base matrix; see :mod:`repro.core.equilibrium`).

The same machinery also powers the **per-vertex best-response kernel**
(:func:`best_swap_scan` — ``best_swap(mode="batched")`` and the dynamics
hot path, DESIGN.md §8).  For one agent the kernel adds a cheaper *level-0*
bound shared by every incident drop: since deletion only increases
distances, ``agg_u min(base[v, u], 1 + base[w', u])`` lower-bounds the
post-swap cost for **any** dropped edge, so one aggregation pass can
certify an agent move-free without a single BFS — the common state of most
agents for most of a dynamics run.  Only when level-0 fails does the kernel
plan the agent's incident edges (one union BFS for the mover-side removal
rows), gate each drop with the per-edge :meth:`~BatchedRemovalPlan.
bound_costs`, and materialize exact removal matrices for the few drops
whose bound beats the incumbent.  :func:`certify_at_rest` is the audit-scan
analog used by the dynamics verification sweep: one cross-edge
bound-then-verify pass replacing n independent best responses.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import GraphError
from ..graphs import CSRGraph
from ..parallel import check_deadline
from ..graphs.bfs import UNREACHABLE, bfs_distances
from ..graphs.repair import (
    batched_removal_rows_multi,
    predecessor_counts,
    removal_affected_matrix,
    removal_affected_sources,
    removal_matrix_repair,
    repair_row_after_removal,
)
from .best_response import BestResponse
from .costmodel import SUM_COST, CostModel, resolve_cost_model
from .costs import INT_INF
from .equilibrium import Violation
from .moves import Swap
from .swap_eval import all_swap_costs_for_drop

__all__ = [
    "BatchedRemovalPlan",
    "best_swap_scan",
    "certify_at_rest",
    "scan_swap_violations",
    "scan_gap",
    "scan_deletion_violations",
]


class BatchedRemovalPlan:
    """Batched audit state for a set of edges of one graph.

    Parameters
    ----------
    graph, lifted:
        The audited graph and its lifted base APSP matrix.
    edges:
        The (undirected) edges to plan, as ``(a, b)`` pairs — an audit
        chunk, or every edge.
    pred_counts:
        Optional precomputed :func:`repro.graphs.predecessor_counts`
        (shared across chunks / workers).  When absent, only the rows the
        planned edges' endpoints need are computed — O(deg) rows for a
        per-vertex plan instead of the full table.
    sources:
        ``"both"`` (default) — classify bridges and repair both endpoint
        rows per edge, what the audit scans need; ``"mover"`` — the lean
        per-activation layout of the best-response kernel: only the row of
        each edge's *first* endpoint is repaired (the kernel's edges are
        ``(v, w)`` with a fixed mover ``v``), every edge — bridges
        included — rides the single union BFS (a bridge's mover row falls
        out naturally: the far side simply stays unreached), and the
        affected-source masks are derived lazily, only if an exact removal
        matrix is actually requested.
    """

    def __init__(
        self,
        graph: CSRGraph,
        lifted: np.ndarray,
        edges,
        *,
        pred_counts: np.ndarray | None = None,
        sources: str = "both",
    ):
        if sources not in ("both", "mover"):
            raise GraphError(f"unknown plan sources {sources!r}")
        self.graph = graph
        self.lifted = lifted
        self.edges = [(int(a), int(b)) for a, b in edges]
        self._sources = sources
        self._pred_counts = pred_counts
        n = graph.n

        #: edge index -> boolean mask of the component of ``b`` in G − e.
        self._bridge_side: dict[int, np.ndarray] = {}
        #: lazily materialized exact removal matrix of the last edge asked.
        self._full_cache: tuple[int, np.ndarray] | None = None
        #: (len(edges), n) affected-source masks; lazy for mover-only plans.
        self._affected: np.ndarray | None = None

        jobs: list[tuple[int, int, int]] = []  # (a, b, source) per job
        slots: list[int] = []  # edge index owning jobs[k]
        if sources == "mover":
            # Hot-path layout: only mover rows, no bridge probing (either
            # strategy yields the correct mover row for a bridge — the
            # severed side simply stays at the infinite sentinel) and no
            # affected-source planning until an exact matrix is needed.
            for i, (a, b) in enumerate(self.edges):
                jobs.append((a, b, a))
                slots.append(i)
        else:
            self._affected = self._affected_masks()
            counts = self._affected.sum(axis=1)
            for i, (a, b) in enumerate(self.edges):
                if counts[i] == n and n > 1:
                    # All sources affected: bridge candidate.  One half-BFS
                    # settles it (a bridge cuts a off from b's side).
                    half = bfs_distances(graph, b, exclude=(a, b))
                    if half[a] == UNREACHABLE:
                        self._bridge_side[i] = half != UNREACHABLE
                        continue
                # Non-bridge: both endpoint rows change (d(a, b) strictly
                # increases), and they are all the bound scan needs.
                jobs.append((a, b, a))
                jobs.append((a, b, b))
                slots.append(i)

        #: edge index -> (2, n) rows for sources (a, b) — (1, n) for a
        #: mover-only plan; audit-plan bridges absent.
        self._end_rows: dict[int, np.ndarray] = {}
        if jobs:
            per_edge = 2 if sources == "both" else 1
            arr = np.asarray(jobs, dtype=np.int64)
            rows = batched_removal_rows_multi(
                graph, arr[:, 0], arr[:, 1], arr[:, 2]
            )
            for k, i in enumerate(slots):
                self._end_rows[i] = rows[per_edge * k : per_edge * (k + 1)]

    def _affected_masks(self) -> np.ndarray:
        """Affected-source masks of the planned edges (computed on demand)."""
        if self._affected is None:
            pc = self._pred_counts
            if pc is None and self.edges:
                pc = predecessor_counts(
                    self.graph,
                    self.lifted,
                    vertices=np.unique(
                        np.asarray(self.edges, dtype=np.int64)
                    ),
                )
            self._affected = removal_affected_matrix(
                self.graph, self.lifted, self.edges, pred_counts=pc
            )
        return self._affected

    # ------------------------------------------------------------------
    def is_bridge(self, i: int) -> bool:
        """Whether edge ``i`` was classified a bridge (audit plans only —
        a mover-only plan never probes for bridges)."""
        return i in self._bridge_side

    def affected_sources(self, i: int) -> np.ndarray:
        """Sorted affected sources of edge ``i`` (all of them for a bridge)."""
        return np.nonzero(self._affected_masks()[i])[0]

    def endpoint_row(self, i: int, v: int) -> np.ndarray:
        """The exact distance row of endpoint ``v`` in ``G − edges[i]``."""
        a, b = self.edges[i]
        side = self._bridge_side.get(i)
        if side is not None:
            # A bridge leaves within-component distances untouched.
            row = np.array(self.lifted[v], copy=True)
            row[~side if side[v] else side] = INT_INF
            return row
        if v != a and self._sources == "mover":
            raise GraphError(
                f"mover-only plan holds no repaired row for endpoint {v} "
                f"of edge {self.edges[i]}"
            )
        return self._end_rows[i][0 if v == a else 1]

    def removal_matrix(self, i: int) -> np.ndarray:
        """Exact lifted APSP of ``G − edges[i]``, cached for the last edge.

        The rare-path fallback behind the bound: bridges are two block
        assignments of the infinite sentinel; everything else reuses the
        ``mode="repair"`` bucketing (seeded few-row repairs / one batched
        BFS) via :func:`~repro.graphs.removal_matrix_repair`.
        """
        if self._full_cache is not None and self._full_cache[0] == i:
            return self._full_cache[1]
        side = self._bridge_side.get(i)
        if side is not None:
            out = np.array(self.lifted, copy=True)
            out[np.ix_(side, ~side)] = INT_INF
            out[np.ix_(~side, side)] = INT_INF
        else:
            out = removal_matrix_repair(
                self.graph,
                self.lifted,
                self.edges[i],
                affected=self._affected_masks()[i],
            )
        self._full_cache = (i, out)
        return out

    # ------------------------------------------------------------------
    def bound_costs(
        self,
        i: int,
        v: int,
        w: int,
        objective,
        base_plus1: np.ndarray,
        buf: np.ndarray,
    ) -> np.ndarray:
        """Optimistic post-swap costs of mover ``v`` dropping ``v–w``.

        ``bound_costs[w'] <= exact costs[w']`` for every target ``w'``
        (removal only increases distances, so ``1 + base`` row-dominates
        the true removal matrix — and every cost model's row aggregate is
        monotone under row dominance, the contract in
        :mod:`repro.core.costmodel`), with equality whenever ``w'`` is
        unaffected by the removal.  ``base_plus1`` (= base + 1) and the
        ``(n, n)`` scratch ``buf`` come from the scan loop, so the bound
        allocates nothing matrix-sized per edge.
        """
        model = (
            objective
            if isinstance(objective, CostModel)
            else resolve_cost_model(objective, self.graph.n)
        )
        dv = self.endpoint_row(i, v)
        np.minimum(dv[None, :], base_plus1, out=buf)
        costs = model.candidate_costs(v, buf)
        costs[v] = math.inf
        return costs

    def exact_costs(
        self,
        i: int,
        v: int,
        w: int,
        objective,
        *,
        bound: np.ndarray | None = None,
    ) -> np.ndarray:
        """Exact post-swap costs — the ``mode="repair"`` evaluation itself.

        ``bound`` — the *unmasked* array a prior :meth:`bound_costs` call
        for the same ``(i, v, w)`` returned — switches on the patch path:
        the bound is already **exact** for every add-target whose distance
        row survives the removal (``min(dv, 1 + base)`` with
        ``removal == base``), so only the affected rows are repaired and
        re-aggregated, O(affected · n) instead of the full removal matrix.
        Bridges are recognized from ``dv`` itself (the severed side sits at
        the infinite sentinel): near-side re-adds stay disconnected
        (cost ``inf``) and far-side re-adds aggregate over the intact
        within-component base distances.  Values are bit-identical to the
        full-matrix evaluation — same floats, same downstream argmin
        tie-breaks.
        """
        model = (
            objective
            if isinstance(objective, CostModel)
            else resolve_cost_model(objective, self.graph.n)
        )
        if bound is None:
            return all_swap_costs_for_drop(
                self.graph, v, w, model, self.removal_matrix(i)
            )
        affected = (
            self._affected_masks()[i] if self._affected is not None else None
        )
        return exact_costs_from_bound(
            self.graph,
            self.lifted,
            v,
            self.edges[i],
            self.endpoint_row(i, v),
            model,
            bound,
            affected=affected,
        )


def exact_costs_from_bound(
    graph: CSRGraph,
    lifted: np.ndarray,
    v: int,
    edge: tuple[int, int],
    dv: np.ndarray,
    model: CostModel,
    bound: np.ndarray,
    *,
    affected: np.ndarray | None = None,
) -> np.ndarray:
    """Exact post-swap costs of ``v`` dropping ``edge``, patched from a bound.

    ``bound`` is the *unmasked* optimistic cost array of
    :meth:`BatchedRemovalPlan.bound_costs` (``agg min(dv, 1 + base)``) and
    ``dv`` the mover's exact row in ``G − edge``.  The bound is already
    exact for every add-target whose row the removal does not change
    (``removal == base`` there), so only the affected rows are repaired and
    re-aggregated — O(affected · n) instead of materializing the removal
    matrix.  A bridge is recognized from ``dv`` itself (the severed side
    sits at the infinite sentinel): near-side re-adds leave the graph
    disconnected (cost ``inf``), far-side re-adds reconnect it over the
    intact within-component base distances.  Bit-identical — same floats,
    same downstream argmin tie-breaks — to
    ``all_swap_costs_for_drop(graph, v, w, model, removal_matrix)``.
    """
    out = np.array(bound, copy=True)
    far = dv >= INT_INF
    if far.any():
        near = ~far
        out[near] = math.inf
        far_idx = np.nonzero(far)[0]
        cand = np.empty((far_idx.size, graph.n), dtype=np.int64)
        cand[:, far] = lifted[np.ix_(far_idx, far)] + 1
        cand[:, near] = dv[near][None, :]
        out[far_idx] = model.candidate_costs(v, cand)
    else:
        if affected is None:
            affected = removal_affected_sources(graph, lifted, edge)
        rows = np.nonzero(affected)[0]
        if rows.size:
            if rows.size <= 4:
                sub = np.stack(
                    [
                        repair_row_after_removal(graph, edge, lifted[r])
                        for r in rows
                    ]
                )
            else:
                a, b = edge
                sub = batched_removal_rows_multi(
                    graph,
                    np.full(rows.size, a, dtype=np.int64),
                    np.full(rows.size, b, dtype=np.int64),
                    rows,
                )
            cand = np.minimum(dv[None, :], sub + 1)
            out[rows] = model.candidate_costs(v, cand)
    out[v] = math.inf
    return out


# ---------------------------------------------------------------------------
# Scans (used serially over all edges, and per worker chunk)
# ---------------------------------------------------------------------------

#: Edges planned per lazily-built block.  Scans that can stop early (a
#: violation in the first block) then pay for one block of planning, not
#: the whole graph, while full equilibrium audits batch just as widely.
_SCAN_BLOCK = 128


def _plan_blocks(graph, lifted, edges, pred_counts):
    """Yield ``(block_offset, plan)`` for lazily planned edge blocks."""
    edges = [(int(a), int(b)) for a, b in edges]
    if len(edges) > _SCAN_BLOCK and pred_counts is None:
        # Amortize the predecessor-count table across blocks.
        pred_counts = predecessor_counts(graph, lifted)
    for lo in range(0, len(edges), _SCAN_BLOCK):
        yield lo, BatchedRemovalPlan(
            graph, lifted, edges[lo : lo + _SCAN_BLOCK],
            pred_counts=pred_counts,
        )


def scan_swap_violations(
    graph: CSRGraph,
    lifted: np.ndarray,
    base: np.ndarray,
    edges,
    start: int,
    objective,
    *,
    pred_counts: np.ndarray | None = None,
    deadline: "float | None" = None,
):
    """First swap violation among ``edges``, tagged by directed-edge index.

    The batched analog of the per-edge repair scan: same directed order
    (``(a, b)`` then ``(b, a)`` per canonical edge), same tie-breaking —
    movers are dismissed only when the sound bound proves no improving
    swap exists, and survivors are re-evaluated exactly.  ``objective`` is
    a cost model (or spec string); the same move-set mask is applied to
    the bound and the exact costs, so budget-constrained scans stay sound.
    """
    n = graph.n
    model = resolve_cost_model(objective, n)
    base_plus1 = lifted + 1
    buf = np.empty((n, n), dtype=np.int64)
    for lo, plan in _plan_blocks(graph, lifted, edges, pred_counts):
        for i, (a, b) in enumerate(plan.edges):
            check_deadline(deadline)
            for j, (v, w) in enumerate(((a, b), (b, a))):
                mask = model.target_mask(graph, v, w)
                bound = plan.bound_costs(i, v, w, model, base_plus1, buf)
                raw = bound.copy()  # unmasked, for the exact patch path
                if mask is not None:
                    bound[~mask] = math.inf
                bound[w] = math.inf  # identity move is not a violation
                if float(np.min(bound)) >= base[v]:
                    continue  # exact costs dominate the bound: no violation
                costs = plan.exact_costs(i, v, w, model, bound=raw)
                if mask is not None:
                    costs[~mask] = math.inf
                costs[w] = math.inf
                best = int(np.argmin(costs))
                if costs[best] < base[v]:
                    return (
                        2 * (start + lo + i) + j,
                        Violation(
                            model.violation_kind, v, w, best,
                            float(base[v]), float(costs[best]),
                        ),
                    )
    return None


def scan_gap(
    graph: CSRGraph,
    lifted: np.ndarray,
    base_sum: np.ndarray,
    edges,
    *,
    pred_counts: np.ndarray | None = None,
    deadline: "float | None" = None,
) -> float:
    """Largest sum-swap improvement within ``edges`` (batched kernel).

    Sound despite the bound: a mover is skipped only when its *optimistic*
    best is no better than its current cost, in which case it contributes
    nothing to the gap; survivors use exact costs.
    """
    n = graph.n
    base_plus1 = lifted + 1
    buf = np.empty((n, n), dtype=np.int64)
    gap = 0.0
    for _, plan in _plan_blocks(graph, lifted, edges, pred_counts):
        for i, (a, b) in enumerate(plan.edges):
            check_deadline(deadline)
            for v, w in ((a, b), (b, a)):
                bound = plan.bound_costs(i, v, w, SUM_COST, base_plus1, buf)
                raw = bound.copy()
                bound[w] = math.inf
                if float(np.min(bound)) >= base_sum[v]:
                    continue
                costs = plan.exact_costs(i, v, w, SUM_COST, bound=raw)
                costs[w] = math.inf
                best = float(np.min(costs))
                if best < base_sum[v]:
                    gap = max(gap, float(base_sum[v]) - best)
    return gap


def scan_deletion_violations(
    graph: CSRGraph,
    lifted: np.ndarray,
    base_ecc: np.ndarray,
    edges,
    start: int,
    *,
    pred_counts: np.ndarray | None = None,
    deadline: "float | None" = None,
):
    """First deletion-criticality violation among ``edges`` (batched).

    Needs only the two endpoint rows per edge — no dense matrix at all —
    so this audit drops from O(m·n²) to O(m·n) plus the shared plan.
    """
    for lo, plan in _plan_blocks(graph, lifted, edges, pred_counts):
        for i, (a, b) in enumerate(plan.edges):
            check_deadline(deadline)
            for j, v in enumerate((a, b)):
                ecc_v = int(plan.endpoint_row(i, v).max())
                after = math.inf if ecc_v >= INT_INF else float(ecc_v)
                if not after > float(base_ecc[v]):
                    other = b if v == a else a
                    return (
                        2 * (start + lo + i) + j,
                        Violation(
                            "deletion", v, other, None,
                            float(base_ecc[v]), after,
                        ),
                    )
    return None


# ---------------------------------------------------------------------------
# Per-vertex best-response kernel (best_swap mode="batched", DESIGN.md §8)
# ---------------------------------------------------------------------------

def best_swap_scan(
    graph: CSRGraph,
    v: int,
    objective,
    lifted: np.ndarray,
    *,
    prefer_deletions_on_tie: bool | None = None,
    base_plus1: np.ndarray | None = None,
    buf: np.ndarray | None = None,
    deadline: "float | None" = None,
) -> BestResponse:
    """Exact best response of ``v`` via the bound-then-verify kernel.

    Bit-identical — swap, costs, tie-breaks, ``prefer_deletions_on_tie``
    semantics — to the per-edge ``mode="repair"`` loop in
    :func:`repro.core.best_response.best_swap`, reached in three levels:

    * **level 0** — one shared optimistic bound for every incident drop:
      removal only increases distances, so ``agg_u min(base[v, u],
      1 + base[w', u]) <= cost after (drop anything, add v–w')``.  When its
      minimum cannot beat ``v``'s current cost, no improving swap exists and
      the agent is certified move-free with **zero** BFS work — one
      aggregation pass over the cached base matrix.  (Models that take
      cost-neutral deletions still need the per-edge rows, so level 0 only
      short-circuits when ``prefer_deletions_on_tie`` is off.)
    * **level 1** — plan all incident edges at once (one union BFS for the
      mover-side removal rows via :class:`BatchedRemovalPlan`) and gate each
      drop with the per-edge :meth:`~BatchedRemovalPlan.bound_costs`; a drop
      whose bound cannot beat ``min(incumbent, current cost)`` is skipped —
      sound for the returned response because the repair loop only *returns*
      a move that strictly beats the current cost, and only *updates* its
      incumbent on a strict improvement.
    * **level 2** — surviving drops materialize their exact removal matrix
      (the same :func:`~repro.graphs.removal_matrix_repair` bucketing as
      ``mode="repair"``) and re-evaluate exactly.

    ``lifted`` is the lifted base matrix of ``graph``; ``base_plus1``
    (= ``lifted + 1``) and the ``(n, n)`` int64 scratch ``buf`` are optional
    caller-owned scratch so a dynamics engine can amortize them across
    activations.
    """
    n = graph.n
    check_deadline(deadline)
    model = resolve_cost_model(objective, n)
    if prefer_deletions_on_tie is None:
        prefer_deletions_on_tie = model.prefer_deletions_on_tie
    before = model.row_cost(v, lifted[v])
    neighbor_set = set(int(x) for x in graph.neighbors(v))
    neighbors = sorted(neighbor_set)
    if not neighbors:
        return BestResponse(None, before, before, False)
    if base_plus1 is None:
        base_plus1 = lifted + 1
    if buf is None:
        buf = np.empty((n, n), dtype=np.int64)

    # Level 0: one bound pass shared by every incident drop.
    np.minimum(lifted[v][None, :], base_plus1, out=buf)
    costs0 = model.candidate_costs(v, buf)
    costs0[v] = math.inf
    if not prefer_deletions_on_tie and float(np.min(costs0)) >= before:
        return BestResponse(None, before, before, False)

    # Phase A — per-edge level-0 gate, no removal rows: the true per-edge
    # bound dominates costs0 entrywise (dv >= base row of v), so the
    # masked costs0 minimum — excluding the identity target — already
    # dismisses every edge that cannot beat the current cost.  Skipping
    # such an edge is outcome-preserving: its exact evaluation could only
    # have moved the internal incumbent between values >= before, never
    # the returned response.  Prefer-deletion models keep every edge (the
    # neutral-deletion check needs each mover row regardless).
    masks: list[np.ndarray | None] = []
    gates: list[float] = []
    surviving: list[int] = []
    for i, w in enumerate(neighbors):
        mask = model.target_mask(graph, v, w)
        c0 = costs0 if mask is None else np.where(mask, costs0, math.inf)
        c0_w = c0[w]
        c0[w] = math.inf
        gate = float(np.min(c0))
        c0[w] = c0_w
        masks.append(mask)
        gates.append(gate)
        if prefer_deletions_on_tie or gate < before:
            surviving.append(i)
    if not surviving:
        return BestResponse(None, before, before, False)

    # Phase B — one union BFS repairs the mover's row for every surviving
    # edge at once, then bound-then-verify per edge in scan order.
    plan = BatchedRemovalPlan(
        graph,
        lifted,
        [(v, neighbors[i]) for i in surviving],
        sources="mover",
    )
    best_cost = math.inf
    best_move: Swap | None = None
    best_is_deletion = False
    neutral_deletion: Swap | None = None
    for k, i in enumerate(surviving):
        check_deadline(deadline)
        w = neighbors[i]
        dv = plan.endpoint_row(k, v)
        if prefer_deletions_on_tie and neutral_deletion is None:
            # Pure-deletion cost of edge vw is v's aggregate in G - vw.
            del_cost = model.row_cost(v, dv)
            if del_cost != math.inf and del_cost <= before:
                rep = next(iter(neighbor_set - {w}), None)
                if rep is not None:
                    neutral_deletion = Swap(v, w, rep)
        thr = min(best_cost, before)
        if gates[i] >= thr:
            continue  # the incumbent tightened past this edge's gate
        mask = masks[i]
        # Level 1: the edge-specific bound off the mover's exact row.
        np.minimum(dv[None, :], base_plus1, out=buf)
        bound = model.candidate_costs(v, buf)
        bound[v] = math.inf
        raw = bound.copy()  # unmasked, for the exact patch path
        if mask is not None:
            bound[~mask] = math.inf  # move-set constraint (budget cap)
        bound[w] = math.inf  # identity
        if float(np.min(bound)) >= thr:
            continue  # cannot beat the incumbent nor win: skip exact work
        # Level 2: exact — affected rows repaired, the rest is the bound.
        costs = exact_costs_from_bound(
            graph, lifted, v, (v, w), dv, model, raw
        )
        if mask is not None:
            costs[~mask] = math.inf
        costs[w] = math.inf
        top = int(np.argmin(costs))
        cost = float(costs[top])
        if cost < best_cost:
            best_cost = cost
            best_move = Swap(v, w, top)
            best_is_deletion = top in neighbor_set and top != w
    if best_move is not None and best_cost < before:
        return BestResponse(best_move, before, best_cost, best_is_deletion)
    if neutral_deletion is not None:
        return BestResponse(neutral_deletion, before, before, True)
    return BestResponse(None, before, before, False)


def certify_at_rest(
    graph: CSRGraph,
    lifted: np.ndarray,
    objective,
    *,
    prefer_deletions_on_tie: bool | None = None,
    pred_counts: np.ndarray | None = None,
    deadline: "float | None" = None,
) -> bool:
    """Whether **no** vertex has a best-response move — one batched scan.

    ``True`` exactly when ``best_swap(graph, v, objective)`` returns
    ``swap=None`` for every vertex: no agent has a strictly improving swap
    among its legal moves and (for ``prefer_deletions_on_tie`` models) no
    agent of degree ≥ 2 holds a cost-neutral deletion.  This is the
    dynamics verification sweep collapsed into the cross-edge audit kernel:
    one plan, one union BFS, bounds dismissing the overwhelmingly-quiet
    edge population — instead of n independent best responses.
    """
    n = graph.n
    model = resolve_cost_model(objective, n)
    if prefer_deletions_on_tie is None:
        prefer_deletions_on_tie = model.prefer_deletions_on_tie
    edges = list(graph.iter_edges())
    if not edges:
        return True
    if pred_counts is None and len(edges) > _SCAN_BLOCK:
        pred_counts = predecessor_counts(graph, lifted)
    base = model.base_costs(lifted)
    if not prefer_deletions_on_tie:
        return (
            scan_swap_violations(
                graph, lifted, base, edges, 0, model,
                pred_counts=pred_counts, deadline=deadline,
            )
            is None
        )
    # Prefer-deletion models fold the cost-neutral-deletion endpoint check
    # (best_swap takes one whenever the drop leaves the mover's cost
    # unchanged and a replacement add-target exists, degree >= 2 — the
    # lexicographic tie-break that drives max dynamics toward
    # deletion-criticality) into the same block pass as the violation
    # scan, so each edge is planned exactly once.
    degrees = np.diff(graph.indptr)
    base_plus1 = lifted + 1
    buf = np.empty((n, n), dtype=np.int64)
    for _, plan in _plan_blocks(graph, lifted, edges, pred_counts):
        for i, (a, b) in enumerate(plan.edges):
            check_deadline(deadline)
            for v, w in ((a, b), (b, a)):
                if degrees[v] >= 2:
                    del_cost = model.row_cost(v, plan.endpoint_row(i, v))
                    if del_cost != math.inf and del_cost <= base[v]:
                        return False
                mask = model.target_mask(graph, v, w)
                bound = plan.bound_costs(i, v, w, model, base_plus1, buf)
                raw = bound.copy()
                if mask is not None:
                    bound[~mask] = math.inf
                bound[w] = math.inf
                if float(np.min(bound)) >= base[v]:
                    continue
                costs = plan.exact_costs(i, v, w, model, bound=raw)
                if mask is not None:
                    costs[~mask] = math.inf
                costs[w] = math.inf
                if float(np.min(costs)) < base[v]:
                    return False
    return True
