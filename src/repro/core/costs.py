"""Usage costs of the basic network creation game.

The paper's two objectives for a vertex ``v`` in a graph ``G``:

* **sum cost** — ``Σ_u d(v, u)`` (the *sum version*);
* **local diameter** — ``max_u d(v, u)``, i.e. eccentricity (the *max
  version*).

Disconnection is lifted to ``math.inf`` so that "a swap that disconnects the
graph is never improving" falls out of ordinary comparison.  Internally the
distance kernels use the large-int sentinel :data:`INT_INF` (comfortably
above any finite sum ``< n²`` yet safe to add and sum in int64 without
overflow), which the vectorized equilibrium checkers rely on.
"""

from __future__ import annotations

import math

import numpy as np

from ..graphs import CSRGraph, UNREACHABLE, bfs_aggregates, distance_matrix

__all__ = [
    "INT_INF",
    "ensure_lifted",
    "lift_distances",
    "sum_cost",
    "local_diameter",
    "sum_cost_vector",
    "local_diameter_vector",
]

#: Integer infinity used inside vectorized kernels.  2^40 leaves headroom for
#: "+1" shifts and for summing n < 2^20 of them in int64 without overflow.
INT_INF: int = 1 << 40


def lift_distances(dm: np.ndarray) -> np.ndarray:
    """Copy a distance matrix to int64 with ``UNREACHABLE -> INT_INF``.

    The returned matrix is safe for the min-plus candidate arithmetic used in
    :mod:`repro.core.equilibrium`.
    """
    out = dm.astype(np.int64)
    out[out == UNREACHABLE] = INT_INF
    return out


def ensure_lifted(dm: np.ndarray) -> np.ndarray:
    """:func:`lift_distances` without the copy when ``dm`` is already lifted.

    A lifted matrix is int64 with no :data:`~repro.graphs.UNREACHABLE`
    sentinel left in it, in which case :func:`lift_distances` would return a
    value-identical copy — the hot paths (``best_swap`` per dynamics
    activation, audits that amortize one base matrix across edges) call this
    instead so an already-lifted ``base_dm`` is passed through by reference.
    Callers must treat the result as read-only: it may alias the input.
    """
    dm = np.asarray(dm)
    if dm.dtype == np.int64 and not bool((dm == UNREACHABLE).any()):
        return dm
    return lift_distances(dm)


def sum_cost(graph: CSRGraph, v: int) -> float:
    """Sum of distances from ``v``; ``math.inf`` when not all vertices are reachable."""
    total, _, reached = bfs_aggregates(graph, v)
    if reached < graph.n:
        return math.inf
    return float(total)


def local_diameter(graph: CSRGraph, v: int) -> float:
    """Eccentricity of ``v`` (the paper's *local diameter*); ``inf`` if disconnected."""
    _, ecc, reached = bfs_aggregates(graph, v)
    if reached < graph.n:
        return math.inf
    return float(ecc)


def sum_cost_vector(graph: CSRGraph, dm: np.ndarray | None = None) -> np.ndarray:
    """Float vector of all vertices' sum costs (``inf`` rows when disconnected)."""
    if graph.n == 0:
        return np.empty(0, dtype=np.float64)
    if dm is None:
        dm = distance_matrix(graph)
    lifted = lift_distances(dm)
    sums = lifted.sum(axis=1)
    out = sums.astype(np.float64)
    out[sums >= INT_INF] = math.inf
    return out


def local_diameter_vector(
    graph: CSRGraph, dm: np.ndarray | None = None
) -> np.ndarray:
    """Float vector of all vertices' local diameters (``inf`` when disconnected)."""
    if graph.n == 0:
        return np.empty(0, dtype=np.float64)
    if dm is None:
        dm = distance_matrix(graph)
    lifted = lift_distances(dm)
    eccs = lifted.max(axis=1)
    out = eccs.astype(np.float64)
    out[eccs >= INT_INF] = math.inf
    return out
