"""Core of the basic network creation game.

Everything the paper defines about the game itself lives here: usage costs,
the swap move, equilibrium notions (sum / max / deletion-critical /
insertion-stable / k-insertion), best responses, and the dynamics engine
that discovers equilibria empirically.
"""

from .best_response import BestResponse, best_swap, first_improving_swap
from .census import CensusRecord, census_to_rows, run_census, seed_graph
from .costmodel import (
    BudgetCost,
    CostModel,
    InterestCost,
    MaxCost,
    SumCost,
    cost_model_spec,
    interest_sets,
    parse_cost_spec,
    resolve_cost_model,
)
from .costs import (
    INT_INF,
    ensure_lifted,
    lift_distances,
    local_diameter,
    local_diameter_vector,
    sum_cost,
    sum_cost_vector,
)
from .dynamics import DynamicsResult, SwapDynamics
from .engine import DistanceEngine
from .equilibrium import (
    Violation,
    find_deletion_criticality_violation,
    find_insertion_violation,
    find_max_swap_violation,
    find_sum_violation,
    find_swap_violation,
    is_deletion_critical,
    is_equilibrium,
    is_insertion_stable,
    is_k_insertion_stable,
    is_max_equilibrium,
    is_sum_equilibrium,
    k_insertion_witness,
    sum_equilibrium_gap,
)
from .kswap import is_k_swap_stable, k_swap_witness
from .moves import Swap, apply_swap, legal_add_targets, swapped_graph
from .swap_eval import (
    all_swap_costs_for_drop,
    removal_distance_matrix,
    swap_cost_after,
    swap_delta,
)
from .trajcensus import (
    TrajectoryRecord,
    graph_fingerprint,
    run_trajectory_census,
    trajectory_census_to_rows,
    trajectory_sweep,
)

__all__ = [
    "BestResponse",
    "BudgetCost",
    "CensusRecord",
    "CostModel",
    "DistanceEngine",
    "DynamicsResult",
    "INT_INF",
    "InterestCost",
    "MaxCost",
    "SumCost",
    "Swap",
    "SwapDynamics",
    "TrajectoryRecord",
    "Violation",
    "all_swap_costs_for_drop",
    "apply_swap",
    "best_swap",
    "census_to_rows",
    "cost_model_spec",
    "ensure_lifted",
    "find_deletion_criticality_violation",
    "find_insertion_violation",
    "find_max_swap_violation",
    "find_sum_violation",
    "find_swap_violation",
    "first_improving_swap",
    "graph_fingerprint",
    "interest_sets",
    "is_deletion_critical",
    "is_equilibrium",
    "is_insertion_stable",
    "is_k_insertion_stable",
    "is_k_swap_stable",
    "is_max_equilibrium",
    "is_sum_equilibrium",
    "k_insertion_witness",
    "k_swap_witness",
    "legal_add_targets",
    "lift_distances",
    "local_diameter",
    "local_diameter_vector",
    "parse_cost_spec",
    "removal_distance_matrix",
    "resolve_cost_model",
    "run_census",
    "run_trajectory_census",
    "seed_graph",
    "sum_cost",
    "sum_cost_vector",
    "sum_equilibrium_gap",
    "swap_cost_after",
    "swap_delta",
    "swapped_graph",
    "trajectory_census_to_rows",
    "trajectory_sweep",
]
