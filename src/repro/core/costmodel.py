"""Pluggable cost models — the objective layer of the swap game.

The paper fixes two objectives (sum of distances, local diameter) and the
rest of the library used to hard-wire them as ``objective="sum"|"max"``
strings.  This module turns the objective into a first-class object so that
game *variants* — the nearest follow-up models in the literature — plug into
the same best-response / equilibrium / dynamics / census machinery:

* :class:`SumCost` / :class:`MaxCost` — the paper's objectives, bit-identical
  to the historical string forms (costs, tie-breaking, record order);
* :class:`InterestCost` — communication interests à la Cord-Landwehr et al.
  (*Basic Network Creation Games with Communication Interests*): each agent
  aggregates distances only over its personal interest set;
* :class:`BudgetCost` — a bounded-budget variant à la Ehsani et al. (*On a
  Bounded Budget Network Creation Game*): the cost is the plain sum/max, but
  the *move set* is constrained — no swap may push a vertex above its cap of
  incident edges.

The protocol a model must satisfy
---------------------------------
A cost model answers three questions, always from **lifted** distance rows
(int64 with :data:`~repro.core.costs.INT_INF` for unreachable pairs):

1. ``row_cost(v, row)`` / ``base_costs(lifted)`` — agent ``v``'s cost given
   its distance row (vectorized over the base matrix);
2. ``candidate_costs(v, candidate)`` — agent ``v``'s cost for each row of a
   candidate matrix (row ``w'`` = ``v``'s distances after re-targeting the
   dropped edge to ``w'``);
3. ``target_mask(graph, v, w)`` — which add-targets are *legal* for ``v``
   when dropping ``v–w`` (``None`` = all; this is where budget constraints
   live).

**Monotonicity contract** (load-bearing for the batched audit kernel): if
``row1 <= row2`` entrywise then ``row_cost(v, row1) <= row_cost(v, row2)``,
and likewise per-row for ``candidate_costs``.  Edge removal only increases
distances, so the kernel's optimistic bound (computed from the base matrix)
row-dominates the exact candidate rows; monotone aggregation is exactly what
makes "bound never beats the current cost" a *proof* that no improving swap
exists.  All models here are monotone: sums with non-negative weights,
maxes over subsets, and the connectivity lift (any ``INT_INF`` entry
anywhere in the row lifts the cost to ``inf``) all preserve dominance.

Connectivity lift: like the base game, every variant charges ``inf`` for any
move that disconnects the graph — :class:`InterestCost` is therefore the
*connectivity-preserving* restriction of the interest game (agents may not
cut even vertices they are indifferent to).  This keeps every invariant the
engine relies on (dynamics stay on connected graphs, audits well-defined).

Spec strings
------------
Models serialize to compact spec strings — what census JSONL records and
fleet flags carry — and round-trip through :func:`resolve_cost_model`:

* ``"sum"``, ``"max"`` — the paper's objectives;
* ``"interest-sum:k=4,seed=9"`` / ``"interest-max:k=4,seed=9"`` — every
  agent interested in a deterministic random ``k``-subset of the others
  (the subsets derive from ``seed`` and the vertex id, so a spec plus ``n``
  fully determines the game);
* ``"budget-sum:cap=3"`` / ``"budget-max:cap=3"`` — per-agent cap on
  incident edges.

Interest specs need ``n`` to materialize; pass it to
:func:`resolve_cost_model` (audits and dynamics do this for you).
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigurationError
from ..graphs import CSRGraph, bfs_aggregates, bfs_distances
from ..rng import derive_seed, make_rng
from .costs import INT_INF, lift_distances

__all__ = [
    "BudgetCost",
    "CostModel",
    "InterestCost",
    "MaxCost",
    "SumCost",
    "cost_model_spec",
    "interest_sets",
    "parse_cost_spec",
    "resolve_cost_model",
]


class CostModel:
    """Base class / protocol for swap-game objectives.

    Subclasses set the class attributes and implement the row-aggregation
    methods.  ``kind`` is the base aggregate (``"sum"`` or ``"max"``) —
    variants refine *which* entries are aggregated or *which* moves are
    legal, never the comparison direction (lower cost is always better).
    """

    #: base aggregate, ``"sum"`` or ``"max"``
    kind: str = "sum"
    #: canonical spec string (round-trips through :func:`resolve_cost_model`)
    spec: str = "sum"
    #: the ``Violation.kind`` tag audits emit for this model
    violation_kind: str = "sum-swap"
    #: whether the model's equilibrium notion includes deletion-criticality
    #: (true only for the paper's max version)
    requires_deletion_criticality: bool = False
    #: default for ``best_swap(prefer_deletions_on_tie=...)`` — the paper's
    #: max agents take cost-neutral deletions (lexicographic tie-break)
    prefer_deletions_on_tie: bool = False

    # ------------------------------------------------------------------
    def resolve(self, n: int) -> "CostModel":
        """This model, validated for an ``n``-vertex game."""
        return self

    # ------------------------------------------------------------------
    def base_costs(self, lifted: np.ndarray) -> np.ndarray:
        """Raw int64 per-vertex costs from the lifted base matrix.

        ``>= INT_INF`` encodes infinity; callers compare float candidate
        costs against these raw values (exactly as the historical code
        compared against ``lifted.sum(axis=1)`` / ``.max(axis=1)``).
        """
        raise NotImplementedError

    def row_cost(self, v: int, row: np.ndarray) -> float:
        """Agent ``v``'s cost from one lifted row (``inf`` when lifted)."""
        raise NotImplementedError

    def candidate_costs(self, v: int, candidate: np.ndarray) -> np.ndarray:
        """Float costs of agent ``v`` for each row of ``candidate``.

        Must be monotone per row (see the module docstring's contract) and
        lift to ``math.inf`` exactly when :meth:`row_cost` would.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    def social_cost(self, lifted: np.ndarray) -> float:
        """The game's social cost: every agent's cost summed.

        ``inf`` as soon as any agent's cost is lifted (a disconnected
        graph costs everyone ∞ anyway under the connectivity lift).  For
        :class:`SumCost` this equals the total pairwise distance — the
        quantity the trajectory traces historically recorded; for every
        other model it is the model's own Σ-of-agent-costs, which is what
        dynamics instrumentation must report (see ISSUE 4).
        """
        if lifted.size == 0:
            return 0.0
        costs = self.base_costs(lifted)
        if bool((costs >= INT_INF).any()):
            return math.inf
        return float(costs.sum(dtype=np.int64))

    # ------------------------------------------------------------------
    def target_mask(
        self, graph: CSRGraph, v: int, w: int
    ) -> "np.ndarray | None":
        """Boolean mask of legal add-targets for ``v`` dropping ``v–w``.

        ``None`` means every target is legal (the base game).  Masks only
        *restrict* the move set; they never alter costs, so equilibrium
        under a mask is "no improving move among the legal ones".
        """
        return None

    # ------------------------------------------------------------------
    def bfs_cost(
        self,
        graph: CSRGraph,
        v: int,
        *,
        exclude: "tuple[int, int] | None" = None,
        extra=(),
    ) -> float:
        """Agent ``v``'s cost in ``graph`` (optionally patched), via BFS."""
        row = lift_distances(
            bfs_distances(graph, v, exclude=exclude, extra=extra)
        )
        return self.row_cost(v, row)

    def __eq__(self, other) -> bool:
        return isinstance(other, CostModel) and self.spec == other.spec

    def __hash__(self) -> int:
        return hash(self.spec)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.spec!r})"


class _PlainRows(CostModel):
    """Shared full-row sum/max aggregation (Sum, Max, Budget).

    The arithmetic here is byte-for-byte the historical ``objective=`` code:
    int64 aggregate, float cast, ``raw >= INT_INF -> inf``.
    """

    def base_costs(self, lifted: np.ndarray) -> np.ndarray:
        return lifted.sum(axis=1) if self.kind == "sum" else lifted.max(axis=1)

    def row_cost(self, v: int, row: np.ndarray) -> float:
        agg = row.sum() if self.kind == "sum" else row.max()
        return math.inf if agg >= INT_INF else float(agg)

    def candidate_costs(self, v: int, candidate: np.ndarray) -> np.ndarray:
        raw = (
            candidate.sum(axis=1)
            if self.kind == "sum"
            else candidate.max(axis=1)
        )
        costs = raw.astype(np.float64)
        costs[raw >= INT_INF] = math.inf
        return costs

    def bfs_cost(self, graph, v, *, exclude=None, extra=()):
        # bfs_aggregates skips materializing the row — the seed fast path.
        total, ecc, reached = bfs_aggregates(
            graph, v, exclude=exclude, extra=extra
        )
        if reached < graph.n:
            return math.inf
        return float(total if self.kind == "sum" else ecc)


class SumCost(_PlainRows):
    """The paper's sum version: ``cost(v) = Σ_u d(v, u)``."""

    kind = "sum"
    spec = "sum"
    violation_kind = "sum-swap"


class MaxCost(_PlainRows):
    """The paper's max version: ``cost(v) = max_u d(v, u)`` (local diameter)."""

    kind = "max"
    spec = "max"
    violation_kind = "max-swap"
    requires_deletion_criticality = True
    prefer_deletions_on_tie = True


class InterestCost(CostModel):
    """Per-agent interest sets (Cord-Landwehr-style communication interests).

    ``weights`` is an (n, n) boolean matrix; row ``v`` marks the vertices
    agent ``v`` cares about.  Cost is the sum/max of distances restricted to
    that set, with the connectivity lift (any unreachable vertex — interested
    or not — costs ``inf``; see the module docstring).
    """

    requires_deletion_criticality = False
    prefer_deletions_on_tie = False

    def __init__(self, kind: str, weights: np.ndarray, *, spec: str):
        if kind not in ("sum", "max"):
            raise ConfigurationError(f"unknown interest kind {kind!r}")
        weights = np.asarray(weights, dtype=bool)
        if weights.ndim != 2 or weights.shape[0] != weights.shape[1]:
            raise ConfigurationError(
                f"interest weights must be square, got shape {weights.shape}"
            )
        self.kind = kind
        self.spec = spec
        self.violation_kind = f"interest-{kind}-swap"
        self.weights = weights

    def resolve(self, n: int) -> "InterestCost":
        if self.weights.shape[0] != n:
            raise ConfigurationError(
                f"{self.spec!r} was built for n={self.weights.shape[0]}, "
                f"cannot be used on an n={n} graph"
            )
        return self

    def base_costs(self, lifted: np.ndarray) -> np.ndarray:
        masked = np.where(self.weights, lifted, 0)
        raw = (
            masked.sum(axis=1)
            if self.kind == "sum"
            else masked.max(axis=1, initial=0)
        )
        raw = np.minimum(raw, INT_INF)
        raw[(lifted >= INT_INF).any(axis=1)] = INT_INF  # connectivity lift
        return raw

    def row_cost(self, v: int, row: np.ndarray) -> float:
        if (row >= INT_INF).any():
            return math.inf
        sel = row[self.weights[v]]
        if sel.size == 0:
            return 0.0
        return float(sel.sum() if self.kind == "sum" else sel.max())

    def candidate_costs(self, v: int, candidate: np.ndarray) -> np.ndarray:
        sel = candidate[:, self.weights[v]]
        if sel.shape[1] == 0:
            raw = np.zeros(candidate.shape[0], dtype=np.int64)
        else:
            raw = sel.sum(axis=1) if self.kind == "sum" else sel.max(axis=1)
        raw = np.minimum(raw, INT_INF)
        costs = raw.astype(np.float64)
        costs[raw >= INT_INF] = math.inf
        costs[(candidate >= INT_INF).any(axis=1)] = math.inf
        return costs


class BudgetCost(_PlainRows):
    """Plain sum/max cost under a per-agent cap on incident edges.

    The Ehsani-style budget enters through the *move set*: a swap
    ``v: drop w, add w'`` raises only ``deg(w')``, so it is legal iff the
    target is below its cap (deletions and re-adds never raise any degree
    and stay legal).  Costs are the plain full-row aggregates, so a budget
    equilibrium is "no improving move among the budget-legal ones".
    """

    requires_deletion_criticality = False
    prefer_deletions_on_tie = False

    def __init__(self, kind: str, cap: int):
        if kind not in ("sum", "max"):
            raise ConfigurationError(f"unknown budget kind {kind!r}")
        cap = int(cap)
        if cap < 1:
            raise ConfigurationError(f"budget cap must be >= 1, got {cap}")
        self.kind = kind
        self.cap = cap
        self.spec = f"budget-{kind}:cap={cap}"
        self.violation_kind = f"budget-{kind}-swap"

    def target_mask(self, graph: CSRGraph, v: int, w: int) -> np.ndarray:
        allowed = np.diff(graph.indptr) < self.cap
        # Existing neighbours of v are deletion targets (and w the identity
        # re-add): no degree rises, so the budget never blocks them.
        allowed[graph.neighbors(v)] = True
        allowed[v] = True  # illegal for other reasons; evaluation infs it
        return allowed


def interest_sets(n: int, k: int, seed: int) -> np.ndarray:
    """Deterministic per-agent interest subsets as an (n, n) boolean matrix.

    Agent ``v`` is interested in a uniform random ``min(k, n-1)``-subset of
    the other vertices, drawn from ``derive_seed(seed, v)`` — so the matrix
    is a pure function of ``(n, k, seed)``, reproducible across processes
    and census workers.
    """
    if k < 1:
        raise ConfigurationError(f"interest size k must be >= 1, got {k}")
    weights = np.zeros((n, n), dtype=bool)
    for v in range(n):
        others = np.concatenate([np.arange(v), np.arange(v + 1, n)])
        if others.size == 0:
            continue
        rng = make_rng(derive_seed(seed, v))
        pick = rng.choice(others, size=min(k, others.size), replace=False)
        weights[v, pick] = True
    return weights


# ---------------------------------------------------------------------------
# Spec parsing / resolution
# ---------------------------------------------------------------------------

#: model name -> (required params, optional params with defaults)
_SPEC_PARAMS: dict[str, tuple[frozenset, dict]] = {
    "sum": (frozenset(), {}),
    "max": (frozenset(), {}),
    "interest-sum": (frozenset({"k"}), {"seed": 0}),
    "interest-max": (frozenset({"k"}), {"seed": 0}),
    "budget-sum": (frozenset({"cap"}), {}),
    "budget-max": (frozenset({"cap"}), {}),
}

SUM_COST = SumCost()
MAX_COST = MaxCost()


def parse_cost_spec(spec: str) -> tuple[str, dict]:
    """Validate a cost-model spec string -> ``(name, params)``.

    Raises :class:`~repro.errors.ConfigurationError` (a ``ValueError``) on
    unknown names, malformed or unknown parameters, and missing required
    parameters.  Does *not* need ``n`` — use it for early CLI/census
    validation before graphs exist.
    """
    if not isinstance(spec, str):
        raise ConfigurationError(
            f"objective must be a spec string or CostModel, got {spec!r}"
        )
    name, _, rest = spec.partition(":")
    name = name.strip()
    if name not in _SPEC_PARAMS:
        raise ConfigurationError(
            f"unknown objective {spec!r}; known: {', '.join(_SPEC_PARAMS)}"
        )
    required, defaults = _SPEC_PARAMS[name]
    params = dict(defaults)
    if rest:
        for part in rest.split(","):
            key, eq, val = part.partition("=")
            key = key.strip()
            if not eq or key not in required | set(defaults):
                raise ConfigurationError(
                    f"bad parameter {part!r} in objective spec {spec!r}"
                )
            try:
                params[key] = int(val)
            except ValueError:
                raise ConfigurationError(
                    f"parameter {key}={val!r} in {spec!r} is not an integer"
                ) from None
    missing = required - set(params)
    if missing:
        raise ConfigurationError(
            f"objective spec {spec!r} is missing {', '.join(sorted(missing))}"
        )
    for key in ("k", "cap"):
        if key in params and params[key] < 1:
            raise ConfigurationError(
                f"parameter {key}={params[key]} in {spec!r} must be >= 1"
            )
    return name, params


def cost_model_spec(objective: "str | CostModel") -> str:
    """Canonical spec string of an objective (validating it on the way)."""
    if isinstance(objective, CostModel):
        return objective.spec
    name, params = parse_cost_spec(objective)
    if not params:
        return name
    return name + ":" + ",".join(f"{k}={v}" for k, v in sorted(params.items()))


def resolve_cost_model(
    objective: "str | CostModel", n: "int | None" = None
) -> CostModel:
    """A :class:`CostModel` from a spec string / model instance.

    ``"sum"`` and ``"max"`` resolve to shared singletons (the hot path);
    interest specs need ``n`` to materialize their weight matrices, and a
    passed-through model instance is re-validated against ``n`` when given.
    """
    if isinstance(objective, CostModel):
        return objective if n is None else objective.resolve(n)
    if objective == "sum":
        return SUM_COST
    if objective == "max":
        return MAX_COST
    name, params = parse_cost_spec(objective)
    if name in ("sum", "max"):
        return SUM_COST if name == "sum" else MAX_COST
    kind = name.rsplit("-", 1)[1]
    if name.startswith("budget-"):
        return BudgetCost(kind, params["cap"])
    # interest-*: needs n to build the weight matrix.
    if n is None:
        raise ConfigurationError(
            f"objective {objective!r} needs the graph size n to resolve; "
            "pass resolve_cost_model(spec, n)"
        )
    k, seed = params["k"], params["seed"]
    return InterestCost(
        kind,
        interest_sets(n, k, seed),
        spec=f"interest-{kind}:k={k},seed={seed}",
    )
