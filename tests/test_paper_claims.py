"""The claims registry: every registered check must pass.

This is the repository's "verify the whole paper" test — one assertion per
numbered claim, including the Figure 3 refutation (whose check passes by
*finding* the improving swap).
"""

import pytest

from repro.paper import CLAIMS, verify_all, verify_claim


def test_registry_covers_the_paper():
    ids = {c.claim_id for c in CLAIMS}
    # One entry per numbered result plus the model-level claims.
    expected = {
        "theorem-1",
        "lemma-2",
        "lemma-3",
        "theorem-4",
        "theorem-5-figure-3",
        "theorem-5-statement",
        "lemma-6",
        "lemma-7",
        "lemma-8",
        "lemma-10",
        "corollary-11",
        "theorem-9",
        "theorem-12",
        "theorem-12-tradeoff",
        "theorem-13",
        "conjecture-14-quantifier",
        "theorem-15",
        "transfer-principle",
        "poly-time-checking",
    }
    assert ids == expected


def test_statuses_are_known():
    assert all(
        c.expected_status in ("confirmed", "refuted-witness", "evidence")
        for c in CLAIMS
    )


def test_exactly_one_refuted_witness():
    refuted = [c for c in CLAIMS if c.expected_status == "refuted-witness"]
    assert [c.claim_id for c in refuted] == ["theorem-5-figure-3"]


@pytest.mark.parametrize("claim", CLAIMS, ids=lambda c: c.claim_id)
def test_claim_check_passes(claim):
    assert verify_claim(claim).passed, claim.statement


def test_verify_all_order_matches_registry():
    results = verify_all()
    assert [r.claim_id for r in results] == [c.claim_id for c in CLAIMS]
    assert all(r.passed for r in results)
