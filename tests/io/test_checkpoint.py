"""CheckpointStore contract: atomic durable publish, verified reads,
quarantine-not-resume on corruption, and the injected disk-fault sites
(DESIGN.md §13)."""

import json
import os

import pytest

from repro.errors import StoreIntegrityError
from repro.io.checkpoint import CheckpointStore, peek_checkpoint
from repro.parallel import faults
from repro.parallel.faults import InjectedFault


@pytest.fixture(autouse=True)
def _clean_channels(monkeypatch):
    """Every test starts with no armed faults and leaves none behind."""
    for key in (faults.ENV_SPEC, faults.ENV_DIR, faults.ENV_SAFE_PID):
        monkeypatch.delenv(key, raising=False)
    faults.clear_hooks()
    faults._LOCAL_TOKENS.clear()
    yield
    faults.clear_hooks()
    faults._LOCAL_TOKENS.clear()


CONFIG = {"v": 1, "objective": "sum", "n": 8, "initial": "abc123"}
OTHER = {"v": 1, "objective": "max", "n": 8, "initial": "abc123"}


def _store(tmp_path) -> CheckpointStore:
    return CheckpointStore(tmp_path / "slot-00000.ckpt")


class TestRoundTrip:
    def test_save_load(self, tmp_path):
        store = _store(tmp_path)
        payload = {"steps": 17, "profile": [1, 2, 3], "rng": "deadbeef"}
        store.save(payload, CONFIG, meta={"steps": 17})
        assert store.load(CONFIG) == payload

    def test_missing_slot_loads_none(self, tmp_path):
        store = _store(tmp_path)
        assert store.load(CONFIG) is None
        assert not store.exists()

    def test_save_replaces_previous(self, tmp_path):
        store = _store(tmp_path)
        store.save({"steps": 1}, CONFIG)
        store.save({"steps": 2}, CONFIG)
        assert store.load(CONFIG) == {"steps": 2}

    def test_clear_removes_slot_and_is_idempotent(self, tmp_path):
        store = _store(tmp_path)
        store.save({"steps": 1}, CONFIG)
        store.clear()
        assert not store.exists()
        store.clear()  # no slot -> no error
        assert store.load(CONFIG) is None


class TestPeek:
    def test_peek_returns_meta_without_payload_semantics(self, tmp_path):
        store = _store(tmp_path)
        store.save({"big": list(range(50))}, CONFIG,
                   meta={"steps": 9, "activations": 4})
        assert store.peek() == {"steps": 9, "activations": 4}
        assert peek_checkpoint(store.path) == {"steps": 9, "activations": 4}

    def test_peek_checkpoint_missing_is_none(self, tmp_path):
        assert peek_checkpoint(tmp_path / "nope.ckpt") is None

    def test_peek_checkpoint_garbage_is_none_and_side_effect_free(
        self, tmp_path
    ):
        path = tmp_path / "torn.ckpt"
        path.write_bytes(b"\x00\xffnot json")
        assert peek_checkpoint(path) is None
        # Unlike load(), the status path must not quarantine or touch
        # files it does not own.
        assert path.exists()
        assert list(tmp_path.iterdir()) == [path]


class TestCorruption:
    def test_torn_bytes_quarantined_and_restart(self, tmp_path):
        store = _store(tmp_path)
        store.save({"steps": 5}, CONFIG)
        blob = store.path.read_bytes()
        store.path.write_bytes(blob[: len(blob) // 2])
        assert store.load(CONFIG) is None
        assert not store.exists()
        quarantined = list(tmp_path.glob("*.quarantined.*"))
        assert len(quarantined) == 1

    def test_checksum_mismatch_quarantined(self, tmp_path):
        store = _store(tmp_path)
        store.save({"steps": 5}, CONFIG)
        entry = json.loads(store.path.read_text())
        entry["payload"] = {"steps": 99}  # bit rot with intact JSON
        store.path.write_text(json.dumps(entry))
        assert store.load(CONFIG) is None
        assert list(tmp_path.glob("*.quarantined.*"))

    def test_unknown_version_quarantined(self, tmp_path):
        store = _store(tmp_path)
        store.path.write_text(json.dumps({"v": 999, "payload": {}}))
        assert store.load(CONFIG) is None
        assert list(tmp_path.glob("*.quarantined.*"))

    def test_config_mismatch_is_loud_not_quarantined(self, tmp_path):
        # A *valid* checkpoint for a different run is somebody else's
        # progress: refusing loudly beats silently splicing two games.
        store = _store(tmp_path)
        store.save({"steps": 5}, CONFIG)
        with pytest.raises(StoreIntegrityError, match="different config"):
            store.load(OTHER)
        assert store.exists()  # never destroyed
        assert store.load(CONFIG) == {"steps": 5}  # still good for its owner


class TestSweep:
    def test_stale_tmp_sidecars_swept_on_construction(self, tmp_path):
        path = tmp_path / "slot-00000.ckpt"
        CheckpointStore(path).save({"steps": 3}, CONFIG)
        stale = path.with_name(f"{path.name}.4242.0.tmp")
        stale.write_bytes(b"half-written")
        reopened = CheckpointStore(path)
        assert reopened.swept_tmp == 1
        assert not stale.exists()
        assert reopened.load(CONFIG) == {"steps": 3}

    def test_sweep_ignores_other_slots(self, tmp_path):
        path = tmp_path / "slot-00000.ckpt"
        other = tmp_path / "slot-00001.ckpt.4242.0.tmp"
        other.write_bytes(b"someone else's sidecar")
        assert CheckpointStore(path).swept_tmp == 0
        assert other.exists()


class TestInjectedFaults:
    def test_enospc_keeps_previous_checkpoint_live(self, tmp_path, monkeypatch):
        store = _store(tmp_path)
        store.save({"steps": 5}, CONFIG)
        monkeypatch.setenv(faults.ENV_SPEC, "enospc:path=slot-00000")
        with pytest.raises(StoreIntegrityError, match="ENOSPC"):
            store.save({"steps": 6}, CONFIG)
        # The fault fires once; after it, the earlier snapshot is intact
        # and the next save succeeds.
        assert store.load(CONFIG) == {"steps": 5}
        store.save({"steps": 7}, CONFIG)
        assert store.load(CONFIG) == {"steps": 7}

    def test_torn_write_detected_by_checksum(self, tmp_path, monkeypatch):
        store = _store(tmp_path)
        monkeypatch.setenv(faults.ENV_SPEC, "torn-write:path=slot-00000")
        with pytest.raises(InjectedFault):
            store.save({"steps": 6}, CONFIG)
        # Half an entry landed on the final path: load must quarantine it
        # and report "no checkpoint", never resume from garbage.
        assert store.load(CONFIG) is None
        assert list(tmp_path.glob("*.quarantined.*"))

    def test_torn_rename_leaves_old_file_authoritative(
        self, tmp_path, monkeypatch
    ):
        store = _store(tmp_path)
        store.save({"steps": 5}, CONFIG)
        monkeypatch.setenv(faults.ENV_SPEC, "torn-rename:path=slot-00000")
        with pytest.raises(InjectedFault):
            store.save({"steps": 6}, CONFIG)
        # The rename was lost: the previous checkpoint is still the live
        # one and the abandoned sidecar is swept on the next open.
        assert store.load(CONFIG) == {"steps": 5}
        assert CheckpointStore(store.path).swept_tmp == 1

    def test_real_oserror_on_sidecar_is_typed(self, tmp_path, monkeypatch):
        store = _store(tmp_path)

        def full_disk(*args, **kwargs):
            raise OSError(28, os.strerror(28))

        monkeypatch.setattr("builtins.open", full_disk)
        with pytest.raises(StoreIntegrityError, match="write failed"):
            store.save({"steps": 6}, CONFIG)
