"""Integrity and concurrency contract of the content-addressed result cache.

ISSUE 7 satellite: torn writes are quarantined and recomputed, a crash
mid-write leaves neither ``.tmp`` litter nor a partial entry, concurrent
writers of one key converge to one valid entry, and a corrupted-checksum
entry is never returned to a caller.
"""

import json
import os
import threading

import pytest

from repro.errors import ConfigurationError
from repro.io import ResultCache, cache_key, canonical_json
from repro.io.result_cache import _payload_checksum
from repro.parallel import faults
from repro.parallel.faults import InjectedFault


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "rc")


KEY = cache_key("ab" * 8, "sum", "is_equilibrium")
PAYLOAD = {"is_equilibrium": True}


class TestKeying:
    def test_key_is_hex_and_stable(self):
        assert KEY == cache_key("ab" * 8, "sum", "is_equilibrium")
        assert len(KEY) == 32 and set(KEY) <= set("0123456789abcdef")

    def test_every_component_matters(self):
        base = ("ab" * 8, "sum", "is_equilibrium")
        assert cache_key("cd" * 8, *base[1:]) != KEY
        assert cache_key(base[0], "max", base[2]) != KEY
        assert cache_key(base[0], base[1], "best_swap") != KEY
        assert cache_key(*base, {"vertex": 1}) != KEY
        assert cache_key(*base, {"vertex": 1}) != cache_key(
            *base, {"vertex": 2}
        )

    def test_malformed_key_rejected(self, cache):
        with pytest.raises(ConfigurationError):
            cache.entry_path("../escape")
        with pytest.raises(ConfigurationError):
            cache.entry_path("")


class TestRoundTrip:
    def test_miss_then_hit(self, cache):
        assert cache.get(KEY) is None
        cache.put(KEY, PAYLOAD, {"query": "is_equilibrium"})
        assert cache.get(KEY) == PAYLOAD
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["writes"] == 1 and stats["hit_rate"] == 0.5

    def test_overwrite_wins(self, cache):
        cache.put(KEY, {"is_equilibrium": True})
        cache.put(KEY, {"is_equilibrium": False})
        assert cache.get(KEY) == {"is_equilibrium": False}

    def test_non_finite_payload_rejected_before_disk(self, cache):
        with pytest.raises(ValueError):
            cache.put(KEY, {"after": float("inf")})
        # The encoding error surfaced before any disk state changed.
        assert not cache.entry_path(KEY).exists()
        assert list(cache.root.glob("*/*.tmp")) == []


class TestCorruption:
    def _entry(self, cache):
        cache.put(KEY, PAYLOAD)
        return cache.entry_path(KEY)

    def test_corrupted_checksum_never_served(self, cache):
        path = self._entry(cache)
        entry = json.loads(path.read_text())
        entry["payload"] = {"is_equilibrium": False}  # checksum now stale
        path.write_text(canonical_json(entry))
        assert cache.get(KEY) is None
        assert cache.stats()["quarantined"] == 1

    def test_truncated_entry_quarantined(self, cache):
        path = self._entry(cache)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        assert cache.get(KEY) is None
        assert not path.exists()
        assert len(list(cache.quarantine_dir.iterdir())) == 1

    def test_wrong_key_entry_quarantined(self, cache):
        # A valid entry copied under the wrong address must not answer it.
        other = cache_key("cd" * 8, "sum", "is_equilibrium")
        path = self._entry(cache)
        dest = cache.entry_path(other)
        dest.parent.mkdir(exist_ok=True)
        dest.write_bytes(path.read_bytes())
        assert cache.get(other) is None
        assert cache.get(KEY) == PAYLOAD

    def test_quarantined_entry_recomputable(self, cache):
        path = self._entry(cache)
        path.write_bytes(b"\x00garbage")
        assert cache.get(KEY) is None  # quarantined
        cache.put(KEY, PAYLOAD)  # the caller recomputes and re-publishes
        assert cache.get(KEY) == PAYLOAD


class TestTornWrite:
    def test_injected_tear_is_quarantined_then_recomputed(
        self, cache, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(
            faults.ENV_SPEC, f"torn-write:path={cache.root.name}"
        )
        with pytest.raises(InjectedFault):
            cache.put(KEY, PAYLOAD)
        path = cache.entry_path(KEY)
        assert path.exists()  # the torn bytes landed on the final path
        assert cache.get(KEY) is None  # detected, quarantined, miss
        assert cache.stats()["quarantined"] == 1
        cache.put(KEY, PAYLOAD)  # budget spent: the recompute write is clean
        assert cache.get(KEY) == PAYLOAD

    def test_path_filter_protects_other_files(self, cache, monkeypatch):
        monkeypatch.setenv(faults.ENV_SPEC, "torn-write:path=not-this-cache")
        cache.put(KEY, PAYLOAD)
        assert cache.get(KEY) == PAYLOAD


class TestCrashMidWrite:
    def test_crash_before_rename_leaves_no_partial_entry(self, cache):
        # Simulate the crash window: the tmp sidecar is fully written but
        # the process dies before os.replace publishes it.
        final = cache.entry_path(KEY)
        final.parent.mkdir(exist_ok=True)
        tmp = cache._tmp_path(final)
        tmp.write_bytes(b'{"half": ')
        assert cache.get(KEY) is None  # no partial entry visible
        fresh = ResultCache(cache.root)  # next startup sweeps the litter
        assert fresh.swept_tmp == 1
        assert list(fresh.root.glob("*/*.tmp")) == []

    def test_clean_writes_leave_no_tmp_litter(self, cache):
        for i in range(5):
            cache.put(KEY, {"is_equilibrium": bool(i % 2)})
        assert list(cache.root.glob("*/*.tmp")) == []


class TestConcurrentWriters:
    def test_same_key_writers_converge_to_one_valid_entry(self, cache):
        barrier = threading.Barrier(8)
        errors = []

        def writer(i):
            try:
                barrier.wait()
                for _ in range(20):
                    cache.put(KEY, PAYLOAD, {"writer": i})
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        shard = cache.entry_path(KEY).parent
        entries = [p for p in shard.iterdir() if p.suffix == ".json"]
        assert len(entries) == 1
        assert list(cache.root.glob("*/*.tmp")) == []
        assert cache.get(KEY) == PAYLOAD
        assert cache.stats()["quarantined"] == 0


class TestEntryFormat:
    def test_entry_checksum_matches_canonical_payload(self, cache):
        cache.put(KEY, PAYLOAD, {"query": "is_equilibrium"})
        entry = json.loads(cache.entry_path(KEY).read_text())
        assert entry["v"] == 1 and entry["key"] == KEY
        assert entry["checksum"] == _payload_checksum(PAYLOAD)
        assert entry["meta"] == {"query": "is_equilibrium"}

    def test_sharded_layout(self, cache):
        cache.put(KEY, PAYLOAD)
        path = cache.entry_path(KEY)
        assert path.parent.name == KEY[:2]
        assert path.name == f"{KEY}.json"
        assert os.path.commonpath([path, cache.root]) == str(cache.root)
