"""Stability pins for :func:`repro.io.hashing.graph_fingerprint`.

The fingerprint is a *persisted* identity — trajectory-census JSONL records
carry it and the audit-service result cache keys on it — so the digest
algorithm is frozen.  These tests pin literal digests for known graphs: if
a refactor shifts any of them, every cache entry and census record on disk
silently re-keys, which is a format break, not a cleanup.  Bump the
consumers' format versions instead of updating these constants casually.
"""

import pytest

from repro.graphs import (
    CSRGraph,
    complete_graph,
    cycle_graph,
    path_graph,
    random_connected_gnm,
    random_tree,
    star_graph,
)
from repro.io.hashing import graph_fingerprint

#: (constructor, pinned digest) — computed once at introduction (ISSUE 7)
#: and frozen since.
PINNED = [
    (lambda: path_graph(5), "d95373e7be5c28f7"),
    (lambda: cycle_graph(6), "ddc7fb0902b632da"),
    (lambda: star_graph(7), "cc1eb2760ef90f54"),
    (lambda: complete_graph(4), "71baf0ab19d4654c"),
    (lambda: random_tree(16, seed=3), "021362e4364c35e7"),
    (lambda: random_connected_gnm(24, 40, seed=7), "7d881a3a1d679be3"),
]


@pytest.mark.parametrize("make,expected", PINNED)
def test_pinned_fingerprints_are_stable(make, expected):
    assert graph_fingerprint(make()) == expected


def test_label_sensitive_not_isomorphism_invariant():
    # Two isomorphic labelled paths with different labellings must differ:
    # the fingerprint identifies labelled graphs (the cycle detector's and
    # the cache's equality), not isomorphism classes.
    a = CSRGraph(3, [(0, 1), (1, 2)])
    b = CSRGraph(3, [(1, 0), (0, 2)])
    assert graph_fingerprint(a) != graph_fingerprint(b)


def test_edge_order_and_orientation_invariant():
    a = CSRGraph(4, [(0, 1), (1, 2), (2, 3)])
    b = CSRGraph(4, [(3, 2), (2, 1), (1, 0)])
    assert graph_fingerprint(a) == graph_fingerprint(b)


def test_trajcensus_reexport_is_the_same_function():
    # The compatibility shim must keep the census importing this exact
    # implementation — a fork would let the two identities drift apart.
    from repro.core import trajcensus

    assert trajcensus.graph_fingerprint is graph_fingerprint
