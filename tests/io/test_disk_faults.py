"""ENOSPC and torn-rename regressions across every persistence path.

DESIGN.md §13's disk-fault model: a full disk mid-write surfaces as the
typed :class:`~repro.errors.StoreIntegrityError` with the published state
unchanged (a torn JSONL tail is dropped on resume; a cache/checkpoint
final file is never half-new), and a rename lost before the directory
fsync leaves the *old* file authoritative with the complete sidecar as
sweepable litter.  The end-to-end heal is ``scripts/chaos_soak.py``;
these are the per-store unit regressions.
"""

import json
from dataclasses import asdict, dataclass

import pytest

from repro.errors import StoreIntegrityError
from repro.io import JsonlStore, ResultCache, cache_key
from repro.parallel import faults
from repro.parallel.faults import InjectedFault


@pytest.fixture(autouse=True)
def _clean_channels(monkeypatch):
    for key in (faults.ENV_SPEC, faults.ENV_DIR, faults.ENV_SAFE_PID):
        monkeypatch.delenv(key, raising=False)
    faults.clear_hooks()
    faults._LOCAL_TOKENS.clear()
    yield
    faults.clear_hooks()
    faults._LOCAL_TOKENS.clear()


@dataclass
class Item:
    a: int


def _write(sink, records):
    for rec in records:
        sink.write(json.dumps(asdict(rec)) + "\n")
    sink.flush()


def make_store(path):
    return JsonlStore(
        path,
        config_key="item_config",
        config_version=1,
        config={"mode": "x"},
        decode=lambda obj: Item(**obj),
        record_name="item record",
        write_records=_write,
    )


class TestJsonlEnospc:
    def test_append_enospc_is_typed_and_tail_drops_on_resume(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "items.jsonl"
        store = make_store(path)
        store.rewrite_prefix([Item(1)])
        monkeypatch.setenv(faults.ENV_SPEC, "enospc:path=items.jsonl")
        with store.open_append() as sink:
            with pytest.raises(StoreIntegrityError, match="ENOSPC"):
                store.append(sink, [Item(2)])
        # Half the batch landed: a torn tail, dropped on resume; the
        # durable prefix survives untouched.
        resumed = make_store(path).start_stream(resume=True, count=99)
        assert resumed == [Item(1)]

    def test_append_after_spent_enospc_succeeds(self, tmp_path, monkeypatch):
        path = tmp_path / "items.jsonl"
        store = make_store(path)
        store.rewrite_prefix([])
        monkeypatch.setenv(faults.ENV_SPEC, "enospc:path=items.jsonl")
        with store.open_append() as sink:
            with pytest.raises(StoreIntegrityError):
                store.append(sink, [Item(1)])
        # The disk "recovered" (the spec's budget is spent): the stream
        # heals by rewriting the validated prefix and appending afresh.
        healed = make_store(path)
        healed.rewrite_prefix(healed.start_stream(resume=True, count=99))
        with healed.open_append() as sink:
            healed.append(sink, [Item(1)])
        assert make_store(path).resume_records() == [Item(1)]


class TestJsonlTornRename:
    def test_lost_rewrite_rename_keeps_old_prefix_authoritative(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "items.jsonl"
        store = make_store(path)
        store.rewrite_prefix([Item(1), Item(2)])
        before = path.read_bytes()
        monkeypatch.setenv(faults.ENV_SPEC, "torn-rename:path=items.jsonl")
        with pytest.raises(InjectedFault):
            store.rewrite_prefix([Item(1), Item(2), Item(3)])
        # The crash window between os.replace and the directory fsync:
        # the old file is still the live one, bit for bit, and the
        # complete sidecar is litter a resume may sweep.
        assert path.read_bytes() == before
        assert make_store(path).resume_records() == [Item(1), Item(2)]


class TestResultCacheDiskFaults:
    KEY = cache_key("ab" * 8, "sum", "is_equilibrium")

    def test_enospc_leaves_no_entry_and_next_put_wins(
        self, tmp_path, monkeypatch
    ):
        cache = ResultCache(tmp_path / "rc")
        monkeypatch.setenv(faults.ENV_SPEC, "enospc:path=rc")
        with pytest.raises(StoreIntegrityError, match="ENOSPC"):
            cache.put(self.KEY, {"ok": 1})
        assert cache.get(self.KEY) is None
        cache.put(self.KEY, {"ok": 1})
        assert cache.get(self.KEY) == {"ok": 1}

    def test_torn_rename_keeps_previous_entry_live(
        self, tmp_path, monkeypatch
    ):
        cache = ResultCache(tmp_path / "rc")
        cache.put(self.KEY, {"gen": 1})
        monkeypatch.setenv(faults.ENV_SPEC, "torn-rename:path=rc")
        with pytest.raises(InjectedFault):
            cache.put(self.KEY, {"gen": 2})
        assert cache.get(self.KEY) == {"gen": 1}
        # A fresh cache over the same directory sweeps the orphaned
        # sidecar and still serves the last published generation.
        reopened = ResultCache(tmp_path / "rc")
        assert reopened.get(self.KEY) == {"gen": 1}
        assert reopened.stats()["swept_tmp"] >= 1
