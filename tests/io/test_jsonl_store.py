"""JsonlStore contract tests: headers, torn lines, atomic rewrites.

The census-specific behaviours (grid validation, crash windows under
``run_census``) stay pinned in ``tests/core/test_census_resume.py`` /
``test_trajcensus.py``; these tests pin the factored-out store itself on a
minimal record type, so a future stream (a third census) can rely on the
contract without re-reading the census code.
"""

import json
from dataclasses import asdict, dataclass

import pytest

from repro.io import JsonlStore
from repro.io.jsonl_store import (
    FleetFailure,
    StreamSummary,
    maybe_decode_failure,
    summarize_stream,
)


@dataclass
class Item:
    a: int
    b: str


def _write(sink, records):
    for rec in records:
        sink.write(json.dumps(asdict(rec)) + "\n")
    sink.flush()


def make_store(path, config=None):
    return JsonlStore(
        path,
        config_key="item_config",
        config_version=1,
        config=config or {"mode": "x", "count": 3},
        decode=lambda obj: Item(**obj),
        record_name="item record",
        write_records=_write,
    )


RECORDS = [Item(1, "one"), Item(2, "two"), Item(3, "three")]


@pytest.fixture()
def stream(tmp_path):
    path = tmp_path / "items.jsonl"
    store = make_store(path)
    store.rewrite_prefix(RECORDS)
    return store, path


class TestRoundTrip:
    def test_header_then_records(self, stream):
        store, path = stream
        lines = path.read_text().splitlines()
        assert json.loads(lines[0]) == {
            "item_config": 1, "mode": "x", "count": 3,
        }
        header, records = store.read_prefix()
        assert header["item_config"] == 1
        assert records == RECORDS

    def test_append_streams_in_order(self, stream):
        store, path = stream
        with store.open_append() as sink:
            store.append(sink, [Item(4, "four")])
        _, records = store.read_prefix()
        assert records == RECORDS + [Item(4, "four")]

    def test_resume_records_validates_and_returns(self, stream):
        store, _ = stream
        assert store.resume_records() == RECORDS

    def test_resume_records_empty_when_no_file(self, tmp_path):
        store = make_store(tmp_path / "absent.jsonl")
        assert store.resume_records() == []


class TestTornLines:
    def test_torn_final_line_dropped(self, stream):
        store, path = stream
        path.write_text(path.read_text()[:-15])
        _, records = store.read_prefix()
        assert records == RECORDS[:-1]

    def test_wrong_shape_final_line_dropped(self, stream):
        store, path = stream
        lines = path.read_text().splitlines()
        lines[-1] = json.dumps({"a": 9})  # valid JSON, torn fields
        path.write_text("\n".join(lines) + "\n")
        _, records = store.read_prefix()
        assert records == RECORDS[:-1]

    def test_mid_file_garbage_raises(self, stream):
        store, path = stream
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:7]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="corrupt mid-file"):
            store.read_prefix()

    def test_mid_file_wrong_shape_raises_with_record_name(self, stream):
        store, path = stream
        lines = path.read_text().splitlines()
        lines[1] = json.dumps({"not": "an item"})
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="not a item record"):
            store.read_prefix()


class TestHeaderValidation:
    def test_config_change_raises(self, stream):
        _, path = stream
        changed = make_store(path, {"mode": "y", "count": 3})
        with pytest.raises(ValueError, match="resume mismatch"):
            changed.resume_records()

    def test_version_change_raises(self, stream):
        _, path = stream
        store = make_store(path)
        store.config_version = 2
        store.header["item_config"] = 2
        with pytest.raises(ValueError, match="header version"):
            store.resume_records()

    def test_headerless_file_refused(self, stream):
        store, path = stream
        path.write_text("\n".join(path.read_text().splitlines()[1:]) + "\n")
        with pytest.raises(ValueError, match="no run-config header"):
            store.resume_records()


class TestStaleTmpSidecar:
    def test_start_stream_removes_stale_tmp(self, stream):
        store, path = stream
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text("half-written garbage from a crashed rewrite")
        done = store.start_stream(resume=True, count=len(RECORDS))
        assert done == RECORDS
        assert not tmp.exists()

    def test_stale_tmp_never_shadows_main_file(self, stream):
        # The main file is authoritative: a stale sidecar from a crash
        # mid-rewrite must not affect what resume reads.
        store, path = stream
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps({"a": 99, "b": "bogus"}) + "\n")
        assert store.start_stream(resume=True, count=99) == RECORDS


class TestDurability:
    def test_invalid_durability_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="durability"):
            JsonlStore(
                tmp_path / "x.jsonl",
                config_key="k",
                config_version=1,
                config={},
                decode=lambda obj: Item(**obj),
                write_records=_write,
                durability="eventually",
            )

    @pytest.mark.parametrize("durability", ["none", "flush", "fsync"])
    def test_append_round_trips_under_every_cadence(
        self, tmp_path, durability
    ):
        path = tmp_path / "items.jsonl"
        store = JsonlStore(
            path,
            config_key="item_config",
            config_version=1,
            config={"mode": "x", "count": 3},
            decode=lambda obj: Item(**obj),
            write_records=_write,
            durability=durability,
        )
        store.rewrite_prefix([])
        with store.open_append() as sink:
            store.append(sink, RECORDS[:2])
            store.append(sink, RECORDS[2:])
        _, records = store.read_prefix()
        assert records == RECORDS

    def test_fsync_cadence_syncs_per_batch(self, stream, monkeypatch):
        store, _ = stream
        store.durability = "fsync"
        synced = []
        import repro.io.jsonl_store as store_mod

        monkeypatch.setattr(
            store_mod.os, "fsync", lambda fd: synced.append(fd)
        )
        with store.open_append() as sink:
            store.append(sink, [Item(4, "four")])
            store.append(sink, [Item(5, "five")])
        # Two syncs per batch under the fsync cadence: the stream file and
        # its parent directory (a fresh file's directory entry is not
        # crash-durable until the directory itself is synced).
        assert len(synced) == 4


class TestAtomicRewrite:
    def test_crash_at_replace_leaves_old_file(self, stream, monkeypatch):
        store, path = stream
        before = path.read_text()

        import repro.io.jsonl_store as store_mod

        def no_replace(src, dst):
            raise RuntimeError("simulated crash before os.replace")

        monkeypatch.setattr(store_mod.os, "replace", no_replace)
        with pytest.raises(RuntimeError, match="before os.replace"):
            store.rewrite_prefix(RECORDS[:1])
        assert path.read_text() == before

    def test_rewrite_replaces_content_completely(self, stream):
        store, path = stream
        store.rewrite_prefix(RECORDS[:1])
        _, records = store.read_prefix()
        assert records == RECORDS[:1]


class TestFleetFailure:
    def test_encode_decode_round_trip(self):
        f = FleetFailure(
            coords={"n": 8, "family": "tree", "seed": 3},
            error="ValueError('boom')",
            attempts=3,
        )
        assert maybe_decode_failure(f.encode()) == f

    def test_result_record_decodes_to_none(self):
        assert maybe_decode_failure({"a": 1, "b": "one"}) is None

    def test_torn_marked_line_raises_typeerror(self):
        # The decode contract read_prefix relies on: marked but torn lines
        # must raise TypeError (-> torn-tail policy applies).
        with pytest.raises(TypeError):
            maybe_decode_failure({"fleet_failure": 1, "coords": {}})

    def test_quarantine_line_streams_and_resumes(self, stream):
        store, _ = stream
        failure = FleetFailure(
            coords={"a": 4}, error="InjectedFault('x')", attempts=2
        )
        wrapped_decode = store._decode
        store._decode = (
            lambda obj: maybe_decode_failure(obj) or wrapped_decode(obj)
        )
        store._write = lambda sink, recs: _write_mixed(sink, recs)
        with store.open_append() as sink:
            store.append(sink, [failure])
        _, records = store.read_prefix()
        assert records == RECORDS + [failure]


def _write_mixed(sink, records):
    for rec in records:
        obj = rec.encode() if isinstance(rec, FleetFailure) else asdict(rec)
        sink.write(json.dumps(obj) + "\n")
    sink.flush()


class TestExperimentHeaderBlock:
    BLOCK = {"name": "demo", "order": ["a"], "seed_scheme": "flat"}

    def make(self, path):
        return JsonlStore(
            path,
            config_key="item_config",
            config_version=1,
            config={"mode": "x"},
            decode=lambda obj: Item(**obj),
            record_name="item record",
            write_records=_write,
            experiment=self.BLOCK,
        )

    def test_block_lands_in_header_after_config_key(self, tmp_path):
        path = tmp_path / "items.jsonl"
        self.make(path).rewrite_prefix([])
        header = json.loads(path.read_text().splitlines()[0])
        assert header == {
            "item_config": 1, "experiment": self.BLOCK, "mode": "x",
        }
        assert list(header) == ["item_config", "experiment", "mode"]

    def test_omitted_block_leaves_header_unchanged(self, stream):
        # Legacy streams (census formats) must keep their exact bytes.
        _, path = stream
        header = json.loads(path.read_text().splitlines()[0])
        assert "experiment" not in header

    def test_block_mismatch_refuses_resume(self, tmp_path):
        path = tmp_path / "items.jsonl"
        self.make(path).rewrite_prefix(RECORDS)
        other = self.make(path)
        other.header["experiment"] = {**self.BLOCK, "seed_scheme": "axes"}
        with pytest.raises(ValueError, match="resume mismatch"):
            other.resume_records()


class TestStreamSummary:
    def test_summary_counts_results(self, stream):
        store, path = stream
        summary = store.summary()
        assert isinstance(summary, StreamSummary)
        assert summary.path == path
        assert summary.header == {"item_config": 1, "mode": "x", "count": 3}
        assert summary.results == 3
        assert summary.failures == []
        assert not summary.torn_tail
        assert summary.completed == 3

    def test_summary_classifies_quarantine_lines(self, stream):
        store, path = stream
        failure = FleetFailure(
            coords={"a": 4}, error="InjectedFault('x')", attempts=2
        )
        with path.open("a") as sink:
            sink.write(json.dumps(failure.encode()) + "\n")
        summary = store.summary()
        assert summary.results == 3
        assert summary.failures == [failure]
        assert summary.completed == 4

    def test_summary_reports_torn_tail(self, stream):
        store, path = stream
        path.write_text(path.read_text()[:-15])
        summary = store.summary()
        assert summary.torn_tail
        assert summary.results == 2

    def test_summary_raises_on_mid_file_tear(self, stream):
        store, path = stream
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:7]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="corrupt mid-file"):
            store.summary()

    def test_headerless_stream_summarizes_with_none_header(self, stream):
        _, path = stream
        path.write_text("\n".join(path.read_text().splitlines()[1:]) + "\n")
        summary = summarize_stream(path)
        assert summary.header is None
        assert summary.results == 3

    def test_summarize_needs_no_record_schema(self, stream):
        # status must work on any stream without importing its decoder.
        _, path = stream
        summary = summarize_stream(path)
        assert summary.results == 3
