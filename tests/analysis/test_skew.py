"""Skew triple machinery tests (Theorem 13 first/second claims)."""

import math

import pytest

from repro.analysis import (
    interval_widths,
    middle_distance_interval,
    sample_skew_fraction,
    skew_threshold,
    skew_triple_fraction,
)
from repro.constructions import rotated_torus
from repro.graphs import complete_graph, cycle_graph, path_graph, star_graph


class TestSkewFraction:
    def test_zero_on_small_diameter(self):
        # Complete graph: all distances 1, threshold > 0 => no skew triples.
        assert skew_triple_fraction(complete_graph(8), p=1.0) == 0.0

    def test_star_zero_for_modest_p(self):
        assert skew_triple_fraction(star_graph(16), p=1.0) == 0.0

    def test_positive_on_long_paths(self):
        frac = skew_triple_fraction(path_graph(64), p=0.5)
        assert frac > 0

    def test_decreasing_in_p(self):
        g = cycle_graph(64)
        f1 = skew_triple_fraction(g, p=0.25)
        f2 = skew_triple_fraction(g, p=0.5)
        f3 = skew_triple_fraction(g, p=1.0)
        assert f1 >= f2 >= f3

    def test_exact_matches_brute_force(self):
        g = cycle_graph(12)
        p = 0.5
        thresh = skew_threshold(g.n, p)
        from repro.graphs import distance_matrix

        dm = distance_matrix(g)
        n = g.n
        brute = sum(
            1
            for a in range(n)
            for b in range(n)
            for c in range(n)
            if a != b and b != c and a != c and dm[a, c] > thresh + dm[a, b]
        )
        assert skew_triple_fraction(g, p) == pytest.approx(
            brute / (n * (n - 1) * (n - 2))
        )

    def test_sampler_close_to_exact(self):
        g = cycle_graph(48)
        exact = skew_triple_fraction(g, p=0.5)
        est = sample_skew_fraction(g, p=0.5, samples=40_000, seed=0)
        assert est == pytest.approx(exact, abs=0.02)


class TestIntervals:
    def test_middle_interval_trims(self):
        g = path_graph(10)
        lo_full, hi_full = middle_distance_interval(g, 0, beta=0.0)
        lo_trim, hi_trim = middle_distance_interval(g, 0, beta=0.2)
        assert lo_full == 1 and hi_full == 9
        assert lo_trim >= lo_full and hi_trim <= hi_full

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            middle_distance_interval(path_graph(5), 0, beta=0.5)

    def test_interval_widths_vector(self):
        g = rotated_torus(4)
        widths = interval_widths(g, beta=0.1)
        assert widths.shape == (g.n,)
        assert (widths >= 0).all()
        # Vertex transitivity: all widths identical.
        assert len(set(widths.tolist())) == 1

    def test_threshold_formula(self):
        assert skew_threshold(16, 2.0) == pytest.approx(8.0)
        assert skew_threshold(1, 2.0) == 0.0
