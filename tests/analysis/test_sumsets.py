"""Iterated sumset tests (Theorem 15's engine)."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.analysis import (
    iterated_sumset_masks,
    iterated_sumset_sizes,
    plunnecke_violations,
    theorem15_radius_bound,
)
from repro.constructions import AbelianGroup, cayley_graph
from repro.graphs import bfs_distances


class TestSumsetSizes:
    def test_cycle_group_growth(self):
        # Z_n with S = {±1}: iS = {-i..i} \ maybe 0... walks of length i
        # reach exactly the residues with |r| <= i and r ≡ i (mod 2)?
        # No: S + S = {-2, 0, 2}; sizes grow 2, 3, 4, 5, ... capped at n.
        group = AbelianGroup((9,))
        sizes = iterated_sumset_sizes(group, [(1,), (8,)], 10)
        assert sizes.tolist() == [2, 3, 4, 5, 6, 7, 8, 9, 9, 9]

    def test_masks_match_walk_reachability(self):
        # iS = endpoints of length-i walks from 0. Two sound directions:
        # (a) membership implies distance <= i;
        # (b) distance <= i with even slack implies membership (waste the
        #     extra steps bouncing across one incident edge).
        # (Odd slack may or may not be realizable — odd cycles decide — so
        # it is deliberately not asserted.)
        moduli = (5, 4)
        conn = [(1, 0), (4, 0), (0, 1), (0, 3)]
        group = AbelianGroup(moduli)
        masks = iterated_sumset_masks(group, conn, 6)
        g = cayley_graph(moduli, conn)
        dist = bfs_distances(g, group.index((0, 0)))
        for i, mask in enumerate(masks, start=1):
            for idx in range(group.order):
                d = int(dist[idx])
                if mask[idx]:
                    assert d <= i
                if d <= i and (i - d) % 2 == 0:
                    assert mask[idx], (i, idx, d)

    def test_zero_in_connection_rejected(self):
        group = AbelianGroup((6,))
        with pytest.raises(GraphError):
            iterated_sumset_sizes(group, [(0,), (1,), (5,)], 3)

    def test_invalid_depth(self):
        group = AbelianGroup((6,))
        with pytest.raises(GraphError):
            iterated_sumset_sizes(group, [(1,), (5,)], 0)


class TestPlunnecke:
    def test_holds_on_random_instances(self):
        from repro.constructions import random_connection_set

        for seed in range(5):
            moduli = (16, 16)
            conn = random_connection_set(moduli, 3, seed)
            group = AbelianGroup(moduli)
            sizes = iterated_sumset_sizes(group, conn, 12)
            assert plunnecke_violations(sizes) == []

    def test_detects_fabricated_violation(self):
        # |2S| > |1S|^2 is impossible for real sumsets; fabricate it.
        fake = np.asarray([2, 5], dtype=np.int64)
        assert plunnecke_violations(fake) == [(1, 2)]


class TestRadiusBound:
    def test_monotone_in_epsilon(self):
        # Smaller epsilon (more uniform) => tighter radius bound.
        assert theorem15_radius_bound(1024, 0.05) < theorem15_radius_bound(
            1024, 0.2
        )

    def test_grows_logarithmically(self):
        b1 = theorem15_radius_bound(2**10, 0.1)
        b2 = theorem15_radius_bound(2**20, 0.1)
        assert b2 == pytest.approx(2 * b1 - 1, rel=0.01)

    def test_epsilon_domain(self):
        with pytest.raises(ValueError):
            theorem15_radius_bound(100, 0.5)
