"""Bound curve tests: formulas, monotonicity, exact constants."""

import math

import pytest

from repro.analysis import (
    conjectured_polylog_bound,
    corollary11_gain_bound,
    lemma10_removal_bound,
    theorem12_lower_bound,
    theorem12_tradeoff_bound,
    theorem13_almost_uniform_diameter,
    theorem13_uniform_diameter,
    theorem15_diameter_bound,
    theorem9_diameter_bound,
)


class TestTheorem9Curve:
    def test_subpolynomial(self):
        # 2^(c sqrt(lg n)) grows slower than any n^eps: in log space,
        # c*sqrt(L) < eps*L once L > (c/eps)^2. Compare exponents directly
        # (the graphs themselves never get this large; this is about the
        # curve used in the tables).
        c = 2.0
        for eps in (0.5, 0.25, 0.1):
            L = 2 * (c / eps) ** 2  # comfortably past the crossover
            assert c * math.sqrt(L) < eps * L

    def test_superpolylog(self):
        # ... and faster than any lg^k n, eventually.
        n = 2**64
        assert theorem9_diameter_bound(n) > math.log2(n) ** 2

    def test_monotone(self):
        values = [theorem9_diameter_bound(n) for n in (4, 16, 256, 65536)]
        assert values == sorted(values)

    def test_exact_value(self):
        assert theorem9_diameter_bound(16, c=2.0) == pytest.approx(2.0 ** 4)


class TestTheorem12Curves:
    def test_lower_bound_exact_for_construction(self):
        # n = 2k^2 => bound = k exactly.
        for k in (2, 4, 8):
            assert theorem12_lower_bound(2 * k * k) == pytest.approx(k)

    def test_tradeoff_interpolates(self):
        n = 4096
        assert theorem12_tradeoff_bound(n, 1) == pytest.approx(
            math.sqrt(n / 2)
        )
        assert theorem12_tradeoff_bound(n, 3) < theorem12_tradeoff_bound(n, 1)

    def test_k_validation(self):
        with pytest.raises(ValueError):
            theorem12_tradeoff_bound(100, 0)


class TestTheorem13Curves:
    def test_uniform_smaller_than_almost(self):
        assert theorem13_uniform_diameter(0.25, 1000, 256) < (
            theorem13_almost_uniform_diameter(0.25, 1000, 256)
        )

    def test_linear_in_d(self):
        a = theorem13_almost_uniform_diameter(0.25, 100, 256)
        b = theorem13_almost_uniform_diameter(0.25, 200, 256)
        assert b == pytest.approx(2 * a)


class TestTheorem15Curve:
    def test_domain(self):
        with pytest.raises(ValueError):
            theorem15_diameter_bound(100, 0.5)

    def test_tightens_with_uniformity(self):
        assert theorem15_diameter_bound(4096, 0.01) < theorem15_diameter_bound(
            4096, 0.2
        )


class TestLemmaBounds:
    def test_corollary11(self):
        assert corollary11_gain_bound(16) == pytest.approx(5 * 16 * 4)

    def test_lemma10(self):
        assert lemma10_removal_bound(16) == pytest.approx(2 * 16 * 5)

    def test_polylog_conjecture_default_power(self):
        assert conjectured_polylog_bound(256) == pytest.approx(8.0**2)
