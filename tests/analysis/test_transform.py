"""Theorem 13 pipeline tests."""

import math

import pytest

from repro.errors import DisconnectedGraphError, GraphError
from repro.analysis import suggested_p, theorem13_transform
from repro.constructions import rotated_torus
from repro.graphs import CSRGraph, cycle_graph, path_graph


class TestParameters:
    def test_suggested_p(self):
        assert suggested_p(0.125) == 64.0
        with pytest.raises(ValueError):
            suggested_p(0.5)

    def test_tiny_graph_rejected(self):
        with pytest.raises(GraphError):
            theorem13_transform(CSRGraph(1, []))

    def test_disconnected_rejected(self):
        with pytest.raises(DisconnectedGraphError):
            theorem13_transform(CSRGraph(3, [(0, 1)]))


class TestPipeline:
    def test_premise_detection(self):
        # C256 has diameter 128 > 2 lg 256 = 16: premise met.
        res = theorem13_transform(cycle_graph(256), p=0.5)
        assert res.meets_diameter_premise
        # Torus k=8 has diameter 8 < 2 lg 128 = 14: premise not met.
        res2 = theorem13_transform(rotated_torus(8), p=0.5)
        assert not res2.meets_diameter_premise

    def test_power_diameters_scale_as_d_over_x(self):
        g = cycle_graph(256)
        res = theorem13_transform(g, p=0.5)
        assert res.input_diameter == 128
        assert res.almost_diameter == math.ceil(128 / res.almost_power)
        assert res.uniform_diameter == math.ceil(128 / res.uniform_power)

    def test_uniform_modulus_avoids_interval(self):
        g = cycle_graph(200)
        res = theorem13_transform(g, beta=0.125, p=0.5)
        # Reconstruct the interval the modulus was required to avoid.
        lg = math.log2(g.n)
        import numpy as np
        from repro.graphs import distance_matrix

        dm = distance_matrix(g)
        off = dm[~np.eye(g.n, dtype=bool)]
        center = int(np.median(off))
        half = int(math.ceil(2 * 0.5 * lg))
        lo, hi = max(1, center - half), max(1, center + half)
        x = res.uniform_power
        first_multiple = ((lo + x - 1) // x) * x
        assert first_multiple > hi

    def test_cycle_epsilon_follows_exact_coverage_law(self):
        # A cycle has exactly 2 vertices per distance, so in C_n^x each
        # power-distance r collects 2x vertices: best coverage is ~2x/n and
        # epsilon = 1 - 2x/n. Cycles are NOT sum equilibria, so Theorem 13
        # promises nothing here — but the measurement must obey the law.
        n = 256
        res = theorem13_transform(cycle_graph(n), p=0.5)
        x = res.uniform_power
        expected = 1 - (2 * x) / n
        assert res.uniform_report.epsilon == pytest.approx(expected, abs=0.05)
        # Same law for the almost branch at its own (smaller) power, with a
        # two-distance window: coverage ~4x/n.
        xa = res.almost_power
        assert res.almost_report.epsilon == pytest.approx(
            1 - (4 * xa) / n, abs=0.07
        )

    def test_result_fields_consistent(self):
        res = theorem13_transform(path_graph(64), p=0.5)
        assert res.n == 64
        assert res.almost_power >= 1
        assert res.uniform_power >= 2
        assert res.almost_report.almost
        assert not res.uniform_report.almost
