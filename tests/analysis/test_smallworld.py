"""Small-world metric tests."""

import math

import networkx as nx
import pytest
from hypothesis import given, settings

from repro.errors import DisconnectedGraphError
from repro.analysis import clustering_coefficient, small_world_report
from repro.constructions import rotated_torus
from repro.graphs import (
    CSRGraph,
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
    to_networkx,
)

from ..conftest import connected_graphs


class TestClustering:
    def test_complete_graph_is_one(self):
        assert clustering_coefficient(complete_graph(6)) == pytest.approx(1.0)

    def test_triangle_free_is_zero(self):
        assert clustering_coefficient(cycle_graph(6)) == 0.0
        assert clustering_coefficient(star_graph(8)) == 0.0
        assert clustering_coefficient(rotated_torus(3)) == 0.0

    def test_known_value(self):
        # Triangle with one pendant: v0,v1,v2 form a triangle, v3 hangs off
        # v2. C(v0)=C(v1)=1, C(v2)=1/3, C(v3)=0 -> mean 7/12.
        g = CSRGraph(4, [(0, 1), (1, 2), (0, 2), (2, 3)])
        assert clustering_coefficient(g) == pytest.approx(7 / 12)

    @given(connected_graphs(max_n=12))
    @settings(max_examples=40, deadline=None)
    def test_matches_networkx(self, g):
        ours = clustering_coefficient(g)
        theirs = nx.average_clustering(to_networkx(g))
        assert ours == pytest.approx(theirs)


class TestReport:
    def test_fields(self):
        r = small_world_report(complete_graph(8))
        assert r.n == 8
        assert r.mean_degree == 7.0
        assert r.path_length == 1.0
        assert r.clustering == pytest.approx(1.0)

    def test_disconnected_rejected(self):
        with pytest.raises(DisconnectedGraphError):
            small_world_report(CSRGraph(3, [(0, 1)]))

    def test_sigma_degenerate_on_trees(self):
        # Mean degree < 2 on paths gives defined baselines, but clustering 0
        # zeroes sigma; a bare 2-path (kbar = 1) yields nan baselines.
        r = small_world_report(path_graph(2))
        assert math.isnan(r.random_path_length)

    def test_equilibria_are_not_clustered(self):
        # Library finding: the paper's equilibria achieve small diameter
        # with zero clustering (stars, tori) — small L without the high C
        # of Watts-Strogatz small worlds.
        for g in (star_graph(16), rotated_torus(4)):
            r = small_world_report(g)
            assert r.clustering == 0.0
