"""Trajectory analysis tests — the non-potential nature of sum dynamics."""

import pytest

from repro.analysis import summarize_trajectory
from repro.core import SwapDynamics
from repro.errors import ConfigurationError
from repro.graphs import path_graph, random_connected_gnm, random_tree


class TestSummaries:
    def test_requires_recording(self):
        res = SwapDynamics(objective="sum", record=False, seed=0).run(
            path_graph(6)
        )
        with pytest.raises(ConfigurationError):
            summarize_trajectory(res)

    def test_fields_consistent(self):
        res = SwapDynamics(objective="sum", record=True, seed=0).run(
            random_tree(16, seed=1)
        )
        s = summarize_trajectory(res)
        assert s.steps == res.steps
        assert s.diameter_final == 2.0  # star, per Theorem 1
        assert s.diameter_peak >= s.diameter_final
        assert s.social_cost_final <= s.social_cost_initial or not s.socially_monotone

    def test_monotone_iff_no_regressions(self):
        res = SwapDynamics(objective="sum", record=True, seed=3).run(
            random_tree(12, seed=3)
        )
        s = summarize_trajectory(res)
        assert s.socially_monotone == (s.selfish_regressions == 0)
        if s.socially_monotone:
            assert s.max_social_cost_increase == 0.0

    def test_regressions_exist_somewhere(self):
        # The sum game is not a potential game: across a handful of dense
        # seeds, at least one improving swap must raise the social cost.
        found = False
        for seed in range(6):
            g0 = random_connected_gnm(14, 26, seed=seed)
            res = SwapDynamics(objective="sum", record=True, seed=seed).run(g0)
            s = summarize_trajectory(res)
            if s.selfish_regressions > 0:
                found = True
                assert s.max_social_cost_increase > 0
                break
        assert found, "expected at least one socially-regressive improving swap"

    def test_zero_step_run(self):
        from repro.graphs import star_graph

        res = SwapDynamics(objective="sum", record=True, seed=0).run(
            star_graph(8)
        )
        s = summarize_trajectory(res)
        assert s.steps == 0
        assert s.socially_monotone
        assert s.social_cost_initial == s.social_cost_final
