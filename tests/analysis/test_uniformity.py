"""Distance uniformity measurement tests."""

import numpy as np
import pytest

from repro.errors import DisconnectedGraphError
from repro.analysis import (
    distance_almost_uniformity,
    distance_uniformity,
    pairwise_concentration,
    per_vertex_distance_counts,
)
from repro.graphs import (
    CSRGraph,
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)


class TestCounts:
    def test_counts_partition_vertices(self):
        g = cycle_graph(9)
        counts = per_vertex_distance_counts(g)
        assert (counts.sum(axis=1) == g.n).all()
        assert (counts[:, 0] == 1).all()

    def test_known_counts_star(self):
        counts = per_vertex_distance_counts(star_graph(6))
        assert counts[0].tolist() == [1, 5, 0]
        assert counts[1].tolist() == [1, 1, 4]

    def test_disconnected_rejected(self):
        with pytest.raises(DisconnectedGraphError):
            per_vertex_distance_counts(CSRGraph(3, [(0, 1)]))


class TestUniformity:
    def test_complete_graph_perfectly_uniform(self):
        report = distance_uniformity(complete_graph(8))
        assert report.epsilon == pytest.approx(1 / 8)  # only self excluded
        assert report.radius == 1

    def test_cycle_best_radius(self):
        # On C_n every vertex has exactly 2 vertices per distance r < n/2:
        # coverage 2/n at any radius, so epsilon = 1 - 2/n.
        report = distance_uniformity(cycle_graph(10))
        assert report.epsilon == pytest.approx(1 - 2 / 10)

    def test_almost_uniformity_beats_uniformity(self):
        g = cycle_graph(11)
        u = distance_uniformity(g)
        au = distance_almost_uniformity(g)
        assert au.epsilon <= u.epsilon
        assert au.almost and not u.almost

    def test_star_uniformity(self):
        # Radius 2 covers n-2 vertices for leaves but only 0 for the hub;
        # radius 1 covers 1 for leaves, n-1 for hub. Best min-coverage: r=1.
        report = distance_uniformity(star_graph(8))
        assert report.radius in (1, 2)
        assert 0 < report.epsilon < 1

    def test_worst_vertex_is_reported(self):
        g = path_graph(6)
        report = distance_uniformity(g)
        counts = per_vertex_distance_counts(g)
        assert counts[report.worst_vertex, report.radius] == counts[
            :, report.radius
        ].min()

    def test_single_vertex(self):
        report = distance_uniformity(CSRGraph(1, []))
        assert report.epsilon == 0.0


class TestPairwiseConcentration:
    def test_complete(self):
        r, frac = pairwise_concentration(complete_graph(5))
        assert (r, frac) == (1, 1.0)

    def test_path_modal_distance(self):
        r, frac = pairwise_concentration(path_graph(5))
        assert r == 1  # 4 ordered pairs per distance-1 edge dominate
        assert 0 < frac < 1

    def test_trivial_graphs(self):
        assert pairwise_concentration(CSRGraph(1, []))[1] == 1.0
