"""Test package (enables relative conftest imports under `python -m pytest`)."""
