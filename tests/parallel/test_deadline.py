"""Deadline propagation (ISSUE 7): one request budget, typed failure.

``deadline=`` on :func:`~repro.parallel.parallel_map` /
``SharedArrayPool.map`` is an *absolute* monotonic instant bounding the
whole call.  The contract under test: a call past its deadline raises
:class:`~repro.errors.DeadlineExceeded` — typed, fast, regardless of
``on_error`` — instead of hanging or multiplying ``timeout × retries``
past the budget, and a call that finishes in time is bit-identical to an
undeadlined one.
"""

import time

import pytest

from repro.errors import DeadlineExceeded
from repro.parallel import parallel_map, shutdown_shared_pools


@pytest.fixture(autouse=True)
def _clean_runtime():
    yield
    shutdown_shared_pools()


def quick_task(task):
    return task * 2


def slow_task(task):
    # Task 3 wedges far past any sane budget; the rest are instant.
    if task == 3:
        time.sleep(600)
    return task * 2


def napping_task(task):
    time.sleep(0.05)
    return task * 2


TASKS = list(range(12))
CLEAN = [t * 2 for t in TASKS]


class TestSerialPath:
    def test_deadline_in_the_past_fails_immediately(self):
        with pytest.raises(DeadlineExceeded):
            parallel_map(
                quick_task, TASKS, workers=1,
                deadline=time.monotonic() - 1.0,
            )

    def test_deadline_checked_between_tasks(self):
        start = time.monotonic()
        with pytest.raises(DeadlineExceeded):
            parallel_map(
                napping_task, TASKS, workers=1,
                deadline=start + 0.12,
            )
        # 12 × 50 ms serial would take ~0.6 s; the budget cut it short.
        assert time.monotonic() - start < 0.5

    def test_typed_error_even_with_record_policy(self):
        # A spent request budget is not a task failure to quarantine.
        with pytest.raises(DeadlineExceeded):
            parallel_map(
                napping_task, TASKS, workers=1,
                deadline=time.monotonic() + 0.08, on_error="record",
            )

    def test_generous_deadline_is_invisible(self):
        out = parallel_map(
            quick_task, TASKS, workers=1,
            deadline=time.monotonic() + 60.0,
        )
        assert out == CLEAN


class TestPoolPath:
    def test_hung_worker_fails_at_deadline_not_timeout_times_retries(self):
        # Without the deadline this configuration would spend up to
        # ~timeout × (retries + splits) ≈ many seconds re-killing the hung
        # chunk; the budget must cut the whole call off at ~0.8 s.
        start = time.monotonic()
        with pytest.raises(DeadlineExceeded):
            parallel_map(
                slow_task, TASKS, workers=2, chunk_size=3,
                timeout=5.0, retries=10, deadline=start + 0.8,
            )
        assert time.monotonic() - start < 4.0

    def test_deadline_tighter_than_timeout_caps_the_wait(self):
        # timeout alone would wait 120 s before even noticing the hang.
        start = time.monotonic()
        with pytest.raises(DeadlineExceeded):
            parallel_map(
                slow_task, TASKS, workers=2, chunk_size=3,
                timeout=120.0, retries=2, deadline=start + 0.6,
            )
        assert time.monotonic() - start < 5.0

    def test_generous_deadline_bit_identical(self):
        out = parallel_map(
            quick_task, TASKS, workers=2, chunk_size=3,
            timeout=60.0, retries=2, deadline=time.monotonic() + 60.0,
        )
        assert out == CLEAN

    def test_pool_survives_for_the_next_call(self):
        # The deadline kill must not poison the persistent pool: the next
        # call on the same worker count rebuilds lazily and succeeds.
        with pytest.raises(DeadlineExceeded):
            parallel_map(
                slow_task, TASKS, workers=2, chunk_size=3,
                timeout=60.0, deadline=time.monotonic() + 0.4,
            )
        out = parallel_map(
            quick_task, TASKS, workers=2, chunk_size=3, retries=1,
        )
        assert out == CLEAN
