"""Parameter sweep tests."""

import pytest

from repro.errors import ConfigurationError
from repro.parallel import Sweep, run_sweep


def point_fn(point) -> dict:
    return {"double_n": point["n"] * 2, "seen_seed": point.seed}


class TestSweep:
    def test_point_enumeration(self):
        sweep = Sweep({"n": [4, 8], "family": ["a", "b", "c"]}, replicates=2)
        pts = sweep.points()
        assert len(pts) == 12
        # First parameter varies slowest.
        assert pts[0]["n"] == 4 and pts[-1]["n"] == 8

    def test_seeds_unique_and_deterministic(self):
        sweep = Sweep({"n": [4, 8]}, replicates=3, root_seed=5)
        seeds_a = [p.seed for p in sweep.points()]
        seeds_b = [p.seed for p in Sweep({"n": [4, 8]}, replicates=3, root_seed=5).points()]
        assert seeds_a == seeds_b
        assert len(set(seeds_a)) == len(seeds_a)

    def test_root_seed_changes_everything(self):
        a = [p.seed for p in Sweep({"n": [4]}, replicates=2, root_seed=1).points()]
        b = [p.seed for p in Sweep({"n": [4]}, replicates=2, root_seed=2).points()]
        assert set(a).isdisjoint(b)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Sweep({"n": [1]}, replicates=0).points()
        with pytest.raises(ConfigurationError):
            Sweep({"n": []}).points()

    def test_point_getitem_missing(self):
        sweep = Sweep({"n": [4]})
        with pytest.raises(KeyError):
            sweep.points()[0]["missing"]

    @pytest.mark.parametrize("name", ["seed", "replicate"])
    def test_reserved_grid_names_rejected(self, name):
        # ISSUE 4: as_dict() derives `seed`/`replicate` columns, so a grid
        # parameter with either name used to be silently overwritten.
        with pytest.raises(ConfigurationError, match="collide"):
            Sweep({"n": [4], name: [1, 2]}).points()

    def test_reserved_name_error_is_eager_and_names_the_culprit(self):
        with pytest.raises(ConfigurationError, match="'seed'"):
            Sweep({"seed": [1]}).points()


class TestSweepOrder:
    GRID = {"n": [4, 8], "family": ["a", "b"]}

    def test_default_order_is_declaration_order(self):
        assert Sweep(self.GRID).names() == ["n", "family"]

    def test_explicit_order_matches_declaration(self):
        a = Sweep(self.GRID).points()
        b = Sweep(self.GRID, order=("n", "family")).points()
        assert a == b

    def test_explicit_order_reorders_enumeration(self):
        pts = Sweep(self.GRID, order=("family", "n")).points()
        # First name in order varies slowest.
        assert [p["family"] for p in pts] == ["a", "a", "b", "b"]
        assert [p["n"] for p in pts] == [4, 8, 4, 8]

    def test_redeclared_key_raises_stable_error(self):
        with pytest.raises(ConfigurationError, match="re-declared"):
            Sweep(self.GRID, order=("n", "n", "family")).names()

    def test_unknown_key_raises(self):
        with pytest.raises(ConfigurationError, match="unknown: \\['m'\\]"):
            Sweep(self.GRID, order=("n", "family", "m")).names()

    def test_missing_key_raises(self):
        with pytest.raises(ConfigurationError, match="missing: \\['family'\\]"):
            Sweep(self.GRID, order=("n",)).names()

    def test_points_validates_order(self):
        with pytest.raises(ConfigurationError, match="exactly once"):
            Sweep(self.GRID, order=("n",)).points()


class TestRunSweep:
    def test_records_merge_params_and_results(self):
        sweep = Sweep({"n": [2, 3]}, replicates=2, root_seed=0)
        records = run_sweep(point_fn, sweep, workers=1)
        assert len(records) == 4
        for r in records:
            assert r["double_n"] == r["n"] * 2
            assert r["seen_seed"] == r["seed"]

    def test_parallel_equals_serial(self):
        sweep = Sweep({"n": [2, 3, 5]}, replicates=2, root_seed=3)
        assert run_sweep(point_fn, sweep, workers=1) == run_sweep(
            point_fn, sweep, workers=2
        )
